#!/usr/bin/env bash
# Offline verification: build, test, and smoke the quick grids against
# the committed goldens. No network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== build =="
cargo build --release --workspace

echo "== tests =="
cargo test -q

echo "== static analysis (wb analyze) =="
./target/release/wb analyze --all

echo "== fused-vs-reference differential =="
cargo test -q -p wb-harness --release --test fused_reference_differential

echo "== quick-grid smoke (fig5 + fig12_13, cached and uncached) =="
./target/release/fig5 --quick --out results/quick >/dev/null
./target/release/fig12_13 --quick --stats --out results/quick >/dev/null
# The cache must not change a byte of any emitted table.
./target/release/fig12_13 --quick --no-cache --out results/quick >/dev/null
# Neither may the fused engine: the plain interpreter is the goldens'
# reference semantics.
./target/release/fig5 --quick --reference-exec --out results/quick >/dev/null

echo "== golden stability =="
git diff --exit-code results/

echo "verify: OK"
