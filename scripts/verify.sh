#!/usr/bin/env bash
# Offline verification: build, test, and smoke the quick grids against
# the committed goldens. No network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== clippy panic-freedom gate (VM + codec libraries) =="
# The decoder and both VMs must surface faults as structured errors,
# never panics (tests are exempt: --lib skips #[cfg(test)] code).
cargo clippy -p wb-wasm -p wb-wasm-vm -p wb-jsvm --lib -q -- \
  -D warnings -D clippy::panic -D clippy::unwrap_used

echo "== build =="
cargo build --release --workspace

echo "== tests =="
cargo test -q

echo "== static analysis (wb analyze) =="
./target/release/wb analyze --all

echo "== fused-vs-reference differential =="
cargo test -q -p wb-harness --release --test fused_reference_differential

echo "== trap parity (wasm vs js vs native, all levels) =="
cargo test -q -p wb-harness --release --test trap_parity

echo "== fault injection (wb inject) =="
./target/release/wb inject --all

echo "== quick-grid smoke (fig5 + fig12_13, cached and uncached) =="
./target/release/fig5 --quick --out results/quick >/dev/null
./target/release/fig12_13 --quick --stats --out results/quick >/dev/null
# The cache must not change a byte of any emitted table.
./target/release/fig12_13 --quick --no-cache --out results/quick >/dev/null
# Neither may the fused engine: the plain interpreter is the goldens'
# reference semantics.
./target/release/fig5 --quick --reference-exec --out results/quick >/dev/null

echo "== golden stability =="
git diff --exit-code results/

echo "verify: OK"
