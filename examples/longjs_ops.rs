//! The Table 10/12 Long.js study: drive 10,000 64-bit multiplications,
//! divisions and remainders through the hand-written Wasm module (native
//! `i64` instructions) and the Long.js-style JS library (16-bit limbs),
//! then print times and the executed-arithmetic profile.
//!
//! ```sh
//! cargo run --release --example longjs_ops
//! ```

use wasmbench::benchmarks::apps::longjs::LongOp;
use wasmbench::core::apps::{longjs_js, longjs_wasm};
use wasmbench::env::Environment;

fn main() {
    let env = Environment::desktop_chrome();
    println!(
        "{:<16} {:>12} {:>12} {:>7}   {:>12} {:>12}",
        "operation", "wasm time", "js time", "ratio", "wasm arith", "js arith"
    );
    for op in LongOp::ALL {
        let w = longjs_wasm(op, env).expect("wasm");
        let j = longjs_js(op, env).expect("js");
        println!(
            "{:<16} {:>12} {:>12} {:>6.3}x  {:>12} {:>12}",
            op.name(),
            w.time.to_string(),
            j.time.to_string(),
            w.time.0 / j.time.0,
            w.arith.total(),
            j.arith.total()
        );
    }

    println!("\nTable 12 detail (multiplication):");
    let w = longjs_wasm(LongOp::Multiplication, env).expect("wasm");
    let j = longjs_js(LongOp::Multiplication, env).expect("js");
    println!("  {:<6} {:>10} {:>10}", "op", "JS", "WASM");
    for (i, h) in wasmbench::env::ArithCounts::HEADERS.iter().enumerate() {
        println!(
            "  {:<6} {:>10} {:>10}",
            h,
            j.arith.columns()[i],
            w.arith.columns()[i]
        );
    }
}
