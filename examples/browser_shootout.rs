//! The §4.5 experiment on one benchmark: run gemm in all six deployment
//! settings (Chrome/Firefox/Edge × desktop/mobile) and print the Table 8
//! style comparison, plus the JS↔Wasm context-switch microbenchmark.
//!
//! ```sh
//! cargo run --release --example browser_shootout
//! ```

use wasmbench::benchmarks::{suite, InputSize};
use wasmbench::core::apps::context_switch_bench;
use wasmbench::core::{run_compiled_js, run_wasm, JsSpec, WasmSpec};
use wasmbench::env::{Browser, Environment, Platform};

fn main() {
    let bench = suite::find("gemm").expect("gemm is in the corpus");
    let defines = bench.defines(InputSize::M);

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "environment", "wasm time", "js time", "wasm KB", "js KB"
    );
    for env in Environment::all_six() {
        let mut wspec = WasmSpec::new(bench.source);
        wspec.defines = defines.clone();
        wspec.env = env;
        let w = run_wasm(&wspec).expect("wasm");

        let mut jspec = JsSpec::new(bench.source);
        jspec.defines = defines.clone();
        jspec.env = env;
        let j = run_compiled_js(&jspec).expect("js");

        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12}",
            env.label(),
            w.time.to_string(),
            j.time.to_string(),
            w.memory_bytes / 1024,
            j.memory_bytes / 1024
        );
    }

    println!("\nJS↔Wasm context-switch cost per boundary crossing (desktop):");
    let chrome = context_switch_bench(Environment::desktop_chrome(), 200).expect("bench");
    for browser in Browser::ALL {
        let env = Environment::new(browser, Platform::Desktop);
        let ns = context_switch_bench(env, 200).expect("bench");
        println!(
            "  {:<8} {:>8.1} ns  ({:.2}x of Chrome)",
            browser.name(),
            ns.0,
            ns.0 / chrome.0
        );
    }
}
