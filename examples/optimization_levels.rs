//! The §4.2.1 counter-intuition, live: compile the ADPCM-style benchmark
//! at every optimization level for all three targets and watch `-Ofast`
//! lose to `-Oz` on WebAssembly while winning on x86.
//!
//! ```sh
//! cargo run --release --example optimization_levels
//! ```

use wasmbench::benchmarks::suite;
use wasmbench::benchmarks::InputSize;
use wasmbench::core::{run_compiled_js, run_native, run_wasm, JsSpec, WasmSpec};
use wasmbench::minic::OptLevel;

fn main() {
    let bench = suite::find("ADPCM").expect("ADPCM is in the corpus");
    let defines = bench.defines(InputSize::M);
    println!(
        "benchmark: {} ({}) — {}\n",
        bench.name,
        bench.suite.name(),
        bench.description
    );

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14}",
        "level", "wasm time", "js time", "x86 time", "wasm binary"
    );
    let mut baseline_wasm = None;
    for level in OptLevel::EVALUATED {
        let mut wspec = WasmSpec::new(bench.source);
        wspec.defines = defines.clone();
        wspec.level = level;
        let w = run_wasm(&wspec).expect("wasm");

        let mut jspec = JsSpec::new(bench.source);
        jspec.defines = defines.clone();
        jspec.level = level;
        let j = run_compiled_js(&jspec).expect("js");

        let n = run_native(bench.source, &defines, level, "bench_main").expect("native");

        assert_eq!(w.output, j.output);
        assert_eq!(w.output, n.output);
        if level == OptLevel::O2 {
            baseline_wasm = Some(w.time.0);
        }
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} B",
            level.to_string(),
            w.time.to_string(),
            j.time.to_string(),
            n.time.to_string(),
            w.code_size
        );
    }

    // The Fig 7 effect: -Ofast on the Wasm target skips dead-global-store
    // elimination (the LLVM#37449-style miscompile), so ADPCM executes
    // dead stores that -O2 removed.
    let mut ofast = WasmSpec::new(bench.source);
    ofast.defines = defines.clone();
    ofast.level = OptLevel::Ofast;
    let w = run_wasm(&ofast).expect("wasm");
    println!(
        "\nFig 7 check: ADPCM -Ofast/-O2 wasm time = {:.3}x (dead stores retained at -Ofast)",
        w.time.0 / baseline_wasm.expect("baseline measured")
    );
}
