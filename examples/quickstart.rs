//! Quickstart: compile one C benchmark to WebAssembly *and* JavaScript,
//! run both in the simulated desktop-Chrome environment, and compare —
//! the paper's §1 experiment in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wasmbench::core::{run_compiled_js, run_wasm, JsSpec, WasmSpec};

const SOURCE: &str = r#"
#define N 64
double A[N][N];
double B[N][N];
double C[N][N];

void bench_main() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)((i + j) % N) / N;
    }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      double s = 0.0;
      for (int k = 0; k < N; k++) s += A[i][k] * B[k][j];
      C[i][j] = s;
    }
  double check = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) check += C[i][j];
  print_double(check);
}
"#;

fn main() {
    // WebAssembly: Cheerp profile, -O2, desktop Chrome (study defaults).
    let wasm = run_wasm(&WasmSpec::new(SOURCE)).expect("wasm run");
    // JavaScript: same source, same compiler, JS backend.
    let js = run_compiled_js(&JsSpec::new(SOURCE)).expect("js run");

    assert_eq!(
        wasm.output, js.output,
        "both backends computed the same result"
    );
    println!("checksum            : {}", wasm.output[0]);
    println!("wasm   time         : {}", wasm.time);
    println!("js     time         : {}", js.time);
    println!("wasm/js time ratio  : {:.2}x", wasm.time.0 / js.time.0);
    println!("wasm   memory       : {} KB", wasm.memory_bytes / 1024);
    println!("js     memory       : {} KB", js.memory_bytes / 1024);
    println!("wasm   binary size  : {} bytes", wasm.code_size);
    println!("js     source size  : {} bytes", js.code_size);
    println!();
    println!(
        "wasm time breakdown : load {} + compile {} + exec {}",
        wasm.clock.load_time, wasm.clock.compile_time, wasm.clock.exec_time
    );
    println!(
        "js   time breakdown : parse {} + compile {} + exec {} + gc {}",
        js.clock.load_time, js.clock.compile_time, js.clock.exec_time, js.clock.gc_time
    );
}
