//! # wasmbench — facade crate
//!
//! Re-exports the workspace crates under short names; see the README and
//! DESIGN.md for the architecture, and `examples/` for entry points.

#![forbid(unsafe_code)]

pub use wb_benchmarks as benchmarks;
pub use wb_core as core;
pub use wb_env as env;
pub use wb_jsvm as jsvm;
pub use wb_minic as minic;
pub use wb_wasm as wasm;
pub use wb_wasm_vm as wasm_vm;
