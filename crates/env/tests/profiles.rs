//! Integration tests over the calibrated environment profiles.
//!
//! These pin the *structural* invariants the rest of the workspace relies
//! on: every constant finite and positive, tier orderings consistent with
//! how the VMs interpret them, and the paper-anchored relationships between
//! browsers/platforms that drive the table shapes.

use wb_env::calibration::{self, DESKTOP_CYCLE_NS, GROW_SLACK_THRESHOLD_BYTES, MOBILE_CYCLE_NS};
use wb_env::{
    Browser, CompilerProfile, CostTable, Environment, OpClass, OpCounts, Platform, Toolchain,
};

#[test]
fn all_six_environments_resolve_to_sane_profiles() {
    for env in Environment::all_six() {
        let p = calibration::profile_for(env);
        assert_eq!(p.environment, env);
        assert!(p.cycle_time_ns > 0.0 && p.cycle_time_ns.is_finite());

        // JS engine: every cost positive and finite.
        let js = &p.js;
        for v in [
            js.parse_cost_per_byte,
            js.bytecode_cost_per_op,
            js.interp_multiplier,
            js.jit_multiplier,
            js.jit_typed_array_multiplier,
            js.jit_compile_cost_per_op,
            js.alloc_cost,
            js.gc.pause_base,
            js.gc.pause_per_live_byte,
        ] {
            assert!(
                v > 0.0 && v.is_finite(),
                "{}: bad JS constant {v}",
                env.label()
            );
        }
        assert!(js.jit_threshold > 0);
        assert!(js.gc.trigger_bytes > 0);
        assert!(js.baseline_memory_bytes > 0);

        // Wasm engine: every cost positive and finite.
        let w = &p.wasm;
        for v in [
            w.decode_cost_per_byte,
            w.validate_cost_per_byte,
            w.baseline.compile_cost_per_unit,
            w.baseline.exec_multiplier,
            w.optimizing.compile_cost_per_unit,
            w.optimizing.exec_multiplier,
            w.instantiate_base,
            w.memory_grow_base,
            w.memory_grow_per_page,
            w.context_switch,
        ] {
            assert!(
                v > 0.0 && v.is_finite(),
                "{}: bad Wasm constant {v}",
                env.label()
            );
        }
        assert!(w.tier_up_threshold > 0);
        assert!(w.baseline_memory_bytes > 0);
        assert!(p.wasm_grow_slack >= 1.0);
    }
}

#[test]
fn cycle_time_tracks_platform() {
    let (mut desktop, mut mobile) = (None, None);
    for env in Environment::all_six() {
        let p = calibration::profile_for(env);
        let expect = match env.platform {
            Platform::Desktop => {
                desktop = Some(p.cycle_time_ns);
                DESKTOP_CYCLE_NS
            }
            Platform::Mobile => {
                mobile = Some(p.cycle_time_ns);
                MOBILE_CYCLE_NS
            }
        };
        assert_eq!(p.cycle_time_ns, expect, "{}", env.label());
    }
    assert!(
        mobile.unwrap() > desktop.unwrap(),
        "mobile cores are slower"
    );
}

#[test]
fn wasm_tiers_trade_compile_time_for_exec_speed() {
    // The tier-up model only makes sense if the baseline tier compiles
    // cheaper but runs slower than the optimizing tier — in every
    // environment.
    for env in Environment::all_six() {
        let w = calibration::profile_for(env).wasm;
        assert!(
            w.baseline.compile_cost_per_unit < w.optimizing.compile_cost_per_unit,
            "{}: baseline must be the cheap compiler",
            env.label()
        );
        assert!(
            w.baseline.exec_multiplier > w.optimizing.exec_multiplier,
            "{}: baseline must be the slow executor",
            env.label()
        );
    }
}

#[test]
fn js_jit_is_faster_than_interpreter_everywhere() {
    for env in Environment::all_six() {
        let js = calibration::profile_for(env).js;
        assert!(
            js.jit_multiplier < js.interp_multiplier,
            "{}: JIT code must beat the interpreter",
            env.label()
        );
        // Typed-array fast paths are at least as good as generic JIT code
        // (this is the mechanism behind Chrome JS catching Wasm, Table 3).
        assert!(
            js.jit_typed_array_multiplier <= js.jit_multiplier,
            "{}",
            env.label()
        );
    }
}

#[test]
fn firefox_startup_story_vs_chrome() {
    // §4.3/§4.4: SpiderMonkey parses and starts JS fast but spends much more
    // compiling Wasm up front — the driver of the Table 5 XS inversion.
    let c = calibration::profile_for(Environment::desktop_chrome());
    let f = calibration::profile_for(Environment::desktop_firefox());
    assert!(f.js.parse_cost_per_byte < c.js.parse_cost_per_byte);
    assert!(f.js.interp_multiplier < c.js.interp_multiplier);
    assert!(f.wasm.instantiate_base > 5.0 * c.wasm.instantiate_base);
}

#[test]
fn mobile_chrome_total_factors_match_table8() {
    // Table 8: mobile Chrome runs JS ≈5.5× and Wasm ≈3.6× slower than
    // desktop Chrome once the platform cycle time is folded in.
    let desk = Environment::desktop_chrome();
    let mob = Environment::new(Browser::Chrome, Platform::Mobile);
    let js_total = calibration::js_speed_factor(mob) * MOBILE_CYCLE_NS
        / (calibration::js_speed_factor(desk) * DESKTOP_CYCLE_NS);
    let wasm_total = calibration::wasm_speed_factor(mob) * MOBILE_CYCLE_NS
        / (calibration::wasm_speed_factor(desk) * DESKTOP_CYCLE_NS);
    assert!((js_total - 5.48).abs() < 0.1, "JS total {js_total}");
    assert!((wasm_total - 3.56).abs() < 0.1, "Wasm total {wasm_total}");
}

#[test]
fn grow_slack_is_a_firefox_only_overcommit() {
    for env in Environment::all_six() {
        let p = calibration::profile_for(env);
        match env.browser {
            Browser::Firefox => assert!(p.wasm_grow_slack > 1.0, "{}", env.label()),
            _ => assert_eq!(p.wasm_grow_slack, 1.0, "{}", env.label()),
        }
    }
    assert_eq!(GROW_SLACK_THRESHOLD_BYTES, 32 << 20);
}

#[test]
fn environment_labels_and_versions_are_distinct() {
    let envs = Environment::all_six();
    let mut labels: Vec<String> = envs.iter().map(|e| e.label()).collect();
    labels.sort();
    labels.dedup();
    assert_eq!(labels.len(), 6, "labels must be unique");
    for env in envs {
        assert!(!env.browser.version(env.platform).is_empty());
        assert!(!env.browser.name().is_empty());
        assert!(!env.platform.name().is_empty());
    }
}

#[test]
fn compiler_profiles_match_the_4_2_2_setup() {
    // §4.2.2: Cheerp starts with a tiny linear memory and grows on demand;
    // Emscripten pre-allocates 16 MB (256 pages).
    let cheerp = CompilerProfile::cheerp();
    let emcc = CompilerProfile::emscripten();
    assert!(cheerp.initial_memory_bytes() < emcc.initial_memory_bytes());
    assert_eq!(emcc.initial_memory_bytes(), 256 * 64 * 1024);
    assert_eq!(
        CompilerProfile::of(Toolchain::Cheerp).initial_memory_bytes(),
        cheerp.initial_memory_bytes()
    );
    assert_eq!(
        CompilerProfile::of(Toolchain::Emscripten).initial_memory_bytes(),
        emcc.initial_memory_bytes()
    );
    // Execution-overhead ratio ≈2.70× (§4.2.2).
    let r = calibration::toolchain_exec_overhead(Toolchain::Cheerp)
        / calibration::toolchain_exec_overhead(Toolchain::Emscripten);
    assert!((r - 2.70).abs() < 0.05);
}

#[test]
fn reference_cost_table_orders_operation_latencies() {
    let t = CostTable::reference();
    // Division is the expensive outlier in both domains.
    assert!(t.cost(OpClass::IntDiv) > t.cost(OpClass::IntMul));
    assert!(t.cost(OpClass::IntMul) > t.cost(OpClass::IntAlu));
    assert!(t.cost(OpClass::FloatDiv) > t.cost(OpClass::FloatMul));
    // Register traffic is cheaper than memory traffic.
    assert!(t.cost(OpClass::Local) < t.cost(OpClass::Load));
    assert!(t.cost(OpClass::Local) < t.cost(OpClass::Global));
    // Calls dominate simple ALU work (drives the §4.5 boundary story).
    assert!(t.cost(OpClass::Call) > t.cost(OpClass::IntAlu));
    for c in OpClass::ALL {
        assert!(t.cost(c) > 0.0 && t.cost(c).is_finite());
    }
}

#[test]
fn cost_cycles_is_linear_in_counts_and_multiplier() {
    let t = CostTable::reference();
    let mut a = OpCounts::new();
    a.bump(OpClass::Load, 100);
    a.bump(OpClass::FloatMul, 40);
    let mut b = OpCounts::new();
    b.bump(OpClass::Load, 11);
    b.bump(OpClass::Branch, 7);

    let merged = a.merged(&b);
    let lhs = t.cycles(&merged, 1.0);
    let rhs = t.cycles(&a, 1.0) + t.cycles(&b, 1.0);
    assert!(
        (lhs - rhs).abs() < 1e-9,
        "cycles must be additive over merge"
    );
    assert!((t.cycles(&a, 3.0) - 3.0 * t.cycles(&a, 1.0)).abs() < 1e-9);
}
