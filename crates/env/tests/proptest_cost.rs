//! Randomized (deterministic, LCG-seeded) tests on the cost-accounting
//! primitives every measurement rests on. Each case prints its seed on
//! failure so it reproduces exactly.

use wb_env::rng::Lcg;
use wb_env::{CostTable, Nanos, OpClass, OpCounts, TimeBucket, VirtualClock, OP_CLASS_COUNT};

const CASES: u64 = 128;

fn gen_counts(rng: &mut Lcg) -> OpCounts {
    let mut c = OpCounts::new();
    for i in 0..OP_CLASS_COUNT {
        c.bump(OpClass::ALL[i], rng.below(1_000_000));
    }
    c
}

/// `merged` is commutative and counts never vanish.
#[test]
fn merge_is_commutative() {
    for seed in 0..CASES {
        let mut rng = Lcg::new(seed);
        let a = gen_counts(&mut rng);
        let b = gen_counts(&mut rng);
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        for class in OpClass::ALL {
            assert_eq!(ab.get(class), ba.get(class), "seed {seed}");
            assert_eq!(ab.get(class), a.get(class) + b.get(class), "seed {seed}");
        }
        assert_eq!(ab.total(), a.total() + b.total(), "seed {seed}");
    }
}

/// `delta_since` inverts `merged`: (a ∪ b) − b == a.
#[test]
fn delta_inverts_merge() {
    for seed in 0..CASES {
        let mut rng = Lcg::new(1000 + seed);
        let a = gen_counts(&mut rng);
        let b = gen_counts(&mut rng);
        let d = a.merged(&b).delta_since(&b);
        for class in OpClass::ALL {
            assert_eq!(d.get(class), a.get(class), "seed {seed}");
        }
    }
}

/// Cycle cost is additive over counter merges and linear in the
/// multiplier — the property that makes per-phase attribution sound.
#[test]
fn cycles_additive_and_linear() {
    for seed in 0..CASES {
        let mut rng = Lcg::new(2000 + seed);
        let a = gen_counts(&mut rng);
        let b = gen_counts(&mut rng);
        let m = rng.range_f64(0.1, 50.0);
        let t = CostTable::reference();
        let merged = t.cycles(&a.merged(&b), 1.0);
        let parts = t.cycles(&a, 1.0) + t.cycles(&b, 1.0);
        assert!(
            (merged - parts).abs() <= 1e-6 * merged.max(1.0),
            "seed {seed}: merged {merged} vs parts {parts}"
        );
        let scaled = t.cycles(&a, m);
        assert!(
            (scaled - m * t.cycles(&a, 1.0)).abs() <= 1e-6 * scaled.max(1.0),
            "seed {seed}"
        );
    }
}

/// The clock's bucket breakdown always sums to `now()`, regardless of
/// the advance sequence.
#[test]
fn clock_buckets_partition_now() {
    let buckets = [
        TimeBucket::Load,
        TimeBucket::Compile,
        TimeBucket::Exec,
        TimeBucket::Gc,
        TimeBucket::MemGrow,
        TimeBucket::ContextSwitch,
    ];
    for seed in 0..CASES {
        let mut rng = Lcg::new(3000 + seed);
        let mut clock = VirtualClock::new();
        for _ in 0..rng.index(64) {
            let ns = rng.range_f64(0.0, 1e6);
            let which = rng.index(buckets.len());
            clock.advance(Nanos(ns), buckets[which]);
        }
        let sum = clock.load_time
            + clock.compile_time
            + clock.exec_time
            + clock.gc_time
            + clock.mem_grow_time
            + clock.context_switch_time;
        assert!(
            (sum.0 - clock.now().0).abs() <= 1e-6 * clock.now().0.max(1.0),
            "seed {seed}: {} vs {}",
            sum.0,
            clock.now().0
        );
    }
}

/// `absorb` preserves the partition property across parent/child clocks.
#[test]
fn absorb_preserves_partition() {
    for seed in 0..CASES {
        let mut rng = Lcg::new(4000 + seed);
        let parent_ns = rng.range_f64(0.0, 1e6);
        let child_ns = rng.range_f64(0.0, 1e6);
        let mut parent = VirtualClock::new();
        parent.advance(Nanos(parent_ns), TimeBucket::Exec);
        let mut child = VirtualClock::new();
        child.advance(Nanos(child_ns), TimeBucket::Gc);
        parent.absorb(&child);
        assert!(
            (parent.now().0 - (parent_ns + child_ns)).abs() < 1e-9,
            "seed {seed}"
        );
        assert!((parent.exec_time.0 - parent_ns).abs() < 1e-9, "seed {seed}");
        assert!((parent.gc_time.0 - child_ns).abs() < 1e-9, "seed {seed}");
    }
}
