//! Property tests on the cost-accounting primitives every measurement
//! rests on.

use proptest::prelude::*;
use wb_env::{CostTable, Nanos, OpClass, OpCounts, TimeBucket, VirtualClock, OP_CLASS_COUNT};

fn arb_counts() -> impl Strategy<Value = OpCounts> {
    proptest::collection::vec(0u64..1_000_000, OP_CLASS_COUNT).prop_map(|v| {
        let mut c = OpCounts::new();
        for (i, n) in v.into_iter().enumerate() {
            c.bump(OpClass::ALL[i], n);
        }
        c
    })
}

proptest! {
    /// `merged` is commutative and counts never vanish.
    #[test]
    fn merge_is_commutative(a in arb_counts(), b in arb_counts()) {
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        for class in OpClass::ALL {
            prop_assert_eq!(ab.get(class), ba.get(class));
            prop_assert_eq!(ab.get(class), a.get(class) + b.get(class));
        }
        prop_assert_eq!(ab.total(), a.total() + b.total());
    }

    /// `delta_since` inverts `merged`: (a ∪ b) − b == a.
    #[test]
    fn delta_inverts_merge(a in arb_counts(), b in arb_counts()) {
        let d = a.merged(&b).delta_since(&b);
        for class in OpClass::ALL {
            prop_assert_eq!(d.get(class), a.get(class));
        }
    }

    /// Cycle cost is additive over counter merges and linear in the
    /// multiplier — the property that makes per-phase attribution sound.
    #[test]
    fn cycles_additive_and_linear(a in arb_counts(), b in arb_counts(), m in 0.1f64..50.0) {
        let t = CostTable::reference();
        let merged = t.cycles(&a.merged(&b), 1.0);
        let parts = t.cycles(&a, 1.0) + t.cycles(&b, 1.0);
        prop_assert!((merged - parts).abs() <= 1e-6 * merged.max(1.0));
        let scaled = t.cycles(&a, m);
        prop_assert!((scaled - m * t.cycles(&a, 1.0)).abs() <= 1e-6 * scaled.max(1.0));
    }

    /// The clock's bucket breakdown always sums to `now()`, regardless of
    /// the advance sequence.
    #[test]
    fn clock_buckets_partition_now(spans in proptest::collection::vec((0.0f64..1e6, 0usize..6), 0..64)) {
        let buckets = [
            TimeBucket::Load, TimeBucket::Compile, TimeBucket::Exec,
            TimeBucket::Gc, TimeBucket::MemGrow, TimeBucket::ContextSwitch,
        ];
        let mut clock = VirtualClock::new();
        for (ns, which) in spans {
            clock.advance(Nanos(ns), buckets[which]);
        }
        let sum = clock.load_time + clock.compile_time + clock.exec_time
            + clock.gc_time + clock.mem_grow_time + clock.context_switch_time;
        prop_assert!((sum.0 - clock.now().0).abs() <= 1e-6 * clock.now().0.max(1.0));
    }

    /// `absorb` preserves the partition property across parent/child clocks.
    #[test]
    fn absorb_preserves_partition(parent_ns in 0.0f64..1e6, child_ns in 0.0f64..1e6) {
        let mut parent = VirtualClock::new();
        parent.advance(Nanos(parent_ns), TimeBucket::Exec);
        let mut child = VirtualClock::new();
        child.advance(Nanos(child_ns), TimeBucket::Gc);
        parent.absorb(&child);
        prop_assert!((parent.now().0 - (parent_ns + child_ns)).abs() < 1e-9);
        prop_assert!((parent.exec_time.0 - parent_ns).abs() < 1e-9);
        prop_assert!((parent.gc_time.0 - child_ns).abs() < 1e-9);
    }
}
