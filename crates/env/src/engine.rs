//! Engine profiles: the tunable parameters of the simulated JavaScript
//! engines and WebAssembly virtual machines.
//!
//! §2.2 and §4.4 of the paper describe both Chrome (V8: Ignition/TurboFan
//! for JS, Liftoff/TurboFan for Wasm) and Firefox (SpiderMonkey:
//! Baseline/Ion for JS and Wasm, Cranelift on ARM64) as *two-tier* systems.
//! Each profile below captures one engine's tier structure numerically.

/// Parameters of one execution tier (baseline or optimizing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierParams {
    /// Compilation cost, in cycles per byte (Wasm) or per bytecode op (JS)
    /// of the function being compiled.
    pub compile_cost_per_unit: f64,
    /// Execution-cost multiplier relative to the reference [`crate::CostTable`].
    /// 1.0 means "as fast as tuned native"; a baseline tier is > 1.
    pub exec_multiplier: f64,
}

/// Which Wasm compilation tiers a browser run enables.
///
/// Mirrors the Chrome flags of Table 11: the default two-tier pipeline,
/// `--liftoff --no-wasm-tier-up` (basic only) and
/// `--no-liftoff --no-wasm-tier-up` (optimizing only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TierPolicy {
    /// Baseline compiles first; hot functions tier up to the optimizer.
    #[default]
    Default,
    /// Only the basic (baseline) compiler — the paper's "JIT disabled" Wasm setting.
    BasicOnly,
    /// Only the optimizing compiler — everything pays up-front compile cost.
    OptimizingOnly,
}

/// Whether the JS JIT (optimizing compiler) is enabled.
///
/// `Disabled` mirrors Chrome's `--js-flags="--no-opt"` from Table 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JitMode {
    /// Interpreter plus optimizing JIT for hot code (browser default).
    #[default]
    Enabled,
    /// Interpreter only.
    Disabled,
}

/// WebAssembly virtual-machine profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WasmEngineProfile {
    /// Cycles per byte to decode the binary (no parse step: §2.2.2).
    pub decode_cost_per_byte: f64,
    /// Cycles per byte to validate the module.
    pub validate_cost_per_byte: f64,
    /// Basic compiler ("Liftoff" / "Baseline").
    pub baseline: TierParams,
    /// Optimizing compiler ("TurboFan" / "Ion" / "Cranelift").
    pub optimizing: TierParams,
    /// Hotness units (calls + loop back-edges) before a function tiers up.
    pub tier_up_threshold: u64,
    /// Fixed cycles charged per module instantiation (engine task spawn,
    /// IPC, compilation orchestration). Firefox's eager full-module
    /// pipeline makes this large — the reason Wasm loses to JS at XS on
    /// Firefox (Table 5) while winning on Chrome (Table 3).
    pub instantiate_base: f64,
    /// Fixed cycles per `memory.grow` request (page-table bookkeeping).
    pub memory_grow_base: f64,
    /// Additional cycles per 64 KiB page committed by a grow.
    pub memory_grow_per_page: f64,
    /// Cycles per JS↔Wasm boundary crossing (one direction).
    pub context_switch: f64,
    /// Engine-reserved memory attributed to an instantiated module, bytes
    /// (DevTools shows ~2 MB on Chrome before any user data; Table 4).
    pub baseline_memory_bytes: u64,
}

/// Garbage-collector parameters of a JS engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcParams {
    /// Collection is triggered when allocated-since-last-GC exceeds this.
    pub trigger_bytes: u64,
    /// Pause cost: fixed cycles per collection.
    pub pause_base: f64,
    /// Pause cost: cycles per live byte traced.
    pub pause_per_live_byte: f64,
}

/// JavaScript engine profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JsEngineProfile {
    /// Cycles per source byte for parsing to an AST (§2.2.1).
    pub parse_cost_per_byte: f64,
    /// Cycles per bytecode op emitted by the bytecode compiler.
    pub bytecode_cost_per_op: f64,
    /// Interpreter tier: every op class runs this many times slower than
    /// the reference table.
    pub interp_multiplier: f64,
    /// Optimized (JIT) tier multiplier. Near-native but above 1 for
    /// dynamically-typed residue (shape checks, boxing on escape).
    pub jit_multiplier: f64,
    /// Extra multiplier applied to *typed-array* loads/stores in JIT'd
    /// code; V8-style engines get these to near-native (1.0) while plain
    /// object/array accesses keep paying `jit_multiplier`.
    pub jit_typed_array_multiplier: f64,
    /// Hotness units (invocations + loop back-edges) before JIT kicks in.
    pub jit_threshold: u64,
    /// JIT compilation cost in cycles per bytecode op of the function.
    pub jit_compile_cost_per_op: f64,
    /// Allocation fast-path cost in cycles per allocation.
    pub alloc_cost: f64,
    /// Garbage-collector parameters.
    pub gc: GcParams,
    /// Engine-reserved memory attributed to a page's JS realm, bytes
    /// (DevTools shows ~880 KB on desktop Chrome; Table 4).
    pub baseline_memory_bytes: u64,
}

impl WasmEngineProfile {
    /// A mid-range default used by unit tests and examples; real
    /// experiments resolve profiles via [`crate::Environment::profile`].
    pub fn reference() -> Self {
        WasmEngineProfile {
            decode_cost_per_byte: 6.0,
            validate_cost_per_byte: 4.0,
            baseline: TierParams {
                compile_cost_per_unit: 30.0,
                exec_multiplier: 1.35,
            },
            optimizing: TierParams {
                compile_cost_per_unit: 320.0,
                exec_multiplier: 1.0,
            },
            tier_up_threshold: 2_000,
            instantiate_base: 120_000.0,
            memory_grow_base: 12_000.0,
            memory_grow_per_page: 900.0,
            context_switch: 250.0,
            baseline_memory_bytes: 1_950 * 1024,
        }
    }
}

impl JsEngineProfile {
    /// A mid-range default used by unit tests and examples.
    pub fn reference() -> Self {
        JsEngineProfile {
            parse_cost_per_byte: 55.0,
            bytecode_cost_per_op: 14.0,
            interp_multiplier: 22.0,
            jit_multiplier: 1.45,
            jit_typed_array_multiplier: 1.05,
            jit_threshold: 1_200,
            jit_compile_cost_per_op: 700.0,
            alloc_cost: 28.0,
            gc: GcParams {
                trigger_bytes: 1 << 20,
                pause_base: 40_000.0,
                pause_per_live_byte: 0.06,
            },
            baseline_memory_bytes: 880 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_two_tier() {
        let w = WasmEngineProfile::reference();
        assert!(w.baseline.exec_multiplier > w.optimizing.exec_multiplier);
        assert!(w.baseline.compile_cost_per_unit < w.optimizing.compile_cost_per_unit);
    }

    #[test]
    fn js_interpreter_is_much_slower_than_jit() {
        let j = JsEngineProfile::reference();
        assert!(j.interp_multiplier / j.jit_multiplier > 5.0);
        assert!(j.jit_typed_array_multiplier <= j.jit_multiplier);
    }

    #[test]
    fn policies_default_sensibly() {
        assert_eq!(TierPolicy::default(), TierPolicy::Default);
        assert_eq!(JitMode::default(), JitMode::Enabled);
    }
}
