//! Deterministic resource limits shared by both virtual machines.
//!
//! Real engines kill runaway guest code with wall-clock watchdogs and OS
//! OOM signals — both nondeterministic. The simulation instead expresses
//! every limit in terms of quantities the VMs already account for
//! deterministically:
//!
//! * **fuel** — retired virtual instructions (the step counter both VMs
//!   maintain for cost charging). Exhaustion is the simulation's
//!   "timeout": the same program with the same fuel always stops at the
//!   same instruction.
//! * **memory ceiling** — bytes of guest memory (Wasm linear memory /
//!   MiniJS heap). Checked at the same points memory is already
//!   accounted: `memory.grow` and the GC safe point.
//! * **call depth** — guest stack frames before a stack-overflow trap.
//!
//! **Determinism invariant:** limits are *checked* on existing
//! virtual-cost events; they never add charges of their own. A run that
//! stays under every limit is bit-identical to a run with no limits at
//! all, which is what keeps the committed goldens stable.

/// Resource ceilings for one VM run. The default is the unlimited
/// configuration the measurement grid uses (only the call-depth guard is
/// finite, mirroring real engines' fixed stack reserves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum retired virtual instructions before the run traps with a
    /// fuel-exhaustion error. `None` = unlimited.
    pub fuel: Option<u64>,
    /// Maximum guest memory in bytes (Wasm linear memory size / MiniJS
    /// heap live+external bytes). `None` = unlimited (the engine's own
    /// 4 GiB / declared-max caps still apply).
    pub max_memory_bytes: Option<u64>,
    /// Maximum guest call depth before a stack-overflow trap.
    pub max_call_depth: usize,
}

/// Default call depth, matching real engines' ~1 MiB stack reserve.
pub const DEFAULT_MAX_CALL_DEPTH: usize = 2_048;

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            fuel: None,
            max_memory_bytes: None,
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
        }
    }
}

impl ResourceLimits {
    /// The unlimited grid configuration (same as `Default`).
    pub fn unlimited() -> Self {
        ResourceLimits::default()
    }

    /// Builder: cap retired instructions.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Builder: cap guest memory bytes.
    pub fn with_max_memory_bytes(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Builder: cap guest call depth.
    pub fn with_max_call_depth(mut self, depth: usize) -> Self {
        self.max_call_depth = depth;
        self
    }

    /// Fuel as a plain step budget (`u64::MAX` when unlimited) for hot
    /// loops that prefer a branchless compare.
    #[inline]
    pub fn fuel_budget(&self) -> u64 {
        self.fuel.unwrap_or(u64::MAX)
    }

    /// Memory ceiling as a plain byte budget (`u64::MAX` when unlimited).
    #[inline]
    pub fn memory_budget(&self) -> u64 {
        self.max_memory_bytes.unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited_except_depth() {
        let l = ResourceLimits::default();
        assert_eq!(l.fuel, None);
        assert_eq!(l.max_memory_bytes, None);
        assert_eq!(l.max_call_depth, DEFAULT_MAX_CALL_DEPTH);
        assert_eq!(l.fuel_budget(), u64::MAX);
        assert_eq!(l.memory_budget(), u64::MAX);
        assert_eq!(l, ResourceLimits::unlimited());
    }

    #[test]
    fn builders_compose() {
        let l = ResourceLimits::default()
            .with_fuel(10)
            .with_max_memory_bytes(4096)
            .with_max_call_depth(16);
        assert_eq!(l.fuel_budget(), 10);
        assert_eq!(l.memory_budget(), 4096);
        assert_eq!(l.max_call_depth, 16);
    }
}
