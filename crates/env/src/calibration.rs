//! Calibration constants — every tuned number in the simulation, audited in
//! one place.
//!
//! The paper reports *measured* times on two physical devices and three
//! browsers. Our substitute is a deterministic cost model whose constants
//! are chosen so that the **shape** of every table reproduces: orderings
//! (which browser/language wins), approximate factors, and crossover points
//! (e.g. the input size where JavaScript catches up with WebAssembly on
//! Chrome). Each constant cites the paper observation it is anchored to.
//!
//! Anchors (paper §4.5, Table 8, arithmetic means over 41 benchmarks):
//!
//! | metric | Chrome | Firefox | Edge |
//! |---|---|---|---|
//! | Desktop JS time | 1.00× | 1.06× | 1.40× |
//! | Desktop Wasm time | 1.00× | 0.61× | 1.28× |
//! | Mobile JS time (vs mobile Chrome) | 1.00× | 0.67× | 0.81× |
//! | Mobile Wasm time (vs mobile Chrome) | 1.00× | 1.48× | 0.83× |
//!
//! plus: Firefox's JS↔Wasm context switch is ≈0.13× of Chrome's (§4.5);
//! Emscripten output runs 2.70× faster / 6.02× bigger-memory than Cheerp
//! (§4.2.2); JS JIT speedups are large while Wasm tier-up gains ≈1.09–1.12×
//! (§4.4, Table 7).

use crate::engine::{GcParams, JsEngineProfile, TierParams, WasmEngineProfile};
use crate::environment::{Browser, EnvProfile, Environment, Platform};

/// Nanoseconds per abstract cycle on the desktop testbed (i7-class core).
pub const DESKTOP_CYCLE_NS: f64 = 0.40;

/// Nanoseconds per abstract cycle on the mobile testbed (Mi 6, ARM64).
///
/// The ~4× platform gap, combined with per-engine factors below, yields the
/// paper's mobile/desktop time ratios (Table 8: mobile Chrome runs JS ~5.5×
/// and Wasm ~3.6× slower than desktop Chrome).
pub const MOBILE_CYCLE_NS: f64 = 1.60;

/// Committed linear memory beyond which an engine's growth slack applies
/// (Firefox over-commits large heaps; Table 6 shows Firefox passing Chrome
/// only at XL).
pub const GROW_SLACK_THRESHOLD_BYTES: u64 = 32 << 20;

/// Per-environment execution-speed factor for JavaScript (multiplies all
/// JS-side costs). Desktop Chrome is the 1.0 reference.
pub fn js_speed_factor(env: Environment) -> f64 {
    match (env.browser, env.platform) {
        (Browser::Chrome, Platform::Desktop) => 1.00,
        (Browser::Firefox, Platform::Desktop) => 1.06, // Table 8
        (Browser::Edge, Platform::Desktop) => 1.40,    // Table 8
        // Mobile factors are relative to mobile Chrome, then folded with the
        // platform cycle time. Mobile Chrome's JS is a little worse than the
        // raw 4× platform factor (5.48× total; Table 8), hence 1.37.
        (Browser::Chrome, Platform::Mobile) => 1.37,
        (Browser::Firefox, Platform::Mobile) => 1.37 * 0.67, // Table 8
        (Browser::Edge, Platform::Mobile) => 1.37 * 0.81,    // Table 8
    }
}

/// Per-environment execution-speed factor for WebAssembly.
pub fn wasm_speed_factor(env: Environment) -> f64 {
    match (env.browser, env.platform) {
        (Browser::Chrome, Platform::Desktop) => 1.00,
        (Browser::Firefox, Platform::Desktop) => 0.61, // Table 8
        (Browser::Edge, Platform::Desktop) => 1.28,    // Table 8
        // Mobile Chrome Wasm is slightly better than the raw platform
        // factor (3.57× total; Table 8), hence 0.89.
        (Browser::Chrome, Platform::Mobile) => 0.89,
        // Mobile Firefox swaps Baseline/Ion for Cranelift on ARM64 (§4.5)
        // and loses its desktop advantage.
        (Browser::Firefox, Platform::Mobile) => 0.89 * 1.48, // Table 8
        (Browser::Edge, Platform::Mobile) => 0.89 * 0.83,    // Table 8
    }
}

/// JS engine baseline memory (DevTools realm overhead), bytes.
///
/// Anchored to Table 4 (Chrome ~880 KB), Table 6 (Firefox ~505 KB) and
/// Table 8's mobile rows.
pub fn js_baseline_memory(env: Environment) -> u64 {
    match (env.browser, env.platform) {
        (Browser::Chrome, Platform::Desktop) => 880 * 1024,
        (Browser::Firefox, Platform::Desktop) => 505 * 1024,
        (Browser::Edge, Platform::Desktop) => 868 * 1024,
        (Browser::Chrome, Platform::Mobile) => 404 * 1024,
        (Browser::Firefox, Platform::Mobile) => 690 * 1024,
        (Browser::Edge, Platform::Mobile) => 962 * 1024,
    }
}

/// Wasm engine baseline memory (instantiation overhead), bytes.
///
/// Anchored to Table 4 (Chrome ~2.0 MB at XS), Table 6 (Firefox ~1.6 MB)
/// and Table 8's mobile rows.
pub fn wasm_baseline_memory(env: Environment) -> u64 {
    match (env.browser, env.platform) {
        (Browser::Chrome, Platform::Desktop) => 1_870 * 1024,
        (Browser::Firefox, Platform::Desktop) => 1_470 * 1024,
        (Browser::Edge, Platform::Desktop) => 1_866 * 1024,
        (Browser::Chrome, Platform::Mobile) => 2_390 * 1024,
        (Browser::Firefox, Platform::Mobile) => 2_760 * 1024,
        (Browser::Edge, Platform::Mobile) => 2_955 * 1024,
    }
}

/// JS↔Wasm context-switch cost in cycles, per crossing.
///
/// Firefox made these calls fast in 2018 (§4.5): ≈0.13× of Chrome.
pub fn context_switch_cycles(browser: Browser) -> f64 {
    match browser {
        Browser::Chrome => 260.0,
        Browser::Firefox => 260.0 * 0.13,
        Browser::Edge => 270.0,
    }
}

/// Resolve the full calibrated profile for an environment.
pub fn profile_for(env: Environment) -> EnvProfile {
    let cycle_time_ns = match env.platform {
        Platform::Desktop => DESKTOP_CYCLE_NS,
        Platform::Mobile => MOBILE_CYCLE_NS,
    };
    let jsf = js_speed_factor(env);
    let wf = wasm_speed_factor(env);

    // --- JavaScript engine ------------------------------------------------
    // Chrome (V8): slower startup (heavier parse + bytecode pipeline), very
    // good optimized code with near-native typed-array access — this is why
    // JS catches Wasm at large inputs on Chrome (Table 3).
    // Firefox (SpiderMonkey): fast startup, cheaper interpreter, but less
    // aggressive optimized tier — why JS wins at XS yet loses at XL on
    // Firefox (Table 5).
    let js = match env.browser {
        Browser::Chrome | Browser::Edge => JsEngineProfile {
            parse_cost_per_byte: 260.0 * jsf,
            bytecode_cost_per_op: 40.0 * jsf,
            interp_multiplier: 26.0 * jsf,
            jit_multiplier: 2.05 * jsf,
            jit_typed_array_multiplier: 1.00 * jsf,
            jit_threshold: 400,
            jit_compile_cost_per_op: 450.0 * jsf,
            alloc_cost: 28.0 * jsf,
            gc: GcParams {
                trigger_bytes: 1 << 20,
                pause_base: 40_000.0 * jsf,
                pause_per_live_byte: 0.06 * jsf,
            },
            baseline_memory_bytes: js_baseline_memory(env),
        },
        Browser::Firefox => JsEngineProfile {
            parse_cost_per_byte: 28.0 * jsf,
            bytecode_cost_per_op: 9.0 * jsf,
            interp_multiplier: 14.0 * jsf,
            jit_multiplier: 2.60 * jsf,
            jit_typed_array_multiplier: 1.35 * jsf,
            jit_threshold: 900,
            jit_compile_cost_per_op: 520.0 * jsf,
            alloc_cost: 24.0 * jsf,
            gc: GcParams {
                trigger_bytes: 1 << 20,
                pause_base: 30_000.0 * jsf,
                pause_per_live_byte: 0.05 * jsf,
            },
            baseline_memory_bytes: js_baseline_memory(env),
        },
    };

    // --- WebAssembly VM ----------------------------------------------------
    // Tier gap tuned to Table 7: default ≈1.09–1.12× faster than basic-only,
    // ≈0.91–0.93× of optimizing-only (tier-up compile happens at runtime).
    let wasm = match env.browser {
        Browser::Chrome | Browser::Edge => WasmEngineProfile {
            decode_cost_per_byte: 6.0 * wf,
            validate_cost_per_byte: 4.0 * wf,
            baseline: TierParams {
                compile_cost_per_unit: 30.0 * wf,
                exec_multiplier: 1.35 * wf,
            },
            optimizing: TierParams {
                compile_cost_per_unit: 320.0 * wf,
                exec_multiplier: 1.00 * wf,
            },
            tier_up_threshold: 2_000,
            instantiate_base: 130_000.0 * wf,
            memory_grow_base: 12_000.0 * wf,
            memory_grow_per_page: 900.0 * wf,
            context_switch: context_switch_cycles(env.browser) * wf,
            baseline_memory_bytes: wasm_baseline_memory(env),
        },
        Browser::Firefox => WasmEngineProfile {
            // Firefox spends more on up-front Wasm compilation (why Wasm
            // loses to JS at XS on Firefox, Table 5) but its optimizing
            // tier is the best on desktop (0.61× Chrome, Table 8 — folded
            // into `wf`).
            decode_cost_per_byte: 7.0 * wf,
            validate_cost_per_byte: 5.0 * wf,
            baseline: TierParams {
                compile_cost_per_unit: 110.0 * wf,
                exec_multiplier: 1.45 * wf,
            },
            optimizing: TierParams {
                compile_cost_per_unit: 420.0 * wf,
                exec_multiplier: 1.00 * wf,
            },
            tier_up_threshold: 1_500,
            instantiate_base: 2_000_000.0 * wf,
            memory_grow_base: 11_000.0 * wf,
            memory_grow_per_page: 850.0 * wf,
            context_switch: context_switch_cycles(env.browser) * wf,
            baseline_memory_bytes: wasm_baseline_memory(env),
        },
    };

    let wasm_grow_slack = match env.browser {
        Browser::Firefox => 1.045, // over-commit on big heaps (Table 6, XL)
        _ => 1.0,
    };

    EnvProfile {
        environment: env,
        cycle_time_ns,
        js,
        wasm,
        wasm_grow_slack,
    }
}

/// Cheerp-vs-Emscripten codegen execution-overhead factors (§4.2.2).
///
/// Applied as an extra multiplier on Wasm instruction costs for
/// compiler-generated modules: Emscripten's mature codegen + libc emit
/// leaner code. The ratio (≈2.70×) matches the paper; the Cheerp value also
/// positions Cheerp-Wasm at rough parity with JIT'd Chrome JS so the
/// Table 3 crossover at M–XL inputs occurs.
pub fn toolchain_exec_overhead(toolchain: crate::Toolchain) -> f64 {
    match toolchain {
        crate::Toolchain::Cheerp => 2.55,
        crate::Toolchain::Emscripten => 0.944,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_desktop_orderings_hold() {
        // Wasm: Firefox < Chrome < Edge.
        let dc = wasm_speed_factor(Environment::new(Browser::Chrome, Platform::Desktop));
        let df = wasm_speed_factor(Environment::new(Browser::Firefox, Platform::Desktop));
        let de = wasm_speed_factor(Environment::new(Browser::Edge, Platform::Desktop));
        assert!(df < dc && dc < de);
        // JS: Chrome < Firefox < Edge.
        let jc = js_speed_factor(Environment::new(Browser::Chrome, Platform::Desktop));
        let jf = js_speed_factor(Environment::new(Browser::Firefox, Platform::Desktop));
        let je = js_speed_factor(Environment::new(Browser::Edge, Platform::Desktop));
        assert!(jc < jf && jf < je);
    }

    #[test]
    fn table8_mobile_orderings_hold() {
        // Mobile Wasm: Edge < Chrome < Firefox.
        let mc = wasm_speed_factor(Environment::new(Browser::Chrome, Platform::Mobile));
        let mf = wasm_speed_factor(Environment::new(Browser::Firefox, Platform::Mobile));
        let me = wasm_speed_factor(Environment::new(Browser::Edge, Platform::Mobile));
        assert!(me < mc && mc < mf);
        // Mobile JS: Firefox < Edge < Chrome.
        let jc = js_speed_factor(Environment::new(Browser::Chrome, Platform::Mobile));
        let jf = js_speed_factor(Environment::new(Browser::Firefox, Platform::Mobile));
        let je = js_speed_factor(Environment::new(Browser::Edge, Platform::Mobile));
        assert!(jf < je && je < jc);
    }

    #[test]
    fn firefox_context_switch_is_013x_of_chrome() {
        let ratio =
            context_switch_cycles(Browser::Firefox) / context_switch_cycles(Browser::Chrome);
        assert!((ratio - 0.13).abs() < 1e-9);
    }

    #[test]
    fn toolchain_overhead_ratio_is_about_2_7() {
        let r = toolchain_exec_overhead(crate::Toolchain::Cheerp)
            / toolchain_exec_overhead(crate::Toolchain::Emscripten);
        assert!((r - 2.70).abs() < 0.05, "got {r}");
    }

    #[test]
    fn firefox_js_baseline_memory_below_chrome_on_desktop() {
        let c = js_baseline_memory(Environment::new(Browser::Chrome, Platform::Desktop));
        let f = js_baseline_memory(Environment::new(Browser::Firefox, Platform::Desktop));
        assert!(f < c);
    }
}
