//! A small deterministic pseudo-random generator for tests and
//! self-benchmarks.
//!
//! The workspace builds offline with no registry dependencies, so the
//! randomized test suites that previously used `rand`/`proptest` drive
//! their generators from this 64-bit linear congruential generator
//! instead. Sequences are fully determined by the seed, so every failure
//! reproduces bit-identically from the printed seed.

/// A 64-bit linear congruential generator (MMIX multiplier), with output
/// tempered by an xorshift so low bits are usable.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        // One scramble round so nearby seeds diverge immediately.
        let mut l = Lcg {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        l.next_u64();
        l
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // MMIX LCG step.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Temper: plain LCGs have weak low bits.
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next i32 over the full range.
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// Next i64 over the full range.
    pub fn next_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize in `[0, n)`. `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform i64 in `[lo, hi)`. Requires `lo < hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// Uniform i32 in `[lo, hi)`. Requires `lo < hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// Bernoulli draw: true with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounds_respected() {
        let mut l = Lcg::new(7);
        for _ in 0..1000 {
            let v = l.range_i32(-5, 9);
            assert!((-5..9).contains(&v));
            let f = l.f64_unit();
            assert!((0.0..1.0).contains(&f));
            assert!(l.below(3) < 3);
        }
    }

    #[test]
    fn roughly_uniform_low_bits() {
        // The tempering step must leave the low bit balanced.
        let mut l = Lcg::new(123);
        let ones: u32 = (0..10_000).map(|_| (l.next_u64() & 1) as u32).sum();
        assert!((4_500..5_500).contains(&ones), "{ones}");
    }
}
