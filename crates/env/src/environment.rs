//! The six deployment settings of §4.5: three browsers × two platforms.

use crate::calibration;
use crate::{JsEngineProfile, WasmEngineProfile};

/// Browser family under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Browser {
    /// Google Chrome (v79 in the paper, both platforms).
    Chrome,
    /// Mozilla Firefox (v71 desktop, v68 mobile).
    Firefox,
    /// Microsoft Edge (v79 desktop, v44 mobile).
    Edge,
}

impl Browser {
    /// All browsers, in the paper's presentation order.
    pub const ALL: [Browser; 3] = [Browser::Chrome, Browser::Firefox, Browser::Edge];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Browser::Chrome => "Chrome",
            Browser::Firefox => "Firefox",
            Browser::Edge => "Edge",
        }
    }

    /// The browser version evaluated by the paper on a platform.
    pub fn version(self, platform: Platform) -> &'static str {
        match (self, platform) {
            (Browser::Chrome, _) => "v79",
            (Browser::Firefox, Platform::Desktop) => "v71",
            (Browser::Firefox, Platform::Mobile) => "v68",
            (Browser::Edge, Platform::Desktop) => "v79",
            (Browser::Edge, Platform::Mobile) => "v44",
        }
    }
}

/// Hardware platform.
///
/// Desktop: Intel Core i7, 16 GB, Ubuntu 18.04. Mobile: Xiaomi Mi 6
/// (8-core ARM64, 6 GB, Android) — §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// The paper's desktop testbed.
    Desktop,
    /// The paper's mobile testbed.
    Mobile,
}

impl Platform {
    /// Both platforms.
    pub const ALL: [Platform; 2] = [Platform::Desktop, Platform::Mobile];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Desktop => "Desktop",
            Platform::Mobile => "Mobile",
        }
    }
}

/// One of the six deployment settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Environment {
    /// Browser family.
    pub browser: Browser,
    /// Hardware platform.
    pub platform: Platform,
}

impl Environment {
    /// Shorthand constructor.
    pub fn new(browser: Browser, platform: Platform) -> Self {
        Environment { browser, platform }
    }

    /// Desktop Chrome — the baseline environment for most experiments.
    pub fn desktop_chrome() -> Self {
        Environment::new(Browser::Chrome, Platform::Desktop)
    }

    /// Desktop Firefox.
    pub fn desktop_firefox() -> Self {
        Environment::new(Browser::Firefox, Platform::Desktop)
    }

    /// All six environments, desktop row first (Figs 12/13 ordering).
    pub fn all_six() -> [Environment; 6] {
        [
            Environment::new(Browser::Chrome, Platform::Desktop),
            Environment::new(Browser::Firefox, Platform::Desktop),
            Environment::new(Browser::Edge, Platform::Desktop),
            Environment::new(Browser::Chrome, Platform::Mobile),
            Environment::new(Browser::Firefox, Platform::Mobile),
            Environment::new(Browser::Edge, Platform::Mobile),
        ]
    }

    /// Display label such as `"Desktop Chrome v79"`.
    pub fn label(&self) -> String {
        format!(
            "{} {} {}",
            self.platform.name(),
            self.browser.name(),
            self.browser.version(self.platform)
        )
    }

    /// Resolve the calibrated engine profiles for this environment.
    pub fn profile(&self) -> EnvProfile {
        calibration::profile_for(*self)
    }
}

/// Fully resolved simulation parameters for one environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvProfile {
    /// The environment this profile describes.
    pub environment: Environment,
    /// Nanoseconds per abstract cycle — the platform speed knob
    /// (mobile cores run the same cycle counts slower).
    pub cycle_time_ns: f64,
    /// JavaScript engine parameters.
    pub js: JsEngineProfile,
    /// WebAssembly VM parameters.
    pub wasm: WasmEngineProfile,
    /// Extra slack factor the engine applies when committing grown linear
    /// memory (Firefox over-commits slightly; visible at XL in Table 6).
    pub wasm_grow_slack: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_environments_are_distinct() {
        let all = Environment::all_six();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn versions_match_paper() {
        assert_eq!(Browser::Firefox.version(Platform::Mobile), "v68");
        assert_eq!(Browser::Edge.version(Platform::Mobile), "v44");
        assert_eq!(Browser::Chrome.version(Platform::Desktop), "v79");
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Environment::desktop_chrome().label(), "Desktop Chrome v79");
    }

    #[test]
    fn every_environment_resolves_a_profile() {
        for env in Environment::all_six() {
            let p = env.profile();
            assert!(p.cycle_time_ns > 0.0);
            assert!(p.wasm_grow_slack >= 1.0);
            assert_eq!(p.environment, env);
        }
    }

    #[test]
    fn mobile_is_slower_than_desktop() {
        for b in Browser::ALL {
            let d = Environment::new(b, Platform::Desktop).profile();
            let m = Environment::new(b, Platform::Mobile).profile();
            assert!(m.cycle_time_ns > d.cycle_time_ns, "{:?}", b);
        }
    }
}
