//! Deterministic virtual time.
//!
//! Every measurement the harness reports is expressed in virtual
//! nanoseconds: the product of instruction-category counts and calibrated
//! per-category costs, plus discrete events (parse, compile, tier-up, GC
//! pauses, `memory.grow`, JS↔Wasm context switches). Using virtual rather
//! than wall-clock time makes the whole study exactly reproducible, which
//! the paper's browser-based methodology (five repetitions, averaging) could
//! only approximate.

/// A span of virtual time, in nanoseconds.
///
/// Stored as `f64` — experiment durations range from sub-microsecond
/// microbenchmarks to the paper's ~560 s FFmpeg run, and all arithmetic on
/// reported values is ratio-based, where `f64` precision is ample.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanos(pub f64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0.0);

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Nanos(ms * 1.0e6)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Nanos(us * 1.0e3)
    }

    /// This duration expressed in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1.0e6
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1.0e9
    }

    /// Ratio of this duration to `other` (`self / other`).
    ///
    /// Returns `f64::NAN` when `other` is zero, mirroring float division;
    /// callers computing table ratios must not feed zero baselines.
    pub fn ratio_to(self, other: Nanos) -> f64 {
        self.0 / other.0
    }
}

impl std::ops::Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl std::ops::Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl std::fmt::Display for Nanos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1.0e9 {
            write!(f, "{:.3}s", self.0 / 1.0e9)
        } else if self.0 >= 1.0e6 {
            write!(f, "{:.3}ms", self.0 / 1.0e6)
        } else if self.0 >= 1.0e3 {
            write!(f, "{:.3}us", self.0 / 1.0e3)
        } else {
            write!(f, "{:.1}ns", self.0)
        }
    }
}

/// A monotonically advancing virtual clock.
///
/// The VMs own one clock per execution and advance it as they retire
/// instructions or hit discrete events. The clock also keeps a breakdown of
/// where time went so experiments (e.g. the §4.5 context-switch
/// microbenchmark) can attribute time to specific activities.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Nanos,
    /// Time spent parsing / decoding source or bytecode.
    pub load_time: Nanos,
    /// Time spent in compilation (bytecode gen, baseline compile, tier-up).
    pub compile_time: Nanos,
    /// Time spent executing program instructions.
    pub exec_time: Nanos,
    /// Time spent in garbage-collection pauses.
    pub gc_time: Nanos,
    /// Time spent growing linear memory.
    pub mem_grow_time: Nanos,
    /// Time spent crossing the JS↔Wasm boundary.
    pub context_switch_time: Nanos,
}

/// Attribution bucket for [`VirtualClock::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeBucket {
    /// Parsing / decoding.
    Load,
    /// Compilation (any tier).
    Compile,
    /// Instruction execution.
    Exec,
    /// Garbage collection pauses.
    Gc,
    /// Linear-memory growth.
    MemGrow,
    /// JS↔Wasm boundary crossing.
    ContextSwitch,
}

impl VirtualClock {
    /// A fresh clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advance the clock by `span`, attributing it to `bucket`.
    pub fn advance(&mut self, span: Nanos, bucket: TimeBucket) {
        debug_assert!(span.0 >= 0.0, "virtual time must be monotonic");
        self.now += span;
        let slot = match bucket {
            TimeBucket::Load => &mut self.load_time,
            TimeBucket::Compile => &mut self.compile_time,
            TimeBucket::Exec => &mut self.exec_time,
            TimeBucket::Gc => &mut self.gc_time,
            TimeBucket::MemGrow => &mut self.mem_grow_time,
            TimeBucket::ContextSwitch => &mut self.context_switch_time,
        };
        *slot += span;
    }

    /// Fold another clock's accumulated time into this one.
    ///
    /// Used when a module execution (child clock) completes inside a page
    /// load (parent clock).
    pub fn absorb(&mut self, child: &VirtualClock) {
        self.now += child.now;
        self.load_time += child.load_time;
        self.compile_time += child.compile_time;
        self.exec_time += child.exec_time;
        self.gc_time += child.gc_time;
        self.mem_grow_time += child.mem_grow_time;
        self.context_switch_time += child.context_switch_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_conversions_round_trip() {
        let n = Nanos::from_millis(2.5);
        assert!((n.as_millis() - 2.5).abs() < 1e-12);
        assert!((n.as_secs() - 0.0025).abs() < 1e-12);
        assert!((Nanos::from_micros(1.0).0 - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos(100.0);
        let b = Nanos(50.0);
        assert_eq!((a + b).0, 150.0);
        assert_eq!((a - b).0, 50.0);
        assert_eq!((a * 2.0).0, 200.0);
        assert_eq!(a.ratio_to(b), 2.0);
    }

    #[test]
    fn clock_attributes_buckets() {
        let mut c = VirtualClock::new();
        c.advance(Nanos(10.0), TimeBucket::Load);
        c.advance(Nanos(20.0), TimeBucket::Exec);
        c.advance(Nanos(5.0), TimeBucket::Gc);
        assert_eq!(c.now().0, 35.0);
        assert_eq!(c.load_time.0, 10.0);
        assert_eq!(c.exec_time.0, 20.0);
        assert_eq!(c.gc_time.0, 5.0);
        assert_eq!(c.compile_time.0, 0.0);
    }

    #[test]
    fn clock_absorb_merges_all_buckets() {
        let mut parent = VirtualClock::new();
        parent.advance(Nanos(1.0), TimeBucket::Load);
        let mut child = VirtualClock::new();
        child.advance(Nanos(2.0), TimeBucket::Exec);
        child.advance(Nanos(3.0), TimeBucket::ContextSwitch);
        parent.absorb(&child);
        assert_eq!(parent.now().0, 6.0);
        assert_eq!(parent.exec_time.0, 2.0);
        assert_eq!(parent.context_switch_time.0, 3.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Nanos(12.0)), "12.0ns");
        assert_eq!(format!("{}", Nanos(1.5e3)), "1.500us");
        assert_eq!(format!("{}", Nanos(2.5e6)), "2.500ms");
        assert_eq!(format!("{}", Nanos(3.0e9)), "3.000s");
    }
}
