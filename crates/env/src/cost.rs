//! Instruction taxonomy shared by both virtual machines.
//!
//! The Wasm interpreter (`wb-wasm-vm`) and the MiniJS engine (`wb-jsvm`)
//! classify every retired operation into an [`OpClass`] and accumulate
//! counts in an [`OpCounts`]. Execution time is then
//! `Σ counts[class] × CostTable[class] × tier multiplier × platform multiplier`.
//!
//! Keeping the taxonomy shared means a matrix multiply compiled to Wasm and
//! the "same" multiply written in MiniJS are charged from the same base
//! table — the *differences* the paper measures come from tier multipliers,
//! engine events (parse/JIT/GC) and codegen quality, not from incomparable
//! accounting.

/// Number of operation classes (length of the [`OpCounts`] array).
pub const OP_CLASS_COUNT: usize = 16;

/// Category of a retired operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// Integer add/sub/bitwise logic.
    IntAlu = 0,
    /// Integer multiplication.
    IntMul = 1,
    /// Integer division / remainder.
    IntDiv = 2,
    /// Floating-point add/sub/neg/abs.
    FloatAlu = 3,
    /// Floating-point multiplication.
    FloatMul = 4,
    /// Floating-point division / sqrt.
    FloatDiv = 5,
    /// Memory / heap / array load.
    Load = 6,
    /// Memory / heap / array store.
    Store = 7,
    /// Conditional or unconditional branch, loop back-edge.
    Branch = 8,
    /// Function call + return overhead.
    Call = 9,
    /// Constant materialization.
    Const = 10,
    /// Local variable / register read or write, stack shuffling.
    Local = 11,
    /// Global variable read or write.
    Global = 12,
    /// Comparison producing a boolean/i32 flag.
    Compare = 13,
    /// Numeric conversion (int↔float, width changes).
    Convert = 14,
    /// Anything else (drops, selects, nops, misc VM work).
    Other = 15,
}

impl OpClass {
    /// All classes, in index order.
    pub const ALL: [OpClass; OP_CLASS_COUNT] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FloatAlu,
        OpClass::FloatMul,
        OpClass::FloatDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Call,
        OpClass::Const,
        OpClass::Local,
        OpClass::Global,
        OpClass::Compare,
        OpClass::Convert,
        OpClass::Other,
    ];

    /// Recover a class from its index (`class as usize`). Lets packed
    /// accounting tables (e.g. a fused interpreter's per-micro-op
    /// constituent lists) store a class in one byte.
    ///
    /// # Panics
    /// Panics if `index >= OP_CLASS_COUNT`.
    #[inline]
    pub fn from_index(index: usize) -> OpClass {
        Self::ALL[index]
    }

    /// Stable short name, used in reports and CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::IntDiv => "int_div",
            OpClass::FloatAlu => "f_alu",
            OpClass::FloatMul => "f_mul",
            OpClass::FloatDiv => "f_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Call => "call",
            OpClass::Const => "const",
            OpClass::Local => "local",
            OpClass::Global => "global",
            OpClass::Compare => "cmp",
            OpClass::Convert => "convert",
            OpClass::Other => "other",
        }
    }
}

/// Per-class retired-operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts(pub [u64; OP_CLASS_COUNT]);

impl OpCounts {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` retired operations of class `class`.
    #[inline]
    pub fn bump(&mut self, class: OpClass, n: u64) {
        self.0[class as usize] += n;
    }

    /// Count for one class.
    #[inline]
    pub fn get(&self, class: OpClass) -> u64 {
        self.0[class as usize]
    }

    /// Total operations across all classes.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &OpCounts) -> OpCounts {
        let mut out = *self;
        for (o, x) in out.0.iter_mut().zip(other.0.iter()) {
            *o += x;
        }
        out
    }

    /// Element-wise difference (`self - other`), saturating at zero.
    pub fn delta_since(&self, other: &OpCounts) -> OpCounts {
        let mut out = OpCounts::new();
        for (i, slot) in out.0.iter_mut().enumerate() {
            *slot = self.0[i].saturating_sub(other.0[i]);
        }
        out
    }
}

/// Cost in abstract machine cycles for each operation class.
///
/// These model an optimized native instruction mix; tier multipliers (a
/// Wasm baseline tier or a JS interpreter runs every class N× slower) and
/// the per-platform cycle time scale them into nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTable(pub [f64; OP_CLASS_COUNT]);

impl CostTable {
    /// The reference table: costs roughly proportional to modern
    /// out-of-order-core latencies (ALU 1, mul 3, div 20, loads 2, …).
    pub fn reference() -> Self {
        let mut t = [1.0; OP_CLASS_COUNT];
        t[OpClass::IntAlu as usize] = 1.0;
        t[OpClass::IntMul as usize] = 3.0;
        t[OpClass::IntDiv as usize] = 20.0;
        t[OpClass::FloatAlu as usize] = 2.0;
        t[OpClass::FloatMul as usize] = 3.0;
        t[OpClass::FloatDiv as usize] = 15.0;
        t[OpClass::Load as usize] = 2.0;
        t[OpClass::Store as usize] = 2.0;
        t[OpClass::Branch as usize] = 1.5;
        t[OpClass::Call as usize] = 6.0;
        t[OpClass::Const as usize] = 0.5;
        t[OpClass::Local as usize] = 0.5;
        t[OpClass::Global as usize] = 2.0;
        t[OpClass::Compare as usize] = 1.0;
        t[OpClass::Convert as usize] = 2.0;
        t[OpClass::Other as usize] = 1.0;
        CostTable(t)
    }

    /// Cost of one operation of `class`, in cycles.
    #[inline]
    pub fn cost(&self, class: OpClass) -> f64 {
        self.0[class as usize]
    }

    /// Total cycles for a counter set, applying a uniform multiplier.
    pub fn cycles(&self, counts: &OpCounts, multiplier: f64) -> f64 {
        let mut acc = 0.0;
        for (i, &n) in counts.0.iter().enumerate() {
            acc += n as f64 * self.0[i];
        }
        acc * multiplier
    }
}

impl Default for CostTable {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_indices_are_dense_and_unique() {
        let mut seen = [false; OP_CLASS_COUNT];
        for c in OpClass::ALL {
            assert!(!seen[c as usize], "duplicate index {}", c as usize);
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn counts_bump_and_total() {
        let mut c = OpCounts::new();
        c.bump(OpClass::IntAlu, 10);
        c.bump(OpClass::FloatMul, 5);
        c.bump(OpClass::IntAlu, 2);
        assert_eq!(c.get(OpClass::IntAlu), 12);
        assert_eq!(c.get(OpClass::FloatMul), 5);
        assert_eq!(c.total(), 17);
    }

    #[test]
    fn counts_merge_and_delta() {
        let mut a = OpCounts::new();
        a.bump(OpClass::Load, 7);
        let mut b = OpCounts::new();
        b.bump(OpClass::Load, 3);
        b.bump(OpClass::Store, 2);
        let m = a.merged(&b);
        assert_eq!(m.get(OpClass::Load), 10);
        assert_eq!(m.get(OpClass::Store), 2);
        let d = m.delta_since(&b);
        assert_eq!(d.get(OpClass::Load), 7);
        assert_eq!(d.get(OpClass::Store), 0);
    }

    #[test]
    fn cycles_weights_by_class() {
        let table = CostTable::reference();
        let mut c = OpCounts::new();
        c.bump(OpClass::IntDiv, 1);
        c.bump(OpClass::IntAlu, 1);
        let cyc = table.cycles(&c, 1.0);
        assert_eq!(cyc, 21.0);
        assert_eq!(table.cycles(&c, 2.0), 42.0);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = OpClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OP_CLASS_COUNT);
    }
}

/// Fine-grained arithmetic profile for the Long.js operation-count study
/// (Table 12 / Appendix D): executed ADD/MUL/DIV/REM/SHIFT/AND/OR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArithCounts {
    /// Additions and subtractions.
    pub add: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Remainders.
    pub rem: u64,
    /// Shifts and rotates.
    pub shift: u64,
    /// Bitwise AND.
    pub and: u64,
    /// Bitwise OR / XOR.
    pub or: u64,
}

impl ArithCounts {
    /// Total arithmetic operations.
    pub fn total(&self) -> u64 {
        self.add + self.mul + self.div + self.rem + self.shift + self.and + self.or
    }

    /// Table 12 column values, in column order.
    pub fn columns(&self) -> [u64; 7] {
        [
            self.add, self.mul, self.div, self.rem, self.shift, self.and, self.or,
        ]
    }

    /// Table 12 column headers.
    pub const HEADERS: [&'static str; 7] = ["ADD", "MUL", "DIV", "REM", "SHIFT", "AND", "OR"];
}
