//! Toolchain profiles: Cheerp vs Emscripten (§2.1, §4.2.2).
//!
//! The paper finds Emscripten-compiled Wasm runs 2.70× faster but uses
//! 6.02× more memory than Cheerp-compiled Wasm, traced to two toolchain
//! differences that we model directly:
//!
//! 1. **Initial memory / growth granularity** — Emscripten instantiates
//!    modules with 16 MiB of linear memory, Cheerp with small heaps grown
//!    in 64 KiB pages, so Cheerp programs pay many `memory.grow` calls;
//! 2. **Codegen/runtime quality** — Emscripten's mature libc and codegen
//!    produce leaner instruction sequences, modelled as a per-instruction
//!    overhead factor on Cheerp output.

/// Which simulated C→Wasm/JS toolchain compiled a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Toolchain {
    /// Cheerp profile: standard-JS target, 64 KiB growth granularity,
    /// 8 MiB default heap / 1 MiB default stack.
    #[default]
    Cheerp,
    /// Emscripten profile: asm.js-style JS target, 16 MiB initial memory.
    Emscripten,
}

/// JavaScript flavour a toolchain emits (§2.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JsTarget {
    /// Standard JavaScript (Cheerp).
    Standard,
    /// asm.js-style typed-array code (Emscripten) — JIT-friendlier.
    AsmJs,
}

/// Concrete parameters of a toolchain profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerProfile {
    /// Which toolchain this profile models.
    pub toolchain: Toolchain,
    /// Linear memory pages (64 KiB each) requested at instantiation.
    pub initial_memory_pages: u32,
    /// Pages added per `memory.grow` request issued by the allocator.
    pub grow_granularity_pages: u32,
    /// Default heap limit in bytes (Cheerp: 8 MiB; §3.2). Programs whose
    /// static data exceeds it must pass `cheerp-linear-heap-size`.
    pub default_heap_bytes: u64,
    /// Default stack limit in bytes (Cheerp: 1 MiB; §3.2).
    pub default_stack_bytes: u64,
    /// Relative instruction-count overhead of this toolchain's codegen
    /// and bundled runtime (1.0 = reference; > 1 = more instructions for
    /// the same kernel).
    pub codegen_overhead: f64,
    /// JavaScript flavour emitted when targeting JS.
    pub js_target: JsTarget,
}

impl CompilerProfile {
    /// The Cheerp profile (the paper's primary toolchain).
    pub fn cheerp() -> Self {
        CompilerProfile {
            toolchain: Toolchain::Cheerp,
            // Cheerp starts with a minimal heap and grows page by page.
            initial_memory_pages: 2,
            grow_granularity_pages: 1,
            default_heap_bytes: 8 << 20,
            default_stack_bytes: 1 << 20,
            codegen_overhead: 1.55,
            js_target: JsTarget::Standard,
        }
    }

    /// The Emscripten profile (§4.2.2's comparison point).
    pub fn emscripten() -> Self {
        CompilerProfile {
            toolchain: Toolchain::Emscripten,
            // "Emscripten uses 16MB as its page size, i.e. the smallest
            // memory that needs to be allocated for instantiating
            // WebAssembly modules" (§4.2.2).
            initial_memory_pages: 256,
            grow_granularity_pages: 256,
            default_heap_bytes: 256 << 20,
            default_stack_bytes: 5 << 20,
            codegen_overhead: 1.0,
            js_target: JsTarget::AsmJs,
        }
    }

    /// Profile for a toolchain tag.
    pub fn of(toolchain: Toolchain) -> Self {
        match toolchain {
            Toolchain::Cheerp => Self::cheerp(),
            Toolchain::Emscripten => Self::emscripten(),
        }
    }

    /// Initial linear memory in bytes.
    pub fn initial_memory_bytes(&self) -> u64 {
        self.initial_memory_pages as u64 * 64 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emscripten_starts_with_16_mib() {
        assert_eq!(
            CompilerProfile::emscripten().initial_memory_bytes(),
            16 << 20
        );
    }

    #[test]
    fn cheerp_grows_in_single_pages() {
        let c = CompilerProfile::cheerp();
        assert_eq!(c.grow_granularity_pages, 1);
        assert!(c.initial_memory_bytes() < (1 << 20));
        assert_eq!(c.default_heap_bytes, 8 << 20);
        assert_eq!(c.default_stack_bytes, 1 << 20);
    }

    #[test]
    fn of_round_trips_toolchain_tag() {
        for t in [Toolchain::Cheerp, Toolchain::Emscripten] {
            assert_eq!(CompilerProfile::of(t).toolchain, t);
        }
    }

    #[test]
    fn cheerp_codegen_is_heavier_than_emscripten() {
        assert!(
            CompilerProfile::cheerp().codegen_overhead
                > CompilerProfile::emscripten().codegen_overhead
        );
    }
}
