//! # wb-env — execution environments and the virtual-time cost model
//!
//! The paper measures WebAssembly and JavaScript inside six real browser
//! environments (Chrome/Firefox/Edge × desktop/mobile). This crate is the
//! simulation substrate that replaces those environments: it defines
//!
//! * [`VirtualClock`] — deterministic virtual time in nanoseconds, advanced
//!   by instruction-category counts multiplied by calibrated costs;
//! * [`OpClass`] / [`OpCounts`] / [`CostTable`] — the shared instruction
//!   taxonomy both virtual machines (`wb-wasm-vm`, `wb-jsvm`) charge against;
//! * [`Browser`], [`Platform`], [`Environment`] — the six deployment settings
//!   of §4.5, each resolving to an [`EnvProfile`] of engine parameters;
//! * [`WasmEngineProfile`] / [`JsEngineProfile`] — tiering, JIT, GC and
//!   memory-accounting parameters per engine;
//! * [`CompilerProfile`] — Cheerp vs Emscripten toolchain differences
//!   (§4.2.2): initial linear memory, growth granularity, codegen efficiency;
//! * [`calibration`] — every tuned constant, in one audited module.
//!
//! All numbers produced on top of this crate are **deterministic**: the same
//! program in the same environment always yields the same virtual duration,
//! so the paper's tables regenerate bit-identically across machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
mod compiler;
mod cost;
mod engine;
mod environment;
mod limits;
pub mod rng;
mod time;

pub use compiler::{CompilerProfile, JsTarget, Toolchain};
pub use cost::{ArithCounts, CostTable, OpClass, OpCounts, OP_CLASS_COUNT};
pub use engine::{GcParams, JitMode, JsEngineProfile, TierParams, TierPolicy, WasmEngineProfile};
pub use environment::{Browser, EnvProfile, Environment, Platform};
pub use limits::{ResourceLimits, DEFAULT_MAX_CALL_DEPTH};
pub use time::{Nanos, TimeBucket, VirtualClock};
