//! Corpus-wide differential test: every one of the 41 benchmarks must
//! compile to all three targets and print identical checksums.

use std::collections::HashMap;
use wb_benchmarks::{all_benchmarks, InputSize};
use wb_jsvm::{JsVm, JsVmConfig};
use wb_minic::Compiler;
use wb_wasm_vm::{HostCtx, HostFn, Instance, Value, WasmVmConfig};

fn host_imports(strings: Vec<String>) -> HashMap<String, HostFn> {
    let mut m: HashMap<String, HostFn> = HashMap::new();
    m.insert(
        "env.print_i32".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            ctx.output.push(args[0].as_i32().to_string());
            Ok(None)
        }),
    );
    m.insert(
        "env.print_i64".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            ctx.output.push(args[0].as_i64().to_string());
            Ok(None)
        }),
    );
    m.insert(
        "env.print_f64".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            let v = args[0].as_f64();
            let s = if v == v.trunc() && v.abs() < 1e21 && !v.is_nan() {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            };
            ctx.output.push(s);
            Ok(None)
        }),
    );
    m.insert(
        "env.print_str".into(),
        Box::new(move |ctx: &mut HostCtx, args: &[Value]| {
            let id = args[0].as_i32() as usize;
            ctx.output
                .push(strings.get(id).cloned().unwrap_or_default());
            Ok(None)
        }),
    );
    for (name, f) in [
        ("math.exp", f64::exp as fn(f64) -> f64),
        ("math.log", f64::ln),
        ("math.sin", f64::sin),
        ("math.cos", f64::cos),
        ("math.tan", f64::tan),
        ("math.atan", f64::atan),
    ] {
        m.insert(
            name.into(),
            Box::new(move |_: &mut HostCtx, args: &[Value]| {
                Ok(Some(Value::F64(f(args[0].as_f64()))))
            }),
        );
    }
    m.insert(
        "math.pow".into(),
        Box::new(|_: &mut HostCtx, args: &[Value]| {
            Ok(Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))))
        }),
    );
    m
}

#[test]
fn all_41_benchmarks_agree_across_backends_at_xs() {
    let mut failures = Vec::new();
    for b in all_benchmarks() {
        let mut compiler = Compiler::cheerp().heap_limit(256 << 20);
        for (k, v) in b.defines(InputSize::XS) {
            compiler = compiler.define(&k, v);
        }

        let native = match compiler.compile_native(b.source) {
            Ok(p) => p,
            Err(e) => {
                failures.push(format!("{}: native compile: {e}", b.name));
                continue;
            }
        };
        let nout = match native.run("bench_main", &[]) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{}: native run: {e}", b.name));
                continue;
            }
        };

        let wasm = match compiler.compile_wasm(b.source) {
            Ok(w) => w,
            Err(e) => {
                failures.push(format!("{}: wasm compile: {e}", b.name));
                continue;
            }
        };
        if let Err(e) = wb_wasm::validate(&wasm.module) {
            failures.push(format!("{}: wasm validation: {e}", b.name));
            continue;
        }
        let mut inst = match Instance::from_module(
            wasm.module,
            WasmVmConfig::reference(),
            host_imports(wasm.strings),
        ) {
            Ok(i) => i,
            Err(e) => {
                failures.push(format!("{}: instantiate: {e}", b.name));
                continue;
            }
        };
        if let Err(e) = inst.invoke("bench_main", &[]) {
            failures.push(format!("{}: wasm run: {e}", b.name));
            continue;
        }

        let js = match compiler.compile_js(b.source) {
            Ok(j) => j,
            Err(e) => {
                failures.push(format!("{}: js compile: {e}", b.name));
                continue;
            }
        };
        let mut vm = JsVm::new(JsVmConfig::reference());
        if let Err(e) = vm.load(&js.source) {
            failures.push(format!("{}: js load: {e}", b.name));
            continue;
        }
        if let Err(e) = vm.call("bench_main", &[]) {
            failures.push(format!("{}: js run: {e}", b.name));
            continue;
        }

        if nout.output != inst.output {
            failures.push(format!(
                "{}: native {:?} != wasm {:?}",
                b.name, nout.output, inst.output
            ));
        }
        if nout.output != vm.output {
            failures.push(format!(
                "{}: native {:?} != js {:?}",
                b.name, nout.output, vm.output
            ));
        }
        if nout.output.is_empty() {
            failures.push(format!("{}: no output", b.name));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn medium_size_agrees_for_representative_benchmarks() {
    // One per category, at M, at O2 and Oz.
    for name in [
        "gemm",
        "jacobi-2d",
        "durbin",
        "floyd-warshall",
        "AES",
        "DFADD",
        "SHA",
    ] {
        let b = wb_benchmarks::suite::find(name).unwrap();
        for level in [wb_minic::OptLevel::O2, wb_minic::OptLevel::Oz] {
            let mut compiler = Compiler::cheerp().opt_level(level).heap_limit(256 << 20);
            for (k, v) in b.defines(InputSize::M) {
                compiler = compiler.define(&k, v);
            }
            let nout = compiler
                .compile_native(b.source)
                .unwrap()
                .run("bench_main", &[])
                .unwrap();
            let wasm = compiler.compile_wasm(b.source).unwrap();
            let mut inst = Instance::from_module(
                wasm.module,
                WasmVmConfig::reference(),
                host_imports(wasm.strings),
            )
            .unwrap();
            inst.invoke("bench_main", &[]).unwrap();
            assert_eq!(nout.output, inst.output, "{name} at {level:?}");

            let js = compiler.compile_js(b.source).unwrap();
            let mut vm = JsVm::new(JsVmConfig::reference());
            vm.load(&js.source).unwrap();
            vm.call("bench_main", &[]).unwrap();
            assert_eq!(nout.output, vm.output, "{name} at {level:?}");
        }
    }
}
