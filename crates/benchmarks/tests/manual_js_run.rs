//! The manually-written JS programs must load and run in the MiniJS engine.

use wb_benchmarks::manual_js::all_manual;
use wb_jsvm::{JsVm, JsVmConfig};

#[test]
fn every_manual_benchmark_runs_and_prints() {
    for m in all_manual() {
        let mut vm = JsVm::new(JsVmConfig::reference());
        vm.load(&m.full_source())
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", m.name));
        vm.call("bench_main", &[])
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", m.name));
        assert_eq!(vm.output.len(), 1, "{} prints one checksum", m.name);
    }
}

#[test]
fn variants_of_the_same_benchmark_agree() {
    // The two heat-3d variants compute the same stencil.
    let all = all_manual();
    let run = |name: &str| {
        let m = all.iter().find(|m| m.name == name).unwrap();
        let mut vm = JsVm::new(JsVmConfig::reference());
        vm.load(&m.full_source()).unwrap();
        vm.call("bench_main", &[]).unwrap();
        vm.output.clone()
    };
    assert_eq!(run("Heat-3d (W3C)"), run("Heat-3d (math.js)"));
    // The two SHA variants hash the same message with SHA-256 but report
    // different checksum foldings, so only check they both produce output.
    assert!(!run("SHA (W3C)").is_empty());
    assert!(!run("SHA (jsSHA)").is_empty());
}
