/* FFmpeg-style stream transcode: per-chunk table-lookup "decode" followed
   by delta "encode". STREAMLEN bytes starting at pseudo-stream offset
   SEED0 (so each worker stripe is deterministic and disjoint). */
unsigned char inbuf[CHUNK];
unsigned char outbuf[CHUNK];
int quant_table[256];

unsigned int stream_state;

unsigned int stream_next() {
  stream_state = stream_state * 1664525u + 1013904223u;
  return stream_state >> 24;
}

void build_tables() {
  for (int i = 0; i < 256; i++) {
    int q = (i * 7 + (i >> 3)) % 256;
    quant_table[i] = q;
  }
}

int transcode_chunk(int len) {
  int prev = 0;
  int acc = 0;
  for (int i = 0; i < len; i++) {
    /* "decode": dequantize + clamp */
    int v = quant_table[inbuf[i]];
    v = v * 2 - 128;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    /* "encode": delta + fold */
    int d = v - prev;
    prev = v;
    outbuf[i] = (unsigned char)(d & 255);
    acc = (acc * 31 + outbuf[i]) & 16777215;
  }
  return acc;
}

void bench_main() {
  build_tables();
  stream_state = (unsigned int)SEED0;
  int chunks = STREAMLEN / CHUNK;
  int chk = 0;
  for (int c = 0; c < chunks; c++) {
    for (int i = 0; i < CHUNK; i++)
      inbuf[i] = (unsigned char)stream_next();
    chk = (chk ^ transcode_chunk(CHUNK)) & 16777215;
  }
  print_int(chk);
}
