/* Hyphenopoly-style Liang pattern hyphenation over generated pseudo-text.
   LANG selects the pattern table seed (0 = en-us, 1 = fr). */
char text[TEXTLEN];
char out[TEXTLEN * 2];
int scores[64];
int pattern_table[1024];

unsigned int rng_state;

unsigned int next_rand() {
  rng_state = rng_state * 1103515245u + 12345u;
  return rng_state >> 16;
}

void gen_text() {
  rng_state = 20210704u + (unsigned int)LANG * 977u;
  int i = 0;
  while (i < TEXTLEN) {
    int wordlen = 3 + (int)(next_rand() % 9u);
    for (int k = 0; k < wordlen && i < TEXTLEN; k++) {
      text[i] = (char)(97 + (int)(next_rand() % 26u));
      i = i + 1;
    }
    if (i < TEXTLEN) {
      text[i] = 32;
      i = i + 1;
    }
  }
}

void gen_patterns() {
  rng_state = 777u + (unsigned int)LANG * 131071u;
  for (int i = 0; i < 1024; i++)
    pattern_table[i] = (int)(next_rand() % 10u);
}

int pat_hash(int c1, int c2, int c3) {
  return ((c1 * 31 + c2) * 31 + c3) % 1024;
}

void bench_main() {
  gen_text();
  gen_patterns();
  int hyphens = 0;
  int oi = 0;
  int wstart = 0;
  for (int i = 0; i <= TEXTLEN; i++) {
    int ch;
    if (i < TEXTLEN) ch = text[i]; else ch = 32;
    if (ch == 32) {
      int wlen = i - wstart;
      if (wlen > 4 && wlen < 64) {
        /* Score every interior position with Liang-style max-of-patterns. */
        for (int p = 0; p < wlen; p++) scores[p] = 0;
        for (int p = 1; p < wlen - 1; p++) {
          int h1 = pat_hash(text[wstart + p - 1], text[wstart + p], text[wstart + p + 1]);
          int s = pattern_table[h1];
          if (p >= 2) {
            int h2 = pat_hash(text[wstart + p - 2], text[wstart + p - 1], text[wstart + p]);
            if (pattern_table[h2] > s) s = pattern_table[h2];
          }
          scores[p] = s;
        }
        /* Emit the word with soft hyphens where the score is odd. */
        for (int p = 0; p < wlen; p++) {
          out[oi] = text[wstart + p];
          oi = oi + 1;
          if (p >= 2 && p < wlen - 2 && (scores[p] % 2) == 1) {
            out[oi] = 45;
            oi = oi + 1;
            hyphens = hyphens + 1;
          }
        }
      } else {
        for (int p = 0; p < wlen; p++) {
          out[oi] = text[wstart + p];
          oi = oi + 1;
        }
      }
      out[oi] = 32;
      oi = oi + 1;
      wstart = i + 1;
    }
  }
  print_int(hyphens);
  /* Checksum over the assembled output (the I/O-ish part). */
  int chk = 0;
  for (int i = 0; i < oi; i++)
    chk = (chk * 31 + out[i]) & 16777215;
  print_int(chk);
}
