/* DFMUL: IEEE-754 double multiplication in integer soft-float. */
unsigned long inputs[ITERS];

unsigned long mul_pack(unsigned long sign, unsigned long exp, unsigned long frac) {
  return (sign << 63) | (exp << 52) | frac;
}

/* 64x64 -> high 64 bits, via 32-bit halves. */
unsigned long mulhi(unsigned long a, unsigned long b) {
  unsigned long a_lo = a & 0xffffffff;
  unsigned long a_hi = a >> 32;
  unsigned long b_lo = b & 0xffffffff;
  unsigned long b_hi = b >> 32;
  unsigned long p0 = a_lo * b_lo;
  unsigned long p1 = a_lo * b_hi;
  unsigned long p2 = a_hi * b_lo;
  unsigned long p3 = a_hi * b_hi;
  unsigned long mid = (p0 >> 32) + (p1 & 0xffffffff) + (p2 & 0xffffffff);
  return p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
}

unsigned long f64_mul(unsigned long a, unsigned long b) {
  unsigned long sign = (a >> 63) ^ (b >> 63);
  long exp_a = (long)((a >> 52) & 0x7ff);
  long exp_b = (long)((b >> 52) & 0x7ff);
  unsigned long frac_a = a & 0xfffffffffffff;
  unsigned long frac_b = b & 0xfffffffffffff;
  if (exp_a == 0x7ff || exp_b == 0x7ff) return mul_pack(sign, 0x7ff, 0);
  if ((exp_a == 0 && frac_a == 0) || (exp_b == 0 && frac_b == 0))
    return mul_pack(sign, 0, 0);
  frac_a = frac_a | 0x10000000000000;
  frac_b = frac_b | 0x10000000000000;
  long exp = exp_a + exp_b - 1023;
  /* (frac_a * frac_b) >> 52, via the high product. */
  unsigned long hi = mulhi(frac_a << 5, frac_b << 6);
  unsigned long frac = hi >> 1;
  if (frac >= 0x20000000000000) { frac = frac >> 1; exp = exp + 1; }
  if (exp <= 0) return mul_pack(sign, 0, 0);
  if (exp >= 0x7ff) return mul_pack(sign, 0x7ff, 0);
  return mul_pack(sign, (unsigned long)exp, frac & 0xfffffffffffff);
}

void bench_main() {
  unsigned long x = 0x4000000000000000;  /* 2.0 */
  for (int i = 0; i < ITERS; i++) {
    x = x * 2862933555777941757 + 3037000493;
    inputs[i] = mul_pack((x >> 9) & 1, 900 + (x >> 57), x & 0xfffffffffffff);
  }
  unsigned long acc = 0x3ff0000000000000;
  unsigned long chk = 0;
  for (int i = 0; i < ITERS; i++) {
    acc = f64_mul(acc, inputs[i]);
    chk = chk ^ acc;
    if ((acc >> 52) == 0 || ((acc >> 52) & 0x7ff) == 0x7ff)
      acc = 0x3ff0000000000000;
  }
  print_long((long)(chk >> 4));
}
