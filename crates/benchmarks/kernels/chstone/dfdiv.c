/* DFDIV: IEEE-754 double division in integer soft-float (shift-subtract). */
unsigned long divs_a[ITERS];
unsigned long divs_b[ITERS];

unsigned long div_pack(unsigned long sign, unsigned long exp, unsigned long frac) {
  return (sign << 63) | (exp << 52) | frac;
}

unsigned long f64_div(unsigned long a, unsigned long b) {
  unsigned long sign = (a >> 63) ^ (b >> 63);
  long exp_a = (long)((a >> 52) & 0x7ff);
  long exp_b = (long)((b >> 52) & 0x7ff);
  unsigned long frac_a = a & 0xfffffffffffff;
  unsigned long frac_b = b & 0xfffffffffffff;
  if (exp_b == 0 && frac_b == 0) return div_pack(sign, 0x7ff, 0); /* inf */
  if (exp_a == 0 && frac_a == 0) return div_pack(sign, 0, 0);
  if (exp_a == 0x7ff || exp_b == 0x7ff) return div_pack(sign, 0x7ff, 0);
  frac_a = frac_a | 0x10000000000000;
  frac_b = frac_b | 0x10000000000000;
  long exp = exp_a - exp_b + 1023;
  /* 55-bit shift-subtract long division. */
  unsigned long quo = 0;
  unsigned long rem = frac_a;
  for (int i = 0; i < 55; i++) {
    quo = quo << 1;
    if (rem >= frac_b) { rem = rem - frac_b; quo = quo | 1; }
    rem = rem << 1;
  }
  /* quotient has 55 fraction bits beyond the leading one position. */
  while (quo >= 0x40000000000000) { quo = quo >> 1; exp = exp + 1; }
  while (quo != 0 && quo < 0x20000000000000) { quo = quo << 1; exp = exp - 1; }
  quo = quo >> 1;
  if (exp <= 0) return div_pack(sign, 0, 0);
  if (exp >= 0x7ff) return div_pack(sign, 0x7ff, 0);
  return div_pack(sign, (unsigned long)exp, quo & 0xfffffffffffff);
}

void bench_main() {
  unsigned long x = 0x4008000000000000;  /* 3.0 */
  for (int i = 0; i < ITERS; i++) {
    x = x * 6364136223846793005 + 1442695040888963407;
    divs_a[i] = div_pack((x >> 3) & 1, 950 + (x >> 58), x & 0xfffffffffffff);
    x = x * 6364136223846793005 + 1442695040888963407;
    divs_b[i] = div_pack((x >> 5) & 1, 990 + (x >> 59), x & 0xfffffffffffff);
  }
  unsigned long chk = 0;
  for (int i = 0; i < ITERS; i++) {
    unsigned long r = f64_div(divs_a[i], divs_b[i]);
    chk = (chk << 3) ^ (chk >> 61) ^ r;
  }
  print_long((long)(chk >> 2));
}
