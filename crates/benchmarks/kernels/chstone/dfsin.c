/* DFSIN: sine via Taylor series built on integer soft-float add/mul/div
   (the CHStone structure: dfsin composes dfadd/dfmul/dfdiv). */
unsigned long angles[ITERS];

unsigned long sf_pack(unsigned long sign, unsigned long exp, unsigned long frac) {
  return (sign << 63) | (exp << 52) | frac;
}

unsigned long sf_add(unsigned long a, unsigned long b) {
  unsigned long sign_a = a >> 63;
  unsigned long sign_b = b >> 63;
  long exp_a = (long)((a >> 52) & 0x7ff);
  long exp_b = (long)((b >> 52) & 0x7ff);
  unsigned long frac_a = a & 0xfffffffffffff;
  unsigned long frac_b = b & 0xfffffffffffff;
  if (exp_a == 0x7ff) return a;
  if (exp_b == 0x7ff) return b;
  if (exp_a == 0 && frac_a == 0) return b;
  if (exp_b == 0 && frac_b == 0) return a;
  frac_a = ((frac_a | 0x10000000000000) << 3);
  frac_b = ((frac_b | 0x10000000000000) << 3);
  if (exp_a < exp_b) {
    long d = exp_b - exp_a;
    if (d > 60) frac_a = 0; else frac_a = frac_a >> (int)d;
    exp_a = exp_b;
  } else if (exp_b < exp_a) {
    long d = exp_a - exp_b;
    if (d > 60) frac_b = 0; else frac_b = frac_b >> (int)d;
  }
  unsigned long sign; unsigned long frac;
  if (sign_a == sign_b) { sign = sign_a; frac = frac_a + frac_b; }
  else if (frac_a >= frac_b) { sign = sign_a; frac = frac_a - frac_b; }
  else { sign = sign_b; frac = frac_b - frac_a; }
  if (frac == 0) return 0;
  while (frac >= 0x40000000000000 << 3) { frac = frac >> 1; exp_a = exp_a + 1; }
  while (frac < ((unsigned long)0x10000000000000 << 3)) { frac = frac << 1; exp_a = exp_a - 1; }
  if (exp_a <= 0) return sf_pack(sign, 0, 0);
  if (exp_a >= 0x7ff) return sf_pack(sign, 0x7ff, 0);
  return sf_pack(sign, (unsigned long)exp_a, (frac >> 3) & 0xfffffffffffff);
}

unsigned long sf_mulhi(unsigned long a, unsigned long b) {
  unsigned long a_lo = a & 0xffffffff;
  unsigned long a_hi = a >> 32;
  unsigned long b_lo = b & 0xffffffff;
  unsigned long b_hi = b >> 32;
  unsigned long p0 = a_lo * b_lo;
  unsigned long p1 = a_lo * b_hi;
  unsigned long p2 = a_hi * b_lo;
  unsigned long p3 = a_hi * b_hi;
  unsigned long mid = (p0 >> 32) + (p1 & 0xffffffff) + (p2 & 0xffffffff);
  return p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
}

unsigned long sf_mul(unsigned long a, unsigned long b) {
  unsigned long sign = (a >> 63) ^ (b >> 63);
  long exp_a = (long)((a >> 52) & 0x7ff);
  long exp_b = (long)((b >> 52) & 0x7ff);
  unsigned long frac_a = a & 0xfffffffffffff;
  unsigned long frac_b = b & 0xfffffffffffff;
  if (exp_a == 0x7ff || exp_b == 0x7ff) return sf_pack(sign, 0x7ff, 0);
  if ((exp_a == 0 && frac_a == 0) || (exp_b == 0 && frac_b == 0))
    return sf_pack(sign, 0, 0);
  frac_a = frac_a | 0x10000000000000;
  frac_b = frac_b | 0x10000000000000;
  long exp = exp_a + exp_b - 1023;
  unsigned long hi = sf_mulhi(frac_a << 5, frac_b << 6);
  unsigned long frac = hi >> 1;
  if (frac >= 0x20000000000000) { frac = frac >> 1; exp = exp + 1; }
  if (exp <= 0) return sf_pack(sign, 0, 0);
  if (exp >= 0x7ff) return sf_pack(sign, 0x7ff, 0);
  return sf_pack(sign, (unsigned long)exp, frac & 0xfffffffffffff);
}

unsigned long sf_div(unsigned long a, unsigned long b) {
  unsigned long sign = (a >> 63) ^ (b >> 63);
  long exp_a = (long)((a >> 52) & 0x7ff);
  long exp_b = (long)((b >> 52) & 0x7ff);
  unsigned long frac_a = a & 0xfffffffffffff;
  unsigned long frac_b = b & 0xfffffffffffff;
  if (exp_b == 0 && frac_b == 0) return sf_pack(sign, 0x7ff, 0);
  if (exp_a == 0 && frac_a == 0) return sf_pack(sign, 0, 0);
  if (exp_a == 0x7ff || exp_b == 0x7ff) return sf_pack(sign, 0x7ff, 0);
  frac_a = frac_a | 0x10000000000000;
  frac_b = frac_b | 0x10000000000000;
  long exp = exp_a - exp_b + 1023;
  unsigned long quo = 0;
  unsigned long rem = frac_a;
  for (int i = 0; i < 55; i++) {
    quo = quo << 1;
    if (rem >= frac_b) { rem = rem - frac_b; quo = quo | 1; }
    rem = rem << 1;
  }
  while (quo >= 0x40000000000000) { quo = quo >> 1; exp = exp + 1; }
  while (quo != 0 && quo < 0x20000000000000) { quo = quo << 1; exp = exp - 1; }
  quo = quo >> 1;
  if (exp <= 0) return sf_pack(sign, 0, 0);
  if (exp >= 0x7ff) return sf_pack(sign, 0x7ff, 0);
  return sf_pack(sign, (unsigned long)exp, quo & 0xfffffffffffff);
}

/* sin(x) ≈ x - x³/3! + x⁵/5! - x⁷/7! + x⁹/9!  (x in [-1, 1]) */
unsigned long sf_sin(unsigned long x) {
  unsigned long x2 = sf_mul(x, x);
  unsigned long term = x;
  unsigned long sum = x;
  unsigned long k = 0x4000000000000000;  /* 2.0 */
  unsigned long one = 0x3ff0000000000000;
  unsigned long two = 0x4000000000000000;
  for (int n = 0; n < 5; n++) {
    /* term *= -x² / ((2n+2)(2n+3)) */
    unsigned long denom = sf_mul(k, sf_add(k, one));
    term = sf_mul(term, sf_div(x2, denom));
    term = term ^ 0x8000000000000000;  /* flip sign */
    sum = sf_add(sum, term);
    k = sf_add(k, two);
  }
  return sum;
}

void bench_main() {
  unsigned long x = 0x3fe0000000000000;  /* 0.5 */
  unsigned long chk = 0;
  for (int i = 0; i < ITERS; i++) {
    angles[i] = x;
    unsigned long s = sf_sin(x);
    chk = (chk << 5) ^ (chk >> 59) ^ s;
    /* Walk the angle deterministically inside [2^-3, 2^-1]-ish. */
    unsigned long frac = (s ^ (s >> 17)) & 0xfffffffffffff;
    x = sf_pack(0, 1020 + (i % 3), frac);
  }
  print_long((long)(chk >> 6));
}
