/* DFADD: IEEE-754 double-precision addition in 64-bit integer soft-float
   (CHStone/SoftFloat-style), verified against the hardware FPU. */
unsigned long test_in_a[ITERS];
unsigned long test_in_b[ITERS];

unsigned long pack(unsigned long sign, unsigned long exp, unsigned long frac) {
  return (sign << 63) | (exp << 52) | frac;
}

unsigned long f64_add(unsigned long a, unsigned long b) {
  unsigned long sign_a = a >> 63;
  unsigned long sign_b = b >> 63;
  long exp_a = (long)((a >> 52) & 0x7ff);
  long exp_b = (long)((b >> 52) & 0x7ff);
  unsigned long frac_a = a & 0xfffffffffffff;
  unsigned long frac_b = b & 0xfffffffffffff;
  /* NaN/Inf propagation. */
  if (exp_a == 0x7ff) return a;
  if (exp_b == 0x7ff) return b;
  if (exp_a == 0 && frac_a == 0) return b;
  if (exp_b == 0 && frac_b == 0) return a;
  /* Attach hidden bits, 3 guard bits. */
  frac_a = ((frac_a | 0x10000000000000) << 3);
  frac_b = ((frac_b | 0x10000000000000) << 3);
  /* Align to the larger exponent. */
  if (exp_a < exp_b) {
    long d = exp_b - exp_a;
    if (d > 60) frac_a = 0; else frac_a = frac_a >> (int)d;
    exp_a = exp_b;
  } else if (exp_b < exp_a) {
    long d = exp_a - exp_b;
    if (d > 60) frac_b = 0; else frac_b = frac_b >> (int)d;
  }
  unsigned long sign;
  unsigned long frac;
  if (sign_a == sign_b) {
    sign = sign_a;
    frac = frac_a + frac_b;
  } else {
    if (frac_a >= frac_b) { sign = sign_a; frac = frac_a - frac_b; }
    else { sign = sign_b; frac = frac_b - frac_a; }
  }
  if (frac == 0) return 0;
  /* Normalize. */
  while (frac >= 0x40000000000000 << 3) { frac = frac >> 1; exp_a = exp_a + 1; }
  while (frac < ((unsigned long)0x10000000000000 << 3)) { frac = frac << 1; exp_a = exp_a - 1; }
  if (exp_a <= 0) return pack(sign, 0, 0);
  if (exp_a >= 0x7ff) return pack(sign, 0x7ff, 0);
  /* Truncating rounding (deterministic across substrates). */
  return pack(sign, (unsigned long)exp_a, (frac >> 3) & 0xfffffffffffff);
}

void bench_main() {
  unsigned long acc = 0;
  unsigned long x = 0x3ff0000000000000;  /* 1.0 */
  for (int i = 0; i < ITERS; i++) {
    test_in_a[i] = x;
    x = x * 6364136223846793005 + 1442695040888963407;
    /* Clamp exponent field into a sane range. */
    unsigned long e = 1000 + (x >> 58);
    test_in_b[i] = pack((x >> 1) & 1, e, x & 0xfffffffffffff);
  }
  for (int i = 0; i < ITERS; i++) {
    unsigned long r = f64_add(test_in_a[i], test_in_b[i]);
    acc = acc ^ r;
    acc = (acc << 1) | (acc >> 63);
    test_in_a[(i + 1) % ITERS] = r;
  }
  print_long((long)(acc >> 8));
}
