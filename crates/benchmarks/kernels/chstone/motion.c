/* MOTION: MPEG-2 motion-vector decoding (CHStone-style bitstream work). */
#define NVECS (ITERS * 16)
unsigned char bitstream[NVECS * 4];
int vectors[NVECS * 2];
int bit_pos;

unsigned int show_bits(int n) {
  unsigned int v = 0;
  for (int i = 0; i < n; i++) {
    int p = bit_pos + i;
    unsigned int byte = bitstream[(p >> 3) % (NVECS * 4)];
    unsigned int bit = (byte >> (7 - (p & 7))) & 1u;
    v = (v << 1) | bit;
  }
  return v;
}

void flush_bits(int n) {
  bit_pos = bit_pos + n;
}

/* MPEG-2 motion-code VLC-like table lookup: count leading zeros then read
   the magnitude. */
int get_motion_code() {
  if (show_bits(1) == 1u) {
    flush_bits(1);
    return 0;
  }
  int zeros = 0;
  while (show_bits(1) == 0u && zeros < 10) {
    flush_bits(1);
    zeros = zeros + 1;
  }
  flush_bits(1);
  unsigned int mag = show_bits(2);
  flush_bits(2);
  int code = zeros * 4 + (int)mag + 1;
  if (show_bits(1) == 1u) code = -code;
  flush_bits(1);
  return code;
}

int decode_mv(int pred, int r_size, int code) {
  int lim = 16 << r_size;
  int vec = pred + code;
  if (vec >= lim) vec = vec - 2 * lim;
  else if (vec < -lim) vec = vec + 2 * lim;
  return vec;
}

void bench_main() {
  unsigned int seed = 123456789u;
  for (int i = 0; i < NVECS * 4; i++) {
    seed = seed * 1103515245u + 12345u;
    bitstream[i] = (unsigned char)(seed >> 16);
  }
  bit_pos = 0;
  int pred_x = 0;
  int pred_y = 0;
  for (int i = 0; i < NVECS; i++) {
    int cx = get_motion_code();
    int cy = get_motion_code();
    pred_x = decode_mv(pred_x, 2, cx);
    pred_y = decode_mv(pred_y, 1, cy);
    vectors[i * 2] = pred_x;
    vectors[i * 2 + 1] = pred_y;
  }
  int s = 0;
  for (int i = 0; i < NVECS * 2; i++) s = s * 5 + vectors[i];
  print_int(s);
}
