/* BLOWFISH: Feistel cipher (CHStone-style; P/S boxes generated
   deterministically instead of shipping the 4 KB hex tables). */
unsigned int P[18];
unsigned int S[4][256];
unsigned int gen;

unsigned int next_u32() {
  gen = gen ^ (gen << 13);
  gen = gen ^ (gen >> 17);
  gen = gen ^ (gen << 5);
  return gen;
}

unsigned int F(unsigned int x) {
  unsigned int a = (x >> 24) & 255u;
  unsigned int b = (x >> 16) & 255u;
  unsigned int c = (x >> 8) & 255u;
  unsigned int d = x & 255u;
  return ((S[0][a] + S[1][b]) ^ S[2][c]) + S[3][d];
}

unsigned int enc_l;
unsigned int enc_r;

void encrypt_pair() {
  unsigned int l = enc_l;
  unsigned int r = enc_r;
  for (int i = 0; i < 16; i++) {
    l = l ^ P[i];
    r = F(l) ^ r;
    unsigned int t = l; l = r; r = t;
  }
  unsigned int t = l; l = r; r = t;
  r = r ^ P[16];
  l = l ^ P[17];
  enc_l = l;
  enc_r = r;
}

void init_boxes() {
  gen = 2463534242u;
  for (int i = 0; i < 18; i++) P[i] = next_u32();
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 256; j++)
      S[i][j] = next_u32();
  /* Key schedule: re-encrypt zero block through the boxes (Blowfish's
     self-referential setup). */
  enc_l = 0; enc_r = 0;
  for (int i = 0; i < 18; i += 2) {
    encrypt_pair();
    P[i] = enc_l;
    P[i + 1] = enc_r;
  }
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 256; j += 2) {
      encrypt_pair();
      S[i][j] = enc_l;
      S[i][j + 1] = enc_r;
    }
}

void bench_main() {
  init_boxes();
  unsigned int acc = 0;
  enc_l = 0x01234567u;
  enc_r = 0x89abcdefu;
  for (int i = 0; i < ITERS * 8; i++) {
    encrypt_pair();
    acc = acc ^ enc_l ^ (enc_r >> 3);
    enc_l = enc_l + 0x9e3779b9u;
  }
  print_int((int)(acc & 0x7fffffffu));
}
