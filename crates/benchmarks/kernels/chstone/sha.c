/* SHA: SHA-1 secure hash over a generated message (CHStone-style; the
   message length scales with the dataset, like CHStone's in_data). */
#define MSGLEN (ITERS * 64)
unsigned char message[MSGLEN];
unsigned int H[5];
unsigned int W[80];

unsigned int rotl(unsigned int x, int n) {
  return (x << n) | (x >> (32 - n));
}

void sha_block(int base) {
  for (int t = 0; t < 16; t++) {
    W[t] = ((unsigned int)message[base + t * 4] << 24)
         | ((unsigned int)message[base + t * 4 + 1] << 16)
         | ((unsigned int)message[base + t * 4 + 2] << 8)
         | (unsigned int)message[base + t * 4 + 3];
  }
  for (int t = 16; t < 80; t++)
    W[t] = rotl(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1);
  unsigned int a = H[0];
  unsigned int b = H[1];
  unsigned int c = H[2];
  unsigned int d = H[3];
  unsigned int e = H[4];
  for (int t = 0; t < 80; t++) {
    unsigned int f;
    unsigned int k;
    if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5a827999u; }
    else if (t < 40) { f = b ^ c ^ d; k = 0x6ed9eba1u; }
    else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8f1bbcdcu; }
    else { f = b ^ c ^ d; k = 0xca62c1d6u; }
    unsigned int temp = rotl(a, 5) + f + e + W[t] + k;
    e = d; d = c; c = rotl(b, 30); b = a; a = temp;
  }
  H[0] = H[0] + a;
  H[1] = H[1] + b;
  H[2] = H[2] + c;
  H[3] = H[3] + d;
  H[4] = H[4] + e;
}

void bench_main() {
  unsigned int seed = 42u;
  for (int i = 0; i < MSGLEN; i++) {
    seed = seed * 69069u + 1u;
    message[i] = (unsigned char)(seed >> 24);
  }
  H[0] = 0x67452301u; H[1] = 0xefcdab89u; H[2] = 0x98badcfeu;
  H[3] = 0x10325476u; H[4] = 0xc3d2e1f0u;
  for (int base = 0; base + 64 <= MSGLEN; base += 64)
    sha_block(base);
  print_int((int)(H[0] ^ H[1] ^ H[2] ^ H[3] ^ H[4]));
}
