/* AES-128 encryption (CHStone-style), ITERS blocks in CBC-like chain. */
unsigned char sbox[256];
unsigned char key[16];
unsigned char state[16];
unsigned char roundkeys[176];

unsigned int gen_state;

unsigned int lcg() {
  gen_state = gen_state * 1103515245u + 12345u;
  return (gen_state >> 8) & 255u;
}

unsigned int xtime(unsigned int x) {
  unsigned int r = x << 1;
  if (x & 0x80u) r = r ^ 0x1bu;
  return r & 0xffu;
}

unsigned int gmul(unsigned int a, unsigned int b) {
  unsigned int p = 0;
  for (int i = 0; i < 8; i++) {
    if (b & 1u) p = p ^ a;
    a = xtime(a);
    b = b >> 1;
  }
  return p & 0xffu;
}

/* Build the real AES S-box: multiplicative inverse in GF(2^8) + affine map. */
void build_sbox() {
  for (int i = 0; i < 256; i++) {
    unsigned int inv = 0;
    if (i != 0) {
      for (int c = 1; c < 256; c++) {
        if (gmul((unsigned int)i, (unsigned int)c) == 1u) { inv = (unsigned int)c; break; }
      }
    }
    unsigned int x = inv;
    unsigned int y = x;
    for (int k = 0; k < 4; k++) {
      y = ((y << 1) | (y >> 7)) & 0xffu;
      x = x ^ y;
    }
    sbox[i] = (unsigned char)(x ^ 0x63u);
  }
}

void key_expansion() {
  const int rcon_init = 1;
  int rcon = rcon_init;
  for (int i = 0; i < 16; i++) roundkeys[i] = key[i];
  for (int i = 16; i < 176; i += 4) {
    unsigned int t0 = roundkeys[i - 4];
    unsigned int t1 = roundkeys[i - 3];
    unsigned int t2 = roundkeys[i - 2];
    unsigned int t3 = roundkeys[i - 1];
    if (i % 16 == 0) {
      unsigned int tmp = t0;
      t0 = sbox[t1] ^ (unsigned int)rcon;
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
      rcon = (int)xtime((unsigned int)rcon);
    }
    roundkeys[i] = (unsigned char)(roundkeys[i - 16] ^ t0);
    roundkeys[i + 1] = (unsigned char)(roundkeys[i - 15] ^ t1);
    roundkeys[i + 2] = (unsigned char)(roundkeys[i - 14] ^ t2);
    roundkeys[i + 3] = (unsigned char)(roundkeys[i - 13] ^ t3);
  }
}

void add_round_key(int round) {
  for (int i = 0; i < 16; i++)
    state[i] = state[i] ^ roundkeys[round * 16 + i];
}

void sub_bytes() {
  for (int i = 0; i < 16; i++)
    state[i] = sbox[state[i]];
}

void shift_rows() {
  unsigned int t = state[1];
  state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = (unsigned char)t;
  t = state[2]; state[2] = state[10]; state[10] = (unsigned char)t;
  t = state[6]; state[6] = state[14]; state[14] = (unsigned char)t;
  t = state[3]; state[3] = state[15]; state[15] = state[11]; state[11] = state[7]; state[7] = (unsigned char)t;
}

void mix_columns() {
  for (int c = 0; c < 4; c++) {
    unsigned int a0 = state[4 * c];
    unsigned int a1 = state[4 * c + 1];
    unsigned int a2 = state[4 * c + 2];
    unsigned int a3 = state[4 * c + 3];
    state[4 * c] = (unsigned char)(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    state[4 * c + 1] = (unsigned char)(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    state[4 * c + 2] = (unsigned char)(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    state[4 * c + 3] = (unsigned char)((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void encrypt_block() {
  add_round_key(0);
  for (int round = 1; round < 10; round++) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

void bench_main() {
  gen_state = 2463534242u;
  build_sbox();
  for (int i = 0; i < 16; i++) key[i] = (unsigned char)lcg();
  key_expansion();
  for (int i = 0; i < 16; i++) state[i] = (unsigned char)lcg();
  unsigned int acc = 0;
  for (int b = 0; b < ITERS; b++) {
    encrypt_block();
    for (int i = 0; i < 16; i++) {
      acc = (acc * 31u + state[i]) & 0xffffffu;
      /* CBC-like: next plaintext mixes the ciphertext. */
      state[i] = (unsigned char)(state[i] ^ (unsigned char)lcg());
    }
  }
  print_int((int)acc);
}
