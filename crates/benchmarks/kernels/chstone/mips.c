/* MIPS: simplified MIPS R3000 interpreter running a sort program
   (CHStone-style). */
#define MEMSIZE 64
int reg[32];
int mem[MEMSIZE];
unsigned int imem[64];
int hi_lo;

/* Encoded program: bubble-sorts mem[0..7]. Encoding:
   op(4) | rs(5) | rt(5) | rd(5) | imm(13, signed) packed manually. */
void load_program() {
  /* We hand-assemble with a tiny macro-free encoding:
     0 halt | 1 addi rt,rs,imm | 2 add rd,rs,rt | 3 lw rt,imm(rs)
     4 sw rt,imm(rs) | 5 blt rs,rt,imm | 6 bge rs,rt,imm | 7 j imm
     8 slt rd,rs,rt | 9 sub rd,rs,rt */
  int pc = 0;
  /* r1 = 0 (i) */
  imem[pc] = (1u << 28) | (0u << 23) | (1u << 18); pc++;
  /* outer: r2 = 0 (j) */
  imem[pc] = (1u << 28) | (0u << 23) | (2u << 18); pc++;
  /* inner: r3 = mem[r2], r4 = mem[r2+1] */
  imem[pc] = (3u << 28) | (2u << 23) | (3u << 18) | 0u; pc++;
  imem[pc] = (3u << 28) | (2u << 23) | (4u << 18) | 1u; pc++;
  /* if r3 < r4 skip swap: blt r3, r4, +3 */
  imem[pc] = (5u << 28) | (3u << 23) | (4u << 18) | 3u; pc++;
  /* swap: sw r4,0(r2); sw r3,1(r2) */
  imem[pc] = (4u << 28) | (2u << 23) | (4u << 18) | 0u; pc++;
  imem[pc] = (4u << 28) | (2u << 23) | (3u << 18) | 1u; pc++;
  /* j++: addi r2, r2, 1 */
  imem[pc] = (1u << 28) | (2u << 23) | (2u << 18) | 1u; pc++;
  /* if r2 < 7 goto inner (pc 2): blt r2, r5, -7  (r5 = 7) */
  imem[pc] = (5u << 28) | (2u << 23) | (5u << 18) | (8191u & (unsigned int)(-7)); pc++;
  /* i++: addi r1, r1, 1 */
  imem[pc] = (1u << 28) | (1u << 23) | (1u << 18) | 1u; pc++;
  /* if r1 < 7 goto outer (pc 1): blt r1, r5, -9 */
  imem[pc] = (5u << 28) | (1u << 23) | (5u << 18) | (8191u & (unsigned int)(-9)); pc++;
  /* halt */
  imem[pc] = 0u;
}

void run_vm() {
  int pc = 0;
  int running = 1;
  int guard = 0;
  while (running && guard < 100000) {
    guard = guard + 1;
    unsigned int ins = imem[pc];
    unsigned int op = ins >> 28;
    int rs = (int)((ins >> 23) & 31u);
    int rt = (int)((ins >> 18) & 31u);
    int rd = (int)((ins >> 13) & 31u);
    int imm = (int)(ins & 8191u);
    if (imm >= 4096) imm = imm - 8192; /* sign-extend 13 bits */
    pc = pc + 1;
    switch (op) {
      case 0: running = 0; break;
      case 1: reg[rt] = reg[rs] + imm; break;
      case 2: reg[rd] = reg[rs] + reg[rt]; break;
      case 3: reg[rt] = mem[(reg[rs] + imm) % MEMSIZE]; break;
      case 4: mem[(reg[rs] + imm) % MEMSIZE] = reg[rt]; break;
      case 5: if (reg[rs] < reg[rt]) pc = pc + imm; break;
      case 6: if (reg[rs] >= reg[rt]) pc = pc + imm; break;
      case 7: pc = imm; break;
      case 8: if (reg[rs] < reg[rt]) reg[rd] = 1; else reg[rd] = 0; break;
      case 9: reg[rd] = reg[rs] - reg[rt]; break;
      default: running = 0; break;
    }
  }
  hi_lo = guard;
}

void bench_main() {
  int acc = 0;
  for (int run = 0; run < ITERS; run++) {
    for (int i = 0; i < 32; i++) reg[i] = 0;
    reg[5] = 7;
    for (int i = 0; i < 8; i++) mem[i] = ((i * 97 + run * 31) % 100);
    load_program();
    run_vm();
    for (int i = 0; i < 8; i++) acc = acc * 3 + mem[i];
    acc = acc ^ hi_lo;
  }
  print_int(acc);
}
