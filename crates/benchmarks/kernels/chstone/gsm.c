/* GSM: LPC analysis section of GSM 06.10 full-rate codec (CHStone-style):
   autocorrelation + reflection coefficients via Schur recursion. */
#define SAMPLES (ITERS * 40)
int sop[SAMPLES];
int L_ACF[9];
int r_coef[8];

int saturate_add(int a, int b) {
  int s = a + b;
  if (a > 0 && b > 0 && s < 0) return 2147483647;
  if (a < 0 && b < 0 && s >= 0) return -2147483647 - 1;
  return s;
}

int gsm_abs(int a) {
  if (a < 0) { if (a == -32768) return 32767; return -a; }
  return a;
}

int gsm_div(int num, int denum) {
  /* 15-bit fractional division, num < denum. */
  int div = 0;
  int n = num;
  for (int k = 0; k < 15; k++) {
    div = div << 1;
    n = n << 1;
    if (n >= denum) { n = n - denum; div = div + 1; }
  }
  return div;
}

void autocorrelation() {
  for (int k = 0; k <= 8; k++) {
    L_ACF[k] = 0;
    for (int i = k; i < SAMPLES; i++)
      L_ACF[k] = saturate_add(L_ACF[k], (sop[i] * sop[i - k]) >> 10);
  }
}

int P[9];
int K[9];

void reflection_coefficients() {
  if (L_ACF[0] == 0) {
    for (int i = 0; i < 8; i++) r_coef[i] = 0;
    return;
  }
  for (int k = 0; k <= 8; k++) P[k] = L_ACF[k];
  for (int k = 1; k <= 8; k++) K[k] = L_ACF[k];
  for (int n = 0; n < 8; n++) {
    if (P[0] <= 0) { r_coef[n] = 0; continue; }
    int kn = gsm_div(gsm_abs(P[1]), P[0]);
    if (P[1] > 0) kn = -kn;
    r_coef[n] = kn;
    /* Schur recursion update. */
    for (int m = 0; m <= 7 - n; m++) {
      int t = P[m + 1] + ((kn * K[m + 1]) >> 15);
      K[m + 1] = K[m + 1] + ((kn * P[m + 1]) >> 15);
      P[m] = t;
    }
  }
}

void bench_main() {
  for (int i = 0; i < SAMPLES; i++)
    sop[i] = ((i * 73 + 41) % 1024) - 512;
  autocorrelation();
  reflection_coefficients();
  int s = 0;
  for (int i = 0; i < 8; i++) s = s + r_coef[i] * (i + 1);
  for (int k = 0; k <= 8; k++) s = s ^ (L_ACF[k] >> 8);
  print_int(s);
}
