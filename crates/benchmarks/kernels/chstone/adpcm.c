/* ADPCM: CCITT G.722-style adaptive differential PCM encode/decode
   (CHStone-style, scaled by ITERS). */
#define NSAMPLES (ITERS * 50)
int compressed[NSAMPLES];
int result[NSAMPLES];
int src[NSAMPLES];

int enc_valpred;
int enc_index;
int dec_valpred;
int dec_index;

const int indexTable[16] = {
  -1, -1, -1, -1, 2, 4, 6, 8,
  -1, -1, -1, -1, 2, 4, 6, 8
};

const int stepsizeTable[89] = {
  7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
  19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
  50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
  130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
  337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
  876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
  2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
  5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
  15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
};

int encode_sample(int val) {
  int step = stepsizeTable[enc_index];
  int diff = val - enc_valpred;
  int sign = 0;
  if (diff < 0) { sign = 8; diff = -diff; }
  int delta = 0;
  int vpdiff = step >> 3;
  if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
  step >>= 1;
  if (diff >= step) { delta |= 2; diff -= step; vpdiff += step; }
  step >>= 1;
  if (diff >= step) { delta |= 1; vpdiff += step; }
  if (sign) enc_valpred -= vpdiff;
  else enc_valpred += vpdiff;
  if (enc_valpred > 32767) enc_valpred = 32767;
  else if (enc_valpred < -32768) enc_valpred = -32768;
  delta |= sign;
  enc_index += indexTable[delta];
  if (enc_index < 0) enc_index = 0;
  if (enc_index > 88) enc_index = 88;
  return delta;
}

int decode_sample(int delta) {
  int step = stepsizeTable[dec_index];
  int sign = delta & 8;
  delta = delta & 7;
  int vpdiff = step >> 3;
  if (delta & 4) vpdiff += step;
  if (delta & 2) vpdiff += step >> 1;
  if (delta & 1) vpdiff += step >> 2;
  if (sign) dec_valpred -= vpdiff;
  else dec_valpred += vpdiff;
  if (dec_valpred > 32767) dec_valpred = 32767;
  else if (dec_valpred < -32768) dec_valpred = -32768;
  dec_index += indexTable[delta | sign];
  if (dec_index < 0) dec_index = 0;
  if (dec_index > 88) dec_index = 88;
  return dec_valpred;
}

void adpcm_main() {
  enc_valpred = 0; enc_index = 0;
  dec_valpred = 0; dec_index = 0;
  for (int i = 0; i < NSAMPLES; i++)
    src[i] = ((i * 37 + 11) % 16384) - 8192;
  for (int i = 0; i < NSAMPLES; i++)
    compressed[i] = encode_sample(src[i]);
  for (int i = 0; i < NSAMPLES; i++)
    result[i] = decode_sample(compressed[i]);
}

void bench_main() {
  adpcm_main();
  /* Like the upstream benchmark (Fig 7): `result` is stored but never
     read back — the checksum uses the compressed stream and the decoder
     state, so dead-store elimination legitimately applies to result[]. */
  int s = dec_valpred * 31 + dec_index;
  for (int i = 0; i < NSAMPLES; i++)
    s = s + compressed[i];
  print_int(s);
}
