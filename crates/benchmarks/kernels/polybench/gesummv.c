/* gesummv: y = alpha*A*x + beta*B*x */
double A[N][N];
double B[N][N];
double x[N]; double y[N]; double tmp[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    x[i] = (double)(i % N) / N;
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)((i * j + 2) % N) / N;
    }
  }
}

void kernel_gesummv() {
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}

void bench_main() {
  init_array();
  kernel_gesummv();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + y[i];
  print_double(s);
}
