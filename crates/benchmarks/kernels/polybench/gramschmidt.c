/* gramschmidt: modified Gram-Schmidt QR decomposition */
double A[N][N];
double R[N][N];
double Q[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      A[i][j] = ((double)((i * j) % N) / N) * 100.0 + 10.0;
}

void kernel_gramschmidt() {
  for (int k = 0; k < N; k++) {
    double nrm = 0.0;
    for (int i = 0; i < N; i++)
      nrm += A[i][k] * A[i][k];
    R[k][k] = sqrt(nrm);
    for (int i = 0; i < N; i++)
      Q[i][k] = A[i][k] / R[k][k];
    for (int j = k + 1; j < N; j++) {
      R[k][j] = 0.0;
      for (int i = 0; i < N; i++)
        R[k][j] += Q[i][k] * A[i][j];
      for (int i = 0; i < N; i++)
        A[i][j] = A[i][j] - Q[i][k] * R[k][j];
    }
  }
}

void bench_main() {
  init_array();
  kernel_gramschmidt();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + R[i][j] + Q[i][j];
  print_double(s);
}
