/* doitgen: multi-resolution analysis kernel */
#define NQ N
#define NR N
#define NP N
double A[NR][NQ][NP];
double C4[NP][NP];
double sum[NP];

void init_array() {
  for (int i = 0; i < NR; i++)
    for (int j = 0; j < NQ; j++)
      for (int k = 0; k < NP; k++)
        A[i][j][k] = (double)((i * j + k) % NP) / NP;
  for (int i = 0; i < NP; i++)
    for (int j = 0; j < NP; j++)
      C4[i][j] = (double)(i * j % NP) / NP;
}

void kernel_doitgen() {
  for (int r = 0; r < NR; r++)
    for (int q = 0; q < NQ; q++) {
      for (int p = 0; p < NP; p++) {
        sum[p] = 0.0;
        for (int s = 0; s < NP; s++)
          sum[p] += A[r][q][s] * C4[s][p];
      }
      for (int p = 0; p < NP; p++)
        A[r][q][p] = sum[p];
    }
}

void bench_main() {
  init_array();
  kernel_doitgen();
  double s = 0.0;
  for (int i = 0; i < NR; i++)
    for (int j = 0; j < NQ; j++)
      for (int k = 0; k < NP; k++)
        s = s + A[i][j][k];
  print_double(s);
}
