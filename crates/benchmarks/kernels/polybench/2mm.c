/* 2mm: D = alpha*A*B*C + beta*D */
double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double tmp[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)(i * (j + 1) % N) / N;
      C[i][j] = (double)((i * (j + 3) + 1) % N) / N;
      D[i][j] = (double)(i * (j + 2) % N) / N;
    }
}

void kernel_2mm() {
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      tmp[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      D[i][j] = D[i][j] * beta;
      for (int k = 0; k < N; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}

void bench_main() {
  init_array();
  kernel_2mm();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      s = s + D[i][j];
  print_double(s);
}
