/* gemver: multiple matrix-vector multiplications */
double A[N][N];
double u1[N]; double v1[N]; double u2[N]; double v2[N];
double w[N]; double x[N]; double y[N]; double z[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    u1[i] = (double)i / N;
    u2[i] = (double)((i + 1) % N) / (2 * N);
    v1[i] = (double)((i + 1) % N) / (4 * N);
    v2[i] = (double)((i + 1) % N) / (6 * N);
    y[i] = (double)((i + 1) % N) / (8 * N);
    z[i] = (double)((i + 1) % N) / (9 * N);
    x[i] = 0.0;
    w[i] = 0.0;
    for (int j = 0; j < N; j++)
      A[i][j] = (double)(i * j % N) / N;
  }
}

void kernel_gemver() {
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (int i = 0; i < N; i++)
    x[i] = x[i] + z[i];
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
}

void bench_main() {
  init_array();
  kernel_gemver();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + w[i];
  print_double(s);
}
