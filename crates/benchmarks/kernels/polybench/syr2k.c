/* syr2k: C = alpha*(A*B^T + B*A^T) + beta*C */
double A[N][N];
double B[N][N];
double C[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)((i * j + 2) % N) / N;
      C[i][j] = (double)((i * j + 3) % N) / N;
    }
}

void kernel_syr2k() {
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j <= i; j++)
      C[i][j] = C[i][j] * beta;
    for (int k = 0; k < N; k++)
      for (int j = 0; j <= i; j++)
        C[i][j] = C[i][j] + A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
}

void bench_main() {
  init_array();
  kernel_syr2k();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j <= i; j++) s = s + C[i][j];
  print_double(s);
}
