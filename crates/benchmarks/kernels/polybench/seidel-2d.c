/* seidel-2d: 2-D Gauss-Seidel stencil */
double A[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      A[i][j] = ((double)i * (j + 2) + 2.0) / N;
}

void kernel_seidel2d() {
  for (int t = 0; t <= TSTEPS - 1; t++)
    for (int i = 1; i <= N - 2; i++)
      for (int j = 1; j <= N - 2; j++)
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                 + A[i][j - 1] + A[i][j] + A[i][j + 1]
                 + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
}

void bench_main() {
  init_array();
  kernel_seidel2d();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + A[i][j];
  print_double(s);
}
