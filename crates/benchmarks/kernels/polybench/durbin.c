/* durbin: Yule-Walker / Levinson-Durbin recursion */
double r[N];
double y[N];
double z[N];

void init_array() {
  for (int i = 0; i < N; i++)
    r[i] = (double)(N + 1 - i) / (2 * N);
}

void kernel_durbin() {
  double alpha = 0.0 - r[0];
  double beta = 1.0;
  y[0] = 0.0 - r[0];
  for (int k = 1; k < N; k++) {
    beta = (1.0 - alpha * alpha) * beta;
    double summ = 0.0;
    for (int i = 0; i < k; i++)
      summ += r[k - i - 1] * y[i];
    alpha = 0.0 - (r[k] + summ) / beta;
    for (int i = 0; i < k; i++)
      z[i] = y[i] + alpha * y[k - i - 1];
    for (int i = 0; i < k; i++)
      y[i] = z[i];
    y[k] = alpha;
  }
}

void bench_main() {
  init_array();
  kernel_durbin();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + y[i];
  print_double(s);
}
