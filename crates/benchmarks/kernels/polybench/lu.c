/* lu: LU decomposition without pivoting */
double A[N][N];

void init_array() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % N)) / N + 1.0;
    for (int j = i + 1; j < N; j++)
      A[i][j] = 0.0;
    A[i][i] = A[i][i] + N;
  }
}

void kernel_lu() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[k][j];
      A[i][j] = A[i][j] / A[j][j];
    }
    for (int j = i; j < N; j++)
      for (int k = 0; k < i; k++)
        A[i][j] -= A[i][k] * A[k][j];
  }
}

void bench_main() {
  init_array();
  kernel_lu();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + A[i][j];
  print_double(s);
}
