/* bicg: biconjugate gradient kernel: q = A*p, s = A^T*r */
double A[N][N];
double p[N]; double r[N]; double q[N]; double s[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    p[i] = (double)(i % N) / N;
    r[i] = (double)(i % N) / N;
    for (int j = 0; j < N; j++)
      A[i][j] = (double)(i * (j + 1) % N) / N;
  }
}

void kernel_bicg() {
  for (int i = 0; i < N; i++) s[i] = 0.0;
  for (int i = 0; i < N; i++) {
    q[i] = 0.0;
    for (int j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}

void bench_main() {
  init_array();
  kernel_bicg();
  double acc = 0.0;
  for (int i = 0; i < N; i++) acc = acc + s[i] + q[i];
  print_double(acc);
}
