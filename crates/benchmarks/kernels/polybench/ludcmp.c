/* ludcmp: LU decomposition + forward/backward substitution */
double A[N][N];
double b[N]; double x[N]; double y[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    x[i] = 0.0;
    y[i] = 0.0;
    b[i] = (double)(i + 1) / N / 2.0 + 4.0;
    for (int j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % N)) / N + 1.0;
    for (int j = i + 1; j < N; j++)
      A[i][j] = 0.0;
    A[i][i] = A[i][i] + N;
  }
}

void kernel_ludcmp() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < i; j++) {
      double w = A[i][j];
      for (int k = 0; k < j; k++)
        w -= A[i][k] * A[k][j];
      A[i][j] = w / A[j][j];
    }
    for (int j = i; j < N; j++) {
      double w = A[i][j];
      for (int k = 0; k < i; k++)
        w -= A[i][k] * A[k][j];
      A[i][j] = w;
    }
  }
  for (int i = 0; i < N; i++) {
    double w = b[i];
    for (int j = 0; j < i; j++)
      w -= A[i][j] * y[j];
    y[i] = w;
  }
  for (int i = N - 1; i >= 0; i--) {
    double w = y[i];
    for (int j = i + 1; j < N; j++)
      w -= A[i][j] * x[j];
    x[i] = w / A[i][i];
  }
}

void bench_main() {
  init_array();
  kernel_ludcmp();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + x[i];
  print_double(s);
}
