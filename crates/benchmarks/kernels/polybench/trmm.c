/* trmm: B = alpha*A*B, A lower triangular */
double A[N][N];
double B[N][N];

void init_array() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < i; j++)
      A[i][j] = (double)((i + j) % N) / N;
    A[i][i] = 1.0;
    for (int j = 0; j < N; j++)
      B[i][j] = (double)((N + i - j) % N) / N;
  }
}

void kernel_trmm() {
  double alpha = 1.5;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      for (int k = i + 1; k < N; k++)
        B[i][j] += A[k][i] * B[k][j];
      B[i][j] = alpha * B[i][j];
    }
}

void bench_main() {
  init_array();
  kernel_trmm();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + B[i][j];
  print_double(s);
}
