/* gemm: C = alpha*A*B + beta*C (PolyBenchC 4.2.1) */
#define NI N
#define NJ N
#define NK N
double A[NI][NK];
double B[NK][NJ];
double C[NI][NJ];

void init_array() {
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NK; j++)
      A[i][j] = (double)((i * j + 1) % NI) / NI;
  for (int i = 0; i < NK; i++)
    for (int j = 0; j < NJ; j++)
      B[i][j] = (double)(i * (j + 1) % NJ) / NJ;
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NJ; j++)
      C[i][j] = (double)((i * j + 3) % NJ) / NJ;
}

void kernel_gemm() {
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < NI; i++) {
    for (int j = 0; j < NJ; j++)
      C[i][j] = C[i][j] * beta;
    for (int k = 0; k < NK; k++)
      for (int j = 0; j < NJ; j++)
        C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
  }
}

void bench_main() {
  init_array();
  kernel_gemm();
  double s = 0.0;
  for (int i = 0; i < NI; i++)
    for (int j = 0; j < NJ; j++)
      s = s + C[i][j];
  print_double(s);
}
