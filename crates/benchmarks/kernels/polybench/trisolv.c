/* trisolv: triangular solver Lx = b */
double L[N][N];
double x[N]; double b[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    x[i] = 0.0 - 999.0;
    b[i] = (double)i;
    for (int j = 0; j <= i; j++)
      L[i][j] = (double)(i + N - j + 1) * 2.0 / N;
  }
}

void kernel_trisolv() {
  for (int i = 0; i < N; i++) {
    x[i] = b[i];
    for (int j = 0; j < i; j++)
      x[i] -= L[i][j] * x[j];
    x[i] = x[i] / L[i][i];
  }
}

void bench_main() {
  init_array();
  kernel_trisolv();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + x[i];
  print_double(s);
}
