/* nussinov: RNA secondary-structure prediction (dynamic programming) */
int seq[N];
int table[N][N];

int match(int b1, int b2) {
  if (b1 + b2 == 3) return 1;
  return 0;
}

int max_score(int a, int b) {
  if (a >= b) return a;
  return b;
}

void init_array() {
  for (int i = 0; i < N; i++)
    seq[i] = (i + 1) % 4;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      table[i][j] = 0;
}

void kernel_nussinov() {
  for (int i = N - 1; i >= 0; i--) {
    for (int j = i + 1; j < N; j++) {
      if (j - 1 >= 0)
        table[i][j] = max_score(table[i][j], table[i][j - 1]);
      if (i + 1 < N)
        table[i][j] = max_score(table[i][j], table[i + 1][j]);
      if (j - 1 >= 0 && i + 1 < N) {
        if (i < j - 1)
          table[i][j] = max_score(table[i][j], table[i + 1][j - 1] + match(seq[i], seq[j]));
        else
          table[i][j] = max_score(table[i][j], table[i + 1][j - 1]);
      }
      for (int k = i + 1; k < j; k++)
        table[i][j] = max_score(table[i][j], table[i][k] + table[k + 1][j]);
    }
  }
}

void bench_main() {
  init_array();
  kernel_nussinov();
  print_int(table[0][N - 1]);
  int s = 0;
  for (int i = 0; i < N; i++)
    for (int j = i; j < N; j++) s = s + table[i][j];
  print_int(s);
}
