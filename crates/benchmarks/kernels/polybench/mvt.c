/* mvt: matrix-vector product and transpose */
double A[N][N];
double x1[N]; double x2[N]; double y_1[N]; double y_2[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    x1[i] = (double)(i % N) / N;
    x2[i] = (double)((i + 1) % N) / N;
    y_1[i] = (double)((i + 3) % N) / N;
    y_2[i] = (double)((i + 4) % N) / N;
    for (int j = 0; j < N; j++)
      A[i][j] = (double)(i * j % N) / N;
  }
}

void kernel_mvt() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x1[i] = x1[i] + A[i][j] * y_1[j];
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y_2[j];
}

void bench_main() {
  init_array();
  kernel_mvt();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + x1[i] + x2[i];
  print_double(s);
}
