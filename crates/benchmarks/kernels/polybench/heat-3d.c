/* heat-3d: 3-D heat equation stencil */
double A[N][N][N];
double B[N][N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++) {
        A[i][j][k] = (double)(i + j + (N - k)) * 10.0 / N;
        B[i][j][k] = A[i][j][k];
      }
}

void kernel_heat3d() {
  for (int t = 1; t <= TSTEPS; t++) {
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        for (int k = 1; k < N - 1; k++)
          B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k] + A[i - 1][j][k])
                     + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k] + A[i][j - 1][k])
                     + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k] + A[i][j][k - 1])
                     + A[i][j][k];
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        for (int k = 1; k < N - 1; k++)
          A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k] + B[i - 1][j][k])
                     + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k] + B[i][j - 1][k])
                     + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k] + B[i][j][k - 1])
                     + B[i][j][k];
  }
}

void bench_main() {
  init_array();
  kernel_heat3d();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++) s = s + A[i][j][k];
  print_double(s);
}
