/* atax: y = A^T * (A * x) */
double A[N][N];
double x[N]; double y[N]; double tmp[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    x[i] = 1.0 + (double)i / N;
    for (int j = 0; j < N; j++)
      A[i][j] = (double)((i + j) % N) / (5 * N);
  }
}

void kernel_atax() {
  for (int i = 0; i < N; i++) y[i] = 0.0;
  for (int i = 0; i < N; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < N; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (int j = 0; j < N; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
}

void bench_main() {
  init_array();
  kernel_atax();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + y[i];
  print_double(s);
}
