/* cholesky: Cholesky decomposition of an SPD matrix */
double A[N][N];

void init_array() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % N)) / N + 1.0;
    for (int j = i + 1; j < N; j++)
      A[i][j] = 0.0;
    A[i][i] = 1.0;
  }
  /* Make it positive semi-definite: A = B*B^T via in-place trick. */
  for (int i = 0; i < N; i++)
    A[i][i] = A[i][i] + N;
}

void kernel_cholesky() {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[j][k];
      A[i][j] = A[i][j] / A[j][j];
    }
    for (int k = 0; k < i; k++)
      A[i][i] -= A[i][k] * A[i][k];
    A[i][i] = sqrt(A[i][i]);
  }
}

void bench_main() {
  init_array();
  kernel_cholesky();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j <= i; j++) s = s + A[i][j];
  print_double(s);
}
