/* covariance: covariance matrix computation */
double data[N][N];
double cov[N][N];
double mean[N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      data[i][j] = (double)(i * j % N) / N;
}

void kernel_covariance() {
  double float_n = (double)N;
  for (int j = 0; j < N; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < N; i++)
      mean[j] += data[i][j];
    mean[j] = mean[j] / float_n;
  }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      data[i][j] -= mean[j];
  for (int i = 0; i < N; i++)
    for (int j = i; j < N; j++) {
      cov[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        cov[i][j] += data[k][i] * data[k][j];
      cov[i][j] = cov[i][j] / (float_n - 1.0);
      cov[j][i] = cov[i][j];
    }
}

void bench_main() {
  init_array();
  kernel_covariance();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + cov[i][j];
  print_double(s);
}
