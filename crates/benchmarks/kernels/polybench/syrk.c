/* syrk: C = alpha*A*A^T + beta*C (symmetric rank-k update) */
double A[N][N];
double C[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      C[i][j] = (double)((i * j + 2) % N) / N;
    }
}

void kernel_syrk() {
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < N; i++) {
    for (int j = 0; j <= i; j++)
      C[i][j] = C[i][j] * beta;
    for (int k = 0; k < N; k++)
      for (int j = 0; j <= i; j++)
        C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
  }
}

void bench_main() {
  init_array();
  kernel_syrk();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j <= i; j++) s = s + C[i][j];
  print_double(s);
}
