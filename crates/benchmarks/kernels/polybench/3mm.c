/* 3mm: G = (A*B)*(C*D) */
double A[N][N];
double B[N][N];
double C[N][N];
double D[N][N];
double E[N][N];
double F[N][N];
double G[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / (5 * N);
      B[i][j] = (double)((i * (j + 1) + 2) % N) / (5 * N);
      C[i][j] = (double)(i * (j + 3) % N) / (5 * N);
      D[i][j] = (double)((i * (j + 2) + 2) % N) / (5 * N);
    }
}

void kernel_3mm() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      E[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      F[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      G[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}

void bench_main() {
  init_array();
  kernel_3mm();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      s = s + G[i][j];
  print_double(s);
}
