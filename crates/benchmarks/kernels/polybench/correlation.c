/* correlation: correlation matrix computation */
double data[N][N];
double corr[N][N];
double mean[N];
double stddev[N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      data[i][j] = (double)(i * j % N) / N + (double)i / N;
}

void kernel_correlation() {
  double float_n = (double)N;
  double eps = 0.1;
  for (int j = 0; j < N; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < N; i++)
      mean[j] += data[i][j];
    mean[j] = mean[j] / float_n;
  }
  for (int j = 0; j < N; j++) {
    stddev[j] = 0.0;
    for (int i = 0; i < N; i++)
      stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    stddev[j] = stddev[j] / float_n;
    stddev[j] = sqrt(stddev[j]);
    if (stddev[j] <= eps) stddev[j] = 1.0;
  }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      data[i][j] -= mean[j];
      data[i][j] = data[i][j] / (sqrt(float_n) * stddev[j]);
    }
  for (int i = 0; i < N - 1; i++) {
    corr[i][i] = 1.0;
    for (int j = i + 1; j < N; j++) {
      corr[i][j] = 0.0;
      for (int k = 0; k < N; k++)
        corr[i][j] += data[k][i] * data[k][j];
      corr[j][i] = corr[i][j];
    }
  }
  corr[N - 1][N - 1] = 1.0;
}

void bench_main() {
  init_array();
  kernel_correlation();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + corr[i][j];
  print_double(s);
}
