/* floyd-warshall: all-pairs shortest paths */
int path[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      path[i][j] = i * j % 7 + 1;
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0)
        path[i][j] = 999;
    }
}

void kernel_floyd_warshall() {
  for (int k = 0; k < N; k++)
    for (int i = 0; i < N; i++)
      for (int j = 0; j < N; j++)
        path[i][j] = path[i][j] < path[i][k] + path[k][j]
                   ? path[i][j]
                   : path[i][k] + path[k][j];
}

void bench_main() {
  init_array();
  kernel_floyd_warshall();
  int s = 0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + path[i][j];
  print_int(s);
}
