/* adi: alternating-direction implicit 2D heat solver */
double u[N][N];
double v[N][N];
double p[N][N];
double q[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      u[i][j] = (double)(i + N - j) / N;
}

void kernel_adi() {
  double DX = 1.0 / (double)N;
  double DY = 1.0 / (double)N;
  double DT = 1.0 / (double)TSTEPS;
  double B1 = 2.0;
  double B2 = 1.0;
  double mul1 = B1 * DT / (DX * DX);
  double mul2 = B2 * DT / (DY * DY);
  double a = 0.0 - mul1 / 2.0;
  double b = 1.0 + mul1;
  double c = a;
  double d = 0.0 - mul2 / 2.0;
  double e = 1.0 + mul2;
  double f = d;
  for (int t = 1; t <= TSTEPS; t++) {
    for (int i = 1; i < N - 1; i++) {
      v[0][i] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = v[0][i];
      for (int j = 1; j < N - 1; j++) {
        p[i][j] = (0.0 - c) / (a * p[i][j - 1] + b);
        q[i][j] = ((0.0 - d) * u[j][i - 1] + (1.0 + 2.0 * d) * u[j][i]
                 - f * u[j][i + 1] - a * q[i][j - 1]) / (a * p[i][j - 1] + b);
      }
      v[N - 1][i] = 1.0;
      for (int j = N - 2; j >= 1; j--)
        v[j][i] = p[i][j] * v[j + 1][i] + q[i][j];
    }
    for (int i = 1; i < N - 1; i++) {
      u[i][0] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = u[i][0];
      for (int j = 1; j < N - 1; j++) {
        p[i][j] = (0.0 - f) / (d * p[i][j - 1] + e);
        q[i][j] = ((0.0 - a) * v[i - 1][j] + (1.0 + 2.0 * a) * v[i][j]
                 - c * v[i + 1][j] - d * q[i][j - 1]) / (d * p[i][j - 1] + e);
      }
      u[i][N - 1] = 1.0;
      for (int j = N - 2; j >= 1; j--)
        u[i][j] = p[i][j] * u[i][j + 1] + q[i][j];
    }
  }
}

void bench_main() {
  init_array();
  kernel_adi();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + u[i][j];
  print_double(s);
}
