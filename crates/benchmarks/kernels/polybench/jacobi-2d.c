/* jacobi-2d: 2-D Jacobi stencil */
double A[N][N];
double B[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      A[i][j] = (double)i * (j + 2) / N;
      B[i][j] = (double)i * (j + 3) / N;
    }
}

void kernel_jacobi2d() {
  for (int t = 0; t < TSTEPS; t++) {
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1] + B[i + 1][j] + B[i - 1][j]);
  }
}

void bench_main() {
  init_array();
  kernel_jacobi2d();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + A[i][j];
  print_double(s);
}
