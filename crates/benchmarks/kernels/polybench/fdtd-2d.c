/* fdtd-2d: 2-D finite-difference time-domain */
double ex[N][N];
double ey[N][N];
double hz[N][N];
double fict[TSTEPS];

void init_array() {
  for (int i = 0; i < TSTEPS; i++)
    fict[i] = (double)i;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      ex[i][j] = (double)i * (j + 1) / N;
      ey[i][j] = (double)i * (j + 2) / N;
      hz[i][j] = (double)i * (j + 3) / N;
    }
}

void kernel_fdtd2d() {
  for (int t = 0; t < TSTEPS; t++) {
    for (int j = 0; j < N; j++)
      ey[0][j] = fict[t];
    for (int i = 1; i < N; i++)
      for (int j = 0; j < N; j++)
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
    for (int i = 0; i < N; i++)
      for (int j = 1; j < N; j++)
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
    for (int i = 0; i < N - 1; i++)
      for (int j = 0; j < N - 1; j++)
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
  }
}

void bench_main() {
  init_array();
  kernel_fdtd2d();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + hz[i][j];
  print_double(s);
}
