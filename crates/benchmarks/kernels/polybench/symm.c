/* symm: symmetric matrix multiply C = alpha*A*B + beta*C, A symmetric */
double A[N][N];
double B[N][N];
double C[N][N];

void init_array() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      B[i][j] = (double)((i + j) % 100) / N;
      C[i][j] = (double)((N + i - j) % 100) / N;
    }
  for (int i = 0; i < N; i++)
    for (int j = 0; j <= i; j++) {
      A[i][j] = (double)((i + j) % 100) / N;
      A[j][i] = A[i][j];
    }
}

void kernel_symm() {
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      double temp2 = 0.0;
      for (int k = 0; k < i; k++) {
        C[k][j] += alpha * B[i][j] * A[i][k];
        temp2 += B[k][j] * A[i][k];
      }
      C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp2;
    }
}

void bench_main() {
  init_array();
  kernel_symm();
  double s = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) s = s + C[i][j];
  print_double(s);
}
