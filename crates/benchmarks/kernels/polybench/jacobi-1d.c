/* jacobi-1d: 1-D Jacobi stencil */
double A[N];
double B[N];

void init_array() {
  for (int i = 0; i < N; i++) {
    A[i] = ((double)i + 2.0) / N;
    B[i] = ((double)i + 3.0) / N;
  }
}

void kernel_jacobi1d() {
  for (int t = 0; t < TSTEPS; t++) {
    for (int i = 1; i < N - 1; i++)
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    for (int i = 1; i < N - 1; i++)
      A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
  }
}

void bench_main() {
  init_array();
  kernel_jacobi1d();
  double s = 0.0;
  for (int i = 0; i < N; i++) s = s + A[i];
  print_double(s);
}
