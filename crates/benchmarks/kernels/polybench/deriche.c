/* deriche: Deriche recursive edge-detection filter */
#define W N
#define H N
double imgIn[W][H];
double imgOut[W][H];
double y1a[W][H];
double y2a[W][H];

void init_array() {
  for (int i = 0; i < W; i++)
    for (int j = 0; j < H; j++)
      imgIn[i][j] = (double)((313 * i + 991 * j) % 65536) / 65535.0;
}

void kernel_deriche() {
  double alpha = 0.25;
  double k = (1.0 - exp(0.0 - alpha)) * (1.0 - exp(0.0 - alpha))
           / (1.0 + 2.0 * alpha * exp(0.0 - alpha) - exp(2.0 * alpha * (0.0 - 1.0)));
  double a1 = k; double a5 = k;
  double a2 = k * exp(0.0 - alpha) * (alpha - 1.0);
  double a6 = a2;
  double a3 = k * exp(0.0 - alpha) * (alpha + 1.0);
  double a7 = a3;
  double a4 = 0.0 - k * exp(0.0 - 2.0 * alpha);
  double a8 = a4;
  double b1 = pow(2.0, 0.0 - alpha);
  double b2 = 0.0 - exp(0.0 - 2.0 * alpha);
  double c1 = 1.0; double c2 = 1.0;

  for (int i = 0; i < W; i++) {
    double ym1 = 0.0; double ym2 = 0.0; double xm1 = 0.0;
    for (int j = 0; j < H; j++) {
      y1a[i][j] = a1 * imgIn[i][j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
      xm1 = imgIn[i][j];
      ym2 = ym1;
      ym1 = y1a[i][j];
    }
  }
  for (int i = 0; i < W; i++) {
    double yp1 = 0.0; double yp2 = 0.0; double xp1 = 0.0; double xp2 = 0.0;
    for (int j = H - 1; j >= 0; j--) {
      y2a[i][j] = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;
      xp2 = xp1;
      xp1 = imgIn[i][j];
      yp2 = yp1;
      yp1 = y2a[i][j];
    }
  }
  for (int i = 0; i < W; i++)
    for (int j = 0; j < H; j++)
      imgOut[i][j] = c1 * (y1a[i][j] + y2a[i][j]);
  for (int j = 0; j < H; j++) {
    double tm1 = 0.0; double ym1 = 0.0; double ym2 = 0.0;
    for (int i = 0; i < W; i++) {
      y1a[i][j] = a5 * imgOut[i][j] + a6 * tm1 + b1 * ym1 + b2 * ym2;
      tm1 = imgOut[i][j];
      ym2 = ym1;
      ym1 = y1a[i][j];
    }
  }
  for (int j = 0; j < H; j++) {
    double tp1 = 0.0; double tp2 = 0.0; double yp1 = 0.0; double yp2 = 0.0;
    for (int i = W - 1; i >= 0; i--) {
      y2a[i][j] = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2;
      tp2 = tp1;
      tp1 = imgOut[i][j];
      yp2 = yp1;
      yp1 = y2a[i][j];
    }
  }
  for (int i = 0; i < W; i++)
    for (int j = 0; j < H; j++)
      imgOut[i][j] = c2 * (y1a[i][j] + y2a[i][j]);
}

void bench_main() {
  init_array();
  kernel_deriche();
  double s = 0.0;
  for (int i = 0; i < W; i++)
    for (int j = 0; j < H; j++) s = s + imgOut[i][j];
  print_double(s);
}
