//! The 41-benchmark C corpus (Table 1): 30 PolyBenchC + 11 CHStone
//! kernels, each with five dataset sizes selected via `-D` defines.

use crate::datasets::{InputSize, Scaling};

/// Which benchmark suite a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// PolyBenchC 4.2.1.
    PolyBenchC,
    /// CHStone 1.11.
    CHStone,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::PolyBenchC => "PolyBenchC",
            Suite::CHStone => "CHStone",
        }
    }
}

/// Use-case category, per the paper's §4.1.1 attribution list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Data mining (covariance, correlation).
    DataMining,
    /// BLAS routines.
    Blas,
    /// Linear algebra kernels.
    LinAlgKernel,
    /// Linear algebra solvers.
    LinAlgSolver,
    /// Image/video/signal filtering.
    Media,
    /// Graph / dynamic programming algorithms.
    GraphDp,
    /// Stencils and scientific simulation.
    Stencil,
    /// Cryptography.
    Crypto,
    /// DSP / telephony codecs.
    Dsp,
    /// Floating-point emulation (soft-float).
    SoftFloat,
    /// Platform emulation.
    Emulation,
    /// Hashing.
    Hash,
}

/// How a benchmark's macros derive from an [`InputSize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dims {
    /// `N` from a [`Scaling`] profile.
    N(Scaling),
    /// `N` + `TSTEPS` from a [`Scaling`] profile.
    NT(Scaling),
    /// Custom per-size `N` table.
    CustomN([u32; 5]),
    /// Custom `N` table + standard `TSTEPS`.
    CustomNT([u32; 5]),
    /// CHStone `ITERS` table.
    Iters([u32; 5]),
}

/// One benchmark of the 41-kernel corpus.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Table 1 name (lowercase PolyBench, uppercase CHStone).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Use-case category (§4.1.1).
    pub category: Category,
    /// One-line description (Table 1).
    pub description: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    dims: Dims,
}

impl Benchmark {
    /// The `-D` definitions selecting a dataset size (§3.2).
    pub fn defines(&self, size: InputSize) -> Vec<(String, String)> {
        match self.dims {
            Dims::N(s) => vec![("N".into(), s.n(size).to_string())],
            Dims::NT(s) => vec![
                ("N".into(), s.n(size).to_string()),
                ("TSTEPS".into(), s.tsteps(size).to_string()),
            ],
            Dims::CustomN(t) => vec![("N".into(), t[size.index()].to_string())],
            Dims::CustomNT(t) => vec![
                ("N".into(), t[size.index()].to_string()),
                ("TSTEPS".into(), Scaling::Quadratic.tsteps(size).to_string()),
            ],
            Dims::Iters(t) => vec![("ITERS".into(), t[size.index()].to_string())],
        }
    }

    /// Source lines of code (Table 1's LOC flavor).
    pub fn loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// CHStone iteration tables.
const ITERS_SMALL: [u32; 5] = [2, 8, 32, 128, 512];
const ITERS_BIG: [u32; 5] = [8, 32, 128, 1024, 4096];

macro_rules! bench {
    ($name:literal, $suite:ident, $cat:ident, $desc:literal, $file:literal, $dims:expr) => {
        Benchmark {
            name: $name,
            suite: Suite::$suite,
            category: Category::$cat,
            description: $desc,
            source: include_str!(concat!("../kernels/", $file)),
            dims: $dims,
        }
    };
}

/// All 41 benchmarks, PolyBench first, in Table 1 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    use Dims::*;
    vec![
        bench!(
            "covariance",
            PolyBenchC,
            DataMining,
            "Covariance computation",
            "polybench/covariance.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "correlation",
            PolyBenchC,
            DataMining,
            "Normalized covariance computation",
            "polybench/correlation.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "gemm",
            PolyBenchC,
            Blas,
            "Generalized matrix multiplication",
            "polybench/gemm.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "gemver",
            PolyBenchC,
            Blas,
            "Multiple matrix-vector multiplication",
            "polybench/gemver.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "gesummv",
            PolyBenchC,
            Blas,
            "Summed matrix-vector multiplication",
            "polybench/gesummv.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "symm",
            PolyBenchC,
            Blas,
            "Symmetric matrix multiplication",
            "polybench/symm.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "syrk",
            PolyBenchC,
            Blas,
            "Symmetric rank-k update",
            "polybench/syrk.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "syr2k",
            PolyBenchC,
            Blas,
            "Symmetric rank-2k update",
            "polybench/syr2k.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "trmm",
            PolyBenchC,
            Blas,
            "Triangular matrix multiplication",
            "polybench/trmm.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "2mm",
            PolyBenchC,
            LinAlgKernel,
            "Two matrix multiplications",
            "polybench/2mm.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "3mm",
            PolyBenchC,
            LinAlgKernel,
            "Three matrix multiplications",
            "polybench/3mm.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "atax",
            PolyBenchC,
            LinAlgKernel,
            "A-transpose times A times x",
            "polybench/atax.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "bicg",
            PolyBenchC,
            LinAlgKernel,
            "Biconjugate gradient stabilization",
            "polybench/bicg.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "doitgen",
            PolyBenchC,
            LinAlgKernel,
            "Numerical scientific simulation",
            "polybench/doitgen.c",
            CustomN([4, 8, 12, 20, 28])
        ),
        bench!(
            "mvt",
            PolyBenchC,
            LinAlgKernel,
            "Matrix-vector multiplication",
            "polybench/mvt.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "cholesky",
            PolyBenchC,
            LinAlgSolver,
            "Matrix decomposition",
            "polybench/cholesky.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "durbin",
            PolyBenchC,
            LinAlgSolver,
            "Yule-Walker equations solver",
            "polybench/durbin.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "gramschmidt",
            PolyBenchC,
            LinAlgSolver,
            "QR matrix decomposition",
            "polybench/gramschmidt.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "lu",
            PolyBenchC,
            LinAlgSolver,
            "LU matrix decomposition",
            "polybench/lu.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "ludcmp",
            PolyBenchC,
            LinAlgSolver,
            "Linear equations solver",
            "polybench/ludcmp.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "trisolv",
            PolyBenchC,
            LinAlgSolver,
            "Triangular matrix solver",
            "polybench/trisolv.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "deriche",
            PolyBenchC,
            Media,
            "Edge detection and smoothing filter",
            "polybench/deriche.c",
            N(Scaling::Quadratic)
        ),
        bench!(
            "floyd-warshall",
            PolyBenchC,
            GraphDp,
            "Shortest paths in graph solver",
            "polybench/floyd-warshall.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "nussinov",
            PolyBenchC,
            GraphDp,
            "RNA folding prediction",
            "polybench/nussinov.c",
            N(Scaling::Cubic)
        ),
        bench!(
            "adi",
            PolyBenchC,
            Stencil,
            "2D heat diffusion simulation",
            "polybench/adi.c",
            CustomNT([8, 16, 32, 64, 100])
        ),
        bench!(
            "fdtd-2d",
            PolyBenchC,
            Stencil,
            "Electric and magnetic fields simulation",
            "polybench/fdtd-2d.c",
            NT(Scaling::Quadratic)
        ),
        bench!(
            "heat-3d",
            PolyBenchC,
            Stencil,
            "Heat equation over 3D space",
            "polybench/heat-3d.c",
            CustomNT([6, 10, 16, 24, 32])
        ),
        bench!(
            "jacobi-1d",
            PolyBenchC,
            Stencil,
            "Jacobi-style stencil (1D)",
            "polybench/jacobi-1d.c",
            NT(Scaling::Linear)
        ),
        bench!(
            "jacobi-2d",
            PolyBenchC,
            Stencil,
            "Jacobi-style stencil (2D)",
            "polybench/jacobi-2d.c",
            NT(Scaling::Quadratic)
        ),
        bench!(
            "seidel-2d",
            PolyBenchC,
            Stencil,
            "Gauss-Seidel stencil (2D)",
            "polybench/seidel-2d.c",
            NT(Scaling::Quadratic)
        ),
        // CHStone.
        bench!(
            "ADPCM",
            CHStone,
            Dsp,
            "Speech signal processing algorithm",
            "chstone/adpcm.c",
            Iters(ITERS_SMALL)
        ),
        bench!(
            "AES",
            CHStone,
            Crypto,
            "Cryptographic algorithm",
            "chstone/aes.c",
            Iters(ITERS_SMALL)
        ),
        bench!(
            "BLOWFISH",
            CHStone,
            Crypto,
            "Data encryption standard",
            "chstone/blowfish.c",
            Iters(ITERS_SMALL)
        ),
        bench!(
            "DFADD",
            CHStone,
            SoftFloat,
            "Addition for double",
            "chstone/dfadd.c",
            Iters(ITERS_BIG)
        ),
        bench!(
            "DFDIV",
            CHStone,
            SoftFloat,
            "Division for double",
            "chstone/dfdiv.c",
            Iters(ITERS_BIG)
        ),
        bench!(
            "DFMUL",
            CHStone,
            SoftFloat,
            "Multiplication for double",
            "chstone/dfmul.c",
            Iters(ITERS_BIG)
        ),
        bench!(
            "DFSIN",
            CHStone,
            SoftFloat,
            "Sine function for double",
            "chstone/dfsin.c",
            Iters(ITERS_SMALL)
        ),
        bench!(
            "GSM",
            CHStone,
            Dsp,
            "Speech signal processing algorithm",
            "chstone/gsm.c",
            Iters(ITERS_SMALL)
        ),
        bench!(
            "MIPS",
            CHStone,
            Emulation,
            "Simplified MIPS processor",
            "chstone/mips.c",
            Iters(ITERS_SMALL)
        ),
        bench!(
            "MOTION",
            CHStone,
            Media,
            "Motion vector decoding for MPEG-2",
            "chstone/motion.c",
            Iters(ITERS_SMALL)
        ),
        bench!(
            "SHA",
            CHStone,
            Hash,
            "Secure hash algorithm",
            "chstone/sha.c",
            Iters(ITERS_SMALL)
        ),
    ]
}

/// Look up a benchmark by name (case-insensitive).
pub fn find(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_41_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 41);
        assert_eq!(
            all.iter().filter(|b| b.suite == Suite::PolyBenchC).count(),
            30
        );
        assert_eq!(all.iter().filter(|b| b.suite == Suite::CHStone).count(), 11);
    }

    #[test]
    fn names_are_unique_and_sources_nonempty() {
        let all = all_benchmarks();
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 41);
        for b in &all {
            assert!(b.loc() > 10, "{} too short", b.name);
            assert!(
                b.source.contains("bench_main"),
                "{} lacks bench_main",
                b.name
            );
        }
    }

    #[test]
    fn defines_grow_with_size() {
        for b in all_benchmarks() {
            let xs: u32 = b.defines(InputSize::XS)[0].1.parse().unwrap();
            let xl: u32 = b.defines(InputSize::XL)[0].1.parse().unwrap();
            assert!(xl > xs, "{}", b.name);
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("GEMM").is_some());
        assert!(find("dfadd").is_some());
        assert!(find("nope").is_none());
    }
}
