//! Long.js analogue (§4.1.3, Tables 10 and 12): 64-bit integer arithmetic
//! in both languages.
//!
//! * **JavaScript**: a faithful miniature of the Long.js library — values
//!   split into 16-bit limbs to avoid double-precision overflow (the
//!   `low`/`high` pair with 16-bit partial products, like the upstream
//!   `src/long.js`). This is what makes the JS side execute ~10× more
//!   arithmetic operations (Table 12).
//! * **WebAssembly**: a hand-built module using native `i64` instructions,
//!   like the upstream `src/wasm.wat`.
//!
//! Each Table 10 operation (`mul(36, -2)`, `div(-2, -2)`, `mod(36, 5)`)
//! is driven 10,000 times by the harness.

use wb_wasm::{Instr, Module, ModuleBuilder, ValType};

/// The three Long.js experiments of Table 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LongOp {
    /// `mul(36, -2)`.
    Multiplication,
    /// `div(-2, -2)`.
    Division,
    /// `mod(36, 5)`.
    Remainder,
}

impl LongOp {
    /// All three, Table 10 order.
    pub const ALL: [LongOp; 3] = [LongOp::Multiplication, LongOp::Division, LongOp::Remainder];

    /// Table 10 row label.
    pub fn name(self) -> &'static str {
        match self {
            LongOp::Multiplication => "multiplication",
            LongOp::Division => "division",
            LongOp::Remainder => "remainder",
        }
    }

    /// The paper's input description.
    pub fn input_desc(self) -> &'static str {
        match self {
            LongOp::Multiplication => "10,000 mul(36,-2)",
            LongOp::Division => "10,000 div(-2,-2)",
            LongOp::Remainder => "10,000 mod(36,5)",
        }
    }

    /// Exported wasm function / JS driver function name.
    pub fn func(self) -> &'static str {
        match self {
            LongOp::Multiplication => "bench_mul",
            LongOp::Division => "bench_div",
            LongOp::Remainder => "bench_mod",
        }
    }

    /// Operand pair from Table 10.
    pub fn operands(self) -> (i64, i64) {
        match self {
            LongOp::Multiplication => (36, -2),
            LongOp::Division => (-2, -2),
            LongOp::Remainder => (36, 5),
        }
    }
}

/// Iterations per experiment (Table 10: 10,000).
pub const ITERATIONS: i32 = 10_000;

/// Build the Wasm Long module, shaped like the upstream `wasm.wat`:
/// each export takes the operands as **(hi, lo) i32 pairs** (JS numbers
/// cannot carry an i64 across the boundary), reconstructs the i64s with
/// shifts and ors, performs one native i64 operation, and returns the low
/// half with the high half parked in an exported global — the exact
/// instruction mix behind Table 12's Wasm rows (3 shifts + 2 ors + 1 op
/// per call).
pub fn wasm_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let hi_global = mb.global(ValType::I32, true, Instr::I32Const(0));
    for op in LongOp::ALL {
        let mut f = mb.func(
            op.func(),
            vec![ValType::I32, ValType::I32, ValType::I32, ValType::I32],
            vec![ValType::I32],
        );
        let a64 = f.local(ValType::I64);
        let b64 = f.local(ValType::I64);
        let r64 = f.local(ValType::I64);
        let arith = match op {
            LongOp::Multiplication => Instr::I64Mul,
            LongOp::Division => Instr::I64DivS,
            LongOp::Remainder => Instr::I64RemS,
        };
        f.ops([
            // a = (i64(a_hi) << 32) | u64(a_lo)
            Instr::LocalGet(0),
            Instr::I64ExtendI32S,
            Instr::I64Const(32),
            Instr::I64Shl,
            Instr::LocalGet(1),
            Instr::I64ExtendI32U,
            Instr::I64Or,
            Instr::LocalSet(a64),
            // b likewise
            Instr::LocalGet(2),
            Instr::I64ExtendI32S,
            Instr::I64Const(32),
            Instr::I64Shl,
            Instr::LocalGet(3),
            Instr::I64ExtendI32U,
            Instr::I64Or,
            Instr::LocalSet(b64),
            // r = a op b
            Instr::LocalGet(a64),
            Instr::LocalGet(b64),
            arith,
            Instr::LocalTee(r64),
            // __hi = i32(r >> 32)
            Instr::I64Const(32),
            Instr::I64ShrS,
            Instr::I32WrapI64,
            Instr::GlobalSet(hi_global),
            // return lo
            Instr::LocalGet(r64),
            Instr::I32WrapI64,
        ])
        .done();
        mb.finish_func(f, true);
    }
    mb.build()
}

/// The Long.js-style MiniJS library plus matching bench drivers.
pub const JS_SOURCE: &str = include_str!("../../js/longjs.js");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wasm_module_is_valid_and_exports_all_ops() {
        let m = wasm_module();
        wb_wasm::validate(&m).unwrap();
        for op in LongOp::ALL {
            assert!(m.exported_func(op.func()).is_some(), "{}", op.func());
        }
    }

    #[test]
    fn js_source_defines_the_library_and_drivers() {
        assert!(JS_SOURCE.contains("function long_mul"));
        assert!(JS_SOURCE.contains("function bench_mul"));
        assert!(JS_SOURCE.contains("function bench_div"));
        assert!(JS_SOURCE.contains("function bench_mod"));
    }
}
