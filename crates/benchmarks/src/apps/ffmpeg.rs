//! FFmpeg analogue (§4.1.3, Table 10): an MP4→AVI-style stream transcode.
//!
//! The paper converted a 296 MB MP4 with ffmpeg.wasm (which fans the work
//! out over multiple WebWorkers) against a single-threaded JS port — the
//! 0.275 ratio is mostly the parallelism. We reproduce that structure:
//!
//! * a byte-stream "transcode" kernel (table-lookup decode + delta
//!   re-encode, per 4 KiB frame chunk) in MiniC and MiniJS;
//! * the Wasm side is executed by the harness across
//!   [`WORKER_COUNT`] simulated WebWorkers, each instance transcoding a
//!   disjoint stripe; total virtual time = max(worker times) + per-worker
//!   spawn/marshalling overhead (see `wb-core::apps`);
//! * the JS side runs the whole stream in one engine.
//!
//! The stream is scaled from the paper's 296 MB to [`STREAM_BYTES`] —
//! interpreted substrates can't chew a quarter gigabyte — preserving the
//! per-byte instruction mix and the worker split.

/// Simulated WebWorkers used by the Wasm build (ffmpeg.wasm defaults to
/// the hardware concurrency; four is typical of the paper's testbed).
pub const WORKER_COUNT: u32 = 4;

/// Scaled stream size (the paper's input: 296 MB MP4).
pub const STREAM_BYTES: u32 = 2 * 1024 * 1024;

/// Frame chunk size the transcoder processes at a time.
pub const CHUNK_BYTES: u32 = 4096;

/// The MiniC implementation. The driver defines `STREAMLEN`, `SEED0` and
/// `CHUNK` so each worker transcodes its own stripe.
pub const C_SOURCE: &str = include_str!("../../kernels/apps/transcode.c");

/// The hand-written single-threaded MiniJS port.
pub const JS_SOURCE: &str = include_str!("../../js/transcode.js");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_present_and_constants_sane() {
        assert!(C_SOURCE.contains("bench_main"));
        assert!(JS_SOURCE.contains("function bench_main"));
        assert_eq!(STREAM_BYTES % (WORKER_COUNT * CHUNK_BYTES), 0);
    }
}
