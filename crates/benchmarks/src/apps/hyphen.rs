//! Hyphenopoly analogue (§4.1.3, Table 10): Liang-style pattern
//! hyphenation of an 18 KB text, implemented in MiniC (compiled to Wasm)
//! and hand-written MiniJS.
//!
//! Both versions generate the same deterministic pseudo-text, apply the
//! same digit-pattern table, and print the number of hyphenation points —
//! so cross-language agreement is checkable. Per the paper, a significant
//! share of the time goes to character shuffling ("input and output
//! operations in which WebAssembly is not specialized"), which is why the
//! two land close together (ratio ≈ 0.94).

/// Supported languages (Table 10 rows: `en-us` and `fr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// American English patterns.
    EnUs,
    /// French patterns.
    Fr,
}

impl Lang {
    /// Both languages.
    pub const ALL: [Lang; 2] = [Lang::EnUs, Lang::Fr];

    /// Table 10 row label.
    pub fn name(self) -> &'static str {
        match self {
            Lang::EnUs => "en-us",
            Lang::Fr => "fr",
        }
    }

    /// The `LANG` define value the MiniC source switches on.
    pub fn define(self) -> u32 {
        match self {
            Lang::EnUs => 0,
            Lang::Fr => 1,
        }
    }
}

/// Text length in bytes (the paper used 18 KB inputs).
pub const TEXT_BYTES: u32 = 18 * 1024;

/// The MiniC implementation (compiled to Wasm by the harness).
pub const C_SOURCE: &str = include_str!("../../kernels/apps/hyphen.c");

/// The hand-written MiniJS implementation.
pub const JS_SOURCE: &str = include_str!("../../js/hyphen.js");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_present() {
        assert!(C_SOURCE.contains("bench_main"));
        assert!(JS_SOURCE.contains("function bench_main"));
        assert_eq!(Lang::EnUs.define(), 0);
        assert_eq!(Lang::Fr.name(), "fr");
    }
}
