//! Real-world application analogues (§4.1.3, Table 10): Long.js,
//! Hyphenopoly, and FFmpeg.

pub mod ffmpeg;
pub mod hyphen;
pub mod longjs;
