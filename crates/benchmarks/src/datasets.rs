//! Dataset sizes (§3.2): Extra-Small through Extra-Large, selected via
//! `#define` injection exactly like PolyBenchC's `-D*_DATASET` flags.

use std::fmt;

/// The five input sizes of §3.2 / Fig 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InputSize {
    /// Extra small (PolyBench MINI-like).
    XS,
    /// Small.
    S,
    /// Medium — the default for experiments that fix the input (§4.2).
    M,
    /// Large.
    L,
    /// Extra large.
    XL,
}

impl InputSize {
    /// All five, smallest first.
    pub const ALL: [InputSize; 5] = [
        InputSize::XS,
        InputSize::S,
        InputSize::M,
        InputSize::L,
        InputSize::XL,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            InputSize::XS => "Extra-small",
            InputSize::S => "Small",
            InputSize::M => "Medium",
            InputSize::L => "Large",
            InputSize::XL => "Extra-large",
        }
    }

    /// Short code ("XS", "S", …).
    pub fn code(self) -> &'static str {
        match self {
            InputSize::XS => "XS",
            InputSize::S => "S",
            InputSize::M => "M",
            InputSize::L => "L",
            InputSize::XL => "XL",
        }
    }

    /// Index 0..5 (for scaling tables).
    pub fn index(self) -> usize {
        match self {
            InputSize::XS => 0,
            InputSize::S => 1,
            InputSize::M => 2,
            InputSize::L => 3,
            InputSize::XL => 4,
        }
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Scaling profiles: how a benchmark's dimension macros grow with size.
/// Values are chosen so the *work* spans ~3 orders of magnitude from XS
/// to XL (like PolyBench's MINI→EXTRALARGE) while remaining tractable for
/// an interpreted substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scaling {
    /// O(N³) kernels (matrix multiply family): modest N.
    Cubic,
    /// O(N²) kernels and O(N²)·TSTEPS stencils.
    Quadratic,
    /// O(N) or O(N·iter) kernels (1-D stencils, DSP, crypto blocks).
    Linear,
}

impl Scaling {
    /// The `N` value for a size.
    pub fn n(self, size: InputSize) -> u32 {
        match self {
            Scaling::Cubic => [8, 16, 32, 64, 96][size.index()],
            Scaling::Quadratic => [16, 40, 96, 192, 320][size.index()],
            Scaling::Linear => [64, 256, 1024, 8192, 32768][size.index()],
        }
    }

    /// The `TSTEPS` value for a size (stencil time loops).
    pub fn tsteps(self, size: InputSize) -> u32 {
        [2, 4, 8, 12, 16][size.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_ordered_and_named() {
        assert!(InputSize::XS < InputSize::XL);
        assert_eq!(InputSize::M.name(), "Medium");
        assert_eq!(InputSize::L.code(), "L");
        assert_eq!(format!("{}", InputSize::XL), "XL");
    }

    #[test]
    fn scaling_is_monotonic() {
        for s in [Scaling::Cubic, Scaling::Quadratic, Scaling::Linear] {
            let mut prev = 0;
            for size in InputSize::ALL {
                let n = s.n(size);
                assert!(n > prev, "{s:?} {size}");
                prev = n;
            }
        }
    }

    #[test]
    fn work_spans_orders_of_magnitude() {
        // Cubic work ratio XL/XS ≈ (96/8)³ = 1728.
        let w = |n: u32| (n as u64).pow(3);
        assert!(w(Scaling::Cubic.n(InputSize::XL)) / w(Scaling::Cubic.n(InputSize::XS)) > 1000);
    }
}
