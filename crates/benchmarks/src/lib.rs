//! # wb-benchmarks — the study's benchmark corpus
//!
//! Three program sets, mirroring §4.1:
//!
//! 1. **41 C benchmarks** ([`suite`]): the 30 PolyBenchC 4.2.1 kernels and
//!    11 CHStone kernels the paper evaluates, re-written in MiniC with the
//!    same computations and five dataset sizes each (XS/S/M/L/XL). The
//!    dataset dimensions are *scaled to simulator throughput* — the shapes
//!    (work growth, memory growth, instruction mixes) are preserved while
//!    absolute sizes fit an interpreted substrate; see EXPERIMENTS.md.
//! 2. **9 manually-written MiniJS benchmarks** ([`manual_js`]; Table 9),
//!    including mathjs-style object-matrix variants and W3C-API variants.
//! 3. **3 real-world application analogues** ([`apps`]; Table 10):
//!    Long.js 64-bit arithmetic, a Liang-style hyphenator, and an
//!    FFmpeg-like stream transcoder with a WebWorker-pool model.
//!
//! Every C benchmark prints a checksum so the harness can verify that all
//! backends computed the same thing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod datasets;
pub mod manual_js;
pub mod suite;

pub use datasets::InputSize;
pub use suite::{all_benchmarks, find, Benchmark, Category, Suite};
