//! Manually-written JavaScript benchmarks (§4.1.2, Table 9).
//!
//! Nine benchmarks chosen from PolyBenchC and CHStone, each representing
//! one computation category, written the way real-world JS gets written:
//! the linear-algebra ones against a math.js-style object-matrix library
//! (`mathlib`), the crypto ones both carefully (typed arrays, Table 9's
//! fast AES) and naively (plain arrays, Table 9's slow BLOWFISH), and the
//! hashing one both through the W3C Web Cryptography API analogue
//! (`crypto.sha256`) and as a jsSHA-style pure-JS implementation.

/// The math.js-style matrix library shared by the `(math.js)` variants.
pub const MATHLIB: &str = include_str!("../js/mathlib.js");

/// A manually-written MiniJS benchmark (Table 9 row).
#[derive(Debug, Clone)]
pub struct ManualJs {
    /// Table 9 name, e.g. `"3mm"` or `"SHA (W3C)"`.
    pub name: &'static str,
    /// MiniJS source (excluding [`MATHLIB`]; see [`ManualJs::full_source`]).
    pub source: &'static str,
    /// Whether the program needs [`MATHLIB`] prepended.
    pub needs_mathlib: bool,
    /// The corresponding compiled benchmark's name (for the Cheerp/Wasm
    /// comparison columns).
    pub counterpart: &'static str,
}

impl ManualJs {
    /// The loadable source (mathlib prepended when needed).
    pub fn full_source(&self) -> String {
        if self.needs_mathlib {
            format!("{}\n{}", MATHLIB, self.source)
        } else {
            self.source.to_string()
        }
    }

    /// Source lines of code, the Table 9 `LOC` column (mathjs-dependent
    /// programs count the library like the paper counts math.js).
    pub fn loc(&self) -> usize {
        self.full_source()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

macro_rules! manual {
    ($name:literal, $file:literal, $mathlib:literal, $counterpart:literal) => {
        ManualJs {
            name: $name,
            source: include_str!(concat!("../js/", $file)),
            needs_mathlib: $mathlib,
            counterpart: $counterpart,
        }
    };
}

/// All manual benchmarks, in Table 9 order.
pub fn all_manual() -> Vec<ManualJs> {
    vec![
        manual!("3mm", "3mm.js", true, "3mm"),
        manual!("Covariance", "covariance.js", true, "covariance"),
        manual!("Syr2k", "syr2k.js", true, "syr2k"),
        manual!("Ludcmp", "ludcmp.js", false, "ludcmp"),
        manual!(
            "Floyd-warshall",
            "floyd-warshall.js",
            false,
            "floyd-warshall"
        ),
        manual!("Heat-3d (W3C)", "heat-3d-w3c.js", false, "heat-3d"),
        manual!("Heat-3d (math.js)", "heat-3d-mathjs.js", true, "heat-3d"),
        manual!("AES", "aes.js", false, "AES"),
        manual!("BLOWFISH", "blowfish.js", false, "BLOWFISH"),
        manual!("SHA (W3C)", "sha-w3c.js", false, "SHA"),
        manual!("SHA (jsSHA)", "sha-jssha.js", false, "SHA"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_rows_nine_distinct_benchmarks() {
        let all = all_manual();
        assert_eq!(all.len(), 11, "Table 9 has 11 rows");
        let mut counterparts: Vec<_> = all.iter().map(|m| m.counterpart).collect();
        counterparts.sort_unstable();
        counterparts.dedup();
        assert_eq!(counterparts.len(), 9, "9 distinct benchmarks");
    }

    #[test]
    fn every_source_has_bench_main() {
        for m in all_manual() {
            assert!(
                m.full_source().contains("function bench_main"),
                "{}",
                m.name
            );
            assert!(m.loc() > 10, "{}", m.name);
        }
    }

    #[test]
    fn w3c_sha_is_much_shorter_than_jssha() {
        let all = all_manual();
        let w3c = all.iter().find(|m| m.name == "SHA (W3C)").unwrap();
        let jssha = all.iter().find(|m| m.name == "SHA (jsSHA)").unwrap();
        assert!(w3c.loc() * 2 < jssha.loc());
    }
}
