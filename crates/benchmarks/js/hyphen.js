// Hyphenopoly-style Liang pattern hyphenation, hand-written JS. Mirrors
// the MiniC version byte-for-byte so both print the same counts.
var HY_TEXTLEN = 18432;
var HY_LANG = 0;
var hy_rng = 0;

function hy_rand() {
  hy_rng = (Math.imul(hy_rng, 1103515245) + 12345) | 0;
  return (hy_rng >>> 16);
}
function pat_hash(c1, c2, c3) {
  return ((c1 * 31 + c2) * 31 + c3) % 1024;
}
function hyphenate(lang) {
  HY_LANG = lang;
  var text = new Uint8Array(HY_TEXTLEN);
  var out = new Uint8Array(HY_TEXTLEN * 2);
  var scores = new Int32Array(64);
  var table = new Int32Array(1024);
  hy_rng = (20210704 + HY_LANG * 977) | 0;
  var i = 0;
  while (i < HY_TEXTLEN) {
    var wordlen = 3 + (hy_rand() % 9);
    for (var k = 0; k < wordlen && i < HY_TEXTLEN; k++) {
      text[i] = 97 + (hy_rand() % 26);
      i = i + 1;
    }
    if (i < HY_TEXTLEN) { text[i] = 32; i = i + 1; }
  }
  hy_rng = (777 + HY_LANG * 131071) | 0;
  for (var t = 0; t < 1024; t++) table[t] = hy_rand() % 10;

  var hyphens = 0;
  var oi = 0;
  var wstart = 0;
  for (var p2 = 0; p2 <= HY_TEXTLEN; p2++) {
    var ch = p2 < HY_TEXTLEN ? text[p2] : 32;
    if (ch === 32) {
      var wlen = p2 - wstart;
      if (wlen > 4 && wlen < 64) {
        for (var p = 0; p < wlen; p++) scores[p] = 0;
        for (var p = 1; p < wlen - 1; p++) {
          var s = table[pat_hash(text[wstart + p - 1], text[wstart + p], text[wstart + p + 1])];
          if (p >= 2) {
            var s2 = table[pat_hash(text[wstart + p - 2], text[wstart + p - 1], text[wstart + p])];
            if (s2 > s) s = s2;
          }
          scores[p] = s;
        }
        for (var p = 0; p < wlen; p++) {
          out[oi] = text[wstart + p];
          oi = oi + 1;
          if (p >= 2 && p < wlen - 2 && (scores[p] % 2) === 1) {
            out[oi] = 45;
            oi = oi + 1;
            hyphens = hyphens + 1;
          }
        }
      } else {
        for (var p = 0; p < wlen; p++) {
          out[oi] = text[wstart + p];
          oi = oi + 1;
        }
      }
      out[oi] = 32;
      oi = oi + 1;
      wstart = p2 + 1;
    }
  }
  console.log(hyphens);
  var chk = 0;
  for (var q = 0; q < oi; q++)
    chk = (Math.imul(chk, 31) + out[q]) & 16777215;
  console.log(chk);
}
function bench_main() {
  hyphenate(0);
}
function bench_fr() {
  hyphenate(1);
}
