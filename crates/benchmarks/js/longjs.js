// A miniature of Long.js: 64-bit two's-complement integers represented as
// {hi, lo} unsigned-32 pairs, with multiplication through 16-bit partial
// products exactly like the upstream library does to avoid exceeding the
// 2^53 safe-integer range (see dcodeIO/long.js src/long.js).

function long_make(hi, lo) {
  return { hi: hi >>> 0, lo: lo >>> 0 };
}
function long_from_number(n) {
  if (n < 0) {
    var p = long_from_number(-n);
    return long_neg(p);
  }
  var hi = Math.trunc(n / 4294967296) >>> 0;
  var lo = (n - Math.trunc(n / 4294967296) * 4294967296) >>> 0;
  return long_make(hi, lo);
}
function long_is_neg(a) { return (a.hi & 0x80000000) !== 0; }
function long_is_zero(a) { return a.hi === 0 && a.lo === 0; }
function long_add(a, b) {
  var a48 = a.hi >>> 16, a32 = a.hi & 65535, a16 = a.lo >>> 16, a00 = a.lo & 65535;
  var b48 = b.hi >>> 16, b32 = b.hi & 65535, b16 = b.lo >>> 16, b00 = b.lo & 65535;
  var c48 = 0, c32 = 0, c16 = 0, c00 = 0;
  c00 = c00 + a00 + b00; c16 = c00 >>> 16; c00 = c00 & 65535;
  c16 = c16 + a16 + b16; c32 = c16 >>> 16; c16 = c16 & 65535;
  c32 = c32 + a32 + b32; c48 = c32 >>> 16; c32 = c32 & 65535;
  c48 = (c48 + a48 + b48) & 65535;
  return long_make((c48 << 16) | c32, (c16 << 16) | c00);
}
function long_not(a) {
  return long_make(~a.hi, ~a.lo);
}
function long_neg(a) {
  return long_add(long_not(a), long_make(0, 1));
}
function long_sub(a, b) {
  return long_add(a, long_neg(b));
}
function long_mul(a, b) {
  var a48 = a.hi >>> 16, a32 = a.hi & 65535, a16 = a.lo >>> 16, a00 = a.lo & 65535;
  var b48 = b.hi >>> 16, b32 = b.hi & 65535, b16 = b.lo >>> 16, b00 = b.lo & 65535;
  var c48 = 0, c32 = 0, c16 = 0, c00 = 0;
  c00 = c00 + a00 * b00; c16 = c00 >>> 16; c00 = c00 & 65535;
  c16 = c16 + a16 * b00; c32 = c16 >>> 16; c16 = c16 & 65535;
  c16 = c16 + a00 * b16; c32 = c32 + (c16 >>> 16); c16 = c16 & 65535;
  c32 = c32 + a32 * b00; c48 = c32 >>> 16; c32 = c32 & 65535;
  c32 = c32 + a16 * b16; c48 = c48 + (c32 >>> 16); c32 = c32 & 65535;
  c32 = c32 + a00 * b32; c48 = c48 + (c32 >>> 16); c32 = c32 & 65535;
  c48 = (c48 + a48 * b00 + a32 * b16 + a16 * b32 + a00 * b48) & 65535;
  return long_make((c48 << 16) | c32, (c16 << 16) | c00);
}
function long_shl1(a) {
  return long_make((a.hi << 1) | (a.lo >>> 31), a.lo << 1);
}
function long_shl(a, n) {
  n = n & 63;
  if (n === 0) return a;
  if (n < 32) return long_make((a.hi << n) | (a.lo >>> (32 - n)), a.lo << n);
  return long_make(a.lo << (n - 32), 0);
}
function long_cmp_u(a, b) {
  if ((a.hi >>> 0) !== (b.hi >>> 0)) return (a.hi >>> 0) < (b.hi >>> 0) ? -1 : 1;
  if ((a.lo >>> 0) !== (b.lo >>> 0)) return (a.lo >>> 0) < (b.lo >>> 0) ? -1 : 1;
  return 0;
}
// Unsigned 64-bit division, upstream-style: approximate the quotient in
// floating point, multiply back, and correct — far fewer limb operations
// than bitwise long division (see dcodeIO/long.js divide()).
var long_rem_out = long_make(0, 0);
function long_to_number_u(a) {
  return (a.hi >>> 0) * 4294967296 + (a.lo >>> 0);
}
function long_divu(a, b) {
  var res = long_make(0, 0);
  var rem = a;
  while (long_cmp_u(rem, b) >= 0) {
    var approx = Math.floor(long_to_number_u(rem) / long_to_number_u(b));
    if (approx < 1) approx = 1;
    var log2 = Math.ceil(Math.log(approx) / Math.LN2);
    var delta = log2 <= 48 ? 1 : Math.pow(2, log2 - 48);
    var approxRes = long_from_number(approx);
    var approxRem = long_mul(approxRes, b);
    while (long_cmp_u(approxRem, rem) > 0) {
      approx = approx - delta;
      approxRes = long_from_number(approx);
      approxRem = long_mul(approxRes, b);
    }
    if (long_is_zero(approxRes)) approxRes = long_make(0, 1);
    res = long_add(res, approxRes);
    rem = long_sub(rem, approxRem);
  }
  long_rem_out = rem;
  return res;
}
// Small-operand fast path, like upstream divide(): when both values fit
// a double exactly, do the division in plain JS numbers.
function long_small(a) {
  return (a.hi === 0 && (a.lo >>> 0) < 2147483648)
      || ((a.hi >>> 0) === 4294967295 && (a.lo >>> 0) >= 2147483648);
}
function long_to_number_s(a) {
  return (a.hi | 0) * 4294967296 + (a.lo >>> 0);
}
function long_div(a, b) {
  if (long_small(a) && long_small(b)) {
    return long_from_number(Math.trunc(long_to_number_s(a) / long_to_number_s(b)));
  }
  var neg = 0;
  if (long_is_neg(a)) { a = long_neg(a); neg = 1 - neg; }
  if (long_is_neg(b)) { b = long_neg(b); neg = 1 - neg; }
  var q = long_divu(a, b);
  if (neg) q = long_neg(q);
  return q;
}
function long_mod(a, b) {
  if (long_small(a) && long_small(b)) {
    return long_from_number(long_to_number_s(a) % long_to_number_s(b));
  }
  var neg = long_is_neg(a);
  if (long_is_neg(a)) a = long_neg(a);
  if (long_is_neg(b)) b = long_neg(b);
  long_divu(a, b);
  var r = long_rem_out;
  if (neg) r = long_neg(r);
  return r;
}
function long_or(a, b) {
  return long_make(a.hi | b.hi, a.lo | b.lo);
}

// ---- Table 10 drivers: n iterations of each operation -------------------
function bench_mul(n, a, b) {
  var av = long_from_number(a);
  var bv = long_from_number(b);
  var acc = long_make(0, 0);
  for (var i = 0; i < n; i++) {
    acc = long_or(acc, long_mul(av, bv));
  }
  return acc.lo;
}
function bench_div(n, a, b) {
  var av = long_from_number(a);
  var bv = long_from_number(b);
  var acc = long_make(0, 0);
  for (var i = 0; i < n; i++) {
    acc = long_or(acc, long_div(av, bv));
  }
  return acc.lo;
}
function bench_mod(n, a, b) {
  var av = long_from_number(a);
  var bv = long_from_number(b);
  var acc = long_make(0, 0);
  for (var i = 0; i < n; i++) {
    acc = long_or(acc, long_mod(av, bv));
  }
  return acc.lo;
}
