// covariance, manually written against the math.js-style API.
var COV_N = 32;
function bench_main() {
  var data = mathlib.zeros(COV_N, COV_N);
  for (var i = 0; i < COV_N; i++)
    for (var j = 0; j < COV_N; j++)
      mathlib.set(data, i, j, (i * j % COV_N) / COV_N);
  var mean = new Array(COV_N);
  for (var j = 0; j < COV_N; j++) {
    var s = 0;
    for (var i = 0; i < COV_N; i++) s = s + mathlib.get(data, i, j);
    mean[j] = s / COV_N;
  }
  for (var i = 0; i < COV_N; i++)
    for (var j = 0; j < COV_N; j++)
      mathlib.set(data, i, j, mathlib.get(data, i, j) - mean[j]);
  var cov = mathlib.zeros(COV_N, COV_N);
  for (var i = 0; i < COV_N; i++)
    for (var j = i; j < COV_N; j++) {
      var c = 0;
      for (var k = 0; k < COV_N; k++)
        c = c + mathlib.get(data, k, i) * mathlib.get(data, k, j);
      c = c / (COV_N - 1);
      mathlib.set(cov, i, j, c);
      mathlib.set(cov, j, i, c);
    }
  console.log(mathlib.sum(cov));
}
