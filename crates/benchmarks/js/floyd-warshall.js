// floyd-warshall, manually written with arrays-of-arrays and Math.min,
// the natural hand-written style (boxed rows, function call per cell).
var FW_N = 32;
function bench_main() {
  var path = new Array(FW_N);
  for (var i = 0; i < FW_N; i++) {
    path[i] = new Array(FW_N);
    for (var j = 0; j < FW_N; j++) {
      path[i][j] = (i * j) % 7 + 1;
      if ((i + j) % 13 === 0 || (i + j) % 7 === 0 || (i + j) % 11 === 0)
        path[i][j] = 999;
    }
  }
  for (var k = 0; k < FW_N; k++)
    for (var i = 0; i < FW_N; i++)
      for (var j = 0; j < FW_N; j++)
        path[i][j] = Math.min(path[i][j], path[i][k] + path[k][j]);
  var s = 0;
  for (var i = 0; i < FW_N; i++)
    for (var j = 0; j < FW_N; j++) s = s + path[i][j];
  console.log(s);
}
