// Single-threaded JS port of the stream transcoder (the paper's
// node-ffmpeg side has no parallelization).
var TC_STREAMLEN = 2097152;
var TC_CHUNK = 4096;
var tc_state = 0;
var tc_in = new Uint8Array(4096);
var tc_out = new Uint8Array(4096);
var tc_quant = new Int32Array(256);

function tc_next() {
  tc_state = (Math.imul(tc_state, 1664525) + 1013904223) | 0;
  return (tc_state >>> 24) & 255;
}
function build_tables() {
  for (var i = 0; i < 256; i++) {
    tc_quant[i] = ((i * 7 + (i >> 3)) % 256) | 0;
  }
}
function transcode_chunk(len) {
  var prev = 0;
  var acc = 0;
  for (var i = 0; i < len; i++) {
    var v = tc_quant[tc_in[i]];
    v = v * 2 - 128;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    var d = v - prev;
    prev = v;
    tc_out[i] = d & 255;
    acc = (Math.imul(acc, 31) + tc_out[i]) & 16777215;
  }
  return acc;
}
function bench_main() {
  build_tables();
  tc_state = 20260706;
  var chunks = TC_STREAMLEN / TC_CHUNK;
  var chk = 0;
  for (var c = 0; c < chunks; c++) {
    for (var i = 0; i < TC_CHUNK; i++) tc_in[i] = tc_next();
    chk = (chk ^ transcode_chunk(TC_CHUNK)) & 16777215;
  }
  console.log(chk);
}
