// syr2k, manually written against the math.js-style API:
// C = alpha*(A*B^T + B*A^T) + beta*C expressed with whole-matrix ops,
// as a math.js user would write it (transpose materializes a copy).
var SK_N = 32;
function transpose(a) {
  var out = mathlib.zeros(a.cols, a.rows);
  for (var i = 0; i < a.rows; i++)
    for (var j = 0; j < a.cols; j++)
      out.data[j * out.cols + i] = a.data[i * a.cols + j];
  return out;
}
function mk(seed) {
  var m = mathlib.zeros(SK_N, SK_N);
  for (var i = 0; i < SK_N; i++)
    for (var j = 0; j < SK_N; j++)
      mathlib.set(m, i, j, ((i * j + seed) % SK_N) / SK_N);
  return m;
}
function bench_main() {
  var A = mk(1);
  var B = mk(2);
  var C = mk(3);
  var t1 = mathlib.multiply(A, transpose(B));
  var t2 = mathlib.multiply(B, transpose(A));
  var r = mathlib.add(mathlib.scale(mathlib.add(t1, t2), 1.5), mathlib.scale(C, 1.2));
  console.log(mathlib.sum(r));
}
