// ludcmp, manually written with plain 2-D-style arrays (array of arrays),
// the idiomatic hand-written JS structure.
var LU_N = 32;
function bench_main() {
  var A = new Array(LU_N);
  for (var i = 0; i < LU_N; i++) {
    A[i] = new Array(LU_N);
    for (var j = 0; j <= i; j++) A[i][j] = (-(j % LU_N)) / LU_N + 1;
    for (var j = i + 1; j < LU_N; j++) A[i][j] = 0;
    A[i][i] = A[i][i] + LU_N;
  }
  var b = new Array(LU_N);
  var x = new Array(LU_N);
  var y = new Array(LU_N);
  for (var i = 0; i < LU_N; i++) { b[i] = (i + 1) / LU_N / 2 + 4; x[i] = 0; y[i] = 0; }
  for (var i = 0; i < LU_N; i++) {
    for (var j = 0; j < i; j++) {
      var w = A[i][j];
      for (var k = 0; k < j; k++) w = w - A[i][k] * A[k][j];
      A[i][j] = w / A[j][j];
    }
    for (var j = i; j < LU_N; j++) {
      var w = A[i][j];
      for (var k = 0; k < i; k++) w = w - A[i][k] * A[k][j];
      A[i][j] = w;
    }
  }
  for (var i = 0; i < LU_N; i++) {
    var w = b[i];
    for (var j = 0; j < i; j++) w = w - A[i][j] * y[j];
    y[i] = w;
  }
  for (var i = LU_N - 1; i >= 0; i--) {
    var w = y[i];
    for (var j = i + 1; j < LU_N; j++) w = w - A[i][j] * x[j];
    x[i] = w / A[i][i];
  }
  var s = 0;
  for (var i = 0; i < LU_N; i++) s = s + x[i];
  console.log(s);
}
