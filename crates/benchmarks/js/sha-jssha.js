// SHA-256 in pure JS (jsSHA-style): the full compression function written
// out by hand over typed arrays.
var SHAJ_ITERS = 32;
var sha_K = new Array(64);
function sha_init_k() {
  // First 32 bits of the fractional parts of the cube roots of the first
  // 64 primes, computed numerically like jsSHA's table initializer.
  var primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
                137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
                227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311];
  for (var i = 0; i < 64; i++) {
    var cube = Math.pow(primes[i], 1 / 3);
    sha_K[i] = Math.floor((cube - Math.floor(cube)) * 4294967296) >>> 0;
  }
}
function rotr(x, n) { return ((x >>> n) | (x << (32 - n))) >>> 0; }
function bench_main() {
  sha_init_k();
  var msg = new Uint8Array(SHAJ_ITERS * 64);
  var seed = 42;
  for (var i = 0; i < msg.length; i++) {
    seed = (Math.imul(seed, 69069) + 1) | 0;
    msg[i] = (seed >>> 24) & 255;
  }
  var H = new Array(8);
  H[0] = 0x6a09e667 >>> 0; H[1] = 0xbb67ae85 >>> 0; H[2] = 0x3c6ef372; H[3] = 0xa54ff53a >>> 0;
  H[4] = 0x510e527f; H[5] = 0x9b05688c >>> 0; H[6] = 0x1f83d9ab; H[7] = 0x5be0cd19;
  var W = new Array(64);
  for (var base = 0; base + 64 <= msg.length; base += 64) {
    for (var t = 0; t < 16; t++) {
      W[t] = ((msg[base + t * 4] << 24) | (msg[base + t * 4 + 1] << 16)
            | (msg[base + t * 4 + 2] << 8) | msg[base + t * 4 + 3]) >>> 0;
    }
    for (var t = 16; t < 64; t++) {
      var s0 = (rotr(W[t - 15], 7) ^ rotr(W[t - 15], 18) ^ (W[t - 15] >>> 3)) >>> 0;
      var s1 = (rotr(W[t - 2], 17) ^ rotr(W[t - 2], 19) ^ (W[t - 2] >>> 10)) >>> 0;
      W[t] = (W[t - 16] + s0 + W[t - 7] + s1) >>> 0;
    }
    var a = H[0]; var b = H[1]; var c = H[2]; var d = H[3];
    var e = H[4]; var f = H[5]; var g = H[6]; var h = H[7];
    for (var t = 0; t < 64; t++) {
      var S1 = (rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)) >>> 0;
      var ch = ((e & f) ^ (~e & g)) >>> 0;
      var temp1 = (h + S1 + ch + sha_K[t] + W[t]) >>> 0;
      var S0 = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) >>> 0;
      var maj = ((a & b) ^ (a & c) ^ (b & c)) >>> 0;
      var temp2 = (S0 + maj) >>> 0;
      h = g; g = f; f = e; e = (d + temp1) >>> 0;
      d = c; c = b; b = a; a = (temp1 + temp2) >>> 0;
    }
    H[0] = (H[0] + a) >>> 0; H[1] = (H[1] + b) >>> 0; H[2] = (H[2] + c) >>> 0; H[3] = (H[3] + d) >>> 0;
    H[4] = (H[4] + e) >>> 0; H[5] = (H[5] + f) >>> 0; H[6] = (H[6] + g) >>> 0; H[7] = (H[7] + h) >>> 0;
  }
  console.log((H[0] ^ H[1] ^ H[2] ^ H[3] ^ H[4] ^ H[5] ^ H[6] ^ H[7]) | 0);
}
