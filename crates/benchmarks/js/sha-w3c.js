// SHA via the Web Cryptography API analogue (crypto.sha256): the engine
// does the hashing natively — the 44-LOC Table 9 variant that beats
// everything.
var SHAW_ITERS = 32;
function bench_main() {
  var msg = new Uint8Array(SHAW_ITERS * 64);
  var seed = 42;
  for (var i = 0; i < msg.length; i++) {
    seed = (Math.imul(seed, 69069) + 1) | 0;
    msg[i] = (seed >>> 24) & 255;
  }
  var digest = crypto.sha256(msg);
  var acc = 0;
  for (var i = 0; i < digest.length; i++) acc = (acc ^ (digest[i] << (i % 24))) | 0;
  console.log(acc);
}
