// heat-3d, hand-written "W3C style": flat typed arrays and nothing else
// (the short 63-LOC variant of Table 9).
var H3_N = 16;
var H3_T = 8;
function bench_main() {
  var n = H3_N;
  var A = new Float64Array(n * n * n);
  var B = new Float64Array(n * n * n);
  for (var i = 0; i < n; i++)
    for (var j = 0; j < n; j++)
      for (var k = 0; k < n; k++) {
        A[(i * n + j) * n + k] = (i + j + (n - k)) * 10 / n;
        B[(i * n + j) * n + k] = A[(i * n + j) * n + k];
      }
  for (var t = 1; t <= H3_T; t++) {
    for (var i = 1; i < n - 1; i++)
      for (var j = 1; j < n - 1; j++)
        for (var k = 1; k < n - 1; k++) {
          var c = (i * n + j) * n + k;
          B[c] = 0.125 * (A[((i + 1) * n + j) * n + k] - 2 * A[c] + A[((i - 1) * n + j) * n + k])
               + 0.125 * (A[(i * n + j + 1) * n + k] - 2 * A[c] + A[(i * n + j - 1) * n + k])
               + 0.125 * (A[c + 1] - 2 * A[c] + A[c - 1])
               + A[c];
        }
    for (var i = 1; i < n - 1; i++)
      for (var j = 1; j < n - 1; j++)
        for (var k = 1; k < n - 1; k++) {
          var c = (i * n + j) * n + k;
          A[c] = 0.125 * (B[((i + 1) * n + j) * n + k] - 2 * B[c] + B[((i - 1) * n + j) * n + k])
               + 0.125 * (B[(i * n + j + 1) * n + k] - 2 * B[c] + B[(i * n + j - 1) * n + k])
               + 0.125 * (B[c + 1] - 2 * B[c] + B[c - 1])
               + B[c];
        }
  }
  var s = 0;
  for (var i = 0; i < n * n * n; i++) s = s + A[i];
  console.log(s);
}
