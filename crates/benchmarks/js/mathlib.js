// A miniature math.js-style dense matrix library: object-wrapped matrices
// backed by plain (non-typed) arrays, the representation real math.js uses.
var mathlib = {
  zeros: function (r, c) {
    var data = new Array(r * c);
    for (var i = 0; i < r * c; i++) data[i] = 0;
    return { rows: r, cols: c, data: data };
  },
  get: function (m, i, j) { return m.data[i * m.cols + j]; },
  set: function (m, i, j, v) { m.data[i * m.cols + j] = v; },
  multiply: function (a, b) {
    var out = mathlib.zeros(a.rows, b.cols);
    for (var i = 0; i < a.rows; i++) {
      for (var j = 0; j < b.cols; j++) {
        var s = 0;
        for (var k = 0; k < a.cols; k++) {
          s = s + a.data[i * a.cols + k] * b.data[k * b.cols + j];
        }
        out.data[i * out.cols + j] = s;
      }
    }
    return out;
  },
  add: function (a, b) {
    var out = mathlib.zeros(a.rows, a.cols);
    for (var i = 0; i < a.data.length; i++) out.data[i] = a.data[i] + b.data[i];
    return out;
  },
  scale: function (a, f) {
    var out = mathlib.zeros(a.rows, a.cols);
    for (var i = 0; i < a.data.length; i++) out.data[i] = a.data[i] * f;
    return out;
  },
  sum: function (a) {
    var s = 0;
    for (var i = 0; i < a.data.length; i++) s = s + a.data[i];
    return s;
  }
};
