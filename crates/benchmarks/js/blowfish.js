// Blowfish, hand-written naively: plain arrays, per-byte helper calls —
// the slow style Table 9 observes for manual BLOWFISH.
var BF_ITERS = 32;
var bf_P = new Array(18);
var bf_S = new Array(1024);
var bf_gen = 0;
var bf_l = 0;
var bf_r = 0;

function bf_next() {
  bf_gen = bf_gen ^ (bf_gen << 13);
  bf_gen = bf_gen ^ (bf_gen >>> 17);
  bf_gen = bf_gen ^ (bf_gen << 5);
  return bf_gen >>> 0;
}
function byte_of(x, i) {
  return (x >>> (24 - 8 * i)) & 255;
}
function bf_F(x) {
  var a = byte_of(x, 0);
  var b = byte_of(x, 1);
  var c = byte_of(x, 2);
  var d = byte_of(x, 3);
  return ((((bf_S[a] + bf_S[256 + b]) >>> 0) ^ bf_S[512 + c]) + bf_S[768 + d]) >>> 0;
}
function encrypt_pair() {
  var l = bf_l >>> 0;
  var r = bf_r >>> 0;
  for (var i = 0; i < 16; i++) {
    l = (l ^ bf_P[i]) >>> 0;
    r = (bf_F(l) ^ r) >>> 0;
    var t = l; l = r; r = t;
  }
  var t = l; l = r; r = t;
  r = (r ^ bf_P[16]) >>> 0;
  l = (l ^ bf_P[17]) >>> 0;
  bf_l = l;
  bf_r = r;
}
function bench_main() {
  bf_gen = 2463534242 | 0;
  for (var i = 0; i < 18; i++) bf_P[i] = bf_next();
  for (var i = 0; i < 1024; i++) bf_S[i] = bf_next();
  bf_l = 0; bf_r = 0;
  for (var i = 0; i < 18; i += 2) {
    encrypt_pair();
    bf_P[i] = bf_l;
    bf_P[i + 1] = bf_r;
  }
  for (var i = 0; i < 1024; i += 2) {
    encrypt_pair();
    bf_S[i] = bf_l;
    bf_S[i + 1] = bf_r;
  }
  var acc = 0;
  bf_l = 0x01234567;
  bf_r = 0x89abcdef >>> 0;
  for (var i = 0; i < BF_ITERS * 8; i++) {
    encrypt_pair();
    acc = (acc ^ bf_l ^ (bf_r >>> 3)) >>> 0;
    bf_l = (bf_l + 0x9e3779b9) >>> 0;
  }
  console.log(acc & 0x7fffffff);
}
