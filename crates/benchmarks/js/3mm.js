// 3mm, manually written against the math.js-style API (Table 9).
var MM_N = 32;
function mk(seed) {
  var m = mathlib.zeros(MM_N, MM_N);
  for (var i = 0; i < MM_N; i++)
    for (var j = 0; j < MM_N; j++)
      mathlib.set(m, i, j, ((i * j + seed) % MM_N) / (5 * MM_N));
  return m;
}
function bench_main() {
  var A = mk(1);
  var B = mk(2);
  var C = mk(3);
  var D = mk(4);
  var E = mathlib.multiply(A, B);
  var F = mathlib.multiply(C, D);
  var G = mathlib.multiply(E, F);
  console.log(mathlib.sum(G));
}
