// heat-3d via the math.js-style library: each z-slice is an object matrix
// and every access goes through getter/setter calls — the heavyweight
// variant of Table 9.
var HM_N = 16;
var HM_T = 8;
function slice_get(s, j, k) { return mathlib.get(s, j, k); }
function slice_set(s, j, k, v) { mathlib.set(s, j, k, v); }
function bench_main() {
  var n = HM_N;
  var A = new Array(n);
  var B = new Array(n);
  for (var i = 0; i < n; i++) {
    A[i] = mathlib.zeros(n, n);
    B[i] = mathlib.zeros(n, n);
    for (var j = 0; j < n; j++)
      for (var k = 0; k < n; k++) {
        slice_set(A[i], j, k, (i + j + (n - k)) * 10 / n);
        slice_set(B[i], j, k, slice_get(A[i], j, k));
      }
  }
  for (var t = 1; t <= HM_T; t++) {
    for (var i = 1; i < n - 1; i++)
      for (var j = 1; j < n - 1; j++)
        for (var k = 1; k < n - 1; k++) {
          var c = slice_get(A[i], j, k);
          slice_set(B[i], j, k,
            0.125 * (slice_get(A[i + 1], j, k) - 2 * c + slice_get(A[i - 1], j, k))
          + 0.125 * (slice_get(A[i], j + 1, k) - 2 * c + slice_get(A[i], j - 1, k))
          + 0.125 * (slice_get(A[i], j, k + 1) - 2 * c + slice_get(A[i], j, k - 1))
          + c);
        }
    for (var i = 1; i < n - 1; i++)
      for (var j = 1; j < n - 1; j++)
        for (var k = 1; k < n - 1; k++) {
          var c = slice_get(B[i], j, k);
          slice_set(A[i], j, k,
            0.125 * (slice_get(B[i + 1], j, k) - 2 * c + slice_get(B[i - 1], j, k))
          + 0.125 * (slice_get(B[i], j + 1, k) - 2 * c + slice_get(B[i], j - 1, k))
          + 0.125 * (slice_get(B[i], j, k + 1) - 2 * c + slice_get(B[i], j, k - 1))
          + c);
        }
  }
  var s = 0;
  for (var i = 0; i < n; i++) s = s + mathlib.sum(A[i]);
  console.log(s);
}
