// AES-128, hand-written the way fast JS crypto libraries are: typed
// arrays and a precomputed S-box — this careful version beats the
// compiled one (Table 9's AES row).
var AES_ITERS = 32;
var aes_sbox = new Uint8Array(256);
var aes_key = new Uint8Array(16);
var aes_state = new Uint8Array(16);
var aes_rk = new Uint8Array(176);
var aes_gen = 0;

function aes_lcg() {
  aes_gen = (Math.imul(aes_gen, 1103515245) + 12345) | 0;
  return (aes_gen >>> 8) & 255;
}
function xtime(x) {
  var r = x << 1;
  if (x & 0x80) r = r ^ 0x1b;
  return r & 0xff;
}
function gmul(a, b) {
  var p = 0;
  for (var i = 0; i < 8; i++) {
    if (b & 1) p = p ^ a;
    a = xtime(a);
    b = b >>> 1;
  }
  return p & 0xff;
}
function build_sbox() {
  for (var i = 0; i < 256; i++) {
    var inv = 0;
    if (i !== 0) {
      for (var c = 1; c < 256; c++) {
        if (gmul(i, c) === 1) { inv = c; break; }
      }
    }
    var x = inv;
    var y = x;
    for (var k = 0; k < 4; k++) {
      y = ((y << 1) | (y >>> 7)) & 0xff;
      x = x ^ y;
    }
    aes_sbox[i] = x ^ 0x63;
  }
}
function key_expansion() {
  var rcon = 1;
  for (var i = 0; i < 16; i++) aes_rk[i] = aes_key[i];
  for (var i = 16; i < 176; i += 4) {
    var t0 = aes_rk[i - 4];
    var t1 = aes_rk[i - 3];
    var t2 = aes_rk[i - 2];
    var t3 = aes_rk[i - 1];
    if (i % 16 === 0) {
      var tmp = t0;
      t0 = aes_sbox[t1] ^ rcon;
      t1 = aes_sbox[t2];
      t2 = aes_sbox[t3];
      t3 = aes_sbox[tmp];
      rcon = xtime(rcon);
    }
    aes_rk[i] = aes_rk[i - 16] ^ t0;
    aes_rk[i + 1] = aes_rk[i - 15] ^ t1;
    aes_rk[i + 2] = aes_rk[i - 14] ^ t2;
    aes_rk[i + 3] = aes_rk[i - 13] ^ t3;
  }
}
function encrypt_block() {
  for (var i = 0; i < 16; i++) aes_state[i] = aes_state[i] ^ aes_rk[i];
  for (var round = 1; round <= 10; round++) {
    for (var i = 0; i < 16; i++) aes_state[i] = aes_sbox[aes_state[i]];
    var t = aes_state[1];
    aes_state[1] = aes_state[5]; aes_state[5] = aes_state[9]; aes_state[9] = aes_state[13]; aes_state[13] = t;
    t = aes_state[2]; aes_state[2] = aes_state[10]; aes_state[10] = t;
    t = aes_state[6]; aes_state[6] = aes_state[14]; aes_state[14] = t;
    t = aes_state[3]; aes_state[3] = aes_state[15]; aes_state[15] = aes_state[11]; aes_state[11] = aes_state[7]; aes_state[7] = t;
    if (round < 10) {
      for (var c = 0; c < 4; c++) {
        var a0 = aes_state[4 * c];
        var a1 = aes_state[4 * c + 1];
        var a2 = aes_state[4 * c + 2];
        var a3 = aes_state[4 * c + 3];
        aes_state[4 * c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        aes_state[4 * c + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        aes_state[4 * c + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        aes_state[4 * c + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
      }
    }
    for (var i = 0; i < 16; i++) aes_state[i] = aes_state[i] ^ aes_rk[round * 16 + i];
  }
}
function bench_main() {
  aes_gen = 998244353;
  build_sbox();
  for (var i = 0; i < 16; i++) aes_key[i] = aes_lcg();
  key_expansion();
  for (var i = 0; i < 16; i++) aes_state[i] = aes_lcg();
  var acc = 0;
  for (var b = 0; b < AES_ITERS; b++) {
    encrypt_block();
    for (var i = 0; i < 16; i++) {
      acc = (Math.imul(acc, 31) + aes_state[i]) & 0xffffff;
      aes_state[i] = aes_state[i] ^ aes_lcg();
    }
  }
  console.log(acc);
}
