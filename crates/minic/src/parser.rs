//! MiniC recursive-descent parser.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::{Tok, Token};

/// Parse a token stream into a [`Unit`].
pub fn parse(tokens: Vec<Token>) -> Result<Unit, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at(&Tok::Eof) {
        p.item_into(&mut items)?;
    }
    Ok(Unit { items })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: String) -> CompileError {
        CompileError::Parse {
            line: self.line(),
            message,
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Is the current token the start of a type name?
    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt
                | Tok::KwLong
                | Tok::KwChar
                | Tok::KwFloat
                | Tok::KwDouble
                | Tok::KwVoid
                | Tok::KwUnsigned
                | Tok::KwSigned
                | Tok::KwConst
                | Tok::KwStatic
                | Tok::KwUnion
        )
    }

    /// Parse a type name: `[const|static] [unsigned|signed] base…`.
    /// Returns `(type, is_const)`.
    fn type_name(&mut self) -> Result<(TypeName, bool), CompileError> {
        let mut is_const = false;
        let mut unsigned = false;
        let mut signed_seen = false;
        loop {
            match self.peek() {
                Tok::KwConst => {
                    is_const = true;
                    self.bump();
                }
                Tok::KwStatic => {
                    self.bump();
                }
                Tok::KwUnsigned => {
                    unsigned = true;
                    self.bump();
                }
                Tok::KwSigned => {
                    signed_seen = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let _ = signed_seen;
        let base = match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                TypeName::Int { unsigned }
            }
            Tok::KwLong => {
                self.bump();
                // `long long`, `long int`, `long long int`.
                while matches!(self.peek(), Tok::KwLong | Tok::KwInt) {
                    self.bump();
                }
                TypeName::Long { unsigned }
            }
            Tok::KwChar => {
                self.bump();
                TypeName::Char { unsigned }
            }
            Tok::KwFloat => {
                self.bump();
                TypeName::Float
            }
            Tok::KwDouble => {
                self.bump();
                TypeName::Double
            }
            Tok::KwVoid => {
                self.bump();
                TypeName::Void
            }
            Tok::KwUnion => {
                self.bump();
                let tag = self.ident()?;
                TypeName::Union(tag)
            }
            _ if unsigned => TypeName::Int { unsigned: true }, // bare `unsigned`
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        // Trailing `const` (e.g. `double const`).
        if self.eat(&Tok::KwConst) {
            is_const = true;
        }
        Ok((base, is_const))
    }

    fn item_into(&mut self, items: &mut Vec<Item>) -> Result<(), CompileError> {
        // `union U { fields };` definition.
        if self.at(&Tok::KwUnion) {
            let save = self.pos;
            self.bump();
            let name = self.ident()?;
            if self.at(&Tok::LBrace) {
                self.bump();
                let mut fields = Vec::new();
                while !self.at(&Tok::RBrace) {
                    let (ty, _) = self.type_name()?;
                    let fname = self.ident()?;
                    self.expect(&Tok::Semi, "';'")?;
                    fields.push((ty, fname));
                }
                self.expect(&Tok::RBrace, "'}'")?;
                self.expect(&Tok::Semi, "';'")?;
                items.push(Item::UnionDef { name, fields });
                return Ok(());
            }
            // `union U var;` — rewind and fall through to global/func path.
            self.pos = save;
        }

        let (ty, is_const) = self.type_name()?;
        let name = self.ident()?;
        if self.at(&Tok::LParen) {
            // Function definition.
            self.bump();
            let mut params = Vec::new();
            if !self.at(&Tok::RParen) {
                if self.at(&Tok::KwVoid) && self.tokens[self.pos + 1].tok == Tok::RParen {
                    self.bump(); // f(void)
                } else {
                    loop {
                        let (pty, _) = self.type_name()?;
                        let pname = self.ident()?;
                        params.push((pty, pname));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
            }
            self.expect(&Tok::RParen, "')'")?;
            let body = self.compound()?;
            items.push(Item::Func {
                ret: ty,
                name,
                params,
                body,
            });
            return Ok(());
        }
        // Global scalars/arrays, possibly a comma-separated declarator list.
        let mut name = name;
        loop {
            let mut dims = Vec::new();
            while self.eat(&Tok::LBracket) {
                dims.push(self.expression()?);
                self.expect(&Tok::RBracket, "']'")?;
            }
            let init = if self.eat(&Tok::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            items.push(Item::Global {
                ty: ty.clone(),
                name,
                dims,
                init,
                is_const,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
            name = self.ident()?;
        }
        self.expect(&Tok::Semi, "';'")?;
        Ok(())
    }

    fn initializer(&mut self) -> Result<Init, CompileError> {
        if self.eat(&Tok::LBrace) {
            let mut items = Vec::new();
            if !self.at(&Tok::RBrace) {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    if self.at(&Tok::RBrace) {
                        break; // trailing comma
                    }
                }
            }
            self.expect(&Tok::RBrace, "'}'")?;
            Ok(Init::List(items))
        } else {
            Ok(Init::Scalar(self.ternary()?))
        }
    }

    fn compound(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut body = Vec::new();
        while !self.at(&Tok::RBrace) && !self.at(&Tok::Eof) {
            body.push(self.statement()?);
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(body)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.at(&Tok::LBrace) {
            self.compound()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, CompileError> {
        if self.at_type() {
            return self.decl_stmt();
        }
        match self.peek().clone() {
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                let then = self.block_or_single()?;
                let els = if self.eat(&Tok::KwElse) {
                    self.block_or_single()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While(cond, body))
            }
            Tok::KwDo => {
                self.bump();
                let body = self.block_or_single()?;
                self.expect(&Tok::KwWhile, "'while'")?;
                self.expect(&Tok::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.at_type() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expression()?;
                    self.expect(&Tok::Semi, "';'")?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Tok::Semi, "';'")?;
                let step = if self.at(&Tok::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(&Tok::RParen, "')'")?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::KwReturn => {
                self.bump();
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expression()?;
                    self.expect(&Tok::Semi, "';'")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Continue)
            }
            Tok::KwSwitch => {
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let scrut = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::LBrace, "'{'")?;
                let mut arms = Vec::new();
                while !self.at(&Tok::RBrace) {
                    let value = if self.eat(&Tok::KwCase) {
                        let v = self.ternary()?;
                        Some(v)
                    } else if self.eat(&Tok::KwDefault) {
                        None
                    } else {
                        return Err(self.err(format!(
                            "expected 'case' or 'default', found {:?}",
                            self.peek()
                        )));
                    };
                    self.expect(&Tok::Colon, "':'")?;
                    let mut body = Vec::new();
                    while !matches!(self.peek(), Tok::KwCase | Tok::KwDefault | Tok::RBrace) {
                        body.push(self.statement()?);
                    }
                    arms.push(SwitchArm { value, body });
                }
                self.expect(&Tok::RBrace, "'}'")?;
                Ok(Stmt::Switch(scrut, arms))
            }
            Tok::LBrace => Ok(Stmt::Block(self.compound()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            Tok::KwTry => {
                self.bump();
                let body = self.compound()?;
                self.expect(&Tok::KwCatch, "'catch'")?;
                self.expect(&Tok::LParen, "'('")?;
                // `catch (...)` or `catch (type name)` — we ignore the binder.
                while !self.at(&Tok::RParen) && !self.at(&Tok::Eof) {
                    self.bump();
                }
                self.expect(&Tok::RParen, "')'")?;
                let catch = self.compound()?;
                Ok(Stmt::Try(body, catch))
            }
            Tok::KwThrow => {
                self.bump();
                let e = self.expression()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Throw(e))
            }
            _ => {
                let e = self.expression()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let (ty, _) = self.type_name()?;
        let mut decls = Vec::new();
        loop {
            let name = self.ident()?;
            let mut dims = Vec::new();
            while self.eat(&Tok::LBracket) {
                dims.push(self.expression()?);
                self.expect(&Tok::RBracket, "']'")?;
            }
            let init = if self.eat(&Tok::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(Stmt::Decl {
                ty: ty.clone(),
                name,
                dims,
                init,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi, "';'")?;
        if decls.len() == 1 {
            Ok(decls.pop().expect("one decl"))
        } else {
            Ok(Stmt::Group(decls))
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expression(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Mod),
            Tok::AmpAssign => Some(BinOp::BitAnd),
            Tok::PipeAssign => Some(BinOp::BitOr),
            Tok::CaretAssign => Some(BinOp::BitXor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let target = self.expr_to_target(lhs)?;
        let value = self.assignment()?;
        Ok(Expr::Assign {
            target,
            op,
            value: Box::new(value),
        })
    }

    fn expr_to_target(&self, e: Expr) -> Result<Target, CompileError> {
        match e {
            Expr::Name(n) => Ok(Target::Name(n)),
            Expr::Index(base, idx) => Ok(Target::Index(base, idx)),
            Expr::Member(obj, field) => Ok(Target::Member(obj, field)),
            other => Err(CompileError::Parse {
                line: self.line(),
                message: format!("invalid assignment target: {other:?}"),
            }),
        }
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.logic_or()?;
        if self.eat(&Tok::Question) {
            let a = self.assignment()?;
            self.expect(&Tok::Colon, "':'")?;
            let b = self.ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn logic_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.logic_and()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.logic_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_or()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_xor()?;
        while self.at(&Tok::Pipe) {
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary(BinOp::BitOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_and()?;
        while self.at(&Tok::Caret) {
            self.bump();
            let rhs = self.bit_and()?;
            lhs = Expr::Binary(BinOp::BitXor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.equality()?;
        while self.at(&Tok::Amp) {
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinOp::BitAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::NotEq => BinOp::Ne,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Plus => {
                self.bump();
                self.unary()
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let delta = if self.bump() == Tok::PlusPlus { 1 } else { -1 };
                let e = self.unary()?;
                let target = self.expr_to_target(e)?;
                Ok(Expr::IncDec { target, delta })
            }
            Tok::LParen => {
                // Cast or parenthesized expression.
                let save = self.pos;
                self.bump();
                if self.at_type() {
                    let (ty, _) = self.type_name()?;
                    if self.eat(&Tok::RParen) {
                        let inner = self.unary()?;
                        return Ok(Expr::Cast(ty, Box::new(inner)));
                    }
                }
                self.pos = save;
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    // Collapse `a[i][j]` into Index(name, [i, j]).
                    self.bump();
                    let idx = self.expression()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    e = match e {
                        Expr::Name(n) => Expr::Index(n, vec![idx]),
                        Expr::Index(n, mut idxs) => {
                            idxs.push(idx);
                            Expr::Index(n, idxs)
                        }
                        other => return Err(self.err(format!("cannot index expression {other:?}"))),
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr::Member(Box::new(e), field);
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    let delta = if self.bump() == Tok::PlusPlus { 1 } else { -1 };
                    let target = self.expr_to_target(e)?;
                    e = Expr::IncDec { target, delta };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::Int(v)),
            Tok::CharLit(v) => Ok(Expr::Int(v)),
            Tok::FloatLit(v) => Ok(Expr::Float(v)),
            Tok::StrLit(s) => Ok(Expr::Str(s)),
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Name(name))
                }
            }
            Tok::LParen => {
                let e = self.expression()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn p(src: &str) -> Unit {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_global_array_and_kernel() {
        let u = p("double A[10][10];\n\
                   void kernel(int n) {\n\
                     for (int i = 0; i < n; i++)\n\
                       for (int j = 0; j < n; j++)\n\
                         A[i][j] = (double)(i * j) / n;\n\
                   }");
        assert_eq!(u.items.len(), 2);
        assert!(matches!(&u.items[0], Item::Global { dims, .. } if dims.len() == 2));
        assert!(matches!(&u.items[1], Item::Func { params, .. } if params.len() == 1));
    }

    #[test]
    fn parses_multidim_index_chain() {
        let u = p("int x; void f() { x = B[1][2][3]; }");
        let Item::Func { body, .. } = &u.items[1] else {
            panic!()
        };
        match &body[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => {
                assert!(matches!(value.as_ref(), Expr::Index(n, idxs)
                    if n == "B" && idxs.len() == 3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_casts_vs_parens() {
        let u = p("void f(int i) { double d; d = (double)i; d = (d) + 1.0; }");
        let Item::Func { body, .. } = &u.items[0] else {
            panic!()
        };
        assert!(matches!(&body[1], Stmt::Expr(Expr::Assign { value, .. })
            if matches!(value.as_ref(), Expr::Cast(TypeName::Double, _))));
    }

    #[test]
    fn parses_unsigned_long_long() {
        let u = p("unsigned long long mask;");
        assert!(matches!(
            &u.items[0],
            Item::Global {
                ty: TypeName::Long { unsigned: true },
                ..
            }
        ));
    }

    #[test]
    fn parses_switch_with_cases() {
        let u = p("int f(int op) { switch (op) { case 0: return 1; case 2: return 3; default: return 9; } }");
        let Item::Func { body, .. } = &u.items[0] else {
            panic!()
        };
        match &body[0] {
            Stmt::Switch(_, arms) => {
                assert_eq!(arms.len(), 3);
                assert!(arms[2].value.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_try_catch_throw_and_union() {
        let u = p("union U { double d; long long ll; };\n\
                   union U u;\n\
                   void f() { try { throw 1; } catch (...) { } u.d = 1.0; }");
        assert!(matches!(&u.items[0], Item::UnionDef { fields, .. } if fields.len() == 2));
        assert!(matches!(&u.items[1], Item::Global { ty: TypeName::Union(t), .. } if t == "U"));
        let Item::Func { body, .. } = &u.items[2] else {
            panic!()
        };
        assert!(matches!(&body[0], Stmt::Try(..)));
        assert!(matches!(
            &body[1],
            Stmt::Expr(Expr::Assign {
                target: Target::Member(..),
                ..
            })
        ));
    }

    #[test]
    fn parses_global_initializer_lists() {
        let u = p("const int tab[2][3] = { {1, 2, 3}, {4, 5, 6} };");
        match &u.items[0] {
            Item::Global {
                init: Some(Init::List(rows)),
                is_const,
                ..
            } => {
                assert!(*is_const);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_do_while_and_compound_assign() {
        let u = p("void f(int n) { int i = 0; do { i <<= 1; i |= 3; } while (i < n); }");
        let Item::Func { body, .. } = &u.items[0] else {
            panic!()
        };
        assert!(matches!(&body[1], Stmt::DoWhile(..)));
    }

    #[test]
    fn ternary_binds_tighter_than_assign() {
        let u = p("int x; void f(int a) { x = a > 0 ? 1 : 2; }");
        let Item::Func { body, .. } = &u.items[1] else {
            panic!()
        };
        assert!(matches!(&body[0], Stmt::Expr(Expr::Assign { value, .. })
            if matches!(value.as_ref(), Expr::Ternary(..))));
    }
}
