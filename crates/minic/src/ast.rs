//! MiniC abstract syntax tree (pre-semantic-analysis).

/// A parsed type name.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeName {
    /// `int` / `unsigned int`.
    Int {
        /// `unsigned` qualifier present.
        unsigned: bool,
    },
    /// `long` / `long long` / unsigned variants (all 64-bit here).
    Long {
        /// `unsigned` qualifier present.
        unsigned: bool,
    },
    /// `char` / `unsigned char`.
    Char {
        /// `unsigned` qualifier present.
        unsigned: bool,
    },
    /// `float` (32-bit).
    Float,
    /// `double` (64-bit).
    Double,
    /// `void` (function returns only).
    Void,
    /// `union Name` — only valid until the source transformer runs (§3.1).
    Union(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise not (`~`).
    BitNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // 1:1 with C operators.
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And, // &&
    Or,  // ||
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Scalar variable.
    Name(String),
    /// Array element: base name + index expressions (multi-dimensional).
    Index(String, Vec<Expr>),
    /// Union member (pre-transform only).
    Member(Box<Expr>, String),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (also char literals).
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal (only as `print_str` argument).
    Str(String),
    /// Variable reference.
    Name(String),
    /// `a[i][j]…`.
    Index(String, Vec<Expr>),
    /// `f(args…)`.
    Call(String, Vec<Expr>),
    /// Unary op.
    Unary(UnOp, Box<Expr>),
    /// Binary op (including `&&`/`||`, which sema keeps short-circuit).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `(type) expr`.
    Cast(TypeName, Box<Expr>),
    /// Assignment as an expression; `op` is `None` for plain `=`.
    Assign {
        /// Where the value goes.
        target: Target,
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// `x++` / `--x` (evaluates to the updated value in MiniC).
    IncDec {
        /// The updated location.
        target: Target,
        /// +1 or -1.
        delta: i64,
    },
    /// Union member access (pre-transform only).
    Member(Box<Expr>, String),
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// `Some(const)` for `case`, `None` for `default`.
    pub value: Option<Expr>,
    /// Body statements. MiniC requires every non-empty arm to end with
    /// `break` or `return` (no fallthrough); empty arms share the next
    /// arm's body as in C.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration. `dims` non-empty declares a (rejected) local
    /// array — MiniC only supports global arrays.
    Decl {
        /// Element/scalar type.
        ty: TypeName,
        /// Name.
        name: String,
        /// Array dimensions (must be empty for locals after sema).
        dims: Vec<Expr>,
        /// Initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while`.
    While(Expr, Vec<Stmt>),
    /// `do … while`.
    DoWhile(Vec<Stmt>, Expr),
    /// C-style `for`.
    For {
        /// Optional init statement (decl or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `switch`.
    Switch(Expr, Vec<SwitchArm>),
    /// `{ … }` (introduces a scope).
    Block(Vec<Stmt>),
    /// Scope-less grouping (multi-declarator chains like `int a, b;`).
    Group(Vec<Stmt>),
    /// `try { … } catch (...) { … }` — pre-transform only (§3.1).
    Try(Vec<Stmt>, Vec<Stmt>),
    /// `throw e;` — pre-transform only.
    Throw(Expr),
}

/// A global array/scalar initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Scalar constant expression.
    Scalar(Expr),
    /// `{ … }` brace list (possibly nested).
    List(Vec<Init>),
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Global scalar or array definition.
    Global {
        /// Element type.
        ty: TypeName,
        /// Name.
        name: String,
        /// Dimensions (empty = scalar).
        dims: Vec<Expr>,
        /// Optional initializer.
        init: Option<Init>,
        /// `const` qualifier present (init data, not mutated).
        is_const: bool,
    },
    /// Function definition.
    Func {
        /// Return type.
        ret: TypeName,
        /// Name.
        name: String,
        /// Parameters.
        params: Vec<(TypeName, String)>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `union Name { … };` definition — pre-transform only.
    UnionDef {
        /// Union tag.
        name: String,
        /// Fields.
        fields: Vec<(TypeName, String)>,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Items in source order.
    pub items: Vec<Item>,
}
