//! Preprocessor-lite: object-like `#define` substitution.
//!
//! This is how dataset sizes are selected (§3.2): the harness injects
//! `-D`-style definitions (e.g. `N=400`) exactly like PolyBenchC's
//! `-DMEDIUM_DATASET`, and sources may carry their own `#define` lines
//! with defaults. `#include` lines are ignored (MiniC has a built-in
//! runtime instead of headers — the paper's §3.2 "missing libraries"
//! situation, resolved the same way: alternative implementations).

use crate::error::CompileError;
use std::collections::HashMap;

/// Apply `#define` directives and external definitions to `source`.
///
/// External `defines` take precedence over in-file `#define`s (mirroring
/// `-D` on a C compiler command line).
pub fn preprocess(source: &str, defines: &HashMap<String, String>) -> Result<String, CompileError> {
    let mut macros: HashMap<String, String> = HashMap::new();
    let mut body_lines: Vec<String> = Vec::new();

    for (lineno, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("#define") {
            let mut parts = rest.trim().splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(CompileError::Lex {
                    line: lineno as u32 + 1,
                    message: format!("bad #define name '{name}'"),
                });
            }
            let value = parts.next().unwrap_or("1").trim().to_string();
            // External -D definitions win.
            if !defines.contains_key(name) {
                macros.insert(name.to_string(), value);
            }
            body_lines.push(String::new()); // keep line numbers stable
            continue;
        }
        if trimmed.starts_with("#include") || trimmed.starts_with("#pragma") {
            body_lines.push(String::new());
            continue;
        }
        if trimmed.starts_with('#') {
            return Err(CompileError::Lex {
                line: lineno as u32 + 1,
                message: format!("unsupported preprocessor directive: {trimmed}"),
            });
        }
        body_lines.push(line.to_string());
    }

    for (k, v) in defines {
        macros.insert(k.clone(), v.clone());
    }

    // Iterate substitution until fixpoint (macros may reference macros),
    // with a depth limit to catch cycles.
    let mut text = body_lines.join("\n");
    for _ in 0..16 {
        let new_text = substitute(&text, &macros);
        if new_text == text {
            return Ok(new_text);
        }
        text = new_text;
    }
    Err(CompileError::Lex {
        line: 0,
        message: "macro substitution did not converge (cycle?)".into(),
    })
}

/// Whole-identifier textual substitution.
fn substitute(text: &str, macros: &HashMap<String, String>) -> String {
    if macros.is_empty() {
        return text.to_string();
    }
    let mut out = String::with_capacity(text.len());
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            match macros.get(&word) {
                Some(v) => out.push_str(v),
                None => out.push_str(&word),
            }
        } else if c == '"' {
            // Do not substitute inside string literals.
            out.push(c);
            i += 1;
            while i < chars.len() {
                out.push(chars[i]);
                if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    out.push(chars[i]);
                } else if chars[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn in_file_defines_substitute() {
        let out = preprocess("#define N 40\ndouble A[N][N];", &HashMap::new()).unwrap();
        assert!(out.contains("double A[40][40];"));
    }

    #[test]
    fn external_defines_override() {
        let out = preprocess("#define N 40\ndouble A[N];", &defs(&[("N", "1200")])).unwrap();
        assert!(out.contains("double A[1200];"));
    }

    #[test]
    fn chained_macros_converge() {
        let out = preprocess("#define M N\n#define N 7\nint a[M];", &HashMap::new()).unwrap();
        assert!(out.contains("int a[7];"));
    }

    #[test]
    fn cyclic_macros_error() {
        let err = preprocess("#define A B\n#define B A\nint x = A;", &HashMap::new());
        assert!(err.is_err());
    }

    #[test]
    fn strings_are_not_substituted() {
        let out = preprocess("#define N 40\nprint_str(\"N results\");", &HashMap::new()).unwrap();
        assert!(out.contains("\"N results\""));
    }

    #[test]
    fn includes_are_ignored_and_lines_preserved() {
        let out = preprocess("#include <stdio.h>\nint x;", &HashMap::new()).unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().nth(1).unwrap().contains("int x;"));
    }

    #[test]
    fn word_boundaries_respected() {
        let out = preprocess("#define N 40\nint NN = N;", &HashMap::new()).unwrap();
        assert!(out.contains("int NN = 40;"));
    }
}
