//! Linear-memory layout for global arrays (Wasm/native targets).

use crate::hir::{ArrayId, HProgram};

/// Byte placement of every global array, plus totals.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Base byte offset per array (indexed by [`ArrayId`]).
    pub array_base: Vec<u64>,
    /// First byte past the static data.
    pub data_end: u64,
}

/// Arrays are placed in declaration order, each 8-byte aligned, starting
/// past a small reserved region (address 0 stays unmapped-ish, like real
/// toolchains keep the null page).
pub fn layout(p: &HProgram) -> Layout {
    const BASE: u64 = 1024;
    let mut offset = BASE;
    let mut array_base = Vec::with_capacity(p.arrays.len());
    for a in &p.arrays {
        offset = (offset + 7) & !7;
        array_base.push(offset);
        offset += a.byte_size();
    }
    Layout {
        array_base,
        data_end: offset,
    }
}

impl Layout {
    /// Base offset of an array.
    pub fn base(&self, id: ArrayId) -> u64 {
        self.array_base[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    #[test]
    fn arrays_are_aligned_and_disjoint() {
        let p =
            analyze(&parse(lex("char c[3]; double d[4]; int i[5];").unwrap()).unwrap()).unwrap();
        let l = layout(&p);
        assert_eq!(l.array_base.len(), 3);
        assert_eq!(l.base(0), 1024);
        assert_eq!(l.base(1) % 8, 0);
        assert!(l.base(1) >= 1024 + 3);
        assert_eq!(l.base(2), l.base(1) + 32);
        assert_eq!(l.data_end, l.base(2) + 20);
    }
}
