//! Code generation backends: Wasm binary, MiniJS source, native-sim.

pub mod js;
pub mod native;
pub mod unroll;
pub mod wasm;

pub use js::{emit_js, emit_js_with, JsEmitOptions};
pub use native::{NativeOutcome, NativeProgram};
pub use wasm::emit_wasm;
