//! The native ("x86") backend: an HIR evaluator with an ahead-of-time
//! native cost model. This is the substrate for the paper's x86 control
//! experiment (Fig 6, Table 2's `x86` column): the same IR and the same
//! passes, but a target where the optimizations behave *as designed* —
//! vectorized loops genuinely run wider, and fast-math genuinely
//! discounts float ops.

use crate::hir::*;
use wb_env::{CostTable, Nanos, OpClass, OpCounts, ResourceLimits};

/// How much one 4-wide vector operation costs relative to one scalar op.
/// Real auto-vectorization rarely achieves the ideal 4×: memory-bound
/// kernels see far less. 0.45 per lane-op ≈ a 2.2× arithmetic speedup,
/// which lands Table 2's x86 `O1/O2 = 1.36×` shape.
const VECTOR_ARITH_SCALE: f64 = 0.55;
/// Memory ops benefit less from vectorization (bandwidth bound).
const VECTOR_MEM_SCALE: f64 = 0.78;
/// Fast-math discount on float operations (`-Ofast`, native only).
const FAST_MATH_SCALE: f64 = 0.85;
/// Estimated encoded bytes per HIR operation (x86-64 averages ~4).
const BYTES_PER_OP: f64 = 4.0;
/// Vectorized loops carry prologue/epilogue and wider encodings.
const VECTOR_SIZE_FACTOR: f64 = 1.25;

/// A compiled-for-native program.
#[derive(Debug, Clone)]
pub struct NativeProgram {
    hir: HProgram,
    cost: CostTable,
    cycle_time_ns: f64,
    /// Resource ceilings: fuel ([`NativeTrap::StepBudget`]), static-data
    /// memory ceiling ([`NativeTrap::MemoryLimit`]) and call depth
    /// ([`NativeTrap::StackOverflow`]). Defaults match the other two
    /// backends so trap-parity fixtures agree across all three.
    pub limits: ResourceLimits,
}

/// Everything measured about a native run.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeOutcome {
    /// Return value of the entry function (integer image).
    pub result: Option<i64>,
    /// `print_*` output lines.
    pub output: Vec<String>,
    /// Retired operations by class.
    pub counts: OpCounts,
    /// Execution time under the native cost model.
    pub exec_time: Nanos,
    /// Static memory footprint (arrays), bytes.
    pub data_bytes: u64,
}

/// Runtime errors (traps) during native evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeTrap {
    /// Integer division by zero.
    DivByZero,
    /// Array index out of bounds.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending flat index.
        index: i64,
    },
    /// Step budget exhausted.
    StepBudget,
    /// Call depth limit exceeded.
    StackOverflow,
    /// Static data footprint exceeds the configured memory ceiling.
    MemoryLimit {
        /// Bytes the program's arrays occupy.
        requested_bytes: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// Missing entry function.
    NoSuchFunction(String),
    /// Argument count mismatch.
    BadArgs(String),
}

impl std::fmt::Display for NativeTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeTrap::DivByZero => write!(f, "integer divide by zero"),
            NativeTrap::OutOfBounds { array, index } => {
                write!(f, "index {index} out of bounds for array {array}")
            }
            NativeTrap::StepBudget => write!(f, "step budget exhausted"),
            NativeTrap::StackOverflow => write!(f, "call stack exhausted"),
            NativeTrap::MemoryLimit {
                requested_bytes,
                limit,
            } => write!(
                f,
                "memory limit exceeded ({requested_bytes} bytes requested, limit {limit})"
            ),
            NativeTrap::NoSuchFunction(n) => write!(f, "no function named {n}"),
            NativeTrap::BadArgs(n) => write!(f, "bad argument count for {n}"),
        }
    }
}

impl std::error::Error for NativeTrap {}

/// Typed array storage.
#[derive(Debug, Clone)]
enum Buf {
    I8(Vec<i8>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    F32(Vec<f32>),
    F64(Vec<f64>),
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NVal {
    I(i64),
    F(f64),
}

impl NVal {
    fn as_i(self) -> i64 {
        match self {
            NVal::I(v) => v,
            NVal::F(v) => v as i64,
        }
    }

    fn as_f(self) -> f64 {
        match self {
            NVal::I(v) => v as f64,
            NVal::F(v) => v,
        }
    }

    fn truthy(self) -> bool {
        match self {
            NVal::I(v) => v != 0,
            NVal::F(v) => v != 0.0,
        }
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<NVal>),
}

impl NativeProgram {
    /// Wrap an optimized HIR program for native execution.
    pub fn new(hir: HProgram) -> Self {
        NativeProgram {
            hir,
            cost: CostTable::reference(),
            cycle_time_ns: wb_env::calibration::DESKTOP_CYCLE_NS,
            limits: ResourceLimits::default(),
        }
    }

    /// Estimated machine-code size in bytes (the Fig 6 code-size metric):
    /// HIR operation count at x86 encoding density, with vectorized loops
    /// carrying their prologue/epilogue and wider encodings, plus
    /// initialized data.
    pub fn code_size(&self) -> u64 {
        let mut ops = 0.0;
        for f in &self.hir.funcs {
            ops += 6.0; // prologue/epilogue
            ops += body_size(&f.body);
        }
        let data: u64 = self
            .hir
            .arrays
            .iter()
            .filter(|a| a.init.is_some())
            .map(|a| a.byte_size())
            .sum();
        // -Ofast additionally unrolls and pads for alignment (the Fig 6
        // code-size bump).
        let fast_math_factor = if self.hir.fast_math { 1.10 } else { 1.0 };
        (ops * BYTES_PER_OP * fast_math_factor) as u64 + data
    }

    /// Run `entry(args…)` and collect the outcome, under the program's
    /// own [`ResourceLimits`].
    pub fn run(&self, entry: &str, args: &[i64]) -> Result<NativeOutcome, NativeTrap> {
        self.run_with_limits(entry, args, self.limits)
    }

    /// Run `entry(args…)` under explicit resource limits. Programs are
    /// shared immutably through the artifact cache, so per-run limits are
    /// passed here rather than by mutating the program.
    pub fn run_with_limits(
        &self,
        entry: &str,
        args: &[i64],
        limits: ResourceLimits,
    ) -> Result<NativeOutcome, NativeTrap> {
        let (fid, f) = self
            .hir
            .func(entry)
            .ok_or_else(|| NativeTrap::NoSuchFunction(entry.into()))?;
        if f.params.len() != args.len() {
            return Err(NativeTrap::BadArgs(entry.into()));
        }
        if let Some(limit) = limits.max_memory_bytes {
            let requested_bytes = self.hir.static_data_bytes();
            if requested_bytes > limit {
                return Err(NativeTrap::MemoryLimit {
                    requested_bytes,
                    limit,
                });
            }
        }
        let mut st = Evaluator {
            p: &self.hir,
            cost: &self.cost,
            globals: self
                .hir
                .globals
                .iter()
                .map(|g| match g.ty {
                    Ty::F32 | Ty::F64 => NVal::F(g.init.as_f64()),
                    _ => NVal::I(g.init.as_i64()),
                })
                .collect(),
            arrays: self.hir.arrays.iter().map(alloc_buf).collect(),
            output: Vec::new(),
            counts: OpCounts::new(),
            cycles: 0.0,
            steps: 0,
            max_steps: limits.fuel_budget(),
            depth: 0,
            max_depth: limits.max_call_depth,
            scale: 1.0,
            fast_math: self.hir.fast_math,
        };
        let argv: Vec<NVal> = args
            .iter()
            .zip(&f.params)
            .map(|(v, t)| match t {
                Ty::F32 | Ty::F64 => NVal::F(*v as f64),
                _ => NVal::I(*v),
            })
            .collect();
        let result = st.call(fid, &argv)?;
        Ok(NativeOutcome {
            result: result.map(|v| v.as_i()),
            output: st.output,
            counts: st.counts,
            exec_time: Nanos(st.cycles * self.cycle_time_ns),
            data_bytes: self.hir.static_data_bytes(),
        })
    }

    /// Access the underlying HIR (tests, reports).
    pub fn hir(&self) -> &HProgram {
        &self.hir
    }
}

impl From<HProgram> for NativeProgram {
    fn from(h: HProgram) -> Self {
        NativeProgram::new(h)
    }
}

fn alloc_buf(a: &HArray) -> Buf {
    let n = a.len() as usize;
    match a.elem {
        ElemTy::I8 { .. } => {
            let mut v = vec![0i8; n];
            if let Some(init) = &a.init {
                for (slot, c) in v.iter_mut().zip(init) {
                    *slot = c.as_i64() as i8;
                }
            }
            Buf::I8(v)
        }
        ElemTy::I32 { .. } => {
            let mut v = vec![0i32; n];
            if let Some(init) = &a.init {
                for (slot, c) in v.iter_mut().zip(init) {
                    *slot = c.as_i64() as i32;
                }
            }
            Buf::I32(v)
        }
        ElemTy::I64 { .. } => {
            let mut v = vec![0i64; n];
            if let Some(init) = &a.init {
                for (slot, c) in v.iter_mut().zip(init) {
                    *slot = c.as_i64();
                }
            }
            Buf::I64(v)
        }
        ElemTy::F32 => {
            let mut v = vec![0f32; n];
            if let Some(init) = &a.init {
                for (slot, c) in v.iter_mut().zip(init) {
                    *slot = c.as_f64() as f32;
                }
            }
            Buf::F32(v)
        }
        ElemTy::F64 => {
            let mut v = vec![0f64; n];
            if let Some(init) = &a.init {
                for (slot, c) in v.iter_mut().zip(init) {
                    *slot = c.as_f64();
                }
            }
            Buf::F64(v)
        }
    }
}

fn body_size(stmts: &[HStmt]) -> f64 {
    let mut n = 0.0;
    for s in stmts {
        match s {
            HStmt::DeclLocal { .. } | HStmt::Assign { .. } | HStmt::Expr(_) => n += 3.0,
            HStmt::Return(_) | HStmt::Break | HStmt::Continue => n += 1.0,
            HStmt::If(_, a, b) => n += 2.0 + body_size(a) + body_size(b),
            HStmt::Loop { body, meta, .. } => {
                let inner = 4.0 + body_size(body);
                n += if meta.vector_width > 1 {
                    inner * VECTOR_SIZE_FACTOR
                } else {
                    inner
                };
            }
            HStmt::Switch { cases, default, .. } => {
                n += 3.0;
                for (_, b) in cases {
                    n += 1.0 + body_size(b);
                }
                n += body_size(default);
            }
            HStmt::Block(b) => n += body_size(b),
        }
    }
    n
}

struct Evaluator<'a> {
    p: &'a HProgram,
    cost: &'a CostTable,
    globals: Vec<NVal>,
    arrays: Vec<Buf>,
    output: Vec<String>,
    counts: OpCounts,
    cycles: f64,
    steps: u64,
    max_steps: u64,
    depth: usize,
    max_depth: usize,
    /// Current cost scale (vector bodies run discounted).
    scale: f64,
    fast_math: bool,
}

impl<'a> Evaluator<'a> {
    fn charge(&mut self, class: OpClass) -> Result<(), NativeTrap> {
        self.counts.bump(class, 1);
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(NativeTrap::StepBudget);
        }
        let mut c = self.cost.cost(class) * self.scale;
        if self.fast_math
            && matches!(
                class,
                OpClass::FloatAlu | OpClass::FloatMul | OpClass::FloatDiv
            )
        {
            c *= FAST_MATH_SCALE;
        }
        self.cycles += c;
        Ok(())
    }

    fn call(&mut self, fid: FuncId, args: &[NVal]) -> Result<Option<NVal>, NativeTrap> {
        // Depth guard matching the two VMs' frame limit, so deep-recursion
        // fixtures trap identically across backends (and the host Rust
        // stack — this evaluator recurses — is never at risk).
        if self.depth >= self.max_depth {
            return Err(NativeTrap::StackOverflow);
        }
        self.depth += 1;
        self.charge(OpClass::Call)?;
        let f = &self.p.funcs[fid as usize];
        let mut locals: Vec<NVal> = f
            .locals
            .iter()
            .map(|(_, t)| match t {
                Ty::F32 | Ty::F64 => NVal::F(0.0),
                _ => NVal::I(0),
            })
            .collect();
        locals[..args.len()].copy_from_slice(args);
        let flow = self.block(&f.body, &mut locals)?;
        self.depth -= 1;
        match flow {
            Flow::Return(v) => Ok(v),
            _ => Ok(None),
        }
    }

    fn block(&mut self, stmts: &[HStmt], locals: &mut Vec<NVal>) -> Result<Flow, NativeTrap> {
        for s in stmts {
            match self.stmt(s, locals)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &HStmt, locals: &mut Vec<NVal>) -> Result<Flow, NativeTrap> {
        match s {
            HStmt::DeclLocal { id, init } => {
                if let Some(e) = init {
                    let v = self.eval(e, locals)?;
                    self.charge(OpClass::Local)?;
                    locals[*id as usize] = v;
                }
                Ok(Flow::Normal)
            }
            HStmt::Assign { lhs, value } => {
                let v = self.eval(value, locals)?;
                self.store(lhs, v, locals)?;
                Ok(Flow::Normal)
            }
            HStmt::Expr(e) => {
                self.eval(e, locals)?;
                Ok(Flow::Normal)
            }
            HStmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e, locals)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            HStmt::If(c, a, b) => {
                let cv = self.eval(c, locals)?;
                self.charge(OpClass::Branch)?;
                if cv.truthy() {
                    self.block(a, locals)
                } else {
                    self.block(b, locals)
                }
            }
            HStmt::Loop {
                kind,
                init,
                cond,
                step,
                body,
                meta,
            } => {
                match self.block(init, locals)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
                let vectored = meta.vector_width > 1;
                if vectored {
                    // Vector prologue: trip-count and alignment checks.
                    self.charge(OpClass::Compare)?;
                    self.charge(OpClass::Branch)?;
                }
                let mut first = true;
                loop {
                    let run_body = if *kind == LoopKind::PostTest && first {
                        true
                    } else {
                        match cond {
                            Some(c) => {
                                let cv = self.eval(c, locals)?;
                                self.charge(OpClass::Branch)?;
                                cv.truthy()
                            }
                            None => true,
                        }
                    };
                    first = false;
                    if !run_body {
                        break;
                    }
                    // A 4-wide vector body costs each op `scale` (one
                    // vector instruction covers four lanes).
                    let saved = self.scale;
                    if vectored {
                        self.scale = saved * vector_scale_avg();
                    }
                    let flow = self.block(body, locals)?;
                    self.scale = saved;
                    match flow {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    match self.block(step, locals)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                    if *kind == LoopKind::PostTest {
                        if let Some(c) = cond {
                            let cv = self.eval(c, locals)?;
                            self.charge(OpClass::Branch)?;
                            if !cv.truthy() {
                                break;
                            }
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            HStmt::Break => Ok(Flow::Break),
            HStmt::Continue => Ok(Flow::Continue),
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => {
                let v = self.eval(scrut, locals)?.as_i();
                self.charge(OpClass::Branch)?;
                for (cv, body) in cases {
                    if *cv == v {
                        return self.block(body, locals);
                    }
                }
                self.block(default, locals)
            }
            HStmt::Block(b) => self.block(b, locals),
        }
    }

    fn store(&mut self, lhs: &HLval, v: NVal, locals: &mut Vec<NVal>) -> Result<(), NativeTrap> {
        match lhs {
            HLval::Local(id) => {
                self.charge(OpClass::Local)?;
                locals[*id as usize] = v;
            }
            HLval::Global(id) => {
                self.charge(OpClass::Global)?;
                self.globals[*id as usize] = v;
            }
            HLval::Elem { array, idx } => {
                let flat = self.flat_index(*array, idx, locals)?;
                self.charge(OpClass::Store)?;
                let buf = &mut self.arrays[*array as usize];
                match buf {
                    Buf::I8(b) => b[flat] = v.as_i() as i8,
                    Buf::I32(b) => b[flat] = v.as_i() as i32,
                    Buf::I64(b) => b[flat] = v.as_i(),
                    Buf::F32(b) => b[flat] = v.as_f() as f32,
                    Buf::F64(b) => b[flat] = v.as_f(),
                }
            }
        }
        Ok(())
    }

    fn flat_index(
        &mut self,
        array: ArrayId,
        idx: &[HExpr],
        locals: &mut Vec<NVal>,
    ) -> Result<usize, NativeTrap> {
        let dims = self.p.arrays[array as usize].dims.clone();
        let mut flat: i64 = 0;
        for (k, e) in idx.iter().enumerate() {
            let v = self.eval(e, locals)?.as_i();
            if k > 0 {
                self.charge(OpClass::IntMul)?;
                self.charge(OpClass::IntAlu)?;
            }
            flat = flat * dims[k] as i64 + v;
        }
        let len = self.p.arrays[array as usize].len() as i64;
        if flat < 0 || flat >= len {
            return Err(NativeTrap::OutOfBounds {
                array: self.p.arrays[array as usize].name.clone(),
                index: flat,
            });
        }
        Ok(flat as usize)
    }

    fn eval(&mut self, e: &HExpr, locals: &mut Vec<NVal>) -> Result<NVal, NativeTrap> {
        Ok(match e {
            HExpr::ConstI(v, _) => {
                self.charge(OpClass::Const)?;
                NVal::I(*v)
            }
            HExpr::ConstF(v, _) => {
                self.charge(OpClass::Const)?;
                NVal::F(*v)
            }
            HExpr::Local(id, _) => {
                self.charge(OpClass::Local)?;
                locals[*id as usize]
            }
            HExpr::Global(id, _) => {
                self.charge(OpClass::Global)?;
                self.globals[*id as usize]
            }
            HExpr::Elem { array, idx, ty } => {
                let flat = self.flat_index(*array, idx, locals)?;
                self.charge(OpClass::Load)?;
                let buf = &self.arrays[*array as usize];
                match (buf, ty) {
                    (Buf::I8(b), Ty::I32 { unsigned: true }) => NVal::I(b[flat] as u8 as i64),
                    (Buf::I8(b), _) => NVal::I(b[flat] as i64),
                    (Buf::I32(b), Ty::I32 { unsigned: true }) => NVal::I(b[flat] as u32 as i64),
                    (Buf::I32(b), _) => NVal::I(b[flat] as i64),
                    (Buf::I64(b), _) => NVal::I(b[flat]),
                    (Buf::F32(b), _) => NVal::F(b[flat] as f64),
                    (Buf::F64(b), _) => NVal::F(b[flat]),
                }
            }
            HExpr::Unary(op, a, ty) => {
                let av = self.eval(a, locals)?;
                match op {
                    HUnOp::Neg => {
                        if ty.is_float() {
                            self.charge(OpClass::FloatAlu)?;
                            NVal::F(-av.as_f())
                        } else {
                            self.charge(OpClass::IntAlu)?;
                            NVal::I(narrow(av.as_i().wrapping_neg(), *ty))
                        }
                    }
                    HUnOp::Not => {
                        self.charge(OpClass::Compare)?;
                        NVal::I((!av.truthy()) as i64)
                    }
                    HUnOp::BitNot => {
                        self.charge(OpClass::IntAlu)?;
                        NVal::I(narrow(!av.as_i(), *ty))
                    }
                }
            }
            HExpr::Binary(op, a, b, ty) => {
                let av = self.eval(a, locals)?;
                let bv = self.eval(b, locals)?;
                self.binary(*op, av, bv, *ty)?
            }
            HExpr::Cmp(op, a, b, operand_ty) => {
                let av = self.eval(a, locals)?;
                let bv = self.eval(b, locals)?;
                self.charge(OpClass::Compare)?;
                let r = if operand_ty.is_float() {
                    let (x, y) = (av.as_f(), bv.as_f());
                    match op {
                        HCmpOp::Eq => x == y,
                        HCmpOp::Ne => x != y,
                        HCmpOp::Lt => x < y,
                        HCmpOp::Le => x <= y,
                        HCmpOp::Gt => x > y,
                        HCmpOp::Ge => x >= y,
                    }
                } else if operand_ty.unsigned() {
                    let (x, y) = (
                        to_unsigned(av.as_i(), *operand_ty),
                        to_unsigned(bv.as_i(), *operand_ty),
                    );
                    match op {
                        HCmpOp::Eq => x == y,
                        HCmpOp::Ne => x != y,
                        HCmpOp::Lt => x < y,
                        HCmpOp::Le => x <= y,
                        HCmpOp::Gt => x > y,
                        HCmpOp::Ge => x >= y,
                    }
                } else {
                    let (x, y) = (av.as_i(), bv.as_i());
                    match op {
                        HCmpOp::Eq => x == y,
                        HCmpOp::Ne => x != y,
                        HCmpOp::Lt => x < y,
                        HCmpOp::Le => x <= y,
                        HCmpOp::Gt => x > y,
                        HCmpOp::Ge => x >= y,
                    }
                };
                NVal::I(r as i64)
            }
            HExpr::And(a, b) => {
                let av = self.eval(a, locals)?;
                self.charge(OpClass::Branch)?;
                if !av.truthy() {
                    NVal::I(0)
                } else {
                    let bv = self.eval(b, locals)?;
                    NVal::I(bv.truthy() as i64)
                }
            }
            HExpr::Or(a, b) => {
                let av = self.eval(a, locals)?;
                self.charge(OpClass::Branch)?;
                if av.truthy() {
                    NVal::I(1)
                } else {
                    let bv = self.eval(b, locals)?;
                    NVal::I(bv.truthy() as i64)
                }
            }
            HExpr::Ternary(c, a, b, _) => {
                let cv = self.eval(c, locals)?;
                self.charge(OpClass::Branch)?;
                if cv.truthy() {
                    self.eval(a, locals)?
                } else {
                    self.eval(b, locals)?
                }
            }
            HExpr::Call {
                callee,
                args,
                str_arg,
                ..
            } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, locals)?);
                }
                match callee {
                    Callee::Func(id) => {
                        let r = self.call(*id, &argv)?;
                        r.unwrap_or(NVal::I(0))
                    }
                    Callee::Intrinsic(intr) => self.intrinsic(*intr, &argv, *str_arg)?,
                }
            }
            HExpr::Cast { to, from, expr } => {
                let v = self.eval(expr, locals)?;
                self.charge(OpClass::Convert)?;
                cast(v, *from, *to)
            }
            HExpr::AssignExpr { lhs, value, .. } => {
                let v = self.eval(value, locals)?;
                self.store(lhs, v, locals)?;
                v
            }
        })
    }

    fn binary(&mut self, op: HBinOp, a: NVal, b: NVal, ty: Ty) -> Result<NVal, NativeTrap> {
        use HBinOp::*;
        if ty.is_float() {
            let (x, y) = (a.as_f(), b.as_f());
            let (class, v) = match op {
                Add => (OpClass::FloatAlu, x + y),
                Sub => (OpClass::FloatAlu, x - y),
                Mul => (OpClass::FloatMul, x * y),
                Div => (OpClass::FloatDiv, x / y),
                _ => unreachable!("sema rejects {op:?} on floats"),
            };
            self.charge(class)?;
            let v = if ty == Ty::F32 { v as f32 as f64 } else { v };
            return Ok(NVal::F(v));
        }
        let (x, y) = (a.as_i(), b.as_i());
        let unsigned = ty.unsigned();
        let (class, v) = match op {
            Add => (OpClass::IntAlu, x.wrapping_add(y)),
            Sub => (OpClass::IntAlu, x.wrapping_sub(y)),
            Mul => (OpClass::IntMul, x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(NativeTrap::DivByZero);
                }
                let v = if unsigned {
                    match ty {
                        Ty::I32 { .. } => ((x as u32) / (y as u32)) as i64,
                        _ => ((x as u64) / (y as u64)) as i64,
                    }
                } else {
                    x.wrapping_div(y)
                };
                (OpClass::IntDiv, v)
            }
            Rem => {
                if y == 0 {
                    return Err(NativeTrap::DivByZero);
                }
                let v = if unsigned {
                    match ty {
                        Ty::I32 { .. } => ((x as u32) % (y as u32)) as i64,
                        _ => ((x as u64) % (y as u64)) as i64,
                    }
                } else {
                    x.wrapping_rem(y)
                };
                (OpClass::IntDiv, v)
            }
            BitAnd => (OpClass::IntAlu, x & y),
            BitOr => (OpClass::IntAlu, x | y),
            BitXor => (OpClass::IntAlu, x ^ y),
            Shl => (
                OpClass::IntAlu,
                match ty {
                    Ty::I32 { .. } => ((x as i32).wrapping_shl(y as u32)) as i64,
                    _ => x.wrapping_shl((y & 63) as u32),
                },
            ),
            Shr => (
                OpClass::IntAlu,
                match ty {
                    Ty::I32 { unsigned: true } => ((x as u32).wrapping_shr(y as u32)) as i64,
                    Ty::I32 { unsigned: false } => ((x as i32).wrapping_shr(y as u32)) as i64,
                    Ty::I64 { unsigned: true } => ((x as u64).wrapping_shr((y & 63) as u32)) as i64,
                    _ => x.wrapping_shr((y & 63) as u32),
                },
            ),
        };
        self.charge(class)?;
        Ok(NVal::I(narrow(v, ty)))
    }

    fn intrinsic(
        &mut self,
        intr: Intrinsic,
        args: &[NVal],
        str_arg: Option<StrId>,
    ) -> Result<NVal, NativeTrap> {
        use Intrinsic::*;
        let a0 = args.first().copied().unwrap_or(NVal::I(0));
        Ok(match intr {
            Sqrt => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().sqrt())
            }
            Fabs => {
                self.charge(OpClass::FloatAlu)?;
                NVal::F(a0.as_f().abs())
            }
            Floor => {
                self.charge(OpClass::FloatAlu)?;
                NVal::F(a0.as_f().floor())
            }
            Ceil => {
                self.charge(OpClass::FloatAlu)?;
                NVal::F(a0.as_f().ceil())
            }
            TruncF => {
                self.charge(OpClass::FloatAlu)?;
                NVal::F(a0.as_f().trunc())
            }
            Exp => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().exp())
            }
            Log => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().ln())
            }
            Sin => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().sin())
            }
            Cos => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().cos())
            }
            Tan => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().tan())
            }
            Atan => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().atan())
            }
            Pow => {
                self.charge(OpClass::FloatDiv)?;
                NVal::F(a0.as_f().powf(args[1].as_f()))
            }
            PrintI32 => {
                self.output.push((a0.as_i() as i32).to_string());
                NVal::I(0)
            }
            PrintI64 => {
                self.output.push(a0.as_i().to_string());
                NVal::I(0)
            }
            PrintF64 => {
                self.output.push(fmt_f64(a0.as_f()));
                NVal::I(0)
            }
            PrintStr => {
                let sid = str_arg.expect("sema attaches string id") as usize;
                self.output.push(self.p.strings[sid].clone());
                NVal::I(0)
            }
            F64Bits => {
                self.charge(OpClass::Other)?;
                NVal::I(a0.as_f().to_bits() as i64)
            }
            F64FromBits => {
                self.charge(OpClass::Other)?;
                NVal::F(f64::from_bits(a0.as_i() as u64))
            }
            F32Bits => {
                self.charge(OpClass::Other)?;
                NVal::I((a0.as_f() as f32).to_bits() as i64)
            }
            F32FromBits => {
                self.charge(OpClass::Other)?;
                NVal::F(f32::from_bits(a0.as_i() as u32) as f64)
            }
        })
    }
}

fn vector_scale_avg() -> f64 {
    // A single scale applied to vector bodies: between the arithmetic and
    // memory scales (bodies mix both).
    (VECTOR_ARITH_SCALE + VECTOR_MEM_SCALE) / 2.0
}

fn narrow(v: i64, ty: Ty) -> i64 {
    match ty {
        Ty::I32 { .. } => v as i32 as i64,
        _ => v,
    }
}

fn to_unsigned(v: i64, ty: Ty) -> u64 {
    match ty {
        Ty::I32 { .. } => v as u32 as u64,
        _ => v as u64,
    }
}

fn cast(v: NVal, from: Ty, to: Ty) -> NVal {
    use Ty::*;
    match to {
        F64 => match from {
            I32 { unsigned: true } => NVal::F(v.as_i() as u32 as f64),
            I64 { unsigned: true } => NVal::F(v.as_i() as u64 as f64),
            _ => NVal::F(v.as_f()),
        },
        F32 => match from {
            I32 { unsigned: true } => NVal::F(v.as_i() as u32 as f32 as f64),
            I64 { unsigned: true } => NVal::F(v.as_i() as u64 as f32 as f64),
            _ => NVal::F(v.as_f() as f32 as f64),
        },
        I32 { .. } => match from {
            F32 | F64 => NVal::I(v.as_f().trunc() as i64 as i32 as i64),
            _ => NVal::I(v.as_i() as i32 as i64),
        },
        I64 { .. } => match from {
            F32 | F64 => NVal::I(v.as_f().trunc() as i64),
            I32 { unsigned: true } => NVal::I(v.as_i() as u32 as i64),
            _ => NVal::I(v.as_i()),
        },
        Void => v,
    }
}

/// Canonical f64 text form shared by all three backends (integral values
/// print without a decimal point), so differential tests compare output
/// byte-for-byte.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        }
    } else if v == v.trunc() && v.abs() < 1e21 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    fn program(src: &str) -> NativeProgram {
        NativeProgram::new(analyze(&parse(lex(src).unwrap()).unwrap()).unwrap())
    }

    #[test]
    fn runs_a_kernel_and_counts_ops() {
        let p = program(
            "double A[16];\n\
             double k(int n) {\n\
               double s = 0.0;\n\
               for (int i = 0; i < n; i++) { A[i] = i * 2.0; s = s + A[i]; }\n\
               return s;\n\
             }",
        );
        let out = p.run("k", &[8]).unwrap();
        // Σ 2i for i<8 = 56; returned as integer image.
        assert_eq!(out.result, Some(56));
        assert!(out.counts.get(OpClass::Store) >= 8);
        assert!(out.exec_time.0 > 0.0);
        assert_eq!(out.data_bytes, 128);
    }

    #[test]
    fn prints_deterministically() {
        let p = program(
            "void f() { print_str(\"start\"); print_int(42); print_double(2.5); print_double(3.0); }",
        );
        let out = p.run("f", &[]).unwrap();
        assert_eq!(out.output, vec!["start", "42", "2.5", "3"]);
    }

    #[test]
    fn div_by_zero_traps() {
        let p = program("int f(int x) { return 10 / x; }");
        assert_eq!(p.run("f", &[0]), Err(NativeTrap::DivByZero));
        assert_eq!(p.run("f", &[2]).unwrap().result, Some(5));
    }

    #[test]
    fn out_of_bounds_traps() {
        let p = program("int A[4]; int f(int i) { return A[i]; }");
        assert!(matches!(
            p.run("f", &[9]),
            Err(NativeTrap::OutOfBounds { .. })
        ));
    }

    #[test]
    fn unsigned_arithmetic_matches_c() {
        let p = program("unsigned int f(unsigned int a, unsigned int b) { return a / b; }");
        // 0xFFFFFFFF / 2 = 0x7FFFFFFF under unsigned semantics.
        let out = p.run("f", &[-1, 2]).unwrap();
        assert_eq!(out.result.map(|v| v as i32), Some(0x7fffffff));
    }

    #[test]
    fn vectorized_loops_run_cheaper() {
        let src = "double A[4096]; double B[4096];\n\
                   void k(int n) { for (int i = 0; i < n; i++) A[i] = A[i] * 2.0 + B[i]; }";
        let scalar = {
            let p = program(src);
            p.run("k", &[4096]).unwrap()
        };
        let vectored = {
            let mut h = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
            crate::passes::vectorize_loops(&mut h);
            NativeProgram::new(h).run("k", &[4096]).unwrap()
        };
        // Near-identical retired-op counts (the vector prologue adds a
        // couple of checks), much lower virtual time.
        let diff = vectored.counts.total().abs_diff(scalar.counts.total());
        assert!(diff <= 4, "count diff {diff}");
        assert!(vectored.exec_time.0 < scalar.exec_time.0 * 0.8);
    }

    #[test]
    fn fast_math_discounts_float_time() {
        let src = "double A[1024];\n\
                   void k(int n) { for (int i = 0; i < n; i++) A[i] = A[i] * 1.5 + 0.5; }";
        let plain = program(src).run("k", &[1024]).unwrap();
        let mut h = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        h.fast_math = true;
        let fast = NativeProgram::new(h).run("k", &[1024]).unwrap();
        assert!(fast.exec_time.0 < plain.exec_time.0);
    }

    #[test]
    fn code_size_grows_with_vectorization() {
        let src = "double A[64]; void k(int n) { for (int i = 0; i < n; i++) A[i] = 1.0; }";
        let plain = program(src).code_size();
        let mut h = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        crate::passes::vectorize_loops(&mut h);
        let vectored = NativeProgram::new(h).code_size();
        assert!(vectored > plain);
    }

    #[test]
    fn union_reinterpret_round_trips() {
        let p = program(
            "long f(double d) { return __f64_bits(d); }\n\
             double g(long b) { return __f64_from_bits(b); }",
        );
        let bits = p.run("f", &[0]).unwrap(); // f(0.0) — param converts to double
        assert_eq!(bits.result, Some(0));
    }
}
