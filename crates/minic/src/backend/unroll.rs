//! Scalarization of vector-annotated loops for SIMD-less targets
//! (Wasm MVP and JavaScript).
//!
//! `-vectorize-loops` annotates a loop 4-wide; on a target with no vector
//! unit the backend must lower it back to scalar code: a 4×-unrolled main
//! loop guarded by a shifted bound check, plus a scalar remainder
//! epilogue. The unrolled copies index `i + k`, costing an extra add per
//! access — the mechanism behind the paper's finding that `-O2`'s
//! vectorization *hurts* Wasm while helping x86 (§4.2.1).

use crate::hir::*;

/// The decomposed canonical loop, ready for unrolled lowering.
pub struct UnrollPlan {
    /// Induction local.
    pub induction: LocalId,
    /// Signed step constant `c` in `i = i + c`.
    pub step_const: i64,
    /// Main-loop guard: the original condition with `i` replaced by
    /// `i + 3c` (all four copies in range).
    pub shifted_cond: HExpr,
    /// The four body copies, copy `k` reading `i + k·c`.
    pub copies: Vec<Vec<HStmt>>,
    /// Step for the main loop: `i = i + 4c`.
    pub wide_step: HStmt,
}

/// Try to build an unroll plan for a vector-annotated loop. Returns
/// `None` when the loop shape is not actually canonical (the backend then
/// falls back to scalar emission).
pub fn plan(
    cond: &Option<HExpr>,
    step: &[HStmt],
    body: &[HStmt],
    width: u32,
) -> Option<UnrollPlan> {
    if width != 4 {
        return None;
    }
    let cond = cond.as_ref()?;
    let (induction, step_const, step_ty) = canonical_step(step)?;
    if !cond_uses(cond, induction) {
        return None;
    }
    let shifted_cond = substitute_induction(cond, induction, 3 * step_const, step_ty);
    let copies = (0..4)
        .map(|k| {
            body.iter()
                .map(|s| substitute_stmt(s, induction, k * step_const, step_ty))
                .collect()
        })
        .collect();
    let wide_step = HStmt::Assign {
        lhs: HLval::Local(induction),
        value: HExpr::Binary(
            HBinOp::Add,
            Box::new(HExpr::Local(induction, step_ty)),
            Box::new(HExpr::ConstI(4 * step_const, step_ty)),
            step_ty,
        ),
    };
    Some(UnrollPlan {
        induction,
        step_const,
        shifted_cond,
        copies,
        wide_step,
    })
}

fn canonical_step(step: &[HStmt]) -> Option<(LocalId, i64, Ty)> {
    if step.len() != 1 {
        return None;
    }
    let (slot, value) = match &step[0] {
        HStmt::Assign {
            lhs: HLval::Local(slot),
            value,
        } => (*slot, value),
        HStmt::Expr(HExpr::AssignExpr { lhs, value, .. }) => match lhs.as_ref() {
            HLval::Local(slot) => (*slot, value.as_ref()),
            _ => return None,
        },
        _ => return None,
    };
    match value {
        HExpr::Binary(op @ (HBinOp::Add | HBinOp::Sub), a, b, ty) => {
            match (a.as_ref(), b.as_ref()) {
                (HExpr::Local(s, _), HExpr::ConstI(c, _)) if *s == slot => {
                    let c = if *op == HBinOp::Sub { -*c } else { *c };
                    Some((slot, c, *ty))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn cond_uses(e: &HExpr, slot: LocalId) -> bool {
    match e {
        HExpr::Local(s, _) => *s == slot,
        HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => cond_uses(a, slot),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            cond_uses(a, slot) || cond_uses(b, slot)
        }
        HExpr::Ternary(c, a, b, _) => {
            cond_uses(c, slot) || cond_uses(a, slot) || cond_uses(b, slot)
        }
        HExpr::Elem { idx, .. } => idx.iter().any(|i| cond_uses(i, slot)),
        _ => false,
    }
}

/// Replace reads of the induction local with `i + offset`.
fn substitute_induction(e: &HExpr, slot: LocalId, offset: i64, ty: Ty) -> HExpr {
    if offset == 0 {
        return e.clone();
    }
    match e {
        HExpr::Local(s, t) if *s == slot => HExpr::Binary(
            HBinOp::Add,
            Box::new(HExpr::Local(slot, *t)),
            Box::new(HExpr::ConstI(offset, ty)),
            *t,
        ),
        HExpr::Unary(op, a, t) => {
            HExpr::Unary(*op, Box::new(substitute_induction(a, slot, offset, ty)), *t)
        }
        HExpr::Binary(op, a, b, t) => HExpr::Binary(
            *op,
            Box::new(substitute_induction(a, slot, offset, ty)),
            Box::new(substitute_induction(b, slot, offset, ty)),
            *t,
        ),
        HExpr::Cmp(op, a, b, t) => HExpr::Cmp(
            *op,
            Box::new(substitute_induction(a, slot, offset, ty)),
            Box::new(substitute_induction(b, slot, offset, ty)),
            *t,
        ),
        HExpr::And(a, b) => HExpr::And(
            Box::new(substitute_induction(a, slot, offset, ty)),
            Box::new(substitute_induction(b, slot, offset, ty)),
        ),
        HExpr::Or(a, b) => HExpr::Or(
            Box::new(substitute_induction(a, slot, offset, ty)),
            Box::new(substitute_induction(b, slot, offset, ty)),
        ),
        HExpr::Ternary(c, a, b, t) => HExpr::Ternary(
            Box::new(substitute_induction(c, slot, offset, ty)),
            Box::new(substitute_induction(a, slot, offset, ty)),
            Box::new(substitute_induction(b, slot, offset, ty)),
            *t,
        ),
        HExpr::Cast { to, from, expr } => HExpr::Cast {
            to: *to,
            from: *from,
            expr: Box::new(substitute_induction(expr, slot, offset, ty)),
        },
        HExpr::Call {
            callee,
            args,
            ty: t,
            str_arg,
        } => HExpr::Call {
            callee: *callee,
            args: args
                .iter()
                .map(|a| substitute_induction(a, slot, offset, ty))
                .collect(),
            ty: *t,
            str_arg: *str_arg,
        },
        HExpr::Elem { array, idx, ty: t } => HExpr::Elem {
            array: *array,
            idx: idx
                .iter()
                .map(|i| substitute_induction(i, slot, offset, ty))
                .collect(),
            ty: *t,
        },
        HExpr::AssignExpr { lhs, value, ty: t } => HExpr::AssignExpr {
            lhs: Box::new(substitute_lval(lhs, slot, offset, ty)),
            value: Box::new(substitute_induction(value, slot, offset, ty)),
            ty: *t,
        },
        simple => simple.clone(),
    }
}

fn substitute_lval(l: &HLval, slot: LocalId, offset: i64, ty: Ty) -> HLval {
    match l {
        HLval::Elem { array, idx } => HLval::Elem {
            array: *array,
            idx: idx
                .iter()
                .map(|i| substitute_induction(i, slot, offset, ty))
                .collect(),
        },
        other => other.clone(),
    }
}

fn substitute_stmt(s: &HStmt, slot: LocalId, offset: i64, ty: Ty) -> HStmt {
    match s {
        HStmt::Assign { lhs, value } => HStmt::Assign {
            lhs: substitute_lval(lhs, slot, offset, ty),
            value: substitute_induction(value, slot, offset, ty),
        },
        HStmt::DeclLocal { id, init } => HStmt::DeclLocal {
            id: *id,
            init: init
                .as_ref()
                .map(|e| substitute_induction(e, slot, offset, ty)),
        },
        HStmt::Expr(e) => HStmt::Expr(substitute_induction(e, slot, offset, ty)),
        HStmt::Block(b) => HStmt::Block(
            b.iter()
                .map(|s| substitute_stmt(s, slot, offset, ty))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical_loop() -> (Option<HExpr>, Vec<HStmt>, Vec<HStmt>) {
        let i = 0;
        let n = 1;
        let cond = HExpr::Cmp(
            HCmpOp::Lt,
            Box::new(HExpr::Local(i, Ty::INT)),
            Box::new(HExpr::Local(n, Ty::INT)),
            Ty::INT,
        );
        let step = vec![HStmt::Assign {
            lhs: HLval::Local(i),
            value: HExpr::Binary(
                HBinOp::Add,
                Box::new(HExpr::Local(i, Ty::INT)),
                Box::new(HExpr::ConstI(1, Ty::INT)),
                Ty::INT,
            ),
        }];
        let body = vec![HStmt::Assign {
            lhs: HLval::Elem {
                array: 0,
                idx: vec![HExpr::Local(i, Ty::INT)],
            },
            value: HExpr::ConstF(1.0, Ty::F64),
        }];
        (Some(cond), step, body)
    }

    #[test]
    fn plans_canonical_loops() {
        let (cond, step, body) = canonical_loop();
        let plan = plan(&cond, &step, &body, 4).expect("canonical loop plans");
        assert_eq!(plan.induction, 0);
        assert_eq!(plan.step_const, 1);
        assert_eq!(plan.copies.len(), 4);
        // Copy 0 is unshifted; copy 3 indexes i+3.
        assert_eq!(plan.copies[0], body);
        let text = format!("{:?}", plan.copies[3]);
        assert!(text.contains("ConstI(3"), "{text}");
        let guard = format!("{:?}", plan.shifted_cond);
        assert!(guard.contains("ConstI(3"), "{guard}");
    }

    #[test]
    fn rejects_non_canonical_steps() {
        let (cond, _, body) = canonical_loop();
        let bad_step = vec![HStmt::Assign {
            lhs: HLval::Local(0),
            value: HExpr::Binary(
                HBinOp::Mul,
                Box::new(HExpr::Local(0, Ty::INT)),
                Box::new(HExpr::ConstI(2, Ty::INT)),
                Ty::INT,
            ),
        }];
        assert!(plan(&cond, &bad_step, &body, 4).is_none());
    }

    #[test]
    fn rejects_cond_not_using_induction() {
        let (_, step, body) = canonical_loop();
        let cond = Some(HExpr::Cmp(
            HCmpOp::Lt,
            Box::new(HExpr::Local(5, Ty::INT)),
            Box::new(HExpr::ConstI(10, Ty::INT)),
            Ty::INT,
        ));
        assert!(plan(&cond, &step, &body, 4).is_none());
    }
}
