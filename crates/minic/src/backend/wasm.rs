//! The WebAssembly backend: HIR → `wb_wasm::Module`.
//!
//! Toolchain-profile effects (§3.2, §4.2.2):
//! * **Cheerp**: linear memory sized to the static data plus a small
//!   reserve that the emitted start function acquires at runtime via
//!   `memory.grow` (the "more frequent memory resizing requests" the
//!   paper blames for Cheerp's slowdown); the 8 MiB default heap limit is
//!   enforced — programs whose data exceeds it must raise
//!   `cheerp-linear-heap-size`, exactly like §3.2.
//! * **Emscripten**: 16 MiB minimum initial memory, no startup grows.
//!
//! Codegen quirks reproduced:
//! * integral f64 constants are rematerialized as
//!   `i32.const k; f64.convert_i32_s` at `-O2`+ (Fig 8(a)) — it is two
//!   stack ops instead of one but a *smaller encoding*, which is why
//!   real compilers do it;
//! * vector-annotated loops are scalarized through
//!   [`super::unroll`] (no SIMD in the MVP).

use crate::error::CompileError;
use crate::hir::*;
use crate::layout::{layout, Layout};
use wb_env::{CompilerProfile, Toolchain};
use wb_wasm::{BlockType, Instr, MemArg, Module, ValType};

/// Options controlling Wasm emission.
#[derive(Debug, Clone)]
pub struct WasmEmitOptions {
    /// Toolchain profile (memory policy, growth behaviour).
    pub profile: CompilerProfile,
    /// Heap limit override (`cheerp-linear-heap-size`, §3.2). `None` uses
    /// the profile default.
    pub heap_limit_bytes: Option<u64>,
    /// Rematerialize integral f64 constants as `i32.const + convert`
    /// (the O2+ quirk; `-O0/-O1` emit plain `f64.const`).
    pub remat_int_consts: bool,
}

impl WasmEmitOptions {
    /// Cheerp at `-O2` defaults.
    pub fn cheerp() -> Self {
        WasmEmitOptions {
            profile: CompilerProfile::cheerp(),
            heap_limit_bytes: None,
            remat_int_consts: true,
        }
    }
}

/// Emit a Wasm module. The returned module is valid (`wb_wasm::validate`
/// is run in debug builds by tests) and exports every user function by
/// name, plus `"memory"`.
pub fn emit_wasm(p: &HProgram, opts: &WasmEmitOptions) -> Result<Module, CompileError> {
    let lay = layout(p);
    let heap_limit = opts
        .heap_limit_bytes
        .unwrap_or(opts.profile.default_heap_bytes);
    if lay.data_end > heap_limit {
        return Err(CompileError::Codegen {
            message: format!(
                "static data ({} bytes) exceeds the {} heap limit ({} bytes); \
                 pass a larger cheerp-linear-heap-size (§3.2)",
                lay.data_end,
                match opts.profile.toolchain {
                    Toolchain::Cheerp => "Cheerp",
                    Toolchain::Emscripten => "Emscripten",
                },
                heap_limit
            ),
        });
    }

    let mut e = Emitter {
        p,
        lay,
        opts,
        module: Module::new(),
        import_of: Vec::new(),
        scratch: ScratchLocals::default(),
    };
    e.emit()?;
    Ok(e.module)
}

/// Host imports a program may need: `(module, field, params, results)`.
const HOST_IMPORTS: &[(&str, &str, Intrinsic)] = &[
    ("env", "print_i32", Intrinsic::PrintI32),
    ("env", "print_i64", Intrinsic::PrintI64),
    ("env", "print_f64", Intrinsic::PrintF64),
    ("env", "print_str", Intrinsic::PrintStr),
    ("math", "exp", Intrinsic::Exp),
    ("math", "log", Intrinsic::Log),
    ("math", "sin", Intrinsic::Sin),
    ("math", "cos", Intrinsic::Cos),
    ("math", "tan", Intrinsic::Tan),
    ("math", "atan", Intrinsic::Atan),
    ("math", "pow", Intrinsic::Pow),
];

fn val_type(t: Ty) -> ValType {
    match t {
        Ty::I32 { .. } => ValType::I32,
        Ty::I64 { .. } => ValType::I64,
        Ty::F32 => ValType::F32,
        Ty::F64 => ValType::F64,
        Ty::Void => unreachable!("void has no value type"),
    }
}

#[derive(Default)]
struct ScratchLocals {
    /// Per-function scratch slot per value type, allocated lazily.
    slots: std::collections::HashMap<ValType, u32>,
}

struct Emitter<'a> {
    p: &'a HProgram,
    lay: Layout,
    opts: &'a WasmEmitOptions,
    module: Module,
    /// Intrinsic → import function index.
    import_of: Vec<(Intrinsic, u32)>,
    scratch: ScratchLocals,
}

/// Loop context for break/continue depth computation.
struct LoopFrame {
    /// Relative depth (from the current emission point) is tracked as an
    /// absolute "blocks opened" count; branches compute the delta.
    exit_abs: u32,
    continue_abs: u32,
}

impl<'a> Emitter<'a> {
    fn emit(&mut self) -> Result<(), CompileError> {
        // --- imports (must precede defined functions) ------------------
        let used = self.used_intrinsics();
        let mut mb_module = Module::new();
        for (module_name, field, intr) in HOST_IMPORTS {
            if !used.contains(intr) || intr.wasm_native() {
                continue;
            }
            let (params, results) = intrinsic_sig(*intr);
            let ti = mb_module.intern_type(wb_wasm::FuncType::new(params, results));
            mb_module.imports.push(wb_wasm::FuncImport {
                module: module_name.to_string(),
                field: field.to_string(),
                type_index: ti,
            });
            self.import_of
                .push((*intr, (mb_module.imports.len() - 1) as u32));
        }
        self.module = mb_module;

        // --- memory ------------------------------------------------------
        let page = 64 * 1024u64;
        // Static data plus the bundled-runtime tables (1 KiB past data_end).
        let data_pages = lay_pages(self.lay.data_end + 1024, page);
        let (min_pages, start_grows) = match self.opts.profile.toolchain {
            Toolchain::Cheerp => {
                // Static data is mapped up front; the runtime acquires its
                // stack page and heap arena via memory.grow at startup.
                (
                    data_pages.max(self.opts.profile.initial_memory_pages as u64),
                    2u32,
                )
            }
            Toolchain::Emscripten => (
                data_pages.max(self.opts.profile.initial_memory_pages as u64),
                0,
            ),
        };
        self.module.memory = Some(wb_wasm::MemorySpec {
            limits: wb_wasm::Limits::at_least(min_pages as u32),
        });
        self.module.exports.push(wb_wasm::Export {
            name: "memory".into(),
            kind: wb_wasm::ExportKind::Memory(0),
        });

        // --- globals ------------------------------------------------------
        for g in &self.p.globals {
            let init = match (g.ty, g.init) {
                (Ty::I32 { .. }, v) => Instr::I32Const(v.as_i64() as i32),
                (Ty::I64 { .. }, v) => Instr::I64Const(v.as_i64()),
                (Ty::F32, v) => Instr::F32Const(v.as_f64() as f32),
                (Ty::F64, v) => Instr::F64Const(v.as_f64()),
                (Ty::Void, _) => unreachable!(),
            };
            self.module.globals.push(wb_wasm::Global {
                ty: wb_wasm::GlobalType {
                    ty: val_type(g.ty),
                    mutable: true,
                },
                init,
            });
        }

        // --- data segments -------------------------------------------------
        for (i, a) in self.p.arrays.iter().enumerate() {
            let Some(init) = &a.init else { continue };
            let mut bytes = Vec::with_capacity(a.byte_size() as usize);
            for v in init {
                match a.elem {
                    ElemTy::I8 { .. } => bytes.push((v.as_i64() & 0xff) as u8),
                    ElemTy::I32 { .. } => {
                        bytes.extend_from_slice(&(v.as_i64() as i32).to_le_bytes())
                    }
                    ElemTy::I64 { .. } => bytes.extend_from_slice(&v.as_i64().to_le_bytes()),
                    ElemTy::F32 => bytes.extend_from_slice(&(v.as_f64() as f32).to_le_bytes()),
                    ElemTy::F64 => bytes.extend_from_slice(&v.as_f64().to_le_bytes()),
                }
            }
            // Trailing zeros are implicit in fresh linear memory.
            while bytes.last() == Some(&0) {
                bytes.pop();
            }
            if !bytes.is_empty() {
                self.module.data.push(wb_wasm::Data {
                    offset: self.lay.base(i as ArrayId) as i32,
                    bytes,
                });
            }
        }

        // --- functions ------------------------------------------------------
        let import_count = self.module.imports.len() as u32;
        for f in self.p.funcs.iter() {
            let func = self.lower_func(f, import_count)?;
            let index = self.module.func_count() as u32;
            self.module.exports.push(wb_wasm::Export {
                name: f.name.clone(),
                kind: wb_wasm::ExportKind::Func(index),
            });
            self.module.functions.push(func);
        }

        // --- bundled runtime (§3.2) -----------------------------------------
        // Cheerp implicitly links pre-compiled library code (memory
        // intrinsics, an allocator, number-formatting tables). The bundle
        // is part of every module and dilutes per-level code-size deltas,
        // as in the paper's ~950-LOC benchmark files.
        self.emit_runtime();

        // --- start function (Cheerp runtime growth) -------------------------
        if start_grows > 0 {
            let mut body = Vec::new();
            for _ in 0..start_grows {
                body.push(Instr::I32Const(
                    self.opts.profile.grow_granularity_pages as i32,
                ));
                body.push(Instr::MemoryGrow);
                body.push(Instr::Drop);
            }
            body.push(Instr::End);
            let ti = self
                .module
                .intern_type(wb_wasm::FuncType::new(vec![], vec![]));
            let start_index = self.module.func_count() as u32;
            self.module.functions.push(wb_wasm::Function {
                type_index: ti,
                locals: vec![],
                body,
                name: Some("__init".into()),
            });
            self.module.start = Some(start_index);
        }

        Ok(())
    }

    /// Emit the bundled runtime: memcpy/memset/memmove/memcmp, a bump
    /// allocator over a heap-pointer global, and the ctype/dtoa data
    /// tables libc-style formatting needs.
    fn emit_runtime(&mut self) {
        use Instr::*;
        let table_base = self.lay.data_end as i32;
        let heap_base = table_base + 1024;
        // Heap pointer global for the allocator.
        self.module.globals.push(wb_wasm::Global {
            ty: wb_wasm::GlobalType {
                ty: ValType::I32,
                mutable: true,
            },
            init: I32Const(heap_base),
        });
        let heap_ptr = (self.module.globals.len() - 1) as u32;

        let mut emit = |name: &str,
                        params: Vec<ValType>,
                        results: Vec<ValType>,
                        locals: Vec<ValType>,
                        body: Vec<Instr>| {
            let ti = self
                .module
                .intern_type(wb_wasm::FuncType::new(params, results));
            self.module.functions.push(wb_wasm::Function {
                type_index: ti,
                locals,
                body,
                name: Some(name.to_string()),
            });
        };

        // __memset(dst, value, n): byte loop.
        emit(
            "__memset",
            vec![ValType::I32, ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                Block(BlockType::Empty),
                Loop(BlockType::Empty),
                LocalGet(3),
                LocalGet(2),
                I32GeU,
                BrIf(1),
                LocalGet(0),
                LocalGet(3),
                I32Add,
                LocalGet(1),
                I32Store8(MemArg::natural(1)),
                LocalGet(3),
                I32Const(1),
                I32Add,
                LocalSet(3),
                Br(0),
                End,
                End,
                LocalGet(0),
                End,
            ],
        );
        // __memcpy(dst, src, n).
        emit(
            "__memcpy",
            vec![ValType::I32, ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                Block(BlockType::Empty),
                Loop(BlockType::Empty),
                LocalGet(3),
                LocalGet(2),
                I32GeU,
                BrIf(1),
                LocalGet(0),
                LocalGet(3),
                I32Add,
                LocalGet(1),
                LocalGet(3),
                I32Add,
                I32Load8U(MemArg::natural(1)),
                I32Store8(MemArg::natural(1)),
                LocalGet(3),
                I32Const(1),
                I32Add,
                LocalSet(3),
                Br(0),
                End,
                End,
                LocalGet(0),
                End,
            ],
        );
        // __memmove(dst, src, n): backward copy when overlapping.
        emit(
            "__memmove",
            vec![ValType::I32, ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                LocalGet(2),
                LocalSet(3),
                Block(BlockType::Empty),
                Loop(BlockType::Empty),
                LocalGet(3),
                I32Eqz,
                BrIf(1),
                LocalGet(3),
                I32Const(1),
                I32Sub,
                LocalSet(3),
                LocalGet(0),
                LocalGet(3),
                I32Add,
                LocalGet(1),
                LocalGet(3),
                I32Add,
                I32Load8U(MemArg::natural(1)),
                I32Store8(MemArg::natural(1)),
                Br(0),
                End,
                End,
                LocalGet(0),
                End,
            ],
        );
        // __memcmp(a, b, n).
        emit(
            "__memcmp",
            vec![ValType::I32, ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32, ValType::I32],
            vec![
                Block(BlockType::Empty),
                Loop(BlockType::Empty),
                LocalGet(3),
                LocalGet(2),
                I32GeU,
                BrIf(1),
                LocalGet(0),
                LocalGet(3),
                I32Add,
                I32Load8U(MemArg::natural(1)),
                LocalGet(1),
                LocalGet(3),
                I32Add,
                I32Load8U(MemArg::natural(1)),
                I32Sub,
                LocalTee(4),
                I32Eqz,
                If(BlockType::Empty),
                Else,
                LocalGet(4),
                Return,
                End,
                LocalGet(3),
                I32Const(1),
                I32Add,
                LocalSet(3),
                Br(0),
                End,
                End,
                I32Const(0),
                End,
            ],
        );
        // __strlen(p).
        emit(
            "__strlen",
            vec![ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                Block(BlockType::Empty),
                Loop(BlockType::Empty),
                LocalGet(0),
                LocalGet(1),
                I32Add,
                I32Load8U(MemArg::natural(1)),
                I32Eqz,
                BrIf(1),
                LocalGet(1),
                I32Const(1),
                I32Add,
                LocalSet(1),
                Br(0),
                End,
                End,
                LocalGet(1),
                End,
            ],
        );
        // __malloc(n): 8-aligned bump allocation with grow-on-demand.
        emit(
            "__malloc",
            vec![ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                GlobalGet(heap_ptr),
                LocalSet(1),
                GlobalGet(heap_ptr),
                LocalGet(0),
                I32Const(7),
                I32Add,
                I32Const(-8),
                I32And,
                I32Add,
                GlobalSet(heap_ptr),
                // Grow if the new break passed the current memory size.
                GlobalGet(heap_ptr),
                MemorySize,
                I32Const(16),
                I32Shl,
                I32GtU,
                If(BlockType::Empty),
                I32Const(1),
                MemoryGrow,
                Drop,
                End,
                LocalGet(1),
                End,
            ],
        );
        // __free(p): bump allocators do not reclaim (the §2.2.2 story).
        emit(
            "__free",
            vec![ValType::I32],
            vec![],
            vec![],
            vec![LocalGet(0), Drop, End],
        );
        // __itoa10(value, buf) -> digits written (number formatting core).
        emit(
            "__itoa10",
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                Block(BlockType::Empty),
                Loop(BlockType::Empty),
                LocalGet(1),
                LocalGet(2),
                I32Add,
                LocalGet(0),
                I32Const(10),
                I32RemU,
                I32Const(48),
                I32Add,
                I32Store8(MemArg::natural(1)),
                LocalGet(2),
                I32Const(1),
                I32Add,
                LocalSet(2),
                LocalGet(0),
                I32Const(10),
                I32DivU,
                LocalTee(0),
                I32Eqz,
                BrIf(1),
                Br(0),
                End,
                End,
                LocalGet(2),
                End,
            ],
        );

        // Data tables: ctype classification (256 B) and a power-of-ten
        // table for float formatting (64 × f64 = 512 B), placed past the
        // user data.
        let mut ctype = Vec::with_capacity(256);
        for c in 0u32..256 {
            let ch = c as u8 as char;
            let mut flags = 0u8;
            if ch.is_ascii_alphabetic() {
                flags |= 1;
            }
            if ch.is_ascii_digit() {
                flags |= 2;
            }
            if ch.is_ascii_whitespace() {
                flags |= 4;
            }
            if ch.is_ascii_uppercase() {
                flags |= 8;
            }
            ctype.push(flags);
        }
        self.module.data.push(wb_wasm::Data {
            offset: table_base,
            bytes: ctype,
        });
        let mut pow10 = Vec::with_capacity(512);
        for e in 0..64 {
            pow10.extend_from_slice(&10f64.powi(e).to_le_bytes());
        }
        self.module.data.push(wb_wasm::Data {
            offset: table_base + 256,
            bytes: pow10,
        });
    }

    fn used_intrinsics(&self) -> std::collections::HashSet<Intrinsic> {
        let mut used = std::collections::HashSet::new();
        fn expr(e: &HExpr, used: &mut std::collections::HashSet<Intrinsic>) {
            match e {
                HExpr::Call { callee, args, .. } => {
                    if let Callee::Intrinsic(i) = callee {
                        used.insert(*i);
                    }
                    for a in args {
                        expr(a, used);
                    }
                }
                HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => expr(a, used),
                HExpr::Binary(_, a, b, _)
                | HExpr::Cmp(_, a, b, _)
                | HExpr::And(a, b)
                | HExpr::Or(a, b) => {
                    expr(a, used);
                    expr(b, used);
                }
                HExpr::Ternary(c, a, b, _) => {
                    expr(c, used);
                    expr(a, used);
                    expr(b, used);
                }
                HExpr::Elem { idx, .. } => idx.iter().for_each(|i| expr(i, used)),
                HExpr::AssignExpr { lhs, value, .. } => {
                    if let HLval::Elem { idx, .. } = lhs.as_ref() {
                        idx.iter().for_each(|i| expr(i, used));
                    }
                    expr(value, used);
                }
                _ => {}
            }
        }
        fn stmt(s: &HStmt, used: &mut std::collections::HashSet<Intrinsic>) {
            match s {
                HStmt::DeclLocal { init: Some(e), .. }
                | HStmt::Expr(e)
                | HStmt::Return(Some(e)) => expr(e, used),
                HStmt::Assign { lhs, value } => {
                    if let HLval::Elem { idx, .. } = lhs {
                        idx.iter().for_each(|i| expr(i, used));
                    }
                    expr(value, used);
                }
                HStmt::If(c, a, b) => {
                    expr(c, used);
                    a.iter().for_each(|s| stmt(s, used));
                    b.iter().for_each(|s| stmt(s, used));
                }
                HStmt::Loop {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    init.iter().for_each(|s| stmt(s, used));
                    if let Some(c) = cond {
                        expr(c, used);
                    }
                    step.iter().for_each(|s| stmt(s, used));
                    body.iter().for_each(|s| stmt(s, used));
                }
                HStmt::Switch {
                    scrut,
                    cases,
                    default,
                } => {
                    expr(scrut, used);
                    cases
                        .iter()
                        .for_each(|(_, b)| b.iter().for_each(|s| stmt(s, used)));
                    default.iter().for_each(|s| stmt(s, used));
                }
                HStmt::Block(b) => b.iter().for_each(|s| stmt(s, used)),
                _ => {}
            }
        }
        for f in &self.p.funcs {
            f.body.iter().for_each(|s| stmt(s, &mut used));
        }
        used
    }

    fn import_index(&self, intr: Intrinsic) -> Option<u32> {
        self.import_of
            .iter()
            .find(|(i, _)| *i == intr)
            .map(|(_, idx)| *idx)
    }

    fn lower_func(
        &mut self,
        f: &HFunc,
        import_count: u32,
    ) -> Result<wb_wasm::Function, CompileError> {
        self.scratch = ScratchLocals::default();
        let mut fx = FuncLowering {
            code: Vec::new(),
            extra_locals: Vec::new(),
            locals_tys: f.locals.iter().map(|(_, t)| *t).collect(),
            depth: 0,
            loops: Vec::new(),
            import_count,
        };
        for s in &f.body {
            self.stmt(&mut fx, s)?;
        }
        // Functions that can fall off the end still need a result value.
        if f.ret != Ty::Void {
            fx.code.push(zero_const(f.ret));
        }
        fx.code.push(Instr::End);

        let ty_index = self.module.intern_type(wb_wasm::FuncType::new(
            f.params.iter().map(|t| val_type(*t)).collect(),
            if f.ret == Ty::Void {
                vec![]
            } else {
                vec![val_type(f.ret)]
            },
        ));
        // Locals beyond params: HIR locals then backend scratch locals.
        let mut locals: Vec<ValType> = f.locals[f.params.len()..]
            .iter()
            .map(|(_, t)| val_type(*t))
            .collect();
        locals.extend(fx.extra_locals.iter().copied());
        Ok(wb_wasm::Function {
            type_index: ty_index,
            locals,
            body: fx.code,
            name: Some(f.name.clone()),
        })
    }

    // ---- statements --------------------------------------------------------

    fn stmt(&mut self, fx: &mut FuncLowering, s: &HStmt) -> Result<(), CompileError> {
        match s {
            HStmt::DeclLocal { id, init } => {
                if let Some(e) = init {
                    self.expr(fx, e)?;
                    fx.code.push(Instr::LocalSet(*id));
                }
            }
            HStmt::Assign { lhs, value } => self.store(fx, lhs, value)?,
            HStmt::Expr(e) => {
                self.expr_for_effect(fx, e)?;
            }
            HStmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(fx, e)?;
                }
                fx.code.push(Instr::Return);
            }
            HStmt::If(cond, then, els) => {
                self.expr(fx, cond)?;
                fx.code.push(Instr::If(BlockType::Empty));
                fx.depth += 1;
                for s in then {
                    self.stmt(fx, s)?;
                }
                if !els.is_empty() {
                    fx.code.push(Instr::Else);
                    for s in els {
                        self.stmt(fx, s)?;
                    }
                }
                fx.code.push(Instr::End);
                fx.depth -= 1;
            }
            HStmt::Loop {
                kind,
                init,
                cond,
                step,
                body,
                meta,
            } => {
                for s in init {
                    self.stmt(fx, s)?;
                }
                if meta.vector_width > 1 {
                    if let Some(plan) = super::unroll::plan(cond, step, body, meta.vector_width) {
                        return self.emit_scalarized_vector_loop(fx, cond, step, body, plan);
                    }
                }
                self.emit_scalar_loop(fx, *kind, cond, step, body)?;
            }
            HStmt::Break => {
                let frame = fx.loops.last().ok_or(CompileError::Codegen {
                    message: "break outside loop".into(),
                })?;
                fx.code.push(Instr::Br(fx.depth - 1 - frame.exit_abs));
            }
            HStmt::Continue => {
                let frame = fx.loops.last().ok_or(CompileError::Codegen {
                    message: "continue outside loop".into(),
                })?;
                fx.code.push(Instr::Br(fx.depth - 1 - frame.continue_abs));
            }
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => self.emit_switch(fx, scrut, cases, default)?,
            HStmt::Block(b) => {
                for s in b {
                    self.stmt(fx, s)?;
                }
            }
        }
        Ok(())
    }

    fn emit_scalar_loop(
        &mut self,
        fx: &mut FuncLowering,
        kind: LoopKind,
        cond: &Option<HExpr>,
        step: &[HStmt],
        body: &[HStmt],
    ) -> Result<(), CompileError> {
        // block $exit { loop $top { [pre-test]; block $cont { body };
        //               step; br $top } }
        fx.code.push(Instr::Block(BlockType::Empty)); // exit
        let exit_abs = fx.depth;
        fx.depth += 1;
        fx.code.push(Instr::Loop(BlockType::Empty)); // top
        let top_abs = fx.depth;
        fx.depth += 1;
        if kind == LoopKind::PreTest {
            if let Some(c) = cond {
                self.expr(fx, c)?;
                fx.code.push(Instr::I32Eqz);
                fx.code.push(Instr::BrIf(fx.depth - 1 - exit_abs));
            }
        }
        fx.code.push(Instr::Block(BlockType::Empty)); // continue target
        let cont_abs = fx.depth;
        fx.depth += 1;
        fx.loops.push(LoopFrame {
            exit_abs,
            continue_abs: cont_abs,
        });
        for s in body {
            self.stmt(fx, s)?;
        }
        fx.loops.pop();
        fx.code.push(Instr::End); // continue target
        fx.depth -= 1;
        for s in step {
            self.stmt(fx, s)?;
        }
        if kind == LoopKind::PostTest {
            if let Some(c) = cond {
                self.expr(fx, c)?;
                fx.code.push(Instr::BrIf(fx.depth - 1 - top_abs));
            } else {
                fx.code.push(Instr::Br(fx.depth - 1 - top_abs));
            }
        } else {
            fx.code.push(Instr::Br(fx.depth - 1 - top_abs));
        }
        fx.code.push(Instr::End); // loop
        fx.depth -= 1;
        fx.code.push(Instr::End); // exit block
        fx.depth -= 1;
        Ok(())
    }

    /// Scalarized vector loop (§4.2.1's mechanism): the vectorizer's IR
    /// must be strip-mined back to scalar code on the SIMD-less MVP
    /// target — a runtime trip-count guard at entry plus per-iteration
    /// lane bookkeeping that the rolled scalar loop never needed. Same
    /// results, a few percent more work, slightly bigger code.
    fn emit_scalarized_vector_loop(
        &mut self,
        fx: &mut FuncLowering,
        cond: &Option<HExpr>,
        step: &[HStmt],
        body: &[HStmt],
        plan: super::unroll::UnrollPlan,
    ) -> Result<(), CompileError> {
        // Entry guard: evaluate the shifted bound (all-4-lanes-in-range
        // check) once.
        fx.code.push(Instr::Block(BlockType::Empty));
        fx.depth += 1;
        self.expr(fx, &plan.shifted_cond)?;
        fx.code.push(Instr::BrIf(0));
        fx.code.push(Instr::End);
        fx.depth -= 1;
        // Main loop: scalar body + lane-counter bookkeeping.
        let lane = self.scratch_local(fx, ValType::I32);
        let mut wide_body = body.to_vec();
        let _ = plan.wide_step; // the strip-mined form keeps the scalar step
        wide_body.push(HStmt::Block(vec![])); // marker: end of user body
        self.emit_scalar_loop_with_extra(fx, cond, step, &wide_body, Some(lane))
    }

    /// Pre-test scalar loop with optional per-iteration lane bookkeeping.
    fn emit_scalar_loop_with_extra(
        &mut self,
        fx: &mut FuncLowering,
        cond: &Option<HExpr>,
        step: &[HStmt],
        body: &[HStmt],
        lane: Option<u32>,
    ) -> Result<(), CompileError> {
        fx.code.push(Instr::Block(BlockType::Empty)); // exit
        let exit_abs = fx.depth;
        fx.depth += 1;
        fx.code.push(Instr::Loop(BlockType::Empty)); // top
        let top_abs = fx.depth;
        fx.depth += 1;
        if let Some(c) = cond {
            self.expr(fx, c)?;
            fx.code.push(Instr::I32Eqz);
            fx.code.push(Instr::BrIf(fx.depth - 1 - exit_abs));
        }
        fx.code.push(Instr::Block(BlockType::Empty)); // continue target
        let cont_abs = fx.depth;
        fx.depth += 1;
        fx.loops.push(LoopFrame {
            exit_abs,
            continue_abs: cont_abs,
        });
        for s in body {
            self.stmt(fx, s)?;
        }
        fx.loops.pop();
        fx.code.push(Instr::End);
        fx.depth -= 1;
        if let Some(lane) = lane {
            // lane = (lane + 1) & 3 — the strip-mined lane counter.
            fx.code.push(Instr::LocalGet(lane));
            fx.code.push(Instr::I32Const(1));
            fx.code.push(Instr::I32Add);
            fx.code.push(Instr::I32Const(3));
            fx.code.push(Instr::I32And);
            fx.code.push(Instr::LocalSet(lane));
        }
        for s in step {
            self.stmt(fx, s)?;
        }
        fx.code.push(Instr::Br(fx.depth - 1 - top_abs));
        fx.code.push(Instr::End); // loop
        fx.depth -= 1;
        fx.code.push(Instr::End); // exit
        fx.depth -= 1;
        Ok(())
    }

    fn emit_switch(
        &mut self,
        fx: &mut FuncLowering,
        scrut: &HExpr,
        cases: &[(i64, Vec<HStmt>)],
        default: &[HStmt],
    ) -> Result<(), CompileError> {
        if cases.is_empty() {
            for s in default {
                self.stmt(fx, s)?;
            }
            return Ok(());
        }
        let min = cases.iter().map(|(v, _)| *v).min().expect("non-empty");
        let max = cases.iter().map(|(v, _)| *v).max().expect("non-empty");
        let dense = (max - min) < 128;
        if !dense {
            // Sparse labels: if/else chain.
            // scrut is evaluated once into a scratch local.
            let slot = self.scratch_local(fx, ValType::I32);
            self.expr(fx, scrut)?;
            fx.code.push(Instr::LocalSet(slot));
            return self.emit_switch_chain(fx, slot, cases, default);
        }

        // Dense: block structure + br_table.
        // block $exit { block $default { block $caseK … block $case0 {
        //   br_table } case0 … br $exit } … default }
        let n = cases.len();
        fx.code.push(Instr::Block(BlockType::Empty)); // exit
        let exit_abs = fx.depth;
        fx.depth += 1;
        fx.code.push(Instr::Block(BlockType::Empty)); // default
        let default_abs = fx.depth;
        fx.depth += 1;
        let mut case_abs = Vec::with_capacity(n);
        for _ in 0..n {
            fx.code.push(Instr::Block(BlockType::Empty));
            case_abs.push(fx.depth);
            fx.depth += 1;
        }
        // Table maps (scrut - min) to the case block; holes go to default.
        self.expr(fx, scrut)?;
        if min != 0 {
            fx.code.push(Instr::I32Const(min as i32));
            fx.code.push(Instr::I32Sub);
        }
        let mut table = Vec::with_capacity((max - min + 1) as usize);
        for v in min..=max {
            let depth = match cases.iter().position(|(cv, _)| *cv == v) {
                Some(pos) => fx.depth - 1 - case_abs[pos],
                None => fx.depth - 1 - default_abs,
            };
            table.push(depth);
        }
        fx.code
            .push(Instr::BrTable(table, fx.depth - 1 - default_abs));
        // Ends close innermost-first, so bodies are emitted in reverse
        // case order: the first End closes the last-opened block.
        for (_, body) in cases.iter().rev() {
            fx.code.push(Instr::End);
            fx.depth -= 1;
            for s in body {
                self.stmt(fx, s)?;
            }
            fx.code.push(Instr::Br(fx.depth - 1 - exit_abs));
        }
        fx.code.push(Instr::End); // default block
        fx.depth -= 1;
        for s in default {
            self.stmt(fx, s)?;
        }
        fx.code.push(Instr::End); // exit
        fx.depth -= 1;
        Ok(())
    }

    fn emit_switch_chain(
        &mut self,
        fx: &mut FuncLowering,
        slot: u32,
        cases: &[(i64, Vec<HStmt>)],
        default: &[HStmt],
    ) -> Result<(), CompileError> {
        match cases.split_first() {
            None => {
                for s in default {
                    self.stmt(fx, s)?;
                }
                Ok(())
            }
            Some(((v, body), rest)) => {
                fx.code.push(Instr::LocalGet(slot));
                fx.code.push(Instr::I32Const(*v as i32));
                fx.code.push(Instr::I32Eq);
                fx.code.push(Instr::If(BlockType::Empty));
                fx.depth += 1;
                for s in body {
                    self.stmt(fx, s)?;
                }
                fx.code.push(Instr::Else);
                self.emit_switch_chain(fx, slot, rest, default)?;
                fx.code.push(Instr::End);
                fx.depth -= 1;
                Ok(())
            }
        }
    }

    // ---- stores -------------------------------------------------------------

    fn store(
        &mut self,
        fx: &mut FuncLowering,
        lhs: &HLval,
        value: &HExpr,
    ) -> Result<(), CompileError> {
        match lhs {
            HLval::Local(id) => {
                self.expr(fx, value)?;
                fx.code.push(Instr::LocalSet(*id));
            }
            HLval::Global(id) => {
                self.expr(fx, value)?;
                fx.code.push(Instr::GlobalSet(*id));
            }
            HLval::Elem { array, idx } => {
                let arr = &self.p.arrays[*array as usize];
                let elem = arr.elem;
                self.elem_addr(fx, *array, idx)?;
                self.expr(fx, value)?;
                // Narrow the value to the element width.
                let base = self.lay.base(*array) as u32;
                let mem = MemArg::natural(elem.width()).with_offset(base);
                fx.code.push(match elem {
                    ElemTy::I8 { .. } => Instr::I32Store8(mem),
                    ElemTy::I32 { .. } => Instr::I32Store(mem),
                    ElemTy::I64 { .. } => Instr::I64Store(mem),
                    ElemTy::F32 => Instr::F32Store(mem),
                    ElemTy::F64 => Instr::F64Store(mem),
                });
            }
        }
        Ok(())
    }

    /// Push the byte address (without the static base, which rides in the
    /// memarg offset) of `array[idx…]`.
    fn elem_addr(
        &mut self,
        fx: &mut FuncLowering,
        array: ArrayId,
        idx: &[HExpr],
    ) -> Result<(), CompileError> {
        let arr = self.p.arrays[array as usize].clone();
        // acc = ((i0*d1 + i1)*d2 + i2)… ; addr = acc << log2(width)
        self.expr(fx, &idx[0])?;
        for (k, i) in idx.iter().enumerate().skip(1) {
            fx.code.push(Instr::I32Const(arr.dims[k] as i32));
            fx.code.push(Instr::I32Mul);
            self.expr(fx, i)?;
            fx.code.push(Instr::I32Add);
        }
        let width = arr.elem.width();
        if width > 1 {
            fx.code.push(Instr::I32Const(width.trailing_zeros() as i32));
            fx.code.push(Instr::I32Shl);
        }
        Ok(())
    }

    // ---- expressions ----------------------------------------------------------

    /// Emit an expression in statement position, dropping any value.
    fn expr_for_effect(&mut self, fx: &mut FuncLowering, e: &HExpr) -> Result<(), CompileError> {
        match e {
            HExpr::AssignExpr { lhs, value, .. } => self.store(fx, lhs, value),
            other => {
                self.expr(fx, other)?;
                if other.ty() != Ty::Void {
                    fx.code.push(Instr::Drop);
                }
                Ok(())
            }
        }
    }

    fn expr(&mut self, fx: &mut FuncLowering, e: &HExpr) -> Result<(), CompileError> {
        match e {
            HExpr::ConstI(v, ty) => match ty {
                Ty::I64 { .. } => fx.code.push(Instr::I64Const(*v)),
                _ => fx.code.push(Instr::I32Const(*v as i32)),
            },
            HExpr::ConstF(v, ty) => self.emit_float_const(fx, *v, *ty),
            HExpr::Local(id, _) => fx.code.push(Instr::LocalGet(*id)),
            HExpr::Global(id, _) => fx.code.push(Instr::GlobalGet(*id)),
            HExpr::Elem { array, idx, .. } => {
                let arr = self.p.arrays[*array as usize].clone();
                self.elem_addr(fx, *array, idx)?;
                let base = self.lay.base(*array) as u32;
                let mem = MemArg::natural(arr.elem.width()).with_offset(base);
                fx.code.push(match arr.elem {
                    ElemTy::I8 { unsigned: true } => Instr::I32Load8U(mem),
                    ElemTy::I8 { unsigned: false } => Instr::I32Load8S(mem),
                    ElemTy::I32 { .. } => Instr::I32Load(mem),
                    ElemTy::I64 { .. } => Instr::I64Load(mem),
                    ElemTy::F32 => Instr::F32Load(mem),
                    ElemTy::F64 => Instr::F64Load(mem),
                });
            }
            HExpr::Unary(op, a, ty) => {
                match op {
                    HUnOp::Neg => match ty {
                        Ty::F32 => {
                            self.expr(fx, a)?;
                            fx.code.push(Instr::F32Neg);
                        }
                        Ty::F64 => {
                            self.expr(fx, a)?;
                            fx.code.push(Instr::F64Neg);
                        }
                        Ty::I64 { .. } => {
                            // 0 - x
                            fx.code.push(Instr::I64Const(0));
                            self.expr(fx, a)?;
                            fx.code.push(Instr::I64Sub);
                        }
                        _ => {
                            fx.code.push(Instr::I32Const(0));
                            self.expr(fx, a)?;
                            fx.code.push(Instr::I32Sub);
                        }
                    },
                    HUnOp::Not => {
                        self.expr(fx, a)?;
                        fx.code.push(Instr::I32Eqz);
                    }
                    HUnOp::BitNot => match ty {
                        Ty::I64 { .. } => {
                            self.expr(fx, a)?;
                            fx.code.push(Instr::I64Const(-1));
                            fx.code.push(Instr::I64Xor);
                        }
                        _ => {
                            self.expr(fx, a)?;
                            fx.code.push(Instr::I32Const(-1));
                            fx.code.push(Instr::I32Xor);
                        }
                    },
                }
            }
            HExpr::Binary(op, a, b, ty) => {
                self.expr(fx, a)?;
                self.expr(fx, b)?;
                // Shift counts are typed i32 in HIR (C semantics); wasm
                // i64 shifts take an i64 count.
                if matches!(op, HBinOp::Shl | HBinOp::Shr)
                    && matches!(ty, Ty::I64 { .. })
                    && !matches!(b.ty(), Ty::I64 { .. })
                {
                    fx.code.push(Instr::I64ExtendI32S);
                }
                fx.code.push(binary_instr(*op, *ty));
            }
            HExpr::Cmp(op, a, b, operand_ty) => {
                self.expr(fx, a)?;
                self.expr(fx, b)?;
                fx.code.push(cmp_instr(*op, *operand_ty));
            }
            HExpr::And(a, b) => {
                // a ? (b != 0) : 0  — short-circuit via if.
                self.expr(fx, a)?;
                fx.code.push(Instr::If(BlockType::Value(ValType::I32)));
                fx.depth += 1;
                self.expr(fx, b)?;
                fx.code.push(Instr::I32Const(0));
                fx.code.push(Instr::I32Ne);
                fx.code.push(Instr::Else);
                fx.code.push(Instr::I32Const(0));
                fx.code.push(Instr::End);
                fx.depth -= 1;
            }
            HExpr::Or(a, b) => {
                self.expr(fx, a)?;
                fx.code.push(Instr::If(BlockType::Value(ValType::I32)));
                fx.depth += 1;
                fx.code.push(Instr::I32Const(1));
                fx.code.push(Instr::Else);
                self.expr(fx, b)?;
                fx.code.push(Instr::I32Const(0));
                fx.code.push(Instr::I32Ne);
                fx.code.push(Instr::End);
                fx.depth -= 1;
            }
            HExpr::Ternary(c, a, b, ty) => {
                self.expr(fx, c)?;
                fx.code.push(Instr::If(BlockType::Value(val_type(*ty))));
                fx.depth += 1;
                self.expr(fx, a)?;
                fx.code.push(Instr::Else);
                self.expr(fx, b)?;
                fx.code.push(Instr::End);
                fx.depth -= 1;
            }
            HExpr::Call {
                callee,
                args,
                str_arg,
                ..
            } => match callee {
                Callee::Func(id) => {
                    for a in args {
                        self.expr(fx, a)?;
                    }
                    fx.code.push(Instr::Call(fx.import_count + *id));
                }
                Callee::Intrinsic(intr) => {
                    self.emit_intrinsic(fx, *intr, args, *str_arg)?;
                }
            },
            HExpr::Cast { to, from, expr } => {
                self.expr(fx, expr)?;
                emit_cast(&mut fx.code, *from, *to);
            }
            HExpr::AssignExpr { lhs, value, ty } => {
                // Evaluate, store, and leave the value on the stack.
                match lhs.as_ref() {
                    HLval::Local(id) => {
                        self.expr(fx, value)?;
                        fx.code.push(Instr::LocalTee(*id));
                    }
                    HLval::Global(id) => {
                        self.expr(fx, value)?;
                        let slot = self.scratch_local(fx, val_type(*ty));
                        fx.code.push(Instr::LocalTee(slot));
                        fx.code.push(Instr::GlobalSet(*id));
                        fx.code.push(Instr::LocalGet(slot));
                    }
                    HLval::Elem { array, idx } => {
                        let slot = self.scratch_local(fx, val_type(*ty));
                        self.expr(fx, value)?;
                        fx.code.push(Instr::LocalSet(slot));
                        let loaded = HExpr::Local(slot, *ty);
                        self.store(
                            fx,
                            &HLval::Elem {
                                array: *array,
                                idx: idx.clone(),
                            },
                            &loaded,
                        )?;
                        fx.code.push(Instr::LocalGet(slot));
                    }
                }
            }
        }
        Ok(())
    }

    /// Fig 8: at `-O2`+ integral f64 constants are emitted as
    /// `i32.const; f64.convert_i32_s` — two ops but a smaller encoding.
    fn emit_float_const(&mut self, fx: &mut FuncLowering, v: f64, ty: Ty) {
        match ty {
            Ty::F32 => {
                if self.opts.remat_int_consts
                    && v.fract() == 0.0
                    && v.abs() <= i32::MAX as f64
                    && v != 0.0
                {
                    fx.code.push(Instr::I32Const(v as i32));
                    fx.code.push(Instr::F32ConvertI32S);
                } else {
                    fx.code.push(Instr::F32Const(v as f32));
                }
            }
            _ => {
                if self.opts.remat_int_consts
                    && v.fract() == 0.0
                    && v.abs() <= i32::MAX as f64
                    && v != 0.0
                {
                    fx.code.push(Instr::I32Const(v as i32));
                    fx.code.push(Instr::F64ConvertI32S);
                } else {
                    fx.code.push(Instr::F64Const(v));
                }
            }
        }
    }

    fn emit_intrinsic(
        &mut self,
        fx: &mut FuncLowering,
        intr: Intrinsic,
        args: &[HExpr],
        str_arg: Option<StrId>,
    ) -> Result<(), CompileError> {
        use Intrinsic::*;
        // Native single-instruction intrinsics.
        if intr.wasm_native() {
            match intr {
                F64Bits => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::I64ReinterpretF64);
                }
                F64FromBits => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::F64ReinterpretI64);
                }
                F32Bits => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::I32ReinterpretF32);
                }
                F32FromBits => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::F32ReinterpretI32);
                }
                Sqrt => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::F64Sqrt);
                }
                Fabs => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::F64Abs);
                }
                Floor => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::F64Floor);
                }
                Ceil => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::F64Ceil);
                }
                TruncF => {
                    self.expr(fx, &args[0])?;
                    fx.code.push(Instr::F64Trunc);
                }
                _ => unreachable!("wasm_native covered above"),
            }
            return Ok(());
        }
        // Host imports (print + transcendentals).
        if intr == PrintStr {
            let sid = str_arg.ok_or(CompileError::Codegen {
                message: "print_str without string id".into(),
            })?;
            fx.code.push(Instr::I32Const(sid as i32));
        } else {
            for a in args {
                self.expr(fx, a)?;
            }
        }
        let idx = self.import_index(intr).ok_or(CompileError::Codegen {
            message: format!("intrinsic {intr:?} has no import binding"),
        })?;
        fx.code.push(Instr::Call(idx));
        Ok(())
    }

    fn scratch_local(&mut self, fx: &mut FuncLowering, ty: ValType) -> u32 {
        if let Some(&slot) = self.scratch.slots.get(&ty) {
            return slot;
        }
        // HIR locals include params, so the wasm index of the first extra
        // local is locals_tys.len() + previously added extras.
        let slot = fx.locals_tys.len() as u32 + fx.extra_locals.len() as u32;
        fx.extra_locals.push(ty);
        self.scratch.slots.insert(ty, slot);
        slot
    }
}

struct FuncLowering {
    code: Vec<Instr>,
    extra_locals: Vec<ValType>,
    locals_tys: Vec<Ty>,
    /// Count of currently open blocks (function body = depth 0).
    depth: u32,
    loops: Vec<LoopFrame>,
    import_count: u32,
}

fn lay_pages(bytes: u64, page: u64) -> u64 {
    bytes.div_ceil(page)
}

fn zero_const(t: Ty) -> Instr {
    match t {
        Ty::I64 { .. } => Instr::I64Const(0),
        Ty::F32 => Instr::F32Const(0.0),
        Ty::F64 => Instr::F64Const(0.0),
        _ => Instr::I32Const(0),
    }
}

fn intrinsic_sig(i: Intrinsic) -> (Vec<ValType>, Vec<ValType>) {
    use Intrinsic::*;
    match i {
        PrintI32 => (vec![ValType::I32], vec![]),
        PrintI64 => (vec![ValType::I64], vec![]),
        PrintF64 => (vec![ValType::F64], vec![]),
        PrintStr => (vec![ValType::I32], vec![]),
        Pow => (vec![ValType::F64, ValType::F64], vec![ValType::F64]),
        _ => (vec![ValType::F64], vec![ValType::F64]),
    }
}

fn binary_instr(op: HBinOp, ty: Ty) -> Instr {
    use HBinOp::*;
    match ty {
        Ty::F64 => match op {
            Add => Instr::F64Add,
            Sub => Instr::F64Sub,
            Mul => Instr::F64Mul,
            Div => Instr::F64Div,
            _ => unreachable!("sema rejects {op:?} on f64"),
        },
        Ty::F32 => match op {
            Add => Instr::F32Add,
            Sub => Instr::F32Sub,
            Mul => Instr::F32Mul,
            Div => Instr::F32Div,
            _ => unreachable!("sema rejects {op:?} on f32"),
        },
        Ty::I64 { unsigned } => match op {
            Add => Instr::I64Add,
            Sub => Instr::I64Sub,
            Mul => Instr::I64Mul,
            Div => {
                if unsigned {
                    Instr::I64DivU
                } else {
                    Instr::I64DivS
                }
            }
            Rem => {
                if unsigned {
                    Instr::I64RemU
                } else {
                    Instr::I64RemS
                }
            }
            BitAnd => Instr::I64And,
            BitOr => Instr::I64Or,
            BitXor => Instr::I64Xor,
            Shl => Instr::I64Shl,
            Shr => {
                if unsigned {
                    Instr::I64ShrU
                } else {
                    Instr::I64ShrS
                }
            }
        },
        _ => {
            let unsigned = ty.unsigned();
            match op {
                Add => Instr::I32Add,
                Sub => Instr::I32Sub,
                Mul => Instr::I32Mul,
                Div => {
                    if unsigned {
                        Instr::I32DivU
                    } else {
                        Instr::I32DivS
                    }
                }
                Rem => {
                    if unsigned {
                        Instr::I32RemU
                    } else {
                        Instr::I32RemS
                    }
                }
                BitAnd => Instr::I32And,
                BitOr => Instr::I32Or,
                BitXor => Instr::I32Xor,
                Shl => Instr::I32Shl,
                Shr => {
                    if unsigned {
                        Instr::I32ShrU
                    } else {
                        Instr::I32ShrS
                    }
                }
            }
        }
    }
}

fn cmp_instr(op: HCmpOp, ty: Ty) -> Instr {
    use HCmpOp::*;
    match ty {
        Ty::F64 => match op {
            Eq => Instr::F64Eq,
            Ne => Instr::F64Ne,
            Lt => Instr::F64Lt,
            Le => Instr::F64Le,
            Gt => Instr::F64Gt,
            Ge => Instr::F64Ge,
        },
        Ty::F32 => match op {
            Eq => Instr::F32Eq,
            Ne => Instr::F32Ne,
            Lt => Instr::F32Lt,
            Le => Instr::F32Le,
            Gt => Instr::F32Gt,
            Ge => Instr::F32Ge,
        },
        Ty::I64 { unsigned } => match (op, unsigned) {
            (Eq, _) => Instr::I64Eq,
            (Ne, _) => Instr::I64Ne,
            (Lt, false) => Instr::I64LtS,
            (Lt, true) => Instr::I64LtU,
            (Le, false) => Instr::I64LeS,
            (Le, true) => Instr::I64LeU,
            (Gt, false) => Instr::I64GtS,
            (Gt, true) => Instr::I64GtU,
            (Ge, false) => Instr::I64GeS,
            (Ge, true) => Instr::I64GeU,
        },
        _ => {
            let unsigned = ty.unsigned();
            match (op, unsigned) {
                (Eq, _) => Instr::I32Eq,
                (Ne, _) => Instr::I32Ne,
                (Lt, false) => Instr::I32LtS,
                (Lt, true) => Instr::I32LtU,
                (Le, false) => Instr::I32LeS,
                (Le, true) => Instr::I32LeU,
                (Gt, false) => Instr::I32GtS,
                (Gt, true) => Instr::I32GtU,
                (Ge, false) => Instr::I32GeS,
                (Ge, true) => Instr::I32GeU,
            }
        }
    }
}

fn emit_cast(code: &mut Vec<Instr>, from: Ty, to: Ty) {
    use Ty::*;
    match (from, to) {
        (a, b) if a == b => {}
        (I32 { .. }, I64 { .. }) => code.push(if from.unsigned() {
            Instr::I64ExtendI32U
        } else {
            Instr::I64ExtendI32S
        }),
        (I64 { .. }, I32 { .. }) => code.push(Instr::I32WrapI64),
        (I32 { .. }, F64) => code.push(if from.unsigned() {
            Instr::F64ConvertI32U
        } else {
            Instr::F64ConvertI32S
        }),
        (I32 { .. }, F32) => code.push(if from.unsigned() {
            Instr::F32ConvertI32U
        } else {
            Instr::F32ConvertI32S
        }),
        (I64 { .. }, F64) => code.push(if from.unsigned() {
            Instr::F64ConvertI64U
        } else {
            Instr::F64ConvertI64S
        }),
        (I64 { .. }, F32) => code.push(if from.unsigned() {
            Instr::F32ConvertI64U
        } else {
            Instr::F32ConvertI64S
        }),
        (F64, I32 { unsigned }) => code.push(if unsigned {
            Instr::I32TruncF64U
        } else {
            Instr::I32TruncF64S
        }),
        (F64, I64 { unsigned }) => code.push(if unsigned {
            Instr::I64TruncF64U
        } else {
            Instr::I64TruncF64S
        }),
        (F32, I32 { unsigned }) => code.push(if unsigned {
            Instr::I32TruncF32U
        } else {
            Instr::I32TruncF32S
        }),
        (F32, I64 { unsigned }) => code.push(if unsigned {
            Instr::I64TruncF32U
        } else {
            Instr::I64TruncF32S
        }),
        (F32, F64) => code.push(Instr::F64PromoteF32),
        (F64, F32) => code.push(Instr::F32DemoteF64),
        (I32 { .. }, I32 { .. }) | (I64 { .. }, I64 { .. }) => {} // sign-only change
        (F32, F32) | (F64, F64) => {}
        (Void, _) | (_, Void) => {}
    }
}
