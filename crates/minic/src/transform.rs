//! Source-code transformation (§3.1, Fig 3): rewrite constructs the Cheerp
//! profile cannot compile into supported equivalents.
//!
//! * **Exceptions** (Fig 3a): `try { … throw e; … } catch (...) { H }`
//!   becomes an error flag: throws set `__error = 1`, and the catch body
//!   runs under `if (__error)` after the protected region. Like the
//!   paper's manual rewrite, this does not unwind — throwing code keeps
//!   running to the end of the protected region.
//! * **Unions** (Fig 3b): the paper rewrites `union { double d; long ll }`
//!   into two structs with pointer casts. MiniC is pointer-free, so the
//!   transformer expresses the same reinterpretation directly: a union
//!   variable is stored as its widest floating field, and cross-field
//!   accesses become bit-reinterpret intrinsics (`__f64_bits` /
//!   `__f64_from_bits`), which the backends lower to
//!   `i64.reinterpret_f64`-style instructions. The observable behaviour —
//!   type punning through memory — is identical.

use crate::ast::*;
use crate::error::CompileError;
use std::collections::HashMap;

/// Rewrites applied, for reporting (the harness logs which benchmarks
/// needed transformation, like the paper's "30 programs had compilation
/// errors" accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// `try`/`catch` blocks rewritten.
    pub try_blocks: u32,
    /// `throw` statements rewritten.
    pub throws: u32,
    /// Union member accesses rewritten.
    pub union_accesses: u32,
    /// Union variable declarations retyped.
    pub union_vars: u32,
}

impl TransformReport {
    /// True when the transformer changed anything.
    pub fn changed(&self) -> bool {
        *self != TransformReport::default()
    }
}

#[derive(Debug, Clone)]
struct UnionInfo {
    /// Field name → type.
    fields: HashMap<String, TypeName>,
    /// The storage type chosen for variables of this union.
    storage: TypeName,
    /// Name of the field whose type equals `storage`.
    storage_field: String,
}

/// Apply the §3.1 transformation to a parsed unit.
pub fn transform_unit(unit: &Unit) -> Result<(Unit, TransformReport), CompileError> {
    let mut report = TransformReport::default();

    // Collect union definitions.
    let mut unions: HashMap<String, UnionInfo> = HashMap::new();
    for item in &unit.items {
        if let Item::UnionDef { name, fields } = item {
            let storage_pair = fields
                .iter()
                .find(|(t, _)| matches!(t, TypeName::Double | TypeName::Float))
                .or_else(|| fields.first())
                .ok_or_else(|| CompileError::Unsupported {
                    construct: format!("empty union {name}"),
                    hint: "unions must have at least one field".into(),
                })?;
            unions.insert(
                name.clone(),
                UnionInfo {
                    fields: fields.iter().cloned().map(|(t, n)| (n, t)).collect(),
                    storage: storage_pair.0.clone(),
                    storage_field: storage_pair.1.clone(),
                },
            );
        }
    }

    // Map union-typed variables to their union tag.
    let mut union_vars: HashMap<String, String> = HashMap::new();
    for item in &unit.items {
        if let Item::Global {
            ty: TypeName::Union(tag),
            name,
            ..
        } = item
        {
            union_vars.insert(name.clone(), tag.clone());
        }
    }

    let mut tx = Tx {
        unions,
        union_vars,
        report: &mut report,
        uses_error_flag: false,
    };

    let mut items = Vec::new();
    for item in &unit.items {
        match item {
            Item::UnionDef { .. } => {} // consumed
            Item::Global {
                ty,
                name,
                dims,
                init,
                is_const,
            } => {
                let ty = match ty {
                    TypeName::Union(tag) => {
                        if !dims.is_empty() {
                            return Err(CompileError::Unsupported {
                                construct: format!("array of union {tag}"),
                                hint: "only scalar union variables are transformable".into(),
                            });
                        }
                        tx.report.union_vars += 1;
                        tx.union_info(tag)?.storage.clone()
                    }
                    other => other.clone(),
                };
                items.push(Item::Global {
                    ty,
                    name: name.clone(),
                    dims: dims.clone(),
                    init: init.clone(),
                    is_const: *is_const,
                });
            }
            Item::Func {
                ret,
                name,
                params,
                body,
            } => {
                // Local union declarations inside the function body.
                let body = tx.stmts(body)?;
                items.push(Item::Func {
                    ret: ret.clone(),
                    name: name.clone(),
                    params: params.clone(),
                    body,
                });
            }
        }
    }

    if tx.uses_error_flag {
        // Global error flag, declared first (Fig 3a's `error` variable).
        items.insert(
            0,
            Item::Global {
                ty: TypeName::Int { unsigned: false },
                name: "__error".into(),
                dims: vec![],
                init: None,
                is_const: false,
            },
        );
    }

    Ok((Unit { items }, report))
}

struct Tx<'a> {
    unions: HashMap<String, UnionInfo>,
    union_vars: HashMap<String, String>,
    report: &'a mut TransformReport,
    uses_error_flag: bool,
}

impl Tx<'_> {
    fn union_info(&self, tag: &str) -> Result<&UnionInfo, CompileError> {
        self.unions.get(tag).ok_or_else(|| CompileError::Sema {
            message: format!("unknown union tag {tag}"),
        })
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::new();
        for s in stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        match s {
            Stmt::Try(body, catch) => {
                self.report.try_blocks += 1;
                self.uses_error_flag = true;
                // __error = 0;
                out.push(Stmt::Expr(Expr::Assign {
                    target: Target::Name("__error".into()),
                    op: None,
                    value: Box::new(Expr::Int(0)),
                }));
                let body = self.stmts(body)?;
                out.push(Stmt::Block(body));
                let catch = self.stmts(catch)?;
                out.push(Stmt::If(Expr::Name("__error".into()), catch, Vec::new()));
            }
            Stmt::Throw(e) => {
                self.report.throws += 1;
                self.uses_error_flag = true;
                // Evaluate the thrown expression for side effects, then flag.
                if has_side_effects(e) {
                    out.push(Stmt::Expr(self.expr(e)?));
                }
                out.push(Stmt::Expr(Expr::Assign {
                    target: Target::Name("__error".into()),
                    op: None,
                    value: Box::new(Expr::Int(1)),
                }));
            }
            Stmt::Decl {
                ty,
                name,
                dims,
                init,
            } => {
                let ty = match ty {
                    TypeName::Union(tag) => {
                        self.report.union_vars += 1;
                        let info = self.union_info(tag)?.clone();
                        self.union_vars.insert(name.clone(), tag.clone());
                        info.storage
                    }
                    other => other.clone(),
                };
                out.push(Stmt::Decl {
                    ty,
                    name: name.clone(),
                    dims: dims.clone(),
                    init: init.as_ref().map(|e| self.expr(e)).transpose()?,
                });
            }
            Stmt::Expr(e) => out.push(Stmt::Expr(self.expr(e)?)),
            Stmt::If(c, t, e) => out.push(Stmt::If(self.expr(c)?, self.stmts(t)?, self.stmts(e)?)),
            Stmt::While(c, b) => out.push(Stmt::While(self.expr(c)?, self.stmts(b)?)),
            Stmt::DoWhile(b, c) => out.push(Stmt::DoWhile(self.stmts(b)?, self.expr(c)?)),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let init = match init {
                    Some(i) => {
                        let mut tmp = Vec::new();
                        self.stmt(i, &mut tmp)?;
                        // A transformed init must stay a single statement.
                        Some(Box::new(if tmp.len() == 1 {
                            tmp.pop().expect("one statement")
                        } else {
                            Stmt::Block(tmp)
                        }))
                    }
                    None => None,
                };
                out.push(Stmt::For {
                    init,
                    cond: cond.as_ref().map(|e| self.expr(e)).transpose()?,
                    step: step.as_ref().map(|e| self.expr(e)).transpose()?,
                    body: self.stmts(body)?,
                });
            }
            Stmt::Return(e) => {
                out.push(Stmt::Return(e.as_ref().map(|e| self.expr(e)).transpose()?))
            }
            Stmt::Switch(scrut, arms) => {
                let mut new_arms = Vec::new();
                for arm in arms {
                    new_arms.push(SwitchArm {
                        value: arm.value.clone(),
                        body: self.stmts(&arm.body)?,
                    });
                }
                out.push(Stmt::Switch(self.expr(scrut)?, new_arms));
            }
            Stmt::Block(b) => out.push(Stmt::Block(self.stmts(b)?)),
            Stmt::Group(b) => out.push(Stmt::Group(self.stmts(b)?)),
            Stmt::Break => out.push(Stmt::Break),
            Stmt::Continue => out.push(Stmt::Continue),
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<Expr, CompileError> {
        Ok(match e {
            Expr::Member(obj, field) => {
                let Expr::Name(var) = obj.as_ref() else {
                    return Err(CompileError::Unsupported {
                        construct: "member access on non-variable".into(),
                        hint: "only direct union variables are transformable".into(),
                    });
                };
                self.union_read(var, field)?
            }
            Expr::Assign { target, op, value } => {
                let value = Box::new(self.expr(value)?);
                match target {
                    Target::Member(obj, field) => {
                        let Expr::Name(var) = obj.as_ref() else {
                            return Err(CompileError::Unsupported {
                                construct: "member assignment on non-variable".into(),
                                hint: "only direct union variables are transformable".into(),
                            });
                        };
                        if op.is_some() {
                            return Err(CompileError::Unsupported {
                                construct: "compound assignment to union member".into(),
                                hint: "expand to a plain assignment first".into(),
                            });
                        }
                        self.union_write(var, field, *value)?
                    }
                    other => Expr::Assign {
                        target: self.target(other)?,
                        op: *op,
                        value,
                    },
                }
            }
            Expr::IncDec { target, delta } => Expr::IncDec {
                target: self.target(target)?,
                delta: *delta,
            },
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(self.expr(a)?)),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            Expr::Ternary(c, a, b) => Expr::Ternary(
                Box::new(self.expr(c)?),
                Box::new(self.expr(a)?),
                Box::new(self.expr(b)?),
            ),
            Expr::Cast(ty, a) => Expr::Cast(ty.clone(), Box::new(self.expr(a)?)),
            Expr::Call(name, args) => {
                let args = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Expr::Call(name.clone(), args)
            }
            Expr::Index(name, idxs) => {
                let idxs = idxs
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Expr::Index(name.clone(), idxs)
            }
            simple => simple.clone(),
        })
    }

    fn target(&mut self, t: &Target) -> Result<Target, CompileError> {
        Ok(match t {
            Target::Name(n) => Target::Name(n.clone()),
            Target::Index(n, idxs) => Target::Index(
                n.clone(),
                idxs.iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Target::Member(..) => {
                return Err(CompileError::Unsupported {
                    construct: "union member as inc/dec target".into(),
                    hint: "expand to a plain assignment first".into(),
                })
            }
        })
    }

    /// `u.field` → reinterpret of the storage variable, if needed.
    fn union_read(&mut self, var: &str, field: &str) -> Result<Expr, CompileError> {
        let tag = self
            .union_vars
            .get(var)
            .cloned()
            .ok_or_else(|| CompileError::Unsupported {
                construct: format!("member access on non-union variable {var}"),
                hint: "structs are not part of MiniC".into(),
            })?;
        let info = self.union_info(&tag)?.clone();
        let field_ty = info.fields.get(field).ok_or_else(|| CompileError::Sema {
            message: format!("union {tag} has no field {field}"),
        })?;
        self.report.union_accesses += 1;
        let base = Expr::Name(var.to_string());
        Ok(reinterpret(
            base,
            &info.storage,
            field_ty,
            &info.storage_field,
            field,
        ))
    }

    /// `u.field = v` → storage assignment via reinterpret, if needed.
    fn union_write(&mut self, var: &str, field: &str, value: Expr) -> Result<Expr, CompileError> {
        let tag = self
            .union_vars
            .get(var)
            .cloned()
            .ok_or_else(|| CompileError::Unsupported {
                construct: format!("member assignment on non-union variable {var}"),
                hint: "structs are not part of MiniC".into(),
            })?;
        let info = self.union_info(&tag)?.clone();
        let field_ty = info.fields.get(field).ok_or_else(|| CompileError::Sema {
            message: format!("union {tag} has no field {field}"),
        })?;
        self.report.union_accesses += 1;
        // Convert the incoming value (typed as the *field*) into the
        // storage representation.
        let stored = reinterpret(value, field_ty, &info.storage, field, &info.storage_field);
        Ok(Expr::Assign {
            target: Target::Name(var.to_string()),
            op: None,
            value: Box::new(stored),
        })
    }
}

/// Reinterpret `e` from type `from` to type `to` using the bit-punning
/// intrinsics the backends lower natively.
fn reinterpret(e: Expr, from: &TypeName, to: &TypeName, from_field: &str, to_field: &str) -> Expr {
    use TypeName::*;
    if from_field == to_field {
        return e;
    }
    match (from, to) {
        (Double, Long { .. }) => Expr::Call("__f64_bits".into(), vec![e]),
        (Long { .. }, Double) => Expr::Call("__f64_from_bits".into(), vec![e]),
        (Float, Int { .. }) => Expr::Call("__f32_bits".into(), vec![e]),
        (Int { .. }, Float) => Expr::Call("__f32_from_bits".into(), vec![e]),
        // Same-width integer fields: the bits are the value.
        (Int { .. }, Int { .. }) | (Long { .. }, Long { .. }) | (Char { .. }, Char { .. }) => e,
        (a, b) => {
            // Mixed widths fall back to a cast pair; for the union shapes
            // in our corpus this branch is unreachable.
            let _ = (a, b);
            e
        }
    }
}

fn has_side_effects(e: &Expr) -> bool {
    match e {
        Expr::Assign { .. } | Expr::IncDec { .. } | Expr::Call(..) => true,
        Expr::Unary(_, a) | Expr::Cast(_, a) => has_side_effects(a),
        Expr::Binary(_, a, b) => has_side_effects(a) || has_side_effects(b),
        Expr::Ternary(c, a, b) => has_side_effects(c) || has_side_effects(a) || has_side_effects(b),
        Expr::Index(_, idxs) => idxs.iter().any(has_side_effects),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn tx(src: &str) -> (Unit, TransformReport) {
        transform_unit(&parse(lex(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn try_catch_becomes_error_flag() {
        let (unit, report) = tx("int ok;\n\
             void f(int x) {\n\
               try { if (x < 0) throw 1; ok = 1; } catch (...) { ok = 0; }\n\
             }");
        assert_eq!(report.try_blocks, 1);
        assert_eq!(report.throws, 1);
        // A global __error is introduced first.
        assert!(matches!(&unit.items[0], Item::Global { name, .. } if name == "__error"));
        // No Try/Throw remains anywhere.
        fn no_exceptions(stmts: &[Stmt]) -> bool {
            stmts.iter().all(|s| match s {
                Stmt::Try(..) | Stmt::Throw(_) => false,
                Stmt::If(_, a, b) => no_exceptions(a) && no_exceptions(b),
                Stmt::While(_, b) | Stmt::DoWhile(b, _) => no_exceptions(b),
                Stmt::For { body, .. } => no_exceptions(body),
                Stmt::Block(b) => no_exceptions(b),
                _ => true,
            })
        }
        for item in &unit.items {
            if let Item::Func { body, .. } = item {
                assert!(no_exceptions(body));
            }
        }
    }

    #[test]
    fn union_reads_become_reinterprets() {
        let (unit, report) = tx("union U { double d; long long ll; };\n\
             union U u;\n\
             long long f() { u.d = 1.5; return u.ll; }");
        assert_eq!(report.union_vars, 1);
        assert!(report.union_accesses >= 2);
        // The union variable is now a double global.
        assert!(unit.items.iter().any(|i| matches!(i,
            Item::Global { ty: TypeName::Double, name, .. } if name == "u")));
        // The read goes through __f64_bits.
        let func = unit
            .items
            .iter()
            .find_map(|i| match i {
                Item::Func { body, .. } => Some(body),
                _ => None,
            })
            .unwrap();
        let text = format!("{func:?}");
        assert!(text.contains("__f64_bits"), "{text}");
        assert!(!text.contains("Member"), "{text}");
    }

    #[test]
    fn same_field_access_is_plain() {
        let (unit, _) = tx("union U { double d; long long ll; };\n\
             union U u;\n\
             double g() { return u.d; }");
        let text = format!("{:?}", unit.items);
        assert!(!text.contains("__f64_bits"));
    }

    #[test]
    fn unions_with_arrays_are_rejected() {
        let r = transform_unit(
            &parse(lex("union U { double d; long long ll; };\nunion U a[4];").unwrap()).unwrap(),
        );
        assert!(matches!(r, Err(CompileError::Unsupported { .. })));
    }

    #[test]
    fn untouched_code_reports_unchanged() {
        let (_, report) = tx("int x; void f() { x = 1; }");
        assert!(!report.changed());
    }
}
