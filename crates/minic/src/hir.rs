//! Typed high-level IR: the representation the optimization passes
//! transform and the three backends lower.

/// Scalar value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit integer.
    I32 {
        /// Unsigned semantics for div/rem/shift/compare.
        unsigned: bool,
    },
    /// 64-bit integer.
    I64 {
        /// Unsigned semantics.
        unsigned: bool,
    },
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// No value (function returns only).
    Void,
}

impl Ty {
    /// Signed 32-bit int, the C `int`.
    pub const INT: Ty = Ty::I32 { unsigned: false };

    /// True for F32/F64.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for I32/I64.
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I32 { .. } | Ty::I64 { .. })
    }

    /// Unsigned flag (false for floats).
    pub fn unsigned(self) -> bool {
        matches!(
            self,
            Ty::I32 { unsigned: true } | Ty::I64 { unsigned: true }
        )
    }
}

/// Array element storage types (narrower than scalar types: byte arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemTy {
    /// 1-byte integer element (C `char` arrays).
    I8 {
        /// Unsigned load semantics.
        unsigned: bool,
    },
    /// 4-byte integer element.
    I32 {
        /// Unsigned semantics.
        unsigned: bool,
    },
    /// 8-byte integer element.
    I64 {
        /// Unsigned semantics.
        unsigned: bool,
    },
    /// 4-byte float element.
    F32,
    /// 8-byte float element.
    F64,
}

impl ElemTy {
    /// Element width in bytes.
    pub fn width(self) -> u32 {
        match self {
            ElemTy::I8 { .. } => 1,
            ElemTy::I32 { .. } | ElemTy::F32 => 4,
            ElemTy::I64 { .. } | ElemTy::F64 => 8,
        }
    }

    /// Scalar type an element loads to (C integer promotion: i8 → i32).
    pub fn loaded_ty(self) -> Ty {
        match self {
            ElemTy::I8 { unsigned } => Ty::I32 { unsigned },
            ElemTy::I32 { unsigned } => Ty::I32 { unsigned },
            ElemTy::I64 { unsigned } => Ty::I64 { unsigned },
            ElemTy::F32 => Ty::F32,
            ElemTy::F64 => Ty::F64,
        }
    }
}

/// Index types.
pub type LocalId = u32;
/// Index into [`HProgram::globals`].
pub type GlobalId = u32;
/// Index into [`HProgram::arrays`].
pub type ArrayId = u32;
/// Index into [`HProgram::funcs`].
pub type FuncId = u32;
/// Index into [`HProgram::strings`].
pub type StrId = u32;

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// Integer (any width; truncated by storage).
    I(i64),
    /// Float.
    F(f64),
}

impl ConstVal {
    /// As f64 (for float storage).
    pub fn as_f64(self) -> f64 {
        match self {
            ConstVal::I(v) => v as f64,
            ConstVal::F(v) => v,
        }
    }

    /// As i64 (truncating floats).
    pub fn as_i64(self) -> i64 {
        match self {
            ConstVal::I(v) => v,
            ConstVal::F(v) => v as i64,
        }
    }
}

/// A global scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct HGlobal {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Initial value.
    pub init: ConstVal,
}

/// A global array.
#[derive(Debug, Clone, PartialEq)]
pub struct HArray {
    /// Name.
    pub name: String,
    /// Element type.
    pub elem: ElemTy,
    /// Dimensions (all constant).
    pub dims: Vec<u32>,
    /// Flattened row-major initializer (padded with zeros), if any.
    pub init: Option<Vec<ConstVal>>,
    /// Declared `const` (data tables).
    pub is_const: bool,
}

impl HArray {
    /// Total element count.
    pub fn len(&self) -> u64 {
        self.dims.iter().map(|d| *d as u64).product()
    }

    /// True when zero-sized (degenerate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes.
    pub fn byte_size(&self) -> u64 {
        self.len() * self.elem.width() as u64
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HUnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (result i32 0/1).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Binary arithmetic operators (operands pre-converted to the result type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum HBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

/// Comparison operators (result is i32 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum HCmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Intrinsics: the MiniC runtime (§3.2's "alternative implementations of
/// the functions in those missing libraries").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `sqrt(double)` — a native instruction on every target.
    Sqrt,
    /// `fabs(double)`.
    Fabs,
    /// `floor(double)`.
    Floor,
    /// `ceil(double)`.
    Ceil,
    /// `trunc(double)`.
    TruncF,
    /// `exp(double)` — host `Math` call on the Wasm target.
    Exp,
    /// `log(double)`.
    Log,
    /// `sin(double)`.
    Sin,
    /// `cos(double)`.
    Cos,
    /// `tan(double)`.
    Tan,
    /// `atan(double)`.
    Atan,
    /// `pow(double, double)`.
    Pow,
    /// `print_int(int)` — the minimal stdio replacement.
    PrintI32,
    /// `print_long(long)`.
    PrintI64,
    /// `print_double(double)`.
    PrintF64,
    /// `print_str("...")`.
    PrintStr,
    /// `__f64_bits(double) -> long` (union transform).
    F64Bits,
    /// `__f64_from_bits(long) -> double`.
    F64FromBits,
    /// `__f32_bits(float) -> int`.
    F32Bits,
    /// `__f32_from_bits(int) -> float`.
    F32FromBits,
}

impl Intrinsic {
    /// Look up an intrinsic by its C-visible name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" | "sqrtf" => Intrinsic::Sqrt,
            "fabs" | "fabsf" => Intrinsic::Fabs,
            "floor" => Intrinsic::Floor,
            "ceil" => Intrinsic::Ceil,
            "trunc" => Intrinsic::TruncF,
            "exp" | "expf" => Intrinsic::Exp,
            "log" | "logf" => Intrinsic::Log,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "tan" => Intrinsic::Tan,
            "atan" => Intrinsic::Atan,
            "pow" | "powf" => Intrinsic::Pow,
            "print_int" => Intrinsic::PrintI32,
            "print_long" => Intrinsic::PrintI64,
            "print_double" => Intrinsic::PrintF64,
            "print_str" => Intrinsic::PrintStr,
            "__f64_bits" => Intrinsic::F64Bits,
            "__f64_from_bits" => Intrinsic::F64FromBits,
            "__f32_bits" => Intrinsic::F32Bits,
            "__f32_from_bits" => Intrinsic::F32FromBits,
            _ => return None,
        })
    }

    /// Result type.
    pub fn ret_ty(self) -> Ty {
        use Intrinsic::*;
        match self {
            Sqrt | Fabs | Floor | Ceil | TruncF | Exp | Log | Sin | Cos | Tan | Atan | Pow => {
                Ty::F64
            }
            F64FromBits => Ty::F64,
            F32FromBits => Ty::F32,
            F64Bits => Ty::I64 { unsigned: false },
            F32Bits => Ty::I32 { unsigned: false },
            PrintI32 | PrintI64 | PrintF64 | PrintStr => Ty::Void,
        }
    }

    /// True for intrinsics the Wasm target lowers to a single native
    /// instruction (the rest become host `Math` imports).
    pub fn wasm_native(self) -> bool {
        use Intrinsic::*;
        matches!(
            self,
            Sqrt | Fabs | Floor | Ceil | TruncF | F64Bits | F64FromBits | F32Bits | F32FromBits
        )
    }
}

/// Callee of a call expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    /// User-defined function.
    Func(FuncId),
    /// Runtime intrinsic.
    Intrinsic(Intrinsic),
}

/// L-values.
#[derive(Debug, Clone, PartialEq)]
pub enum HLval {
    /// Function local / parameter.
    Local(LocalId),
    /// Global scalar.
    Global(GlobalId),
    /// Global array element.
    Elem {
        /// Which array.
        array: ArrayId,
        /// One index per dimension.
        idx: Vec<HExpr>,
    },
}

/// Expressions. Every node carries its result type; sema inserts explicit
/// [`HExpr::Cast`]s so the backends never guess conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum HExpr {
    /// Integer constant of the given type.
    ConstI(i64, Ty),
    /// Float constant of the given type.
    ConstF(f64, Ty),
    /// Local read.
    Local(LocalId, Ty),
    /// Global scalar read.
    Global(GlobalId, Ty),
    /// Array element read (promoted to `ty`).
    Elem {
        /// Which array.
        array: ArrayId,
        /// One index per dimension (each i32).
        idx: Vec<HExpr>,
        /// Loaded (promoted) type.
        ty: Ty,
    },
    /// Unary op.
    Unary(HUnOp, Box<HExpr>, Ty),
    /// Arithmetic binary op; both operands already have type `ty`.
    Binary(HBinOp, Box<HExpr>, Box<HExpr>, Ty),
    /// Comparison; result i32, `ty` is the *operand* type.
    Cmp(HCmpOp, Box<HExpr>, Box<HExpr>, Ty),
    /// Short-circuit `&&` (result i32 0/1).
    And(Box<HExpr>, Box<HExpr>),
    /// Short-circuit `||`.
    Or(Box<HExpr>, Box<HExpr>),
    /// `cond ? a : b`; arms have type `ty`.
    Ternary(Box<HExpr>, Box<HExpr>, Box<HExpr>, Ty),
    /// Call.
    Call {
        /// Target.
        callee: Callee,
        /// Arguments (converted to parameter types).
        args: Vec<HExpr>,
        /// Result type.
        ty: Ty,
        /// For `print_str`: the string id.
        str_arg: Option<StrId>,
    },
    /// Numeric conversion.
    Cast {
        /// Destination type.
        to: Ty,
        /// Source type.
        from: Ty,
        /// Operand.
        expr: Box<HExpr>,
    },
    /// Assignment as an expression (yields the stored value, typed as the
    /// l-value's type).
    AssignExpr {
        /// Destination.
        lhs: Box<HLval>,
        /// Value (already converted to the destination type).
        value: Box<HExpr>,
        /// The destination type.
        ty: Ty,
    },
}

impl HExpr {
    /// Result type of this expression.
    pub fn ty(&self) -> Ty {
        match self {
            HExpr::ConstI(_, t) | HExpr::ConstF(_, t) => *t,
            HExpr::Local(_, t) | HExpr::Global(_, t) => *t,
            HExpr::Elem { ty, .. } => *ty,
            HExpr::Unary(_, _, t) => *t,
            HExpr::Binary(_, _, _, t) => *t,
            HExpr::Cmp(..) | HExpr::And(..) | HExpr::Or(..) => Ty::INT,
            HExpr::Ternary(_, _, _, t) => *t,
            HExpr::Call { ty, .. } => *ty,
            HExpr::Cast { to, .. } => *to,
            HExpr::AssignExpr { ty, .. } => *ty,
        }
    }
}

/// Loop flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for` / `while`: condition tested before the body.
    PreTest,
    /// `do … while`: body runs at least once.
    PostTest,
}

/// Optimization metadata attached to loops by the passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopMeta {
    /// Vector width chosen by `-vectorize-loops` (1 = scalar).
    pub vector_width: u32,
}

impl Default for LoopMeta {
    fn default() -> Self {
        LoopMeta { vector_width: 1 }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum HStmt {
    /// Local declaration (slot allocated in [`HFunc::locals`]).
    DeclLocal {
        /// Slot.
        id: LocalId,
        /// Initializer (converted to the local's type).
        init: Option<HExpr>,
    },
    /// `lhs = value` (value already converted).
    Assign {
        /// Destination.
        lhs: HLval,
        /// Source.
        value: HExpr,
    },
    /// Expression for side effects (calls).
    Expr(HExpr),
    /// `if`/`else`.
    If(HExpr, Vec<HStmt>, Vec<HStmt>),
    /// Unified loop.
    Loop {
        /// Pre- or post-test.
        kind: LoopKind,
        /// Init statements (run once).
        init: Vec<HStmt>,
        /// Condition (`None` = infinite until `break`).
        cond: Option<HExpr>,
        /// Step statements (run per iteration; `continue` target).
        step: Vec<HStmt>,
        /// Body.
        body: Vec<HStmt>,
        /// Pass-attached metadata.
        meta: LoopMeta,
    },
    /// `return`.
    Return(Option<HExpr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// Lowered `switch` (arms are break-terminated by construction).
    Switch {
        /// Scrutinee (i32).
        scrut: HExpr,
        /// `(case value, body)` arms.
        cases: Vec<(i64, Vec<HStmt>)>,
        /// `default` body.
        default: Vec<HStmt>,
    },
    /// Scope-less grouping.
    Block(Vec<HStmt>),
}

/// A function.
#[derive(Debug, Clone, PartialEq)]
pub struct HFunc {
    /// Name.
    pub name: String,
    /// Parameter types (params occupy locals `0..params.len()`).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// All local slots including params (name, type).
    pub locals: Vec<(String, Ty)>,
    /// Body.
    pub body: Vec<HStmt>,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HProgram {
    /// Global scalars.
    pub globals: Vec<HGlobal>,
    /// Global arrays.
    pub arrays: Vec<HArray>,
    /// Functions.
    pub funcs: Vec<HFunc>,
    /// String literals (`print_str` arguments).
    pub strings: Vec<String>,
    /// Set by the `-Ofast` pipeline; only the native backend can honor it.
    pub fast_math: bool,
}

impl HProgram {
    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<(FuncId, &HFunc)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (i as FuncId, f))
    }

    /// Total static data bytes (array storage), the driver of the paper's
    /// memory curves.
    pub fn static_data_bytes(&self) -> u64 {
        self.arrays.iter().map(|a| a.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_promotion() {
        assert_eq!(
            ElemTy::I8 { unsigned: true }.loaded_ty(),
            Ty::I32 { unsigned: true }
        );
        assert_eq!(ElemTy::F64.loaded_ty(), Ty::F64);
        assert_eq!(ElemTy::I8 { unsigned: false }.width(), 1);
        assert_eq!(ElemTy::F64.width(), 8);
    }

    #[test]
    fn array_sizes() {
        let a = HArray {
            name: "A".into(),
            elem: ElemTy::F64,
            dims: vec![10, 20],
            init: None,
            is_const: false,
        };
        assert_eq!(a.len(), 200);
        assert_eq!(a.byte_size(), 1600);
    }

    #[test]
    fn intrinsic_lookup() {
        assert_eq!(Intrinsic::by_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(
            Intrinsic::by_name("print_double"),
            Some(Intrinsic::PrintF64)
        );
        assert_eq!(Intrinsic::by_name("nope"), None);
        assert!(Intrinsic::Sqrt.wasm_native());
        assert!(!Intrinsic::Exp.wasm_native());
    }

    #[test]
    fn expr_types() {
        let e = HExpr::Binary(
            HBinOp::Add,
            Box::new(HExpr::ConstF(1.0, Ty::F64)),
            Box::new(HExpr::ConstF(2.0, Ty::F64)),
            Ty::F64,
        );
        assert_eq!(e.ty(), Ty::F64);
        let c = HExpr::Cmp(
            HCmpOp::Lt,
            Box::new(HExpr::ConstI(1, Ty::INT)),
            Box::new(HExpr::ConstI(2, Ty::INT)),
            Ty::INT,
        );
        assert_eq!(c.ty(), Ty::INT);
    }
}
