//! Optimization passes and per-level pipelines.
//!
//! Each pass is a genuine HIR transform. Their *target-dependent*
//! interactions are what reproduce the paper's §4.2 results — see the
//! crate docs and `pipeline.rs`.

mod const_fold;
mod const_hoist;
mod const_prop;
mod dce;
mod fast_math;
mod globalopt;
mod inline;
mod pipeline;
mod shrinkwrap;
mod vectorize;

pub use const_fold::const_fold;
pub use const_hoist::const_hoist;
pub use const_prop::const_prop;
pub use dce::dce;
pub use fast_math::fast_math;
pub use globalopt::globalopt;
pub use inline::inline;
pub use pipeline::{run_pipeline, run_pipeline_verified, PassError, TargetKind};
pub use shrinkwrap::shrinkwrap;
pub use vectorize::vectorize_loops;

use crate::hir::{HExpr, HStmt};

/// Walk every statement in a body, depth-first, with a mutable visitor.
pub(crate) fn visit_stmts_mut(stmts: &mut [HStmt], f: &mut impl FnMut(&mut HStmt)) {
    for s in stmts.iter_mut() {
        match s {
            HStmt::If(_, a, b) => {
                visit_stmts_mut(a, f);
                visit_stmts_mut(b, f);
            }
            HStmt::Loop {
                init, step, body, ..
            } => {
                visit_stmts_mut(init, f);
                visit_stmts_mut(step, f);
                visit_stmts_mut(body, f);
            }
            HStmt::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    visit_stmts_mut(b, f);
                }
                visit_stmts_mut(default, f);
            }
            HStmt::Block(b) => visit_stmts_mut(b, f),
            _ => {}
        }
        f(s);
    }
}

/// Walk every expression in a statement tree, depth-first, mutably.
pub(crate) fn visit_exprs_mut(stmts: &mut Vec<HStmt>, f: &mut impl FnMut(&mut HExpr)) {
    fn expr(e: &mut HExpr, f: &mut impl FnMut(&mut HExpr)) {
        match e {
            HExpr::Unary(_, a, _) => expr(a, f),
            HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) => {
                expr(a, f);
                expr(b, f);
            }
            HExpr::And(a, b) | HExpr::Or(a, b) => {
                expr(a, f);
                expr(b, f);
            }
            HExpr::Ternary(c, a, b, _) => {
                expr(c, f);
                expr(a, f);
                expr(b, f);
            }
            HExpr::Call { args, .. } => {
                for a in args {
                    expr(a, f);
                }
            }
            HExpr::Cast { expr: inner, .. } => expr(inner, f),
            HExpr::Elem { idx, .. } => {
                for i in idx {
                    expr(i, f);
                }
            }
            HExpr::AssignExpr { lhs, value, .. } => {
                if let crate::hir::HLval::Elem { idx, .. } = lhs.as_mut() {
                    for i in idx {
                        expr(i, f);
                    }
                }
                expr(value, f);
            }
            _ => {}
        }
        f(e);
    }
    fn stmt(s: &mut HStmt, f: &mut impl FnMut(&mut HExpr)) {
        match s {
            HStmt::DeclLocal { init: Some(e), .. } => expr(e, f),
            HStmt::DeclLocal { init: None, .. } => {}
            HStmt::Assign { lhs, value } => {
                if let crate::hir::HLval::Elem { idx, .. } = lhs {
                    for i in idx {
                        expr(i, f);
                    }
                }
                expr(value, f);
            }
            HStmt::Expr(e) => expr(e, f),
            HStmt::If(c, a, b) => {
                expr(c, f);
                for s in a {
                    stmt(s, f);
                }
                for s in b {
                    stmt(s, f);
                }
            }
            HStmt::Loop {
                init,
                cond,
                step,
                body,
                ..
            } => {
                for s in init {
                    stmt(s, f);
                }
                if let Some(c) = cond {
                    expr(c, f);
                }
                for s in step {
                    stmt(s, f);
                }
                for s in body {
                    stmt(s, f);
                }
            }
            HStmt::Return(Some(e)) => expr(e, f),
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => {
                expr(scrut, f);
                for (_, b) in cases {
                    for s in b {
                        stmt(s, f);
                    }
                }
                for s in default {
                    stmt(s, f);
                }
            }
            HStmt::Block(b) => {
                for s in b {
                    stmt(s, f);
                }
            }
            _ => {}
        }
    }
    for s in stmts {
        stmt(s, f);
    }
}
