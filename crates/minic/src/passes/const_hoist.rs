//! `-O1` constant hoisting — the other half of the Fig 8 (Covariance)
//! story.
//!
//! At `-O1` the compiler converts each distinct *integral-valued* float
//! constant used inside a loop once, into a dedicated local, and loop
//! bodies reference the local (`local.get $p0` in Fig 8(b) — one stack
//! op). At `-O2`+ the rematerialization heuristic keeps the constant
//! inline to reduce register pressure, and the Wasm backend then has to
//! materialize it as `i32.const; f64.convert_i32_s` (Fig 8(a) — two
//! stack ops) every use. On a register machine rematerialization is free,
//! which is exactly why the pass order only hurts WebAssembly.

use super::visit_exprs_mut;
use crate::hir::*;
use std::collections::HashMap;

/// Hoist integral float constants used inside loops into locals.
pub fn const_hoist(p: &mut HProgram) {
    for f in &mut p.funcs {
        // Collect integral float constants appearing inside loop bodies.
        let mut in_loop: Vec<(f64, Ty)> = Vec::new();
        collect_loop_consts(&f.body, &mut in_loop, false);
        let mut seen: HashMap<u64, (f64, Ty)> = HashMap::new();
        for (v, t) in in_loop {
            seen.entry(v.to_bits()).or_insert((v, t));
        }
        if seen.is_empty() {
            continue;
        }
        // One new local per constant, initialized at function entry.
        let mut slot_of: HashMap<u64, LocalId> = HashMap::new();
        let mut prologue = Vec::new();
        let mut consts: Vec<(u64, (f64, Ty))> = seen.into_iter().collect();
        consts.sort_by_key(|(bits, _)| *bits); // deterministic order
        for (bits, (v, t)) in consts {
            let id = f.locals.len() as LocalId;
            f.locals.push((format!("__choist{id}"), t));
            slot_of.insert(bits, id);
            prologue.push(HStmt::DeclLocal {
                id,
                init: Some(HExpr::ConstF(v, t)),
            });
        }
        // Replace uses inside loops only.
        replace_in_loops(&mut f.body, &slot_of, false);
        // Prepend prologue.
        let mut body = prologue;
        body.append(&mut f.body);
        f.body = body;
    }
}

fn is_hoistable(v: f64) -> bool {
    v.fract() == 0.0 && v.abs() <= i32::MAX as f64 && v != 0.0
}

fn collect_loop_consts(stmts: &[HStmt], out: &mut Vec<(f64, Ty)>, inside_loop: bool) {
    for s in stmts {
        match s {
            HStmt::Loop {
                init,
                cond,
                step,
                body,
                ..
            } => {
                collect_loop_consts(init, out, inside_loop);
                if let Some(c) = cond {
                    collect_expr(c, out, true);
                }
                collect_loop_consts(step, out, true);
                collect_loop_consts(body, out, true);
            }
            HStmt::If(c, a, b) => {
                collect_expr(c, out, inside_loop);
                collect_loop_consts(a, out, inside_loop);
                collect_loop_consts(b, out, inside_loop);
            }
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => {
                collect_expr(scrut, out, inside_loop);
                for (_, b) in cases {
                    collect_loop_consts(b, out, inside_loop);
                }
                collect_loop_consts(default, out, inside_loop);
            }
            HStmt::Block(b) => collect_loop_consts(b, out, inside_loop),
            HStmt::Assign { value, lhs } => {
                if let HLval::Elem { idx, .. } = lhs {
                    for i in idx {
                        collect_expr(i, out, inside_loop);
                    }
                }
                collect_expr(value, out, inside_loop);
            }
            HStmt::DeclLocal { init: Some(e), .. } | HStmt::Expr(e) | HStmt::Return(Some(e)) => {
                collect_expr(e, out, inside_loop)
            }
            _ => {}
        }
    }
}

fn collect_expr(e: &HExpr, out: &mut Vec<(f64, Ty)>, inside_loop: bool) {
    match e {
        HExpr::ConstF(v, t) if inside_loop && is_hoistable(*v) => out.push((*v, *t)),
        HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => collect_expr(a, out, inside_loop),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            collect_expr(a, out, inside_loop);
            collect_expr(b, out, inside_loop);
        }
        HExpr::Ternary(c, a, b, _) => {
            collect_expr(c, out, inside_loop);
            collect_expr(a, out, inside_loop);
            collect_expr(b, out, inside_loop);
        }
        HExpr::Call { args, .. } => {
            for a in args {
                collect_expr(a, out, inside_loop);
            }
        }
        HExpr::Elem { idx, .. } => {
            for i in idx {
                collect_expr(i, out, inside_loop);
            }
        }
        HExpr::AssignExpr { value, .. } => collect_expr(value, out, inside_loop),
        _ => {}
    }
}

fn replace_in_loops(stmts: &mut Vec<HStmt>, slots: &HashMap<u64, LocalId>, inside_loop: bool) {
    for s in stmts {
        match s {
            HStmt::Loop {
                init,
                cond,
                step,
                body,
                ..
            } => {
                replace_in_loops(init, slots, inside_loop);
                if let Some(c) = cond {
                    replace_expr(c, slots);
                }
                replace_in_loops(step, slots, true);
                replace_in_loops(body, slots, true);
            }
            HStmt::If(c, a, b) => {
                if inside_loop {
                    replace_expr(c, slots);
                }
                replace_in_loops(a, slots, inside_loop);
                replace_in_loops(b, slots, inside_loop);
            }
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => {
                if inside_loop {
                    replace_expr(scrut, slots);
                }
                for (_, b) in cases.iter_mut() {
                    replace_in_loops(b, slots, inside_loop);
                }
                replace_in_loops(default, slots, inside_loop);
            }
            HStmt::Block(b) => replace_in_loops(b, slots, inside_loop),
            HStmt::Assign { value, lhs } if inside_loop => {
                if let HLval::Elem { idx, .. } = lhs {
                    for i in idx {
                        replace_expr(i, slots);
                    }
                }
                replace_expr(value, slots);
            }
            HStmt::DeclLocal { init: Some(e), .. } | HStmt::Expr(e) | HStmt::Return(Some(e))
                if inside_loop =>
            {
                replace_expr(e, slots)
            }
            _ => {}
        }
    }
}

fn replace_expr(e: &mut HExpr, slots: &HashMap<u64, LocalId>) {
    let mut stmts = vec![HStmt::Expr(e.clone())];
    visit_exprs_mut(&mut stmts, &mut |x| {
        if let HExpr::ConstF(v, t) = x {
            if let Some(&slot) = slots.get(&v.to_bits()) {
                *x = HExpr::Local(slot, *t);
            }
        }
    });
    let HStmt::Expr(new_e) = stmts.pop().expect("one statement") else {
        unreachable!()
    };
    *e = new_e;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    #[test]
    fn hoists_loop_constants_into_locals() {
        let src = "double A[8];\n\
                   void k(int n) {\n\
                     for (int i = 0; i < n; i++) A[i] = A[i] / 40.0;\n\
                   }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        let before_locals = p.funcs[0].locals.len();
        const_hoist(&mut p);
        let f = &p.funcs[0];
        assert_eq!(f.locals.len(), before_locals + 1);
        // Prologue declares the hoisted constant.
        assert!(
            matches!(&f.body[0], HStmt::DeclLocal { init: Some(HExpr::ConstF(v, _)), .. } if *v == 40.0)
        );
        // No ConstF(40.0) remains inside the loop body.
        let text = format!("{:?}", &f.body[1..]);
        assert!(!text.contains("ConstF(40.0"), "{text}");
    }

    #[test]
    fn non_integral_constants_left_alone() {
        let src = "double A[8]; void k(int n) { for (int i = 0; i < n; i++) A[i] = 0.5; }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        let before = p.funcs[0].locals.len();
        const_hoist(&mut p);
        assert_eq!(p.funcs[0].locals.len(), before);
    }

    #[test]
    fn constants_outside_loops_left_alone() {
        let src = "double d; void k() { d = 40.0; }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        const_hoist(&mut p);
        assert!(
            matches!(&p.funcs[0].body[0], HStmt::Assign { value: HExpr::ConstF(v, _), .. } if *v == 40.0)
        );
    }
}
