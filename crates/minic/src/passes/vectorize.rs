//! `-vectorize-loops` (§2.1.2): mark eligible innermost loops 4-wide.
//!
//! The pass only *annotates* the HIR (`LoopMeta::vector_width = 4`); what
//! happens next is entirely target-dependent, and that asymmetry is the
//! paper's central §4.2 finding:
//!
//! * the **native** backend executes vector loops with genuine 4-lane
//!   savings (one vector op covers four scalar lanes);
//! * the **Wasm/JS** backends have no SIMD (MVP), so they must strip-mine
//!   the vector loop back to scalar code: an entry trip-count guard plus
//!   per-iteration lane bookkeeping the rolled loop never needed — a few
//!   percent more work and slightly bigger code.

use crate::hir::*;

/// Annotate vectorizable loops with a vector width of 4.
pub fn vectorize_loops(p: &mut HProgram) {
    for f in &mut p.funcs {
        mark(&mut f.body);
    }
}

fn mark(stmts: &mut [HStmt]) {
    for s in stmts {
        match s {
            HStmt::Loop {
                kind,
                cond,
                step,
                body,
                meta,
                ..
            } => {
                // Recurse first: only innermost loops vectorize.
                let had_inner = contains_loop(body);
                mark(body);
                if !had_inner
                    && *kind == LoopKind::PreTest
                    && cond.is_some()
                    && is_canonical_step(step)
                    && body_vectorizable(body)
                {
                    meta.vector_width = 4;
                }
            }
            HStmt::If(_, a, b) => {
                mark(a);
                mark(b);
            }
            HStmt::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    mark(b);
                }
                mark(default);
            }
            HStmt::Block(b) => mark(b),
            _ => {}
        }
    }
}

fn contains_loop(stmts: &[HStmt]) -> bool {
    stmts.iter().any(|s| match s {
        HStmt::Loop { .. } => true,
        HStmt::If(_, a, b) => contains_loop(a) || contains_loop(b),
        HStmt::Block(b) => contains_loop(b),
        HStmt::Switch { cases, default, .. } => {
            cases.iter().any(|(_, b)| contains_loop(b)) || contains_loop(default)
        }
        _ => false,
    })
}

/// The step must be a single `i = i ± const` (canonical induction).
fn is_canonical_step(step: &[HStmt]) -> bool {
    if step.len() != 1 {
        return false;
    }
    let (slot, value) = match &step[0] {
        HStmt::Assign {
            lhs: HLval::Local(slot),
            value,
        } => (*slot, value),
        HStmt::Expr(HExpr::AssignExpr { lhs, value, .. }) => match lhs.as_ref() {
            HLval::Local(slot) => (*slot, value.as_ref()),
            _ => return false,
        },
        _ => return false,
    };
    is_increment_of(value, slot)
}

fn is_increment_of(e: &HExpr, slot: LocalId) -> bool {
    match e {
        HExpr::Binary(HBinOp::Add | HBinOp::Sub, a, b, _) => {
            matches!(a.as_ref(), HExpr::Local(s, _) if *s == slot)
                && matches!(b.as_ref(), HExpr::ConstI(..))
        }
        _ => false,
    }
}

/// A vectorizable body: straight-line assignments/expressions with no
/// calls, control flow, or cross-iteration scalar recurrences we cannot
/// prove safe (anything but pure arithmetic bails out).
fn body_vectorizable(stmts: &[HStmt]) -> bool {
    stmts.iter().all(|s| match s {
        HStmt::Assign { value, .. } => expr_vectorizable(value),
        HStmt::DeclLocal { init, .. } => init.as_ref().map(expr_vectorizable).unwrap_or(true),
        HStmt::Expr(e) => expr_vectorizable(e),
        HStmt::Block(b) => body_vectorizable(b),
        _ => false,
    })
}

fn expr_vectorizable(e: &HExpr) -> bool {
    match e {
        HExpr::Call { .. } => false,
        HExpr::And(..) | HExpr::Or(..) | HExpr::Ternary(..) => false,
        HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => expr_vectorizable(a),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) => {
            expr_vectorizable(a) && expr_vectorizable(b)
        }
        HExpr::Elem { idx, .. } => idx.iter().all(expr_vectorizable),
        HExpr::AssignExpr { value, .. } => expr_vectorizable(value),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    fn vectorized_widths(src: &str) -> Vec<u32> {
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        vectorize_loops(&mut p);
        let mut widths = Vec::new();
        fn walk(stmts: &[HStmt], out: &mut Vec<u32>) {
            for s in stmts {
                if let HStmt::Loop { body, meta, .. } = s {
                    out.push(meta.vector_width);
                    walk(body, out);
                }
            }
        }
        walk(&p.funcs[0].body, &mut widths);
        widths
    }

    #[test]
    fn marks_innermost_arithmetic_loop() {
        let w = vectorized_widths(
            "double A[64]; double B[64];\n\
             void k(int n) {\n\
               for (int j = 0; j < n; j++)\n\
                 for (int i = 0; i < n; i++)\n\
                   A[i] = A[i] * 2.0 + B[i];\n\
             }",
        );
        assert_eq!(w, vec![1, 4], "outer scalar, inner vectorized");
    }

    #[test]
    fn loops_with_calls_are_not_vectorized() {
        let w = vectorized_widths(
            "double A[64];\n\
             void k(int n) { for (int i = 0; i < n; i++) A[i] = sqrt(A[i]); }",
        );
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn loops_with_branches_are_not_vectorized() {
        let w = vectorized_widths(
            "double A[64];\n\
             void k(int n) { for (int i = 0; i < n; i++) { if (i > 2) A[i] = 1.0; } }",
        );
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn while_loops_with_noncanonical_step_skipped() {
        let w = vectorized_widths(
            "double A[64];\n\
             void k(int n) { int i = 0; while (i < n) { A[i] = 1.0; i = i * 2 + 1; } }",
        );
        assert_eq!(w, vec![1]);
    }
}
