//! Per-level pass pipelines (§2.1.2, Fig 1), with the target-dependent
//! behaviours that drive the paper's §4.2 results.

use super::*;
use crate::hir::HProgram;
use crate::opt::OptLevel;
use crate::verify::{verify_program, VerifyError};
use std::fmt;

/// Compilation target, as far as the pass pipeline cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// WebAssembly MVP (no SIMD, no fast-math ops).
    Wasm,
    /// JavaScript (no SIMD either).
    Js,
    /// Native x86-class (SIMD + relaxed math available).
    Native,
}

/// An IR invariant broken by a specific pass, with pass attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// The pass that broke the invariant (`"input"` if the program was
    /// already malformed before the pipeline ran).
    pub pass: &'static str,
    /// The broken invariant.
    pub error: VerifyError,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pass == "input" {
            write!(f, "IR invalid before pipeline: {}", self.error)
        } else {
            write!(f, "pass '{}' broke IR invariant: {}", self.pass, self.error)
        }
    }
}

impl std::error::Error for PassError {}

/// One named pass application, for attribution in verified runs.
struct Pass {
    name: &'static str,
    run: Box<dyn Fn(&mut HProgram)>,
}

impl Pass {
    fn new(name: &'static str, run: impl Fn(&mut HProgram) + 'static) -> Self {
        Pass {
            name,
            run: Box::new(run),
        }
    }
}

/// The exact pass sequence `run_pipeline` executes for `level`/`target`.
fn pass_plan(level: OptLevel, target: TargetKind) -> Vec<Pass> {
    use OptLevel::*;
    if level == O0 {
        return Vec::new();
    }

    // Everything from -O1 up folds and propagates constants and removes
    // dead code.
    let mut plan = vec![
        Pass::new("const-fold", const_fold),
        Pass::new("const-prop", const_prop),
        Pass::new("const-fold", const_fold),
        Pass::new("dce", dce),
    ];

    // -globalopt runs at every level ≥ O1… except that -Ofast targeting
    // Wasm skips the transform — bug emulation of the Fig 7 / ADPCM
    // miscompile (see crate docs). The analysis still runs; the rewrite
    // does not.
    let keep_dead_stores = level == Ofast && target == TargetKind::Wasm;
    plan.push(Pass::new("globalopt", move |p| {
        globalopt(p, keep_dead_stores)
    }));

    match level {
        O0 => unreachable!("handled above"),
        O1 => {
            // O1 hoists loop constants into locals (Fig 8(b)); higher
            // levels prefer rematerialization.
            plan.push(Pass::new("const-hoist", const_hoist));
        }
        O2 => {
            plan.push(Pass::new("inline", |p| inline(p, 12)));
            plan.push(Pass::new("vectorize-loops", vectorize_loops));
            plan.push(Pass::new("shrinkwrap", shrinkwrap));
        }
        O3 => {
            plan.push(Pass::new("inline", |p| inline(p, 32)));
            plan.push(Pass::new("vectorize-loops", vectorize_loops));
            plan.push(Pass::new("shrinkwrap", shrinkwrap));
        }
        Ofast => {
            plan.push(Pass::new("inline", |p| inline(p, 32)));
            plan.push(Pass::new("vectorize-loops", vectorize_loops));
            plan.push(Pass::new("shrinkwrap", shrinkwrap));
            plan.push(Pass::new("fast-math", fast_math));
        }
        Os => {
            // Size-leaning: keep inlining + vectorization off the table?
            // Per §2.1.2, -Os is -O2 minus size-increasing passes
            // (shrink-wrapping); vectorization survives at reduced scope.
            plan.push(Pass::new("inline", |p| inline(p, 8)));
            plan.push(Pass::new("vectorize-loops", vectorize_loops));
        }
        Oz => {
            // Smallest code: no vectorization (§2.1.2's example), no
            // shrink-wrapping, minimal inlining.
            plan.push(Pass::new("inline", |p| inline(p, 4)));
        }
    }

    // Clean up after structural passes.
    plan.push(Pass::new("const-fold", const_fold));
    plan.push(Pass::new("dce", dce));
    plan
}

/// Run the `-O` pipeline for `level` against `target`.
///
/// In debug builds every pass boundary is verified (`debug_assert!`); use
/// [`run_pipeline_verified`] to get the same checking in release builds
/// with a recoverable error.
pub fn run_pipeline(p: &mut HProgram, level: OptLevel, target: TargetKind) {
    if cfg!(debug_assertions) {
        if let Err(e) = run_pipeline_verified(p, level, target) {
            panic!("{e}");
        }
    } else {
        for pass in pass_plan(level, target) {
            (pass.run)(p);
        }
    }
}

/// Run the pipeline with the IR verifier between every pass, attributing
/// a broken invariant to the pass that introduced it.
pub fn run_pipeline_verified(
    p: &mut HProgram,
    level: OptLevel,
    target: TargetKind,
) -> Result<(), PassError> {
    verify_program(p).map_err(|error| PassError {
        pass: "input",
        error,
    })?;
    for pass in pass_plan(level, target) {
        (pass.run)(p);
        verify_program(p).map_err(|error| PassError {
            pass: pass.name,
            error,
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    const KERNEL: &str = "double A[64]; double B[64];\n\
                          int dead_out[64];\n\
                          double sq(double x) { return x * x; }\n\
                          void k(int n) {\n\
                            for (int i = 0; i < n; i++) {\n\
                              A[i] = sq(B[i]) / 40.0;\n\
                              dead_out[i] = i;\n\
                            }\n\
                          }\n\
                          double checksum() { return A[0] + A[63] + B[1]; }";

    fn compiled(level: OptLevel, target: TargetKind) -> HProgram {
        let mut p = analyze(&parse(lex(KERNEL).unwrap()).unwrap()).unwrap();
        run_pipeline(&mut p, level, target);
        p
    }

    fn loop_widths(p: &HProgram) -> Vec<u32> {
        fn walk(stmts: &[crate::hir::HStmt], out: &mut Vec<u32>) {
            for s in stmts {
                if let crate::hir::HStmt::Loop { body, meta, .. } = s {
                    out.push(meta.vector_width);
                    walk(body, out);
                }
            }
        }
        let mut out = Vec::new();
        for f in &p.funcs {
            walk(&f.body, &mut out);
        }
        out
    }

    #[test]
    fn o2_vectorizes_o1_and_oz_do_not() {
        assert!(loop_widths(&compiled(OptLevel::O2, TargetKind::Wasm)).contains(&4));
        assert!(!loop_widths(&compiled(OptLevel::O1, TargetKind::Wasm)).contains(&4));
        assert!(!loop_widths(&compiled(OptLevel::Oz, TargetKind::Wasm)).contains(&4));
    }

    #[test]
    fn dead_global_removed_except_ofast_wasm() {
        let o2 = compiled(OptLevel::O2, TargetKind::Wasm);
        assert!(!o2.arrays.iter().any(|a| a.name == "dead_out"));
        let ofast_native = compiled(OptLevel::Ofast, TargetKind::Native);
        assert!(!ofast_native.arrays.iter().any(|a| a.name == "dead_out"));
        // The bug: -Ofast targeting Wasm keeps the dead array + stores.
        let ofast_wasm = compiled(OptLevel::Ofast, TargetKind::Wasm);
        assert!(ofast_wasm.arrays.iter().any(|a| a.name == "dead_out"));
    }

    #[test]
    fn o1_hoists_o2_rematerializes() {
        let o1 = compiled(OptLevel::O1, TargetKind::Wasm);
        let k = o1.funcs.iter().find(|f| f.name == "k").unwrap();
        assert!(matches!(&k.body[0], crate::hir::HStmt::DeclLocal { .. }));
        let o2 = compiled(OptLevel::O2, TargetKind::Wasm);
        let k2 = o2.funcs.iter().find(|f| f.name == "k").unwrap();
        let text = format!("{:?}", k2.body);
        assert!(
            text.contains("ConstF(40.0") || text.contains("ConstF(0.025"),
            "{text}"
        );
    }

    #[test]
    fn ofast_sets_fast_math_and_reciprocal() {
        let p = compiled(OptLevel::Ofast, TargetKind::Native);
        assert!(p.fast_math);
        let k = p.funcs.iter().find(|f| f.name == "k").unwrap();
        let text = format!("{:?}", k.body);
        assert!(text.contains("0.025"), "div 40.0 became mul 0.025: {text}");
    }

    #[test]
    fn o2_inlines_sq() {
        let p = compiled(OptLevel::O2, TargetKind::Wasm);
        let k = p.funcs.iter().find(|f| f.name == "k").unwrap();
        let text = format!("{:?}", k.body);
        assert!(!text.contains("Callee"), "{text}");
    }

    #[test]
    fn o0_is_identity() {
        let mut p = analyze(&parse(lex(KERNEL).unwrap()).unwrap()).unwrap();
        let before = p.clone();
        run_pipeline(&mut p, OptLevel::O0, TargetKind::Wasm);
        assert_eq!(p, before);
    }

    #[test]
    fn verified_pipeline_attributes_broken_pass() {
        // A malformed input program is attributed to "input".
        let mut p = HProgram {
            funcs: vec![crate::hir::HFunc {
                name: "f".into(),
                params: vec![],
                ret: crate::hir::Ty::Void,
                locals: vec![],
                body: vec![crate::hir::HStmt::Break],
            }],
            ..Default::default()
        };
        let e = run_pipeline_verified(&mut p, OptLevel::O2, TargetKind::Wasm).unwrap_err();
        assert_eq!(e.pass, "input");
        assert!(e.to_string().contains("before pipeline"), "{e}");
    }

    #[test]
    fn verified_pipeline_accepts_all_levels() {
        use OptLevel::*;
        for level in [O0, O1, O2, O3, Ofast, Os, Oz] {
            for target in [TargetKind::Wasm, TargetKind::Js, TargetKind::Native] {
                let mut p = analyze(&parse(lex(KERNEL).unwrap()).unwrap()).unwrap();
                run_pipeline_verified(&mut p, level, target)
                    .unwrap_or_else(|e| panic!("{level:?}/{target:?}: {e}"));
            }
        }
    }
}
