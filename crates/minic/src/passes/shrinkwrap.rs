//! `-libcalls-shrinkwrap` (§2.1.2): wrap library calls whose results are
//! unused in a domain-check condition so the (errno-setting) call can be
//! skipped. The condition costs extra code size, which is why `-Os`/`-Oz`
//! drop this pass.

use crate::hir::*;

/// Wrap unused-result math libcalls in domain guards.
pub fn shrinkwrap(p: &mut HProgram) {
    for f in &mut p.funcs {
        wrap(&mut f.body);
    }
}

fn wrap(stmts: &mut [HStmt]) {
    for s in stmts.iter_mut() {
        match s {
            HStmt::If(_, a, b) => {
                wrap(a);
                wrap(b);
            }
            HStmt::Loop {
                init, step, body, ..
            } => {
                wrap(init);
                wrap(step);
                wrap(body);
            }
            HStmt::Switch { cases, default, .. } => {
                for (_, body) in cases.iter_mut() {
                    wrap(body);
                }
                wrap(default);
            }
            HStmt::Block(b) => wrap(b),
            HStmt::Expr(HExpr::Call {
                callee: Callee::Intrinsic(intr),
                args,
                ..
            }) if guardable(*intr) && args.len() == 1 => {
                // if (arg-in-domain) { call(arg); }
                let arg = args[0].clone();
                let guard = domain_guard(*intr, arg.clone());
                let call = std::mem::replace(s, HStmt::Block(vec![]));
                *s = HStmt::If(guard, vec![call], vec![]);
            }
            _ => {}
        }
    }
}

fn guardable(i: Intrinsic) -> bool {
    matches!(i, Intrinsic::Sqrt | Intrinsic::Log | Intrinsic::Exp)
}

fn domain_guard(i: Intrinsic, arg: HExpr) -> HExpr {
    match i {
        // sqrt/log: defined for non-negative / positive inputs.
        Intrinsic::Sqrt => HExpr::Cmp(
            HCmpOp::Ge,
            Box::new(arg),
            Box::new(HExpr::ConstF(0.0, Ty::F64)),
            Ty::F64,
        ),
        Intrinsic::Log => HExpr::Cmp(
            HCmpOp::Gt,
            Box::new(arg),
            Box::new(HExpr::ConstF(0.0, Ty::F64)),
            Ty::F64,
        ),
        // exp: overflow guard.
        _ => HExpr::Cmp(
            HCmpOp::Lt,
            Box::new(arg),
            Box::new(HExpr::ConstF(709.0, Ty::F64)),
            Ty::F64,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    #[test]
    fn wraps_unused_libcalls() {
        let src = "double d; void f() { sqrt(d); d = sqrt(d); }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        shrinkwrap(&mut p);
        // First statement wrapped; the assignment untouched.
        assert!(matches!(&p.funcs[0].body[0], HStmt::If(..)));
        assert!(matches!(&p.funcs[0].body[1], HStmt::Assign { .. }));
    }

    #[test]
    fn print_calls_untouched() {
        let src = "void f() { print_int(1); }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        shrinkwrap(&mut p);
        assert!(matches!(&p.funcs[0].body[0], HStmt::Expr(_)));
    }
}
