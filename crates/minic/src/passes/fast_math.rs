//! `-Ofast` fast-math (§2.1.2): relaxed IEEE semantics.
//!
//! Two genuine effects:
//! 1. `x / c` → `x * (1/c)` for constant divisors (the "inaccurate math
//!    calculations" the paper cites) — multiplies are cheaper than
//!    divides on *every* target, so this part helps Wasm/JS too;
//! 2. the program-wide `fast_math` flag, which only the **native**
//!    backend can exploit (relaxed-math instruction selection: float ops
//!    at a discount). Wasm has no fast-math instructions to emit —
//!    another place where an optimization designed for x86 buys Wasm
//!    nothing.

use super::visit_exprs_mut;
use crate::hir::*;

/// Apply fast-math rewrites and set the program flag.
pub fn fast_math(p: &mut HProgram) {
    p.fast_math = true;
    for f in &mut p.funcs {
        visit_exprs_mut(&mut f.body, &mut |e| {
            if let HExpr::Binary(HBinOp::Div, _, b, ty) = e {
                if ty.is_float() {
                    if let HExpr::ConstF(c, ct) = b.as_ref() {
                        if *c != 0.0 && c.is_finite() {
                            let recip = 1.0 / *c;
                            let (ct, ty) = (*ct, *ty);
                            let HExpr::Binary(_, a, _, _) = std::mem::replace(
                                e,
                                HExpr::ConstI(0, Ty::INT), // placeholder
                            ) else {
                                unreachable!()
                            };
                            *e = HExpr::Binary(
                                HBinOp::Mul,
                                a,
                                Box::new(HExpr::ConstF(recip, ct)),
                                ty,
                            );
                        }
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    #[test]
    fn div_by_const_becomes_mul_by_reciprocal() {
        let src = "double r; void f(double x) { r = x / 4.0; }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        fast_math(&mut p);
        assert!(p.fast_math);
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        match value {
            HExpr::Binary(HBinOp::Mul, _, b, _) => {
                assert_eq!(b.as_ref(), &HExpr::ConstF(0.25, Ty::F64));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn division_by_variable_unchanged() {
        let src = "double r; void f(double x, double y) { r = x / y; }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        fast_math(&mut p);
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(value, HExpr::Binary(HBinOp::Div, ..)));
    }

    #[test]
    fn integer_division_unchanged() {
        let src = "int r; void f(int x) { r = x / 4; }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        fast_math(&mut p);
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(value, HExpr::Binary(HBinOp::Div, ..)));
    }
}
