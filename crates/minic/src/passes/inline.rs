//! Function inlining (`-O2` and up; wider threshold at `-O3`/`-Ofast`,
//! subsuming the paper's `-argpromotion` call-overhead benefits).
//!
//! MiniC inlines *expression functions* — bodies of the form
//! `return <expr>;` — when every argument is side-effect free, replacing
//! the call with the substituted expression. This removes the call
//! overhead that `OpClass::Call` charges on every target.

use super::const_fold::has_side_effects;
use super::visit_exprs_mut;
use crate::hir::*;

/// Inline small expression functions. `max_expr_size` bounds the inlined
/// expression's node count (O2: modest, O3/Ofast: wider).
pub fn inline(p: &mut HProgram, max_expr_size: usize) {
    // Snapshot inlinable bodies first (borrow discipline).
    let candidates: Vec<Option<(Vec<Ty>, HExpr)>> = p
        .funcs
        .iter()
        .map(|f| {
            if f.body.len() != 1 {
                return None;
            }
            let HStmt::Return(Some(e)) = &f.body[0] else {
                return None;
            };
            if expr_size(e) > max_expr_size || calls_anything(e) {
                return None;
            }
            // Only direct parameter reads may appear (no writes, no other
            // locals), so substitution is sound.
            if !only_param_reads(e, f.params.len()) {
                return None;
            }
            Some((f.params.clone(), e.clone()))
        })
        .collect();

    for f in &mut p.funcs {
        // Iterate to propagate chains (f calls g, both inlinable), bounded.
        for _ in 0..4 {
            let mut changed = false;
            visit_exprs_mut(&mut f.body, &mut |e| {
                if let HExpr::Call {
                    callee: Callee::Func(id),
                    args,
                    ..
                } = e
                {
                    if let Some(Some((_params, body))) = candidates.get(*id as usize) {
                        if args.iter().all(|a| !has_side_effects(a)) {
                            let mut new = body.clone();
                            substitute(&mut new, args);
                            *e = new;
                            changed = true;
                        }
                    }
                }
            });
            if !changed {
                break;
            }
        }
    }
}

fn expr_size(e: &HExpr) -> usize {
    let mut n = 1;
    match e {
        HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => n += expr_size(a),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            n += expr_size(a) + expr_size(b)
        }
        HExpr::Ternary(c, a, b, _) => n += expr_size(c) + expr_size(a) + expr_size(b),
        HExpr::Call { args, .. } => n += args.iter().map(expr_size).sum::<usize>(),
        HExpr::Elem { idx, .. } => n += idx.iter().map(expr_size).sum::<usize>(),
        HExpr::AssignExpr { value, .. } => n += expr_size(value),
        _ => {}
    }
    n
}

fn calls_anything(e: &HExpr) -> bool {
    match e {
        HExpr::Call { .. } => true,
        HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => calls_anything(a),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            calls_anything(a) || calls_anything(b)
        }
        HExpr::Ternary(c, a, b, _) => calls_anything(c) || calls_anything(a) || calls_anything(b),
        HExpr::Elem { idx, .. } => idx.iter().any(calls_anything),
        HExpr::AssignExpr { value, .. } => calls_anything(value),
        _ => false,
    }
}

fn only_param_reads(e: &HExpr, nparams: usize) -> bool {
    match e {
        HExpr::Local(id, _) => (*id as usize) < nparams,
        HExpr::AssignExpr { .. } => false,
        HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => only_param_reads(a, nparams),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            only_param_reads(a, nparams) && only_param_reads(b, nparams)
        }
        HExpr::Ternary(c, a, b, _) => {
            only_param_reads(c, nparams)
                && only_param_reads(a, nparams)
                && only_param_reads(b, nparams)
        }
        HExpr::Elem { idx, .. } => idx.iter().all(|i| only_param_reads(i, nparams)),
        HExpr::Call { .. } => false,
        _ => true,
    }
}

/// Replace parameter reads with the argument expressions.
fn substitute(e: &mut HExpr, args: &[HExpr]) {
    let mut stmts = vec![HStmt::Expr(e.clone())];
    visit_exprs_mut(&mut stmts, &mut |x| {
        if let HExpr::Local(id, _) = x {
            if let Some(arg) = args.get(*id as usize) {
                *x = arg.clone();
            }
        }
    });
    let HStmt::Expr(new_e) = stmts.pop().expect("one statement") else {
        unreachable!()
    };
    *e = new_e;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    fn run(src: &str, max: usize) -> HProgram {
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        inline(&mut p, max);
        p
    }

    #[test]
    fn inlines_expression_functions() {
        let p = run(
            "double sq(double x) { return x * x; }\n\
             double r; void f(double v) { r = sq(v) + sq(2.0); }",
            16,
        );
        let text = format!("{:?}", p.funcs[1].body);
        assert!(!text.contains("Call"), "{text}");
    }

    #[test]
    fn side_effecting_args_block_inlining() {
        let p = run(
            "int sq(int x) { return x * x; }\n\
             int g; int bump() { g = g + 1; return g; }\n\
             int r; void f() { r = sq(bump()); }",
            16,
        );
        let text = format!("{:?}", p.funcs[2].body);
        assert!(text.contains("Call"), "{text}");
    }

    #[test]
    fn size_threshold_respected() {
        let p = run(
            "double big(double x) { return x * x + x * 2.0 + x / 3.0 + x - 1.0; }\n\
             double r; void f(double v) { r = big(v); }",
            3,
        );
        let text = format!("{:?}", p.funcs[1].body);
        assert!(text.contains("Call"), "{text}");
    }

    #[test]
    fn multi_statement_functions_not_inlined() {
        let p = run(
            "int f2(int x) { int y = x + 1; return y; }\n\
             int r; void f(int v) { r = f2(v); }",
            64,
        );
        let text = format!("{:?}", p.funcs[1].body);
        assert!(text.contains("Call"), "{text}");
    }

    #[test]
    fn chained_inlining_converges() {
        let p = run(
            "int a(int x) { return x + 1; }\n\
             int b(int x) { return a(x) * 2; }\n\
             int r; void f(int v) { r = b(v); }",
            16,
        );
        // b itself calls a, so b is not an inline candidate; but a is
        // inlined into b's body at its own call sites.
        let fb = format!("{:?}", p.funcs[2].body);
        assert!(fb.contains("Call"), "b stays a call: {fb}");
        let bb = format!("{:?}", p.funcs[1].body);
        assert!(!bb.contains("Call"), "a inlined into b: {bb}");
    }
}
