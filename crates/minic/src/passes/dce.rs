//! Dead-code elimination: drop unreachable statements after terminators
//! and pure expression statements.

use super::const_fold::has_side_effects;
use crate::hir::*;

/// Remove trivially dead code.
pub fn dce(p: &mut HProgram) {
    for f in &mut p.funcs {
        dce_body(&mut f.body);
    }
}

fn terminates(s: &HStmt) -> bool {
    matches!(s, HStmt::Return(_) | HStmt::Break | HStmt::Continue)
}

fn dce_body(stmts: &mut Vec<HStmt>) {
    let mut out = Vec::with_capacity(stmts.len());
    let mut dead = false;
    for mut s in stmts.drain(..) {
        if dead {
            continue; // unreachable after return/break/continue
        }
        match &mut s {
            HStmt::Expr(e) if !has_side_effects(e) => continue,
            HStmt::If(_, a, b) => {
                dce_body(a);
                dce_body(b);
            }
            HStmt::Loop {
                init, step, body, ..
            } => {
                dce_body(init);
                dce_body(step);
                dce_body(body);
            }
            HStmt::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    dce_body(b);
                }
                dce_body(default);
            }
            HStmt::Block(b) => {
                dce_body(b);
                if b.is_empty() {
                    continue;
                }
            }
            _ => {}
        }
        if terminates(&s) {
            dead = true;
        }
        out.push(s);
    }
    *stmts = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    fn run(src: &str) -> HProgram {
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        dce(&mut p);
        p
    }

    #[test]
    fn code_after_return_removed() {
        let p = run("int r; int f() { return 1; r = 2; return 3; }");
        assert_eq!(p.funcs[0].body.len(), 1);
    }

    #[test]
    fn pure_expression_statements_removed() {
        let p = run("int r; void f(int x) { x + 1; r = x; }");
        assert_eq!(p.funcs[0].body.len(), 1);
    }

    #[test]
    fn calls_are_kept() {
        let p = run("void g() { } void f() { g(); }");
        assert_eq!(p.funcs[1].body.len(), 1);
    }

    #[test]
    fn nested_blocks_cleaned() {
        let p = run("int r; void f() { { 1 + 2; } r = 1; }");
        assert_eq!(p.funcs[0].body.len(), 1);
    }
}
