//! Constant propagation (`-O1` and up): locals initialized with a
//! constant and never reassigned are replaced by the constant at every
//! use — the SSA-style propagation that puts literal constants *inside*
//! loops, where the Wasm backend's rematerialization encoding (Fig 8)
//! then applies at `-O2`+ while `-O1`'s hoisting pass re-registers them.

use super::visit_exprs_mut;
use crate::hir::*;
use std::collections::HashMap;

/// Propagate constant-initialized, never-reassigned locals.
pub fn const_prop(p: &mut HProgram) {
    for f in &mut p.funcs {
        // Which locals are ever reassigned (params count as assigned).
        let mut reassigned = vec![false; f.locals.len()];
        reassigned[..f.params.len()].fill(true);
        let mut decl_const: HashMap<LocalId, HExpr> = HashMap::new();
        collect(&f.body, &mut reassigned, &mut decl_const);
        // A local declared more than once in different scopes is skipped
        // (`collect` drops duplicates), as is anything reassigned.
        let subst: HashMap<LocalId, HExpr> = decl_const
            .into_iter()
            .filter(|(id, _)| !reassigned[*id as usize])
            .collect();
        if subst.is_empty() {
            continue;
        }
        visit_exprs_mut(&mut f.body, &mut |e| {
            if let HExpr::Local(id, _) = e {
                if let Some(c) = subst.get(id) {
                    *e = c.clone();
                }
            }
        });
        // Dead declarations are left in place; they cost one store at
        // function entry, matching real codegen slop.
    }
}

fn collect(stmts: &[HStmt], reassigned: &mut [bool], decl_const: &mut HashMap<LocalId, HExpr>) {
    for s in stmts {
        match s {
            HStmt::DeclLocal { id, init } => {
                match init {
                    Some(c @ (HExpr::ConstI(..) | HExpr::ConstF(..))) => {
                        if decl_const.insert(*id, c.clone()).is_some() {
                            // Re-declared (loop-scoped): treat as mutable.
                            reassigned[*id as usize] = true;
                        }
                        // Declarations inside loops re-run; that is fine —
                        // the value is the same constant each time.
                    }
                    _ => reassigned[*id as usize] = true,
                }
            }
            HStmt::Assign {
                lhs: HLval::Local(id),
                ..
            } => reassigned[*id as usize] = true,
            HStmt::Assign { .. } => {}
            HStmt::Expr(e) | HStmt::Return(Some(e)) => mark_expr(e, reassigned),
            HStmt::If(c, a, b) => {
                mark_expr(c, reassigned);
                collect(a, reassigned, decl_const);
                collect(b, reassigned, decl_const);
            }
            HStmt::Loop {
                init,
                cond,
                step,
                body,
                ..
            } => {
                collect(init, reassigned, decl_const);
                if let Some(c) = cond {
                    mark_expr(c, reassigned);
                }
                collect(step, reassigned, decl_const);
                collect(body, reassigned, decl_const);
            }
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => {
                mark_expr(scrut, reassigned);
                for (_, b) in cases {
                    collect(b, reassigned, decl_const);
                }
                collect(default, reassigned, decl_const);
            }
            HStmt::Block(b) => collect(b, reassigned, decl_const),
            _ => {}
        }
    }
}

/// AssignExpr targets inside expressions also count as reassignment.
fn mark_expr(e: &HExpr, reassigned: &mut [bool]) {
    match e {
        HExpr::AssignExpr { lhs, value, .. } => {
            if let HLval::Local(id) = lhs.as_ref() {
                reassigned[*id as usize] = true;
            }
            mark_expr(value, reassigned);
        }
        HExpr::Unary(_, a, _) | HExpr::Cast { expr: a, .. } => mark_expr(a, reassigned),
        HExpr::Binary(_, a, b, _) | HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            mark_expr(a, reassigned);
            mark_expr(b, reassigned);
        }
        HExpr::Ternary(c, a, b, _) => {
            mark_expr(c, reassigned);
            mark_expr(a, reassigned);
            mark_expr(b, reassigned);
        }
        HExpr::Call { args, .. } => args.iter().for_each(|a| mark_expr(a, reassigned)),
        HExpr::Elem { idx, .. } => idx.iter().for_each(|i| mark_expr(i, reassigned)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    #[test]
    fn propagates_constant_locals_into_loops() {
        let src = "double A[8];\n\
                   void k(int n) {\n\
                     double fn_ = 40.0;\n\
                     for (int i = 0; i < n; i++) A[i] = A[i] / fn_;\n\
                   }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        const_prop(&mut p);
        let text = format!("{:?}", p.funcs[0].body);
        assert!(text.contains("ConstF(40.0"), "{text}");
    }

    #[test]
    fn reassigned_locals_are_left_alone() {
        let src = "double A[8];\n\
                   void k(int n) {\n\
                     double s = 1.0;\n\
                     for (int i = 0; i < n; i++) s = s + A[i];\n\
                     A[0] = s;\n\
                   }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        let before = p.clone();
        const_prop(&mut p);
        assert_eq!(p, before);
    }
}
