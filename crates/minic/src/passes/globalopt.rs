//! `-globalopt`: remove globals (scalars and arrays) that are never read,
//! together with the stores into them (§2.1.2).
//!
//! The `keep_dead_stores` flag is the **bug emulation** of §4.2.1(1) /
//! Fig 7: at `-Ofast` on the Wasm target the dead *array* and its stores
//! are left in place (the pattern the paper traced in ADPCM, and akin to
//! LLVM bug 37449), so the generated module executes dead stores plus
//! their address arithmetic.

use super::{visit_exprs_mut, visit_stmts_mut};
use crate::hir::*;
use std::collections::HashSet;

/// Run global dead-store/dead-global elimination.
///
/// `keep_dead_stores = true` reproduces the -Ofast/Wasm miscompile: the
/// analysis still runs, but neither the dead globals nor the stores are
/// removed.
pub fn globalopt(p: &mut HProgram, keep_dead_stores: bool) {
    // 1. Find globals/arrays that are read anywhere.
    let mut read_globals: HashSet<GlobalId> = HashSet::new();
    let mut read_arrays: HashSet<ArrayId> = HashSet::new();
    for f in &mut p.funcs {
        visit_exprs_mut(&mut f.body, &mut |e| match e {
            HExpr::Global(g, _) => {
                read_globals.insert(*g);
            }
            HExpr::Elem { array, .. } => {
                read_arrays.insert(*array);
            }
            // A compound assignment through AssignExpr reads the lhs via
            // the desugared load, already covered above.
            _ => {}
        });
    }

    if keep_dead_stores {
        return; // bug emulation: analysis done, transform skipped
    }

    // 2. Drop stores to never-read globals/arrays. A side-effecting RHS
    //    (e.g. `result[i] = decode_sample(...)`) keeps its evaluation but
    //    loses the store — exactly what LLVM's dead-store elimination
    //    does, and what -Ofast-on-Wasm fails to do in Fig 7.
    for f in &mut p.funcs {
        visit_stmts_mut(&mut f.body, &mut |s| {
            let dead = match s {
                HStmt::Assign {
                    lhs: HLval::Global(g),
                    ..
                } => !read_globals.contains(g),
                HStmt::Assign {
                    lhs: HLval::Elem { array, idx },
                    ..
                } => {
                    !read_arrays.contains(array)
                        && !idx.iter().any(super::const_fold::has_side_effects)
                }
                _ => false,
            };
            if dead {
                let HStmt::Assign { value, .. } = std::mem::replace(s, HStmt::Block(vec![])) else {
                    unreachable!("matched Assign above")
                };
                if super::const_fold::has_side_effects(&value) {
                    *s = HStmt::Expr(value);
                }
            }
        });
    }

    // 3. Remove the dead definitions themselves, remapping ids.
    let mut global_map = vec![None; p.globals.len()];
    let mut kept_globals = Vec::new();
    for (i, g) in p.globals.drain(..).enumerate() {
        if read_globals.contains(&(i as GlobalId)) {
            global_map[i] = Some(kept_globals.len() as GlobalId);
            kept_globals.push(g);
        }
    }
    p.globals = kept_globals;

    let mut array_map = vec![None; p.arrays.len()];
    let mut kept_arrays = Vec::new();
    for (i, a) in p.arrays.drain(..).enumerate() {
        if read_arrays.contains(&(i as ArrayId)) {
            array_map[i] = Some(kept_arrays.len() as ArrayId);
            kept_arrays.push(a);
        }
    }
    p.arrays = kept_arrays;

    for f in &mut p.funcs {
        visit_exprs_mut(&mut f.body, &mut |e| match e {
            HExpr::Global(g, _) => {
                *g = global_map[*g as usize].expect("read global kept");
            }
            HExpr::Elem { array, .. } => {
                *array = array_map[*array as usize].expect("read array kept");
            }
            HExpr::AssignExpr { lhs, .. } => remap_lval(lhs, &global_map, &array_map),
            _ => {}
        });
        visit_stmts_mut(&mut f.body, &mut |s| {
            if let HStmt::Assign { lhs, .. } = s {
                remap_lval(lhs, &global_map, &array_map);
            }
        });
    }
}

fn remap_lval(lhs: &mut HLval, global_map: &[Option<GlobalId>], array_map: &[Option<ArrayId>]) {
    match lhs {
        HLval::Global(g) => {
            if let Some(new) = global_map.get(*g as usize).copied().flatten() {
                *g = new;
            }
        }
        HLval::Elem { array, .. } => {
            if let Some(new) = array_map.get(*array as usize).copied().flatten() {
                *array = new;
            }
        }
        HLval::Local(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    const ADPCM_LIKE: &str = "int result[8];\n\
                              int live[8];\n\
                              int acc;\n\
                              void k(int i, int x) {\n\
                                result[i] = x;\n\
                                live[i] = x;\n\
                                acc = acc + live[i];\n\
                              }";

    #[test]
    fn dead_array_and_stores_removed_normally() {
        let mut p = analyze(&parse(lex(ADPCM_LIKE).unwrap()).unwrap()).unwrap();
        assert_eq!(p.arrays.len(), 2);
        globalopt(&mut p, false);
        // `result` is write-only → array and its store are gone.
        assert_eq!(p.arrays.len(), 1);
        assert_eq!(p.arrays[0].name, "live");
        let stores: usize = count_elem_stores(&p.funcs[0].body);
        assert_eq!(stores, 1);
    }

    #[test]
    fn bug_emulation_keeps_dead_stores() {
        let mut p = analyze(&parse(lex(ADPCM_LIKE).unwrap()).unwrap()).unwrap();
        globalopt(&mut p, true);
        assert_eq!(p.arrays.len(), 2, "dead array kept (Fig 7)");
        assert_eq!(count_elem_stores(&p.funcs[0].body), 2, "dead store kept");
    }

    #[test]
    fn dead_scalar_removed_and_ids_remapped() {
        let src = "int dead; int kept; int out; void f() { dead = 1; kept = 2; out = kept; } int get() { return out; }";
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        globalopt(&mut p, false);
        assert_eq!(
            p.globals
                .iter()
                .map(|g| g.name.as_str())
                .collect::<Vec<_>>(),
            vec!["kept", "out"]
        );
        // Remaining references must point at the remapped ids, which the
        // native evaluator exercises end-to-end in backend tests.
    }

    fn count_elem_stores(body: &[HStmt]) -> usize {
        body.iter()
            .map(|s| match s {
                HStmt::Assign {
                    lhs: HLval::Elem { .. },
                    ..
                } => 1,
                HStmt::Block(b) => count_elem_stores(b),
                _ => 0,
            })
            .sum()
    }
}
