//! Constant folding and algebraic simplification (run at `-O1` and up).

use super::visit_exprs_mut;
use crate::hir::*;

/// Fold constant subexpressions and simplify trivial algebra.
pub fn const_fold(p: &mut HProgram) {
    for f in &mut p.funcs {
        visit_exprs_mut(&mut f.body, &mut fold_expr);
        prune_const_branches(&mut f.body);
    }
}

fn fold_expr(e: &mut HExpr) {
    let replacement = match e {
        HExpr::Binary(op, a, b, ty) => match (a.as_ref(), b.as_ref()) {
            (HExpr::ConstI(x, _), HExpr::ConstI(y, _)) => fold_int(*op, *x, *y, *ty),
            (HExpr::ConstF(x, _), HExpr::ConstF(y, _)) => fold_float(*op, *x, *y, *ty),
            // x + 0, x - 0, x * 1, x / 1 — exact for ints and IEEE floats
            // (0.0 + x is *not* simplified: it can change -0.0).
            (_, HExpr::ConstI(0, _)) if matches!(op, HBinOp::Add | HBinOp::Sub) => {
                Some((**a).clone())
            }
            (_, HExpr::ConstI(1, _)) if matches!(op, HBinOp::Mul | HBinOp::Div) => {
                Some((**a).clone())
            }
            (_, HExpr::ConstF(x, _)) if *x == 1.0 && matches!(op, HBinOp::Mul | HBinOp::Div) => {
                Some((**a).clone())
            }
            // x * 0 → 0 for integers only (float 0*x can be NaN).
            (_, HExpr::ConstI(0, t)) if *op == HBinOp::Mul && !has_side_effects(a) => {
                Some(HExpr::ConstI(0, *t))
            }
            _ => None,
        },
        HExpr::Cmp(op, a, b, _) => match (a.as_ref(), b.as_ref()) {
            (HExpr::ConstI(x, t), HExpr::ConstI(y, _)) => {
                let r = if t.unsigned() {
                    cmp_result(*op, (*x as u64).cmp(&(*y as u64)))
                } else {
                    cmp_result(*op, x.cmp(y))
                };
                Some(HExpr::ConstI(r as i64, Ty::INT))
            }
            (HExpr::ConstF(x, _), HExpr::ConstF(y, _)) => x
                .partial_cmp(y)
                .map(|ord| HExpr::ConstI(cmp_result(*op, ord) as i64, Ty::INT)),
            _ => None,
        },
        HExpr::Unary(HUnOp::Neg, a, ty) => match a.as_ref() {
            HExpr::ConstI(v, _) => Some(HExpr::ConstI(v.wrapping_neg(), *ty)),
            HExpr::ConstF(v, _) => Some(HExpr::ConstF(-v, *ty)),
            _ => None,
        },
        HExpr::Unary(HUnOp::BitNot, a, ty) => match a.as_ref() {
            HExpr::ConstI(v, _) => Some(HExpr::ConstI(!*v, *ty)),
            _ => None,
        },
        HExpr::Unary(HUnOp::Not, a, _) => match a.as_ref() {
            HExpr::ConstI(v, _) => Some(HExpr::ConstI((*v == 0) as i64, Ty::INT)),
            _ => None,
        },
        HExpr::Ternary(c, a, b, _) => match c.as_ref() {
            HExpr::ConstI(v, _) => Some(if *v != 0 {
                (**a).clone()
            } else {
                (**b).clone()
            }),
            _ => None,
        },
        HExpr::Cast { to, expr, .. } => match expr.as_ref() {
            HExpr::ConstI(v, _) => match to {
                Ty::F64 => Some(HExpr::ConstF(*v as f64, Ty::F64)),
                Ty::F32 => Some(HExpr::ConstF(*v as f32 as f64, Ty::F32)),
                Ty::I32 { .. } => Some(HExpr::ConstI(*v as i32 as i64, *to)),
                Ty::I64 { .. } => Some(HExpr::ConstI(*v, *to)),
                Ty::Void => None,
            },
            HExpr::ConstF(v, _) => match to {
                Ty::F64 => Some(HExpr::ConstF(*v, Ty::F64)),
                Ty::F32 => Some(HExpr::ConstF(*v as f32 as f64, Ty::F32)),
                // Float→int folding only when exactly representable.
                Ty::I32 { .. } if v.fract() == 0.0 && v.abs() < 2e9 => {
                    Some(HExpr::ConstI(*v as i64 as i32 as i64, *to))
                }
                Ty::I64 { .. } if v.fract() == 0.0 && v.abs() < 9e18 => {
                    Some(HExpr::ConstI(*v as i64, *to))
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    };
    if let Some(r) = replacement {
        *e = r;
    }
}

fn fold_int(op: HBinOp, x: i64, y: i64, ty: Ty) -> Option<HExpr> {
    let narrow = |v: i64| match ty {
        Ty::I32 { .. } => v as i32 as i64,
        _ => v,
    };
    let v = match op {
        HBinOp::Add => x.wrapping_add(y),
        HBinOp::Sub => x.wrapping_sub(y),
        HBinOp::Mul => x.wrapping_mul(y),
        HBinOp::Div => {
            if y == 0 {
                return None; // preserve the runtime trap
            }
            if ty.unsigned() {
                ((x as u64) / (y as u64)) as i64
            } else {
                x.checked_div(y)?
            }
        }
        HBinOp::Rem => {
            if y == 0 {
                return None;
            }
            if ty.unsigned() {
                ((x as u64) % (y as u64)) as i64
            } else {
                x.checked_rem(y)?
            }
        }
        HBinOp::BitAnd => x & y,
        HBinOp::BitOr => x | y,
        HBinOp::BitXor => x ^ y,
        HBinOp::Shl => match ty {
            Ty::I32 { .. } => ((x as i32).wrapping_shl(y as u32)) as i64,
            _ => x.wrapping_shl(y as u32),
        },
        HBinOp::Shr => match ty {
            Ty::I32 { unsigned: true } => ((x as u32).wrapping_shr(y as u32)) as i64,
            Ty::I32 { unsigned: false } => ((x as i32).wrapping_shr(y as u32)) as i64,
            Ty::I64 { unsigned: true } => ((x as u64).wrapping_shr(y as u32)) as i64,
            _ => x.wrapping_shr(y as u32),
        },
    };
    Some(HExpr::ConstI(narrow(v), ty))
}

fn fold_float(op: HBinOp, x: f64, y: f64, ty: Ty) -> Option<HExpr> {
    let v = match op {
        HBinOp::Add => x + y,
        HBinOp::Sub => x - y,
        HBinOp::Mul => x * y,
        HBinOp::Div => x / y,
        _ => return None,
    };
    let v = if ty == Ty::F32 { v as f32 as f64 } else { v };
    Some(HExpr::ConstF(v, ty))
}

fn cmp_result(op: HCmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        HCmpOp::Eq => ord == Equal,
        HCmpOp::Ne => ord != Equal,
        HCmpOp::Lt => ord == Less,
        HCmpOp::Le => ord != Greater,
        HCmpOp::Gt => ord == Greater,
        HCmpOp::Ge => ord != Less,
    }
}

/// `if (const)` → the taken arm; `loop` with constant-false condition →
/// init only (pre-test) / one iteration (post-test untouched).
fn prune_const_branches(stmts: &mut Vec<HStmt>) {
    let mut out: Vec<HStmt> = Vec::with_capacity(stmts.len());
    for mut s in stmts.drain(..) {
        match &mut s {
            HStmt::If(cond, a, b) => {
                prune_const_branches(a);
                prune_const_branches(b);
                if let HExpr::ConstI(v, _) = cond {
                    let arm = if *v != 0 {
                        std::mem::take(a)
                    } else {
                        std::mem::take(b)
                    };
                    out.extend(arm);
                    continue;
                }
            }
            HStmt::Loop {
                kind: LoopKind::PreTest,
                init,
                cond: Some(HExpr::ConstI(0, _)),
                ..
            } => {
                out.extend(std::mem::take(init));
                continue;
            }
            HStmt::Loop {
                init, step, body, ..
            } => {
                prune_const_branches(init);
                prune_const_branches(step);
                prune_const_branches(body);
            }
            HStmt::Block(b) => {
                prune_const_branches(b);
            }
            HStmt::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    prune_const_branches(b);
                }
                prune_const_branches(default);
            }
            _ => {}
        }
        out.push(s);
    }
    *stmts = out;
}

pub(crate) fn has_side_effects(e: &HExpr) -> bool {
    match e {
        HExpr::Call { .. } | HExpr::AssignExpr { .. } => true,
        HExpr::Unary(_, a, _) => has_side_effects(a),
        HExpr::Binary(op, a, b, _) => {
            // Division can trap at runtime.
            matches!(op, HBinOp::Div | HBinOp::Rem) || has_side_effects(a) || has_side_effects(b)
        }
        HExpr::Cmp(_, a, b, _) | HExpr::And(a, b) | HExpr::Or(a, b) => {
            has_side_effects(a) || has_side_effects(b)
        }
        HExpr::Ternary(c, a, b, _) => {
            has_side_effects(c) || has_side_effects(a) || has_side_effects(b)
        }
        HExpr::Cast { expr, .. } => has_side_effects(expr),
        HExpr::Elem { idx, .. } => idx.iter().any(has_side_effects),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, lex, parse};

    fn folded(src: &str) -> HProgram {
        let mut p = analyze(&parse(lex(src).unwrap()).unwrap()).unwrap();
        const_fold(&mut p);
        p
    }

    #[test]
    fn folds_arithmetic() {
        let p = folded("int r; void f() { r = 2 + 3 * 4; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(value, &HExpr::ConstI(14, Ty::INT));
    }

    #[test]
    fn folds_float_and_casts() {
        let p = folded("double r; void f() { r = (double)(1 + 1) * 2.5; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(value, &HExpr::ConstF(5.0, Ty::F64));
    }

    #[test]
    fn identity_simplifications() {
        let p = folded("int r; void f(int x) { r = x * 1 + 0; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(value, &HExpr::Local(0, Ty::INT));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let p = folded("int r; void f() { r = 1 / 0; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(value, HExpr::Binary(HBinOp::Div, ..)));
    }

    #[test]
    fn prunes_constant_ifs() {
        let p = folded("int r; void f() { if (1 < 2) r = 7; else r = 9; }");
        assert_eq!(p.funcs[0].body.len(), 1);
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!("{:?}", p.funcs[0].body)
        };
        assert_eq!(value, &HExpr::ConstI(7, Ty::INT));
    }

    #[test]
    fn dead_pretest_loop_removed() {
        let p = folded("int r; void f() { while (0) r = 1; r = 2; }");
        assert_eq!(p.funcs[0].body.len(), 1);
    }

    #[test]
    fn unsigned_comparison_folds_unsigned() {
        // 0xffffffff as unsigned is huge, as signed it is -1.
        let p = folded("unsigned int r; void f() { r = (unsigned int)0xffffffff > 1u; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(
            matches!(value, HExpr::ConstI(1, _)),
            "folded to an unsigned-true constant: {value:?}"
        );
    }
}
