//! The top-level compiler driver: source → (transform) → HIR → pipeline →
//! backend, mirroring the paper's Fig 2 steps 1–2.

use crate::backend::wasm::WasmEmitOptions;
use crate::backend::{emit_js_with, emit_wasm, JsEmitOptions, NativeProgram};
use crate::error::CompileError;
use crate::hir::HProgram;
use crate::opt::OptLevel;
use crate::passes::{run_pipeline, run_pipeline_verified, TargetKind};
use crate::transform::{transform_unit, TransformReport};
use std::collections::HashMap;
use wb_env::{CompilerProfile, Toolchain};

/// Common compilation metadata.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// Which source-transformations were needed (§3.1 accounting).
    pub transform: TransformReport,
    /// Static data footprint in bytes.
    pub data_bytes: u64,
    /// Optimization level used.
    pub level: OptLevel,
    /// Toolchain profile used.
    pub toolchain: Toolchain,
}

/// A compiled Wasm artifact.
#[derive(Debug, Clone)]
pub struct WasmOutput {
    /// The module (validated).
    pub module: wb_wasm::Module,
    /// Encoded binary size in bytes — the Fig 5 code-size metric.
    pub code_size: usize,
    /// The `print_str` string table (bound to the `env.print_str` import
    /// at instantiation).
    pub strings: Vec<String>,
    /// Common metadata.
    pub info: CompileOutput,
}

/// A compiled JavaScript artifact.
#[derive(Debug, Clone)]
pub struct JsOutput {
    /// MiniJS source text.
    pub source: String,
    /// Source size in bytes — the Fig 5 JS code-size metric (what ships
    /// over the network and gets parsed).
    pub code_size: usize,
    /// Common metadata.
    pub info: CompileOutput,
}

/// The MiniC compiler, configured like a command line:
/// `cheerp -O2 -DN=400 -cheerp-linear-heap-size=...`.
#[derive(Debug, Clone)]
pub struct Compiler {
    toolchain: Toolchain,
    level: OptLevel,
    defines: HashMap<String, String>,
    heap_limit: Option<u64>,
    verify_ir: bool,
    trap_checks: bool,
}

impl Compiler {
    /// A compiler for the given toolchain at `-O2` (the paper's baseline).
    pub fn new(toolchain: Toolchain) -> Self {
        Compiler {
            toolchain,
            level: OptLevel::O2,
            defines: HashMap::new(),
            heap_limit: None,
            // Debug builds always verify the IR between passes; release
            // builds opt in via `--verify-ir` / `.verify_ir(true)`.
            verify_ir: cfg!(debug_assertions),
            trap_checks: false,
        }
    }

    /// Cheerp at `-O2` (the study default).
    pub fn cheerp() -> Self {
        Self::new(Toolchain::Cheerp)
    }

    /// Emscripten at `-O2`.
    pub fn emscripten() -> Self {
        Self::new(Toolchain::Emscripten)
    }

    /// Set the optimization level.
    pub fn opt_level(mut self, level: OptLevel) -> Self {
        self.level = level;
        self
    }

    /// Add a `-D` style definition (dataset sizes, §3.2).
    pub fn define(mut self, name: &str, value: impl ToString) -> Self {
        self.defines.insert(name.to_string(), value.to_string());
        self
    }

    /// Raise the linear heap limit (`cheerp-linear-heap-size`, §3.2).
    pub fn heap_limit(mut self, bytes: u64) -> Self {
        self.heap_limit = Some(bytes);
        self
    }

    /// Verify IR invariants between every optimization pass
    /// (`--verify-ir`). On by default in debug builds.
    pub fn verify_ir(mut self, on: bool) -> Self {
        self.verify_ir = on;
        self
    }

    /// Emit wasm-parity trap checks in the JS backend (checked integer
    /// division and typed-array bounds; see
    /// [`crate::backend::JsEmitOptions`]). Off by default — this changes
    /// generated code, so it is part of the artifact cache key and is
    /// only enabled by the trap-parity fixtures.
    pub fn trap_checks(mut self, on: bool) -> Self {
        self.trap_checks = on;
        self
    }

    /// The configured level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Front end: preprocess, parse, transform, analyze. Returns the
    /// unoptimized HIR plus the transformation report.
    pub fn frontend(&self, source: &str) -> Result<(HProgram, TransformReport), CompileError> {
        let text = crate::preprocess::preprocess(source, &self.defines)?;
        let tokens = crate::lexer::lex(&text)?;
        let unit = crate::parser::parse(tokens)?;
        let (unit, report) = transform_unit(&unit)?;
        let hir = crate::sema::analyze(&unit)?;
        Ok((hir, report))
    }

    fn optimized(
        &self,
        source: &str,
        target: TargetKind,
    ) -> Result<(HProgram, TransformReport), CompileError> {
        let (mut hir, report) = self.frontend(source)?;
        if self.verify_ir {
            run_pipeline_verified(&mut hir, self.level, target).map_err(|e| {
                CompileError::Verify {
                    pass: e.pass.to_string(),
                    message: e.error.to_string(),
                }
            })?;
        } else {
            run_pipeline(&mut hir, self.level, target);
        }
        Ok((hir, report))
    }

    /// Compile to WebAssembly.
    pub fn compile_wasm(&self, source: &str) -> Result<WasmOutput, CompileError> {
        let (hir, transform) = self.optimized(source, TargetKind::Wasm)?;
        let opts = WasmEmitOptions {
            profile: CompilerProfile::of(self.toolchain),
            heap_limit_bytes: self.heap_limit,
            // -O0/-O1 keep plain f64 constants; O2+ rematerializes (Fig 8).
            remat_int_consts: self.level >= OptLevel::O2 && self.level != OptLevel::O0,
        };
        let module = emit_wasm(&hir, &opts)?;
        debug_assert!(
            wb_wasm::validate(&module).is_ok(),
            "backend must emit valid modules: {:?}",
            wb_wasm::validate(&module)
        );
        let code_size = module.code_size();
        Ok(WasmOutput {
            code_size,
            strings: hir.strings.clone(),
            info: CompileOutput {
                transform,
                data_bytes: hir.static_data_bytes(),
                level: self.level,
                toolchain: self.toolchain,
            },
            module,
        })
    }

    /// Compile to JavaScript (MiniJS source).
    pub fn compile_js(&self, source: &str) -> Result<JsOutput, CompileError> {
        let (hir, transform) = self.optimized(source, TargetKind::Js)?;
        let js = emit_js_with(
            &hir,
            &JsEmitOptions {
                trap_checks: self.trap_checks,
            },
        )?;
        Ok(JsOutput {
            code_size: js.len(),
            info: CompileOutput {
                transform,
                data_bytes: hir.static_data_bytes(),
                level: self.level,
                toolchain: self.toolchain,
            },
            source: js,
        })
    }

    /// Compile for the native simulator (the x86 control, Fig 6).
    pub fn compile_native(&self, source: &str) -> Result<NativeProgram, CompileError> {
        let (hir, _transform) = self.optimized(source, TargetKind::Native)?;
        Ok(NativeProgram::new(hir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL: &str = "#define N 8\n\
                          double A[N][N];\n\
                          void k() {\n\
                            for (int i = 0; i < N; i++)\n\
                              for (int j = 0; j < N; j++)\n\
                                A[i][j] = (double)(i * j) / N;\n\
                          }\n\
                          double checksum() {\n\
                            double s = 0.0;\n\
                            for (int i = 0; i < N; i++)\n\
                              for (int j = 0; j < N; j++)\n\
                                s = s + A[i][j];\n\
                            return s;\n\
                          }";

    #[test]
    fn compiles_to_all_three_targets() {
        let c = Compiler::cheerp();
        let wasm = c.compile_wasm(KERNEL).unwrap();
        assert!(wb_wasm::validate(&wasm.module).is_ok());
        assert!(wasm.code_size > 0);
        let js = c.compile_js(KERNEL).unwrap();
        assert!(js.source.contains("function k("));
        let native = c.compile_native(KERNEL).unwrap();
        native.run("k", &[]).unwrap();
    }

    #[test]
    fn defines_override_dataset() {
        let c = Compiler::cheerp().define("N", 4);
        let wasm = c.compile_wasm(KERNEL).unwrap();
        assert_eq!(wasm.info.data_bytes, 4 * 4 * 8);
    }

    #[test]
    fn heap_limit_enforced_and_raisable() {
        let big = "#define N 1200\ndouble A[N][N]; double k() { A[0][0] = 1.0; return A[0][0]; }";
        // 1200² × 8 = 11.5 MB > the 8 MiB Cheerp default (§3.2).
        let c = Compiler::cheerp();
        assert!(matches!(
            c.compile_wasm(big),
            Err(CompileError::Codegen { .. })
        ));
        let c = Compiler::cheerp().heap_limit(64 << 20);
        assert!(c.compile_wasm(big).is_ok());
    }

    #[test]
    fn opt_levels_change_artifacts() {
        let o1 = Compiler::cheerp().opt_level(OptLevel::O1);
        let o2 = Compiler::cheerp().opt_level(OptLevel::O2);
        let w1 = o1.compile_wasm(KERNEL).unwrap();
        let w2 = o2.compile_wasm(KERNEL).unwrap();
        assert_ne!(w1.module, w2.module, "O1 and O2 emit different code");
    }

    #[test]
    fn emscripten_reserves_16_mib() {
        let w = Compiler::emscripten().compile_wasm(KERNEL).unwrap();
        let mem = w.module.memory.unwrap();
        assert!(mem.limits.min >= 256);
        // Cheerp stays near the data size.
        let c = Compiler::cheerp().compile_wasm(KERNEL).unwrap();
        assert!(c.module.memory.unwrap().limits.min < 16);
        // And Cheerp emits a start function that grows memory at runtime.
        assert!(c.module.start.is_some());
        assert!(w.module.start.is_none());
    }
}
