//! Static IR verifier: structural and type invariants the optimization
//! passes must preserve.
//!
//! Sema establishes these invariants once; every pass in the pipeline is
//! required to keep them. The pipeline runner re-verifies the program
//! after each pass (always in debug builds, and in release builds under
//! `--verify-ir`), so a broken invariant names the pass that introduced
//! it instead of surfacing later as a backend panic or a miscompiled
//! module.
//!
//! Checked invariants:
//!
//! * **Layout sanity** — every local/global/array/function/string index
//!   is in bounds; parameter slots prefix the local table with matching
//!   types; array index lists match the array's dimensionality; no
//!   `void`-typed storage.
//! * **Type agreement** — every expression node's cached type agrees
//!   with its operands exactly as sema constructed it: binary operands
//!   share the node type, comparisons share the annotated operand type,
//!   casts record the operand's type as `from`, calls match the callee
//!   signature, assignments store a value of the destination's type.
//! * **Terminator discipline** — `break` only inside a loop or switch,
//!   `continue` only inside a loop, `return` arity matching the function
//!   signature.
//! * **Def-before-use** — a non-parameter local is never read unless
//!   some earlier statement (in evaluation order, or anywhere in an
//!   enclosing loop, which covers loop-carried values) defined it.

use crate::hir::{Callee, HBinOp, HExpr, HFunc, HLval, HProgram, HStmt, HUnOp, Intrinsic, Ty};
use std::fmt;

/// A broken IR invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function the invariant broke in (`None` for program-level
    /// layout problems).
    pub func: Option<String>,
    /// What was violated.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in function '{name}': {}", self.detail),
            None => write!(f, "{}", self.detail),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole program. Returns the first broken invariant found.
pub fn verify_program(p: &HProgram) -> Result<(), VerifyError> {
    let program_err = |detail: String| VerifyError { func: None, detail };
    for (i, g) in p.globals.iter().enumerate() {
        if g.ty == Ty::Void {
            return Err(program_err(format!(
                "global {i} '{}' has void type",
                g.name
            )));
        }
    }
    for (i, a) in p.arrays.iter().enumerate() {
        if a.dims.is_empty() {
            return Err(program_err(format!(
                "array {i} '{}' has no dimensions",
                a.name
            )));
        }
        if let Some(init) = &a.init {
            if init.len() as u64 > a.len() {
                return Err(program_err(format!(
                    "array {i} '{}' initializer has {} elements for {} slots",
                    a.name,
                    init.len(),
                    a.len()
                )));
            }
        }
    }
    for f in &p.funcs {
        FuncVerifier::new(p, f).run()?;
    }
    Ok(())
}

struct FuncVerifier<'a> {
    p: &'a HProgram,
    f: &'a HFunc,
    /// Per-slot "a definition has been seen on some earlier evaluation
    /// path" flags (parameters start defined).
    defined: Vec<bool>,
    loop_depth: usize,
    switch_depth: usize,
}

impl<'a> FuncVerifier<'a> {
    fn new(p: &'a HProgram, f: &'a HFunc) -> Self {
        let mut defined = vec![false; f.locals.len()];
        for d in defined.iter_mut().take(f.params.len()) {
            *d = true;
        }
        FuncVerifier {
            p,
            f,
            defined,
            loop_depth: 0,
            switch_depth: 0,
        }
    }

    fn err(&self, detail: impl Into<String>) -> VerifyError {
        VerifyError {
            func: Some(self.f.name.clone()),
            detail: detail.into(),
        }
    }

    fn run(mut self) -> Result<(), VerifyError> {
        if self.f.params.len() > self.f.locals.len() {
            return Err(self.err(format!(
                "{} params but only {} local slots",
                self.f.params.len(),
                self.f.locals.len()
            )));
        }
        for (i, pt) in self.f.params.iter().enumerate() {
            if *pt != self.f.locals[i].1 {
                return Err(self.err(format!(
                    "param {i} type {:?} disagrees with local slot type {:?}",
                    pt, self.f.locals[i].1
                )));
            }
        }
        for (i, (name, ty)) in self.f.locals.iter().enumerate() {
            if *ty == Ty::Void {
                return Err(self.err(format!("local {i} '{name}' has void type")));
            }
        }
        self.stmts(&self.f.body.clone())
    }

    fn stmts(&mut self, body: &[HStmt]) -> Result<(), VerifyError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &HStmt) -> Result<(), VerifyError> {
        match s {
            HStmt::DeclLocal { id, init } => {
                let slot_ty = self.local_ty(*id)?;
                if let Some(e) = init {
                    self.expr(e)?;
                    if e.ty() != slot_ty {
                        return Err(self.err(format!(
                            "local {id} declared {slot_ty:?} but initialized with {:?}",
                            e.ty()
                        )));
                    }
                }
                self.defined[*id as usize] = true;
            }
            HStmt::Assign { lhs, value } => {
                let lty = self.lval(lhs)?;
                self.expr(value)?;
                if value.ty() != lty {
                    return Err(self.err(format!(
                        "assignment stores {:?} into {lty:?} destination",
                        value.ty()
                    )));
                }
                if let HLval::Local(id) = lhs {
                    self.defined[*id as usize] = true;
                }
            }
            HStmt::Expr(e) => self.expr(e)?,
            HStmt::If(c, then_b, else_b) => {
                self.expr(c)?;
                if c.ty() == Ty::Void {
                    return Err(self.err("if condition has void type"));
                }
                // Definitions in one arm count for reads in the other:
                // the def-before-use check only rejects reads with *no*
                // preceding definition on any path.
                self.stmts(then_b)?;
                self.stmts(else_b)?;
            }
            HStmt::Loop {
                init,
                cond,
                step,
                body,
                ..
            } => {
                // Loop-carried locals are defined on a previous iteration
                // of the body/step, which precedes the read in evaluation
                // order — so collect every definition inside the loop
                // before checking its reads.
                self.predefine(init);
                self.predefine(step);
                self.predefine(body);
                self.loop_depth += 1;
                self.stmts(init)?;
                if let Some(c) = cond {
                    self.expr(c)?;
                    if c.ty() == Ty::Void {
                        return Err(self.err("loop condition has void type"));
                    }
                }
                self.stmts(body)?;
                self.stmts(step)?;
                self.loop_depth -= 1;
            }
            HStmt::Return(e) => match (e, self.f.ret) {
                (None, Ty::Void) => {}
                (None, ret) => {
                    return Err(self.err(format!("bare return in function returning {ret:?}")))
                }
                (Some(_), Ty::Void) => return Err(self.err("return with value in void function")),
                (Some(e), ret) => {
                    self.expr(e)?;
                    if e.ty() != ret {
                        return Err(self.err(format!(
                            "return of {:?} in function returning {ret:?}",
                            e.ty()
                        )));
                    }
                }
            },
            HStmt::Break => {
                if self.loop_depth == 0 && self.switch_depth == 0 {
                    return Err(self.err("break outside loop or switch"));
                }
            }
            HStmt::Continue => {
                if self.loop_depth == 0 {
                    return Err(self.err("continue outside loop"));
                }
            }
            HStmt::Switch {
                scrut,
                cases,
                default,
            } => {
                self.expr(scrut)?;
                if !scrut.ty().is_int() {
                    return Err(self.err(format!(
                        "switch scrutinee has non-integer type {:?}",
                        scrut.ty()
                    )));
                }
                self.switch_depth += 1;
                for (_, arm) in cases {
                    self.stmts(arm)?;
                }
                self.stmts(default)?;
                self.switch_depth -= 1;
            }
            HStmt::Block(b) => self.stmts(b)?,
        }
        Ok(())
    }

    /// Mark every local defined anywhere inside `body` (pre-pass for
    /// loop-carried definitions).
    fn predefine(&mut self, body: &[HStmt]) {
        for s in body {
            match s {
                HStmt::DeclLocal { id, .. } if (*id as usize) < self.defined.len() => {
                    self.defined[*id as usize] = true;
                }
                HStmt::Assign {
                    lhs: HLval::Local(id),
                    ..
                } if (*id as usize) < self.defined.len() => {
                    self.defined[*id as usize] = true;
                }
                HStmt::If(_, a, b) => {
                    self.predefine(a);
                    self.predefine(b);
                }
                HStmt::Loop {
                    init, step, body, ..
                } => {
                    self.predefine(init);
                    self.predefine(step);
                    self.predefine(body);
                }
                HStmt::Switch { cases, default, .. } => {
                    for (_, arm) in cases {
                        self.predefine(arm);
                    }
                    self.predefine(default);
                }
                HStmt::Block(b) => self.predefine(b),
                _ => {}
            }
        }
        // AssignExpr nested in expressions also defines locals.
        let mut body_vec = body.to_vec();
        let defined = &mut self.defined;
        crate::passes::visit_exprs_mut(&mut body_vec, &mut |e| {
            if let HExpr::AssignExpr { lhs, .. } = e {
                if let HLval::Local(id) = lhs.as_ref() {
                    if (*id as usize) < defined.len() {
                        defined[*id as usize] = true;
                    }
                }
            }
        });
    }

    fn local_ty(&self, id: u32) -> Result<Ty, VerifyError> {
        self.f
            .locals
            .get(id as usize)
            .map(|(_, t)| *t)
            .ok_or_else(|| self.err(format!("local index {id} out of range")))
    }

    fn lval(&mut self, l: &HLval) -> Result<Ty, VerifyError> {
        match l {
            HLval::Local(id) => self.local_ty(*id),
            HLval::Global(id) => self
                .p
                .globals
                .get(*id as usize)
                .map(|g| g.ty)
                .ok_or_else(|| self.err(format!("global index {id} out of range"))),
            HLval::Elem { array, idx } => self.elem(*array, idx),
        }
    }

    /// Check an array access (shared by loads and stores); returns the
    /// promoted element type.
    fn elem(&mut self, array: u32, idx: &[HExpr]) -> Result<Ty, VerifyError> {
        let a = self
            .p
            .arrays
            .get(array as usize)
            .ok_or_else(|| self.err(format!("array index {array} out of range")))?;
        if idx.len() != a.dims.len() {
            return Err(self.err(format!(
                "array '{}' has {} dimensions but {} indices",
                a.name,
                a.dims.len(),
                idx.len()
            )));
        }
        for e in idx {
            self.expr(e)?;
            if !matches!(e.ty(), Ty::I32 { .. }) {
                return Err(self.err(format!(
                    "array '{}' indexed with non-i32 type {:?}",
                    a.name,
                    e.ty()
                )));
            }
        }
        Ok(a.elem.loaded_ty())
    }

    fn expr(&mut self, e: &HExpr) -> Result<(), VerifyError> {
        match e {
            HExpr::ConstI(_, t) => {
                if !t.is_int() {
                    return Err(self.err(format!("integer constant typed {t:?}")));
                }
            }
            HExpr::ConstF(_, t) => {
                if !t.is_float() {
                    return Err(self.err(format!("float constant typed {t:?}")));
                }
            }
            HExpr::Local(id, t) => {
                let slot_ty = self.local_ty(*id)?;
                if *t != slot_ty {
                    return Err(
                        self.err(format!("local {id} read as {t:?} but declared {slot_ty:?}"))
                    );
                }
                if !self.defined[*id as usize] {
                    return Err(self.err(format!(
                        "local {id} '{}' read before any definition",
                        self.f.locals[*id as usize].0
                    )));
                }
            }
            HExpr::Global(id, t) => {
                let g = self
                    .p
                    .globals
                    .get(*id as usize)
                    .ok_or_else(|| self.err(format!("global index {id} out of range")))?;
                if *t != g.ty {
                    return Err(self.err(format!(
                        "global '{}' read as {t:?} but declared {:?}",
                        g.name, g.ty
                    )));
                }
            }
            HExpr::Elem { array, idx, ty } => {
                let loaded = self.elem(*array, idx)?;
                if *ty != loaded {
                    return Err(self.err(format!(
                        "array element load typed {ty:?} but elements promote to {loaded:?}"
                    )));
                }
            }
            HExpr::Unary(op, a, t) => {
                self.expr(a)?;
                match op {
                    HUnOp::Neg => {
                        if a.ty() != *t {
                            return Err(self.err(format!("negation of {:?} typed {t:?}", a.ty())));
                        }
                    }
                    HUnOp::Not => {
                        if *t != Ty::INT {
                            return Err(self.err(format!("logical not typed {t:?}, not int")));
                        }
                        if a.ty() == Ty::Void {
                            return Err(self.err("logical not of void"));
                        }
                    }
                    HUnOp::BitNot => {
                        if !t.is_int() || a.ty() != *t {
                            return Err(
                                self.err(format!("bitwise not of {:?} typed {t:?}", a.ty()))
                            );
                        }
                    }
                }
            }
            HExpr::Binary(op, a, b, t) => {
                self.expr(a)?;
                self.expr(b)?;
                if *t == Ty::Void {
                    return Err(self.err("binary op typed void"));
                }
                // Shifts keep the left operand's type; sema coerces the
                // shift amount to plain int (C semantics).
                let expect_b = if matches!(op, HBinOp::Shl | HBinOp::Shr) {
                    Ty::INT
                } else {
                    *t
                };
                if a.ty() != *t || b.ty() != expect_b {
                    return Err(self.err(format!(
                        "binary {op:?} typed {t:?} with operands {:?} and {:?}",
                        a.ty(),
                        b.ty()
                    )));
                }
                let int_only = matches!(
                    op,
                    HBinOp::Rem
                        | HBinOp::BitAnd
                        | HBinOp::BitOr
                        | HBinOp::BitXor
                        | HBinOp::Shl
                        | HBinOp::Shr
                );
                if int_only && !t.is_int() {
                    return Err(self.err(format!("integer-only op {op:?} typed {t:?}")));
                }
            }
            HExpr::Cmp(_, a, b, t) => {
                self.expr(a)?;
                self.expr(b)?;
                if *t == Ty::Void {
                    return Err(self.err("comparison of void operands"));
                }
                if a.ty() != *t || b.ty() != *t {
                    return Err(self.err(format!(
                        "comparison annotated {t:?} with operands {:?} and {:?}",
                        a.ty(),
                        b.ty()
                    )));
                }
            }
            HExpr::And(a, b) | HExpr::Or(a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                if a.ty() == Ty::Void || b.ty() == Ty::Void {
                    return Err(self.err("short-circuit operand has void type"));
                }
            }
            HExpr::Ternary(c, a, b, t) => {
                self.expr(c)?;
                self.expr(a)?;
                self.expr(b)?;
                if c.ty() == Ty::Void {
                    return Err(self.err("ternary condition has void type"));
                }
                if a.ty() != *t || b.ty() != *t {
                    return Err(self.err(format!(
                        "ternary typed {t:?} with arms {:?} and {:?}",
                        a.ty(),
                        b.ty()
                    )));
                }
            }
            HExpr::Call {
                callee,
                args,
                ty,
                str_arg,
            } => {
                for a in args {
                    self.expr(a)?;
                }
                match callee {
                    Callee::Func(id) => {
                        let callee =
                            self.p.funcs.get(*id as usize).ok_or_else(|| {
                                self.err(format!("function index {id} out of range"))
                            })?;
                        if args.len() != callee.params.len() {
                            return Err(self.err(format!(
                                "call of '{}' with {} args for {} params",
                                callee.name,
                                args.len(),
                                callee.params.len()
                            )));
                        }
                        for (i, (a, pt)) in args.iter().zip(&callee.params).enumerate() {
                            if a.ty() != *pt {
                                return Err(self.err(format!(
                                    "call of '{}': arg {i} is {:?}, param is {pt:?}",
                                    callee.name,
                                    a.ty()
                                )));
                            }
                        }
                        if *ty != callee.ret {
                            return Err(self.err(format!(
                                "call of '{}' typed {ty:?} but it returns {:?}",
                                callee.name, callee.ret
                            )));
                        }
                    }
                    Callee::Intrinsic(intr) => {
                        if *ty != intr.ret_ty() {
                            return Err(self.err(format!(
                                "intrinsic {intr:?} call typed {ty:?}, returns {:?}",
                                intr.ret_ty()
                            )));
                        }
                        if *intr == Intrinsic::PrintStr {
                            match str_arg {
                                Some(sid) if (*sid as usize) < self.p.strings.len() => {}
                                Some(sid) => {
                                    return Err(self
                                        .err(format!("print_str string index {sid} out of range")))
                                }
                                None => return Err(self.err("print_str call without a string")),
                            }
                        }
                    }
                }
            }
            HExpr::Cast { to, from, expr } => {
                self.expr(expr)?;
                if *to == Ty::Void || *from == Ty::Void {
                    return Err(self.err("cast to or from void"));
                }
                if expr.ty() != *from {
                    return Err(self.err(format!(
                        "cast records source {from:?} but operand is {:?}",
                        expr.ty()
                    )));
                }
            }
            HExpr::AssignExpr { lhs, value, ty } => {
                let lty = self.lval(lhs)?;
                self.expr(value)?;
                if value.ty() != lty {
                    return Err(self.err(format!(
                        "assignment expression stores {:?} into {lty:?} destination",
                        value.ty()
                    )));
                }
                if *ty != lty {
                    return Err(self.err(format!(
                        "assignment expression typed {ty:?}, destination is {lty:?}"
                    )));
                }
                if let HLval::Local(id) = lhs.as_ref() {
                    self.defined[*id as usize] = true;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hir::{ConstVal, HGlobal};

    fn func(name: &str, ret: Ty, locals: Vec<(String, Ty)>, body: Vec<HStmt>) -> HFunc {
        HFunc {
            name: name.into(),
            params: vec![],
            ret,
            locals,
            body,
        }
    }

    fn prog(funcs: Vec<HFunc>) -> HProgram {
        HProgram {
            funcs,
            ..Default::default()
        }
    }

    #[test]
    fn accepts_real_program() {
        let src = "double A[8]; int n;\n\
                   double k(int m) {\n\
                     double s = 0.0;\n\
                     for (int i = 0; i < m; i++) { s = s + A[i]; }\n\
                     return s;\n\
                   }";
        let p = crate::analyze(&crate::parse(crate::lex(src).unwrap()).unwrap()).unwrap();
        verify_program(&p).unwrap();
    }

    #[test]
    fn rejects_local_out_of_range() {
        let p = prog(vec![func(
            "f",
            Ty::Void,
            vec![],
            vec![HStmt::Expr(HExpr::Local(3, Ty::INT))],
        )]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_type_disagreement() {
        let p = prog(vec![func(
            "f",
            Ty::Void,
            vec![("x".into(), Ty::F64)],
            vec![
                HStmt::DeclLocal {
                    id: 0,
                    init: Some(HExpr::ConstF(0.0, Ty::F64)),
                },
                HStmt::Expr(HExpr::Local(0, Ty::INT)),
            ],
        )]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("declared"), "{e}");
    }

    #[test]
    fn rejects_read_before_def() {
        let p = prog(vec![func(
            "f",
            Ty::INT,
            vec![("x".into(), Ty::INT)],
            vec![HStmt::Return(Some(HExpr::Local(0, Ty::INT)))],
        )]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("before any definition"), "{e}");
    }

    #[test]
    fn accepts_loop_carried_def() {
        // x is read at the top of the body, assigned at the bottom and
        // before the loop — the pre-pass must not flag the body read.
        let p = prog(vec![func(
            "f",
            Ty::Void,
            vec![("x".into(), Ty::INT)],
            vec![
                HStmt::DeclLocal {
                    id: 0,
                    init: Some(HExpr::ConstI(0, Ty::INT)),
                },
                HStmt::Loop {
                    kind: crate::hir::LoopKind::PreTest,
                    init: vec![],
                    cond: Some(HExpr::ConstI(0, Ty::INT)),
                    step: vec![],
                    body: vec![HStmt::Assign {
                        lhs: HLval::Local(0),
                        value: HExpr::Local(0, Ty::INT),
                    }],
                    meta: Default::default(),
                },
            ],
        )]);
        verify_program(&p).unwrap();
    }

    #[test]
    fn rejects_break_outside_loop() {
        let p = prog(vec![func("f", Ty::Void, vec![], vec![HStmt::Break])]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("break"), "{e}");
    }

    #[test]
    fn rejects_return_arity_mismatch() {
        let p = prog(vec![func("f", Ty::INT, vec![], vec![HStmt::Return(None)])]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("bare return"), "{e}");
    }

    #[test]
    fn rejects_bad_global_read_type() {
        let mut p = prog(vec![func(
            "f",
            Ty::Void,
            vec![],
            vec![HStmt::Expr(HExpr::Global(0, Ty::INT))],
        )]);
        p.globals.push(HGlobal {
            name: "g".into(),
            ty: Ty::F64,
            init: ConstVal::F(0.0),
        });
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("declared"), "{e}");
    }

    #[test]
    fn rejects_binary_operand_mismatch() {
        let p = prog(vec![func(
            "f",
            Ty::Void,
            vec![],
            vec![HStmt::Expr(HExpr::Binary(
                HBinOp::Add,
                Box::new(HExpr::ConstI(1, Ty::INT)),
                Box::new(HExpr::ConstF(1.0, Ty::F64)),
                Ty::F64,
            ))],
        )]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("binary"), "{e}");
    }

    #[test]
    fn rejects_cast_with_wrong_from() {
        let p = prog(vec![func(
            "f",
            Ty::Void,
            vec![],
            vec![HStmt::Expr(HExpr::Cast {
                to: Ty::F64,
                from: Ty::F32,
                expr: Box::new(HExpr::ConstI(0, Ty::INT)),
            })],
        )]);
        let e = verify_program(&p).unwrap_err();
        assert!(e.detail.contains("cast"), "{e}");
    }
}
