//! MiniC compiler errors.

use std::fmt;

/// Any error raised during preprocessing, parsing, transformation,
/// semantic analysis or code generation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical error.
    Lex {
        /// 1-based line.
        line: u32,
        /// Description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line.
        line: u32,
        /// Description.
        message: String,
    },
    /// A construct the target toolchain does not support (§3.1): the
    /// paper's Cheerp profile rejects exceptions and unions until the
    /// source transformer rewrites them.
    Unsupported {
        /// What was found.
        construct: String,
        /// Hint about the available transformation.
        hint: String,
    },
    /// Type error or other semantic problem.
    Sema {
        /// Description.
        message: String,
    },
    /// Code generation limit (e.g. heap exceeding the configured
    /// `cheerp-linear-heap-size`, §3.2).
    Codegen {
        /// Description.
        message: String,
    },
    /// An optimization pass broke an IR invariant (`--verify-ir`).
    Verify {
        /// The pass that broke the invariant.
        pass: String,
        /// Description of the broken invariant.
        message: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lex { line, message } => write!(f, "lex error (line {line}): {message}"),
            CompileError::Parse { line, message } => {
                write!(f, "parse error (line {line}): {message}")
            }
            CompileError::Unsupported { construct, hint } => {
                write!(f, "unsupported construct: {construct} ({hint})")
            }
            CompileError::Sema { message } => write!(f, "semantic error: {message}"),
            CompileError::Codegen { message } => write!(f, "codegen error: {message}"),
            CompileError::Verify { pass, message } => {
                write!(f, "IR verification failed (pass '{pass}'): {message}")
            }
        }
    }
}

impl std::error::Error for CompileError {}
