//! # wb-minic — the MiniC compiler
//!
//! A real multi-stage optimizing compiler for a pointer-free C subset,
//! standing in for Cheerp/Emscripten in the study (§2.1, §3):
//!
//! ```text
//!        #define-substituting preprocessor          (§3.2 input sizes)
//!   C source ──lex/parse──► AST
//!        source transformer: try/catch → error flags,
//!        union → bit-reinterpret intrinsics          (§3.1, Fig 3)
//!   AST ──sema/typecheck──► typed HIR
//!        optimization pipelines per -O level         (§2.1.2, Fig 1)
//!   HIR ──backends──► Wasm binary | MiniJS source | native-sim program
//! ```
//!
//! The optimization passes are genuine IR transforms whose target-dependent
//! interactions reproduce the paper's §4.2 findings mechanically:
//!
//! * `-vectorize-loops` (O2/O3/Ofast) marks eligible loops 4-wide. The
//!   **native** backend executes them with real 4-lane cost savings; the
//!   SIMD-less **Wasm/JS** MVP targets must strip-mine them back to
//!   scalar code with a trip-count guard and per-iteration lane
//!   bookkeeping — which is why `-Oz` (no
//!   vectorization) produces the *fastest* Wasm, the paper's headline
//!   counter-intuitive result.
//! * constant **rematerialization** (O2+) leaves small integral float
//!   constants inline, which the Wasm backend encodes as
//!   `i32.const; f64.convert_i32_s` (two stack ops) — exactly the Fig 8
//!   Covariance pattern; `-O1`'s hoisting pass converts once into a local.
//! * dead-global-store elimination runs at every level, except that
//!   `-Ofast` on the Wasm target skips it — **bug emulation** of the
//!   LLVM#37449-style miscompile the paper traces in Fig 7 (ADPCM).
//! * `-Ofast` fast-math only helps the native backend (Wasm has no
//!   relaxed-math instructions to emit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod backend;
mod compiler;
mod error;
pub mod hir;
mod layout;
mod lexer;
mod opt;
mod parser;
pub mod passes;
mod preprocess;
mod sema;
pub mod transform;
pub mod verify;

pub use compiler::{CompileOutput, Compiler, JsOutput, WasmOutput};
pub use error::CompileError;
pub use lexer::lex;
pub use opt::OptLevel;
pub use parser::parse;
pub use preprocess::preprocess;
pub use sema::analyze;
