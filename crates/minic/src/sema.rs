//! Semantic analysis: typed lowering from AST to HIR.
//!
//! Inserts every numeric conversion explicitly (usual arithmetic
//! conversions), resolves names, folds constant expressions used in array
//! dimensions / initializers / case labels, and enforces the MiniC subset
//! rules (global-only arrays, break-terminated switch arms, transformed
//! exceptions/unions).

use crate::ast::{self, Expr, Init, Item, Stmt, Target, TypeName, UnOp};
use crate::error::CompileError;
use crate::hir::*;
use std::collections::HashMap;

/// Analyze a (transformed) unit into an [`HProgram`].
pub fn analyze(unit: &ast::Unit) -> Result<HProgram, CompileError> {
    let mut sema = Sema::default();
    sema.collect(unit)?;
    sema.lower(unit)?;
    Ok(sema.program)
}

fn scalar_ty(t: &TypeName) -> Result<Ty, CompileError> {
    Ok(match t {
        TypeName::Int { unsigned } => Ty::I32 {
            unsigned: *unsigned,
        },
        // `char` promotes to int as a scalar.
        TypeName::Char { unsigned } => Ty::I32 {
            unsigned: *unsigned,
        },
        TypeName::Long { unsigned } => Ty::I64 {
            unsigned: *unsigned,
        },
        TypeName::Float => Ty::F32,
        TypeName::Double => Ty::F64,
        TypeName::Void => Ty::Void,
        TypeName::Union(tag) => {
            return Err(CompileError::Unsupported {
                construct: format!("union {tag}"),
                hint: "run the §3.1 source transformer first".into(),
            })
        }
    })
}

fn elem_ty(t: &TypeName) -> Result<ElemTy, CompileError> {
    Ok(match t {
        TypeName::Int { unsigned } => ElemTy::I32 {
            unsigned: *unsigned,
        },
        TypeName::Char { unsigned } => ElemTy::I8 {
            unsigned: *unsigned,
        },
        TypeName::Long { unsigned } => ElemTy::I64 {
            unsigned: *unsigned,
        },
        TypeName::Float => ElemTy::F32,
        TypeName::Double => ElemTy::F64,
        TypeName::Void | TypeName::Union(_) => {
            return Err(CompileError::Sema {
                message: format!("invalid array element type {t:?}"),
            })
        }
    })
}

/// The usual arithmetic conversions (C11 §6.3.1.8, reduced).
fn common_ty(a: Ty, b: Ty) -> Ty {
    use Ty::*;
    match (a, b) {
        (F64, _) | (_, F64) => F64,
        (F32, _) | (_, F32) => F32,
        (I64 { unsigned: ua }, I64 { unsigned: ub }) => I64 { unsigned: ua || ub },
        (I64 { unsigned }, _) | (_, I64 { unsigned }) => I64 { unsigned },
        (I32 { unsigned: ua }, I32 { unsigned: ub }) => I32 { unsigned: ua || ub },
        _ => Ty::INT,
    }
}

#[derive(Debug, Clone)]
struct FuncSig {
    id: FuncId,
    params: Vec<Ty>,
    ret: Ty,
}

#[derive(Default)]
struct Sema {
    program: HProgram,
    global_ids: HashMap<String, GlobalId>,
    array_ids: HashMap<String, ArrayId>,
    func_sigs: HashMap<String, FuncSig>,
}

struct FnCtx {
    locals: Vec<(String, Ty)>,
    /// Scope stack: each scope maps name → slot.
    scopes: Vec<HashMap<String, LocalId>>,
    ret: Ty,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<LocalId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Ty) -> LocalId {
        let id = self.locals.len() as LocalId;
        self.locals.push((name.to_string(), ty));
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), id);
        id
    }
}

impl Sema {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Sema {
            message: message.into(),
        })
    }

    // ---- pass 1: symbols -------------------------------------------------

    fn collect(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        for item in &unit.items {
            match item {
                Item::Global {
                    ty,
                    name,
                    dims,
                    init,
                    is_const,
                } => {
                    if dims.is_empty() {
                        let sty = scalar_ty(ty)?;
                        if sty == Ty::Void {
                            return self.err(format!("void global {name}"));
                        }
                        let init = match init {
                            Some(Init::Scalar(e)) => self.const_eval(e)?,
                            Some(Init::List(_)) => {
                                return self.err(format!("brace init on scalar {name}"))
                            }
                            None => ConstVal::I(0),
                        };
                        let id = self.program.globals.len() as GlobalId;
                        self.program.globals.push(HGlobal {
                            name: name.clone(),
                            ty: sty,
                            init,
                        });
                        if self.global_ids.insert(name.clone(), id).is_some() {
                            return self.err(format!("duplicate global {name}"));
                        }
                    } else {
                        let elem = elem_ty(ty)?;
                        let mut cdims = Vec::new();
                        for d in dims {
                            let v = self.const_eval(d)?.as_i64();
                            if v <= 0 || v > 1 << 28 {
                                return self.err(format!("bad array dimension {v} for {name}"));
                            }
                            cdims.push(v as u32);
                        }
                        let total: u64 = cdims.iter().map(|d| *d as u64).product();
                        let init = match init {
                            Some(init) => Some(self.flatten_init(init, total as usize, name)?),
                            None => None,
                        };
                        let id = self.program.arrays.len() as ArrayId;
                        self.program.arrays.push(HArray {
                            name: name.clone(),
                            elem,
                            dims: cdims,
                            init,
                            is_const: *is_const,
                        });
                        if self.array_ids.insert(name.clone(), id).is_some() {
                            return self.err(format!("duplicate array {name}"));
                        }
                    }
                }
                Item::Func {
                    ret, name, params, ..
                } => {
                    let sig = FuncSig {
                        id: self.func_sigs.len() as FuncId,
                        params: params
                            .iter()
                            .map(|(t, _)| scalar_ty(t))
                            .collect::<Result<_, _>>()?,
                        ret: scalar_ty(ret)?,
                    };
                    if Intrinsic::by_name(name).is_some() {
                        return self.err(format!("function {name} shadows a runtime intrinsic"));
                    }
                    if self.func_sigs.insert(name.clone(), sig).is_some() {
                        return self.err(format!("duplicate function {name}"));
                    }
                }
                Item::UnionDef { name, .. } => {
                    return Err(CompileError::Unsupported {
                        construct: format!("union {name}"),
                        hint: "run the §3.1 source transformer first".into(),
                    })
                }
            }
        }
        Ok(())
    }

    fn flatten_init(
        &self,
        init: &Init,
        total: usize,
        name: &str,
    ) -> Result<Vec<ConstVal>, CompileError> {
        let mut out = Vec::with_capacity(total);
        self.flatten_into(init, &mut out)?;
        if out.len() > total {
            return self.err(format!(
                "initializer for {name} has {} values but array holds {total}",
                out.len()
            ));
        }
        out.resize(total, ConstVal::I(0));
        Ok(out)
    }

    fn flatten_into(&self, init: &Init, out: &mut Vec<ConstVal>) -> Result<(), CompileError> {
        match init {
            Init::Scalar(e) => {
                out.push(self.const_eval(e)?);
                Ok(())
            }
            Init::List(items) => {
                for i in items {
                    self.flatten_into(i, out)?;
                }
                Ok(())
            }
        }
    }

    fn const_eval(&self, e: &Expr) -> Result<ConstVal, CompileError> {
        Ok(match e {
            Expr::Int(v) => ConstVal::I(*v),
            Expr::Float(v) => ConstVal::F(*v),
            Expr::Unary(UnOp::Neg, a) => match self.const_eval(a)? {
                ConstVal::I(v) => ConstVal::I(-v),
                ConstVal::F(v) => ConstVal::F(-v),
            },
            Expr::Unary(UnOp::BitNot, a) => ConstVal::I(!self.const_eval(a)?.as_i64()),
            Expr::Binary(op, a, b) => {
                let a = self.const_eval(a)?;
                let b = self.const_eval(b)?;
                use ast::BinOp::*;
                match (a, b) {
                    (ConstVal::I(x), ConstVal::I(y)) => ConstVal::I(match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        Div => {
                            if y == 0 {
                                return self.err("constant division by zero");
                            }
                            x.wrapping_div(y)
                        }
                        Mod => {
                            if y == 0 {
                                return self.err("constant modulo by zero");
                            }
                            x.wrapping_rem(y)
                        }
                        Shl => x.wrapping_shl(y as u32),
                        Shr => x.wrapping_shr(y as u32),
                        BitAnd => x & y,
                        BitOr => x | y,
                        BitXor => x ^ y,
                        Lt => (x < y) as i64,
                        Gt => (x > y) as i64,
                        Le => (x <= y) as i64,
                        Ge => (x >= y) as i64,
                        Eq => (x == y) as i64,
                        Ne => (x != y) as i64,
                        And => ((x != 0) && (y != 0)) as i64,
                        Or => ((x != 0) || (y != 0)) as i64,
                    }),
                    (x, y) => {
                        let (x, y) = (x.as_f64(), y.as_f64());
                        ConstVal::F(match op {
                            Add => x + y,
                            Sub => x - y,
                            Mul => x * y,
                            Div => x / y,
                            _ => return self.err("unsupported constant float op"),
                        })
                    }
                }
            }
            Expr::Cast(ty, a) => {
                let v = self.const_eval(a)?;
                match scalar_ty(ty)? {
                    Ty::F32 | Ty::F64 => ConstVal::F(v.as_f64()),
                    Ty::I32 { .. } => ConstVal::I(v.as_i64() as i32 as i64),
                    Ty::I64 { .. } => ConstVal::I(v.as_i64()),
                    Ty::Void => return self.err("cast to void in constant"),
                }
            }
            other => return self.err(format!("not a constant expression: {other:?}")),
        })
    }

    // ---- pass 2: bodies ---------------------------------------------------

    fn lower(&mut self, unit: &ast::Unit) -> Result<(), CompileError> {
        for item in &unit.items {
            if let Item::Func {
                ret,
                name,
                params,
                body,
            } = item
            {
                let ret = scalar_ty(ret)?;
                let mut ctx = FnCtx {
                    locals: Vec::new(),
                    scopes: vec![HashMap::new()],
                    ret,
                };
                for (pty, pname) in params {
                    ctx.declare(pname, scalar_ty(pty)?);
                }
                let body = self.stmts(&mut ctx, body)?;
                self.program.funcs.push(HFunc {
                    name: name.clone(),
                    params: ctx.locals[..params.len()].iter().map(|(_, t)| *t).collect(),
                    ret,
                    locals: ctx.locals,
                    body,
                });
            }
        }
        Ok(())
    }

    fn stmts(&mut self, ctx: &mut FnCtx, stmts: &[Stmt]) -> Result<Vec<HStmt>, CompileError> {
        let mut out = Vec::new();
        for s in stmts {
            out.push(self.stmt(ctx, s)?);
        }
        Ok(out)
    }

    fn scoped_stmts(
        &mut self,
        ctx: &mut FnCtx,
        stmts: &[Stmt],
    ) -> Result<Vec<HStmt>, CompileError> {
        ctx.scopes.push(HashMap::new());
        let r = self.stmts(ctx, stmts);
        ctx.scopes.pop();
        r
    }

    fn stmt(&mut self, ctx: &mut FnCtx, s: &Stmt) -> Result<HStmt, CompileError> {
        Ok(match s {
            Stmt::Decl {
                ty,
                name,
                dims,
                init,
            } => {
                if !dims.is_empty() {
                    return Err(CompileError::Unsupported {
                        construct: format!("local array {name}"),
                        hint: "MiniC arrays must be globals".into(),
                    });
                }
                let sty = scalar_ty(ty)?;
                if sty == Ty::Void {
                    return self.err(format!("void local {name}"));
                }
                let init = match init {
                    Some(e) => {
                        let he = self.expr(ctx, e)?;
                        Some(self.coerce(he, sty))
                    }
                    None => None,
                };
                let id = ctx.declare(name, sty);
                HStmt::DeclLocal { id, init }
            }
            Stmt::Expr(e) => match e {
                // Assignments (plain, compound, inc/dec) in statement
                // position lower to HStmt::Assign, avoiding AssignExpr's
                // re-load.
                Expr::Assign { .. } | Expr::IncDec { .. } => {
                    let he = self.expr(ctx, e)?;
                    match he {
                        HExpr::AssignExpr { lhs, value, .. } => HStmt::Assign {
                            lhs: *lhs,
                            value: *value,
                        },
                        other => HStmt::Expr(other),
                    }
                }
                other => {
                    let he = self.expr(ctx, other)?;
                    HStmt::Expr(he)
                }
            },
            Stmt::If(cond, then, els) => {
                let cond = self.condition(ctx, cond)?;
                HStmt::If(
                    cond,
                    self.scoped_stmts(ctx, then)?,
                    self.scoped_stmts(ctx, els)?,
                )
            }
            Stmt::While(cond, body) => HStmt::Loop {
                kind: LoopKind::PreTest,
                init: vec![],
                cond: Some(self.condition(ctx, cond)?),
                step: vec![],
                body: self.scoped_stmts(ctx, body)?,
                meta: LoopMeta::default(),
            },
            Stmt::DoWhile(body, cond) => HStmt::Loop {
                kind: LoopKind::PostTest,
                init: vec![],
                cond: Some(self.condition(ctx, cond)?),
                step: vec![],
                body: self.scoped_stmts(ctx, body)?,
                meta: LoopMeta::default(),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                ctx.scopes.push(HashMap::new());
                let init_stmts = match init {
                    Some(s) => vec![self.stmt(ctx, s)?],
                    None => vec![],
                };
                let cond = cond.as_ref().map(|c| self.condition(ctx, c)).transpose()?;
                let step_stmts = match step {
                    Some(e) => vec![self.stmt(ctx, &Stmt::Expr(e.clone()))?],
                    None => vec![],
                };
                let body = self.scoped_stmts(ctx, body)?;
                ctx.scopes.pop();
                HStmt::Loop {
                    kind: LoopKind::PreTest,
                    init: init_stmts,
                    cond,
                    step: step_stmts,
                    body,
                    meta: LoopMeta::default(),
                }
            }
            Stmt::Return(e) => match (e, ctx.ret) {
                (None, Ty::Void) => HStmt::Return(None),
                (None, _) => return self.err("missing return value"),
                (Some(_), Ty::Void) => return self.err("return with value in void function"),
                (Some(e), ret) => {
                    let he = self.expr(ctx, e)?;
                    HStmt::Return(Some(self.coerce(he, ret)))
                }
            },
            Stmt::Break => HStmt::Break,
            Stmt::Continue => HStmt::Continue,
            Stmt::Switch(scrut, arms) => {
                let scrut = self.expr(ctx, scrut)?;
                let scrut = self.coerce(scrut, Ty::INT);
                let mut cases: Vec<(i64, Vec<HStmt>)> = Vec::new();
                let mut default: Option<Vec<HStmt>> = None;
                // Empty arms share the next non-empty arm's body (the only
                // fallthrough C idiom MiniC accepts).
                let mut pending: Vec<Option<i64>> = Vec::new();
                for arm in arms {
                    let label = match &arm.value {
                        Some(v) => Some(self.const_eval(v)?.as_i64()),
                        None => None,
                    };
                    if arm.body.is_empty() {
                        pending.push(label);
                        continue;
                    }
                    if !arm_terminates(&arm.body) {
                        return Err(CompileError::Unsupported {
                            construct: "switch fallthrough".into(),
                            hint: "end every non-empty case with break or return".into(),
                        });
                    }
                    let mut body_ast = arm.body.clone();
                    if matches!(body_ast.last(), Some(Stmt::Break)) {
                        body_ast.pop();
                    }
                    let body = self.scoped_stmts(ctx, &body_ast)?;
                    for p in pending.drain(..) {
                        match p {
                            Some(v) => cases.push((v, body.clone())),
                            None => default = Some(body.clone()),
                        }
                    }
                    match label {
                        Some(v) => cases.push((v, body)),
                        None => {
                            if default.is_some() {
                                return self.err("duplicate default arm");
                            }
                            default = Some(body);
                        }
                    }
                }
                for p in pending {
                    match p {
                        Some(v) => cases.push((v, vec![])),
                        None => default = Some(vec![]),
                    }
                }
                HStmt::Switch {
                    scrut,
                    cases,
                    default: default.unwrap_or_default(),
                }
            }
            Stmt::Block(b) => HStmt::Block(self.scoped_stmts(ctx, b)?),
            // Multi-declarator groups share the enclosing scope.
            Stmt::Group(b) => HStmt::Block(self.stmts(ctx, b)?),
            Stmt::Try(..) | Stmt::Throw(_) => {
                return Err(CompileError::Unsupported {
                    construct: "exceptions".into(),
                    hint: "run the §3.1 source transformer first".into(),
                })
            }
        })
    }

    /// A condition: any scalar, normalized to i32 (non-zero = true).
    fn condition(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<HExpr, CompileError> {
        let he = self.expr(ctx, e)?;
        Ok(self.as_bool(he))
    }

    fn as_bool(&self, he: HExpr) -> HExpr {
        match he.ty() {
            Ty::I32 { .. } => he,
            Ty::I64 { unsigned } => HExpr::Cmp(
                HCmpOp::Ne,
                Box::new(he),
                Box::new(HExpr::ConstI(0, Ty::I64 { unsigned })),
                Ty::I64 { unsigned },
            ),
            Ty::F32 => HExpr::Cmp(
                HCmpOp::Ne,
                Box::new(he),
                Box::new(HExpr::ConstF(0.0, Ty::F32)),
                Ty::F32,
            ),
            Ty::F64 => HExpr::Cmp(
                HCmpOp::Ne,
                Box::new(he),
                Box::new(HExpr::ConstF(0.0, Ty::F64)),
                Ty::F64,
            ),
            Ty::Void => he, // sema rejects void conditions upstream via type errors
        }
    }

    fn coerce(&self, e: HExpr, to: Ty) -> HExpr {
        let from = e.ty();
        if from == to || to == Ty::Void {
            return e;
        }
        // Constant folding of conversions keeps the HIR clean.
        match (&e, to) {
            (HExpr::ConstI(v, _), Ty::F64) => return HExpr::ConstF(*v as f64, Ty::F64),
            (HExpr::ConstI(v, _), Ty::F32) => return HExpr::ConstF(*v as f32 as f64, Ty::F32),
            (HExpr::ConstI(v, _), t @ Ty::I32 { .. }) => return HExpr::ConstI(*v as i32 as i64, t),
            (HExpr::ConstI(v, _), t @ Ty::I64 { .. }) => return HExpr::ConstI(*v, t),
            (HExpr::ConstF(v, _), t @ Ty::F32) => return HExpr::ConstF(*v as f32 as f64, t),
            (HExpr::ConstF(v, _), t @ Ty::F64) => return HExpr::ConstF(*v, t),
            _ => {}
        }
        HExpr::Cast {
            to,
            from,
            expr: Box::new(e),
        }
    }

    fn lval(&mut self, ctx: &mut FnCtx, t: &Target) -> Result<(HLval, Ty), CompileError> {
        match t {
            Target::Name(n) => {
                if let Some(id) = ctx.lookup(n) {
                    let ty = ctx.locals[id as usize].1;
                    Ok((HLval::Local(id), ty))
                } else if let Some(&gid) = self.global_ids.get(n) {
                    Ok((HLval::Global(gid), self.program.globals[gid as usize].ty))
                } else if self.array_ids.contains_key(n) {
                    self.err(format!("cannot assign to array {n} as a whole"))
                } else {
                    self.err(format!("unknown variable {n}"))
                }
            }
            Target::Index(n, idxs) => {
                let &aid = self.array_ids.get(n).ok_or_else(|| CompileError::Sema {
                    message: format!("unknown array {n}"),
                })?;
                let arr = self.program.arrays[aid as usize].clone();
                if arr.is_const {
                    return self.err(format!("assignment to const array {n}"));
                }
                if idxs.len() != arr.dims.len() {
                    return self.err(format!(
                        "array {n} needs {} indices, got {}",
                        arr.dims.len(),
                        idxs.len()
                    ));
                }
                let idx = idxs
                    .iter()
                    .map(|i| {
                        let he = self.expr(ctx, i)?;
                        Ok(self.coerce(he, Ty::INT))
                    })
                    .collect::<Result<Vec<_>, CompileError>>()?;
                Ok((HLval::Elem { array: aid, idx }, arr.elem.loaded_ty()))
            }
            Target::Member(..) => Err(CompileError::Unsupported {
                construct: "union member".into(),
                hint: "run the §3.1 source transformer first".into(),
            }),
        }
    }

    fn expr(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<HExpr, CompileError> {
        Ok(match e {
            Expr::Int(v) => {
                // Literals outside i32 range type as long, like C.
                if *v > i32::MAX as i64 || *v < i32::MIN as i64 {
                    HExpr::ConstI(*v, Ty::I64 { unsigned: false })
                } else {
                    HExpr::ConstI(*v, Ty::INT)
                }
            }
            Expr::Float(v) => HExpr::ConstF(*v, Ty::F64),
            Expr::Str(_) => {
                return self.err("string literal outside print_str".to_string());
            }
            Expr::Name(n) => {
                if let Some(id) = ctx.lookup(n) {
                    HExpr::Local(id, ctx.locals[id as usize].1)
                } else if let Some(&gid) = self.global_ids.get(n) {
                    HExpr::Global(gid, self.program.globals[gid as usize].ty)
                } else {
                    return self.err(format!("unknown variable {n}"));
                }
            }
            Expr::Index(n, idxs) => {
                let &aid = self.array_ids.get(n).ok_or_else(|| CompileError::Sema {
                    message: format!("unknown array {n}"),
                })?;
                let arr = self.program.arrays[aid as usize].clone();
                if idxs.len() != arr.dims.len() {
                    return self.err(format!(
                        "array {n} needs {} indices, got {}",
                        arr.dims.len(),
                        idxs.len()
                    ));
                }
                let idx = idxs
                    .iter()
                    .map(|i| {
                        let he = self.expr(ctx, i)?;
                        Ok(self.coerce(he, Ty::INT))
                    })
                    .collect::<Result<Vec<_>, CompileError>>()?;
                HExpr::Elem {
                    array: aid,
                    idx,
                    ty: arr.elem.loaded_ty(),
                }
            }
            Expr::Call(name, args) => self.call(ctx, name, args)?,
            Expr::Unary(op, a) => {
                let ha = self.expr(ctx, a)?;
                match op {
                    UnOp::Neg => {
                        let ty = match ha.ty() {
                            t if t.is_float() => t,
                            Ty::I64 { .. } => Ty::I64 { unsigned: false },
                            _ => Ty::INT,
                        };
                        let ha = self.coerce(ha, ty);
                        match ha {
                            HExpr::ConstI(v, t) => HExpr::ConstI(v.wrapping_neg(), t),
                            HExpr::ConstF(v, t) => HExpr::ConstF(-v, t),
                            other => HExpr::Unary(HUnOp::Neg, Box::new(other), ty),
                        }
                    }
                    UnOp::Not => {
                        let b = self.as_bool(ha);
                        HExpr::Unary(HUnOp::Not, Box::new(b), Ty::INT)
                    }
                    UnOp::BitNot => {
                        let ty = match ha.ty() {
                            Ty::I64 { unsigned } => Ty::I64 { unsigned },
                            Ty::I32 { unsigned } => Ty::I32 { unsigned },
                            _ => return self.err("~ on non-integer"),
                        };
                        HExpr::Unary(HUnOp::BitNot, Box::new(ha), ty)
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                use ast::BinOp::*;
                match op {
                    And => {
                        let ha = self.condition(ctx, a)?;
                        let hb = self.condition(ctx, b)?;
                        HExpr::And(Box::new(ha), Box::new(hb))
                    }
                    Or => {
                        let ha = self.condition(ctx, a)?;
                        let hb = self.condition(ctx, b)?;
                        HExpr::Or(Box::new(ha), Box::new(hb))
                    }
                    Lt | Gt | Le | Ge | Eq | Ne => {
                        let ha = self.expr(ctx, a)?;
                        let hb = self.expr(ctx, b)?;
                        let ty = common_ty(ha.ty(), hb.ty());
                        let ha = self.coerce(ha, ty);
                        let hb = self.coerce(hb, ty);
                        let cmp = match op {
                            Lt => HCmpOp::Lt,
                            Gt => HCmpOp::Gt,
                            Le => HCmpOp::Le,
                            Ge => HCmpOp::Ge,
                            Eq => HCmpOp::Eq,
                            Ne => HCmpOp::Ne,
                            _ => unreachable!(),
                        };
                        HExpr::Cmp(cmp, Box::new(ha), Box::new(hb), ty)
                    }
                    arith => {
                        let ha = self.expr(ctx, a)?;
                        let hb = self.expr(ctx, b)?;
                        let hop = match arith {
                            Add => HBinOp::Add,
                            Sub => HBinOp::Sub,
                            Mul => HBinOp::Mul,
                            Div => HBinOp::Div,
                            Mod => HBinOp::Rem,
                            BitAnd => HBinOp::BitAnd,
                            BitOr => HBinOp::BitOr,
                            BitXor => HBinOp::BitXor,
                            Shl => HBinOp::Shl,
                            Shr => HBinOp::Shr,
                            _ => unreachable!(),
                        };
                        // Shifts keep the left operand's type.
                        let ty = if matches!(hop, HBinOp::Shl | HBinOp::Shr) {
                            match ha.ty() {
                                t if t.is_int() => t,
                                _ => return self.err("shift on non-integer"),
                            }
                        } else {
                            common_ty(ha.ty(), hb.ty())
                        };
                        if matches!(hop, HBinOp::BitAnd | HBinOp::BitOr | HBinOp::BitXor)
                            && ty.is_float()
                        {
                            return self.err("bitwise op on float");
                        }
                        if hop == HBinOp::Rem && ty.is_float() {
                            return self.err("% on float (use fmod-free formulations)");
                        }
                        let rhs_ty = if matches!(hop, HBinOp::Shl | HBinOp::Shr) {
                            Ty::INT
                        } else {
                            ty
                        };
                        let ha = self.coerce(ha, ty);
                        let hb = self.coerce(hb, rhs_ty);
                        HExpr::Binary(hop, Box::new(ha), Box::new(hb), ty)
                    }
                }
            }
            Expr::Ternary(c, a, b) => {
                let hc = self.condition(ctx, c)?;
                let ha = self.expr(ctx, a)?;
                let hb = self.expr(ctx, b)?;
                let ty = common_ty(ha.ty(), hb.ty());
                HExpr::Ternary(
                    Box::new(hc),
                    Box::new(self.coerce(ha, ty)),
                    Box::new(self.coerce(hb, ty)),
                    ty,
                )
            }
            Expr::Cast(ty, a) => {
                let ha = self.expr(ctx, a)?;
                let to = scalar_ty(ty)?;
                self.coerce(ha, to)
            }
            Expr::Assign { target, op, value } => {
                let (lhs, lty) = self.lval(ctx, target)?;
                let rhs = self.expr(ctx, value)?;
                let value = match op {
                    None => self.coerce(rhs, lty),
                    Some(op) => {
                        // Desugar `x op= v` into `x = x op v`.
                        let load = self.load_lval(&lhs, lty);
                        let combined = Expr::Binary(
                            *op,
                            Box::new(Expr::Int(0)), // placeholder, replaced below
                            Box::new(Expr::Int(0)),
                        );
                        let _ = combined;
                        let hop = match op {
                            ast::BinOp::Add => HBinOp::Add,
                            ast::BinOp::Sub => HBinOp::Sub,
                            ast::BinOp::Mul => HBinOp::Mul,
                            ast::BinOp::Div => HBinOp::Div,
                            ast::BinOp::Mod => HBinOp::Rem,
                            ast::BinOp::BitAnd => HBinOp::BitAnd,
                            ast::BinOp::BitOr => HBinOp::BitOr,
                            ast::BinOp::BitXor => HBinOp::BitXor,
                            ast::BinOp::Shl => HBinOp::Shl,
                            ast::BinOp::Shr => HBinOp::Shr,
                            other => return self.err(format!("bad compound op {other:?}")),
                        };
                        let ty = if matches!(hop, HBinOp::Shl | HBinOp::Shr) {
                            lty
                        } else {
                            common_ty(lty, rhs.ty())
                        };
                        let rhs_ty = if matches!(hop, HBinOp::Shl | HBinOp::Shr) {
                            Ty::INT
                        } else {
                            ty
                        };
                        let lhs_conv = self.coerce(load, ty);
                        let rhs_conv = self.coerce(rhs, rhs_ty);
                        let combined =
                            HExpr::Binary(hop, Box::new(lhs_conv), Box::new(rhs_conv), ty);
                        self.coerce(combined, lty)
                    }
                };
                HExpr::AssignExpr {
                    lhs: Box::new(lhs),
                    value: Box::new(value),
                    ty: lty,
                }
            }
            Expr::IncDec { target, delta } => {
                let desugared = Expr::Assign {
                    target: target.clone(),
                    op: Some(ast::BinOp::Add),
                    value: Box::new(Expr::Int(*delta)),
                };
                self.expr(ctx, &desugared)?
            }
            Expr::Member(..) => {
                return Err(CompileError::Unsupported {
                    construct: "union member".into(),
                    hint: "run the §3.1 source transformer first".into(),
                })
            }
        })
    }

    fn load_lval(&self, lhs: &HLval, ty: Ty) -> HExpr {
        match lhs {
            HLval::Local(id) => HExpr::Local(*id, ty),
            HLval::Global(id) => HExpr::Global(*id, ty),
            HLval::Elem { array, idx } => HExpr::Elem {
                array: *array,
                idx: idx.clone(),
                ty,
            },
        }
    }

    fn call(&mut self, ctx: &mut FnCtx, name: &str, args: &[Expr]) -> Result<HExpr, CompileError> {
        if let Some(intr) = Intrinsic::by_name(name) {
            // print_str takes a literal string.
            if intr == Intrinsic::PrintStr {
                let [Expr::Str(s)] = args else {
                    return self.err("print_str takes one string literal");
                };
                let sid = self.program.strings.len() as StrId;
                self.program.strings.push(s.clone());
                return Ok(HExpr::Call {
                    callee: Callee::Intrinsic(intr),
                    args: vec![],
                    ty: Ty::Void,
                    str_arg: Some(sid),
                });
            }
            let param_tys: Vec<Ty> = match intr {
                Intrinsic::PrintI32 => vec![Ty::INT],
                Intrinsic::PrintI64 => vec![Ty::I64 { unsigned: false }],
                Intrinsic::PrintF64 => vec![Ty::F64],
                Intrinsic::Pow => vec![Ty::F64, Ty::F64],
                Intrinsic::F64Bits => vec![Ty::F64],
                Intrinsic::F64FromBits => vec![Ty::I64 { unsigned: false }],
                Intrinsic::F32Bits => vec![Ty::F32],
                Intrinsic::F32FromBits => vec![Ty::INT],
                _ => vec![Ty::F64],
            };
            if args.len() != param_tys.len() {
                return self.err(format!(
                    "{name} takes {} argument(s), got {}",
                    param_tys.len(),
                    args.len()
                ));
            }
            let hargs = args
                .iter()
                .zip(&param_tys)
                .map(|(a, t)| {
                    let he = self.expr(ctx, a)?;
                    Ok(self.coerce(he, *t))
                })
                .collect::<Result<Vec<_>, CompileError>>()?;
            return Ok(HExpr::Call {
                callee: Callee::Intrinsic(intr),
                args: hargs,
                ty: intr.ret_ty(),
                str_arg: None,
            });
        }
        let sig = self
            .func_sigs
            .get(name)
            .cloned()
            .ok_or_else(|| CompileError::Sema {
                message: format!("unknown function {name}"),
            })?;
        if args.len() != sig.params.len() {
            return self.err(format!(
                "{name} takes {} argument(s), got {}",
                sig.params.len(),
                args.len()
            ));
        }
        let hargs = args
            .iter()
            .zip(&sig.params)
            .map(|(a, t)| {
                let he = self.expr(ctx, a)?;
                Ok(self.coerce(he, *t))
            })
            .collect::<Result<Vec<_>, CompileError>>()?;
        Ok(HExpr::Call {
            callee: Callee::Func(sig.id),
            args: hargs,
            ty: sig.ret,
            str_arg: None,
        })
    }
}

/// True when a switch arm cannot fall through (ends with break/return).
fn arm_terminates(body: &[Stmt]) -> bool {
    matches!(body.last(), Some(Stmt::Break) | Some(Stmt::Return(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn an(src: &str) -> HProgram {
        analyze(&parse(lex(src).unwrap()).unwrap()).unwrap()
    }

    fn an_err(src: &str) -> CompileError {
        analyze(&parse(lex(src).unwrap()).unwrap()).unwrap_err()
    }

    #[test]
    fn lowers_kernel_with_casts() {
        let p = an("double A[4][4];\n\
                    void k(int n) {\n\
                      for (int i = 0; i < n; i++) A[i][i] = i / 2.0;\n\
                    }");
        assert_eq!(p.arrays.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.params, vec![Ty::INT]);
        // Body: one Loop whose assignment casts i (int) to double.
        let HStmt::Loop { body, .. } = &f.body[0] else {
            panic!("{:?}", f.body)
        };
        let HStmt::Assign { value, .. } = &body[0] else {
            panic!("{body:?}")
        };
        assert_eq!(value.ty(), Ty::F64);
    }

    #[test]
    fn usual_arithmetic_conversions() {
        let p = an("long x; int y; double d; void f() { d = x + y; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        // x + y promotes to i64, then casts to f64.
        let HExpr::Cast { from, to, .. } = value else {
            panic!("{value:?}")
        };
        assert_eq!(*from, Ty::I64 { unsigned: false });
        assert_eq!(*to, Ty::F64);
    }

    #[test]
    fn unsigned_propagates() {
        let p = an("unsigned int a; int b; int r; void f() { r = (a / b) > 3u; }");
        let text = format!("{:?}", p.funcs[0].body);
        assert!(text.contains("unsigned: true"), "{text}");
    }

    #[test]
    fn local_arrays_rejected() {
        assert!(matches!(
            an_err("void f() { int a[10]; }"),
            CompileError::Unsupported { .. }
        ));
    }

    #[test]
    fn const_array_writes_rejected() {
        assert!(matches!(
            an_err("const int t[2] = {1, 2}; void f() { t[0] = 5; }"),
            CompileError::Sema { .. }
        ));
    }

    #[test]
    fn switch_fallthrough_rejected_but_shared_labels_ok() {
        assert!(matches!(
            an_err("void f(int x) { switch (x) { case 0: x = 1; case 1: break; } }"),
            CompileError::Unsupported { .. }
        ));
        let p = an("int r; void f(int x) { switch (x) { case 0: case 1: r = 7; break; default: r = 9; break; } }");
        let HStmt::Switch { cases, default, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].1, cases[1].1);
        assert!(!default.is_empty());
    }

    #[test]
    fn intrinsics_resolve() {
        let p = an("double d; void f() { d = sqrt(d) + pow(d, 2.0); print_double(d); }");
        let text = format!("{:?}", p.funcs[0].body);
        assert!(text.contains("Sqrt"));
        assert!(text.contains("Pow"));
        assert!(text.contains("PrintF64"));
    }

    #[test]
    fn print_str_interned() {
        let p = an("void f() { print_str(\"done\"); }");
        assert_eq!(p.strings, vec!["done".to_string()]);
    }

    #[test]
    fn global_init_lists_flattened_and_padded() {
        let p = an("int t[2][3] = { {1, 2}, {4} };");
        let init = p.arrays[0].init.as_ref().unwrap();
        let vals: Vec<i64> = init.iter().map(|c| c.as_i64()).collect();
        // Brace-elision flattening: values fill row-major then pad.
        assert_eq!(vals, vec![1, 2, 4, 0, 0, 0]);
    }

    #[test]
    fn compound_assign_desugars() {
        let p = an("double s; void f(double x) { s += x * 2.0; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(value, HExpr::Binary(HBinOp::Add, ..)));
    }

    #[test]
    fn incdec_desugars_to_assignexpr() {
        let p = an("void f(int n) { for (int i = 0; i < n; i++) { } }");
        let HStmt::Loop { step, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        let text = format!("{step:?}");
        assert!(text.contains("Assign"), "{text}");
    }

    #[test]
    fn forward_calls_resolve() {
        let p = an("int f(int x) { return g(x) + 1; } int g(int x) { return x * 2; }");
        assert_eq!(p.funcs.len(), 2);
    }

    #[test]
    fn unknown_symbols_error() {
        assert!(matches!(
            an_err("void f() { x = 1; }"),
            CompileError::Sema { .. }
        ));
        assert!(matches!(
            an_err("void f() { g(); }"),
            CompileError::Sema { .. }
        ));
    }

    #[test]
    fn conditions_normalize_to_i32() {
        let p = an("double d; int r; void f() { if (d) r = 1; while (d - 1.0) r = 2; }");
        let HStmt::If(cond, ..) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(cond.ty(), Ty::INT);
    }

    #[test]
    fn large_literals_become_long() {
        let p = an("long x; void f() { x = 0x7fffffffffffffff; }");
        let HStmt::Assign { value, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(value.ty(), Ty::I64 { unsigned: false });
    }
}
