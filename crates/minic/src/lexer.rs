//! MiniC lexer.

use crate::error::CompileError;

/// A MiniC token.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // 1:1 with C lexemes.
pub enum Tok {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    CharLit(i64),
    Ident(String),
    // Keywords.
    KwInt,
    KwLong,
    KwChar,
    KwFloat,
    KwDouble,
    KwVoid,
    KwUnsigned,
    KwSigned,
    KwConst,
    KwStatic,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSwitch,
    KwCase,
    KwDefault,
    KwUnion,
    KwStruct,
    KwTry,
    KwCatch,
    KwThrow,
    KwSizeof,
    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Ellipsis,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Eof,
}

/// Token + 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Line number.
    pub line: u32,
}

/// Tokenize preprocessed MiniC source.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($t:expr) => {
            out.push(Token { tok: $t, line })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= chars.len() {
                    return Err(CompileError::Lex {
                        line,
                        message: "unterminated comment".into(),
                    });
                }
                i += 2;
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                if c == '0' && matches!(chars.get(i + 1), Some('x') | Some('X')) {
                    i += 2;
                    while i < chars.len() && chars[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text: String = chars[start + 2..i].iter().collect();
                    let v = i64::from_str_radix(&text, 16)
                        .or_else(|_| u64::from_str_radix(&text, 16).map(|u| u as i64))
                        .map_err(|_| CompileError::Lex {
                            line,
                            message: format!("bad hex literal 0x{text}"),
                        })?;
                    // Integer suffixes (u, l, ll, ull…) are consumed and ignored.
                    while matches!(chars.get(i), Some('u') | Some('U') | Some('l') | Some('L')) {
                        i += 1;
                    }
                    push!(Tok::IntLit(v));
                    continue;
                }
                while i < chars.len() {
                    match chars[i] {
                        '0'..='9' => i += 1,
                        '.' => {
                            is_float = true;
                            i += 1;
                        }
                        'e' | 'E' => {
                            is_float = true;
                            i += 1;
                            if matches!(chars.get(i), Some('+') | Some('-')) {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| CompileError::Lex {
                        line,
                        message: format!("bad float literal {text}"),
                    })?;
                    if matches!(chars.get(i), Some('f') | Some('F') | Some('l') | Some('L')) {
                        i += 1;
                    }
                    push!(Tok::FloatLit(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .or_else(|_| text.parse::<u64>().map(|u| u as i64))
                        .map_err(|_| CompileError::Lex {
                            line,
                            message: format!("bad int literal {text}"),
                        })?;
                    while matches!(chars.get(i), Some('u') | Some('U') | Some('l') | Some('L')) {
                        i += 1;
                    }
                    push!(Tok::IntLit(v));
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(CompileError::Lex {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            let esc = chars.get(i + 1).copied().unwrap_or('\\');
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '0' => '\0',
                                other => other,
                            });
                            i += 2;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                push!(Tok::StrLit(s));
            }
            '\'' => {
                i += 1;
                let v = match chars.get(i) {
                    Some('\\') => {
                        let esc = chars.get(i + 1).copied().unwrap_or('\\');
                        i += 2;
                        match esc {
                            'n' => '\n' as i64,
                            't' => '\t' as i64,
                            '0' => 0,
                            other => other as i64,
                        }
                    }
                    Some(&ch) => {
                        i += 1;
                        ch as i64
                    }
                    None => {
                        return Err(CompileError::Lex {
                            line,
                            message: "unterminated char literal".into(),
                        })
                    }
                };
                if chars.get(i) != Some(&'\'') {
                    return Err(CompileError::Lex {
                        line,
                        message: "unterminated char literal".into(),
                    });
                }
                i += 1;
                push!(Tok::CharLit(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                push!(match word.as_str() {
                    "int" => Tok::KwInt,
                    "long" => Tok::KwLong,
                    "char" => Tok::KwChar,
                    "float" => Tok::KwFloat,
                    "double" => Tok::KwDouble,
                    "void" => Tok::KwVoid,
                    "unsigned" => Tok::KwUnsigned,
                    "signed" => Tok::KwSigned,
                    "const" => Tok::KwConst,
                    "static" => Tok::KwStatic,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "do" => Tok::KwDo,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "switch" => Tok::KwSwitch,
                    "case" => Tok::KwCase,
                    "default" => Tok::KwDefault,
                    "union" => Tok::KwUnion,
                    "struct" => Tok::KwStruct,
                    "try" => Tok::KwTry,
                    "catch" => Tok::KwCatch,
                    "throw" => Tok::KwThrow,
                    "sizeof" => Tok::KwSizeof,
                    _ => Tok::Ident(word),
                });
            }
            _ => {
                let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
                let (tok, len) = if rest.starts_with("...") {
                    (Tok::Ellipsis, 3)
                } else if rest.starts_with("<<=") {
                    (Tok::ShlAssign, 3)
                } else if rest.starts_with(">>=") {
                    (Tok::ShrAssign, 3)
                } else if rest.starts_with("==") {
                    (Tok::EqEq, 2)
                } else if rest.starts_with("!=") {
                    (Tok::NotEq, 2)
                } else if rest.starts_with("<=") {
                    (Tok::Le, 2)
                } else if rest.starts_with(">=") {
                    (Tok::Ge, 2)
                } else if rest.starts_with("&&") {
                    (Tok::AndAnd, 2)
                } else if rest.starts_with("||") {
                    (Tok::OrOr, 2)
                } else if rest.starts_with("<<") {
                    (Tok::Shl, 2)
                } else if rest.starts_with(">>") {
                    (Tok::Shr, 2)
                } else if rest.starts_with("++") {
                    (Tok::PlusPlus, 2)
                } else if rest.starts_with("--") {
                    (Tok::MinusMinus, 2)
                } else if rest.starts_with("+=") {
                    (Tok::PlusAssign, 2)
                } else if rest.starts_with("-=") {
                    (Tok::MinusAssign, 2)
                } else if rest.starts_with("*=") {
                    (Tok::StarAssign, 2)
                } else if rest.starts_with("/=") {
                    (Tok::SlashAssign, 2)
                } else if rest.starts_with("%=") {
                    (Tok::PercentAssign, 2)
                } else if rest.starts_with("&=") {
                    (Tok::AmpAssign, 2)
                } else if rest.starts_with("|=") {
                    (Tok::PipeAssign, 2)
                } else if rest.starts_with("^=") {
                    (Tok::CaretAssign, 2)
                } else {
                    let single = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ';' => Tok::Semi,
                        ',' => Tok::Comma,
                        ':' => Tok::Colon,
                        '?' => Tok::Question,
                        '.' => Tok::Dot,
                        '=' => Tok::Assign,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '*' => Tok::Star,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '!' => Tok::Not,
                        '&' => Tok::Amp,
                        '|' => Tok::Pipe,
                        '^' => Tok::Caret,
                        '~' => Tok::Tilde,
                        other => {
                            return Err(CompileError::Lex {
                                line,
                                message: format!("unexpected character '{other}'"),
                            })
                        }
                    };
                    (single, 1)
                };
                push!(tok);
                i += len;
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn c_declaration() {
        assert_eq!(
            toks("double A[40][40];"),
            vec![
                Tok::KwDouble,
                Tok::Ident("A".into()),
                Tok::LBracket,
                Tok::IntLit(40),
                Tok::RBracket,
                Tok::LBracket,
                Tok::IntLit(40),
                Tok::RBracket,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(toks("0xffUL")[0], Tok::IntLit(255));
        assert_eq!(toks("1.5e3")[0], Tok::FloatLit(1500.0));
        assert_eq!(toks("2.0f")[0], Tok::FloatLit(2.0));
        assert_eq!(toks("'A'")[0], Tok::CharLit(65));
        assert_eq!(toks("0x8000000000000000")[0], Tok::IntLit(i64::MIN));
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a >>= b <<= c != d"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShrAssign,
                Tok::Ident("b".into()),
                Tok::ShlAssign,
                Tok::Ident("c".into()),
                Tok::NotEq,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_and_exception_tokens() {
        assert_eq!(
            toks("try { throw 1; } catch (...) {}"),
            vec![
                Tok::KwTry,
                Tok::LBrace,
                Tok::KwThrow,
                Tok::IntLit(1),
                Tok::Semi,
                Tok::RBrace,
                Tok::KwCatch,
                Tok::LParen,
                Tok::Ellipsis,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("/* x */ 1 // y"), vec![Tok::IntLit(1), Tok::Eof]);
    }
}
