//! Optimization levels (§2.1.2, Fig 1).

use std::fmt;

/// A `-O` level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Basic optimizations (`-globalopt` and friends).
    O1,
    /// The balanced default; the paper's baseline.
    O2,
    /// Everything in O2 plus compile-time-expensive passes
    /// (`-argpromotion`, wider inlining). `-O4` is treated as `-O3`
    /// (identical for Cheerp, §2.1.2).
    O3,
    /// Fastest-code mode: O3 plus fast-math.
    Ofast,
    /// Size-leaning O2 (drops `-libcalls-shrinkwrap`).
    Os,
    /// Smallest code: additionally drops `-vectorize-loops`.
    Oz,
}

impl OptLevel {
    /// The four levels the paper evaluates (§3.2).
    pub const EVALUATED: [OptLevel; 4] =
        [OptLevel::O1, OptLevel::O2, OptLevel::Ofast, OptLevel::Oz];

    /// All levels.
    pub const ALL: [OptLevel; 7] = [
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Ofast,
        OptLevel::Os,
        OptLevel::Oz,
    ];

    /// Command-line style name (`-O2` → `"O2"`).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::Ofast => "Ofast",
            OptLevel::Os => "Os",
            OptLevel::Oz => "Oz",
        }
    }

    /// Parse `"O2"` / `"-O2"` / `"o2"`.
    pub fn parse(s: &str) -> Option<OptLevel> {
        let s = s.trim_start_matches('-');
        Some(match s.to_ascii_lowercase().as_str() {
            "o0" => OptLevel::O0,
            "o1" => OptLevel::O1,
            "o2" => OptLevel::O2,
            "o3" | "o4" => OptLevel::O3,
            "ofast" => OptLevel::Ofast,
            "os" => OptLevel::Os,
            "oz" => OptLevel::Oz,
            _ => return None,
        })
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for l in OptLevel::ALL {
            assert_eq!(OptLevel::parse(l.name()), Some(l));
            assert_eq!(OptLevel::parse(&format!("-{}", l.name())), Some(l));
        }
        assert_eq!(OptLevel::parse("O4"), Some(OptLevel::O3));
        assert_eq!(OptLevel::parse("O9"), None);
    }

    #[test]
    fn display_is_flag_style() {
        assert_eq!(OptLevel::Ofast.to_string(), "-Ofast");
    }
}
