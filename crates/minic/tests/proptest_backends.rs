//! Differential randomized testing (deterministic, LCG-seeded):
//! randomly generated arithmetic programs must produce identical output
//! on the native evaluator, the Wasm VM and the MiniJS engine, at `-O0`
//! and `-O2`.
//!
//! The generator builds integer expression straight-line programs over a
//! few scalar variables, with guarded division so no backend traps.
//! Each case prints its seed on failure.

use std::collections::HashMap;
use wb_env::rng::Lcg;
use wb_jsvm::{JsVm, JsVmConfig};
use wb_minic::{Compiler, OptLevel};
use wb_wasm_vm::{HostCtx, HostFn, Instance, WasmVmConfig};

/// Expression AST over the variables `v0`..`v3` (int).
#[derive(Debug, Clone)]
enum IExpr {
    Const(i32),
    Var(u8),
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    /// Division guarded as `e / ((d | 1))`-style non-zero denominators.
    DivByOdd(Box<IExpr>, Box<IExpr>),
    Xor(Box<IExpr>, Box<IExpr>),
    Shl(Box<IExpr>, u8),
}

fn gen_iexpr(rng: &mut Lcg, depth: usize) -> IExpr {
    if depth == 0 || rng.chance(1, 4) {
        return if rng.chance(1, 2) {
            IExpr::Const(rng.range_i32(-1000, 1000))
        } else {
            IExpr::Var(rng.index(4) as u8)
        };
    }
    match rng.index(6) {
        0 => IExpr::Add(
            Box::new(gen_iexpr(rng, depth - 1)),
            Box::new(gen_iexpr(rng, depth - 1)),
        ),
        1 => IExpr::Sub(
            Box::new(gen_iexpr(rng, depth - 1)),
            Box::new(gen_iexpr(rng, depth - 1)),
        ),
        2 => IExpr::Mul(
            Box::new(gen_iexpr(rng, depth - 1)),
            Box::new(gen_iexpr(rng, depth - 1)),
        ),
        3 => IExpr::DivByOdd(
            Box::new(gen_iexpr(rng, depth - 1)),
            Box::new(gen_iexpr(rng, depth - 1)),
        ),
        4 => IExpr::Xor(
            Box::new(gen_iexpr(rng, depth - 1)),
            Box::new(gen_iexpr(rng, depth - 1)),
        ),
        _ => IExpr::Shl(Box::new(gen_iexpr(rng, depth - 1)), rng.index(8) as u8),
    }
}

fn to_c(e: &IExpr) -> String {
    match e {
        IExpr::Const(v) => format!("({v})"),
        IExpr::Var(i) => format!("v{i}"),
        IExpr::Add(a, b) => format!("({} + {})", to_c(a), to_c(b)),
        IExpr::Sub(a, b) => format!("({} - {})", to_c(a), to_c(b)),
        IExpr::Mul(a, b) => format!("({} * {})", to_c(a), to_c(b)),
        IExpr::DivByOdd(a, b) => format!("({} / (({} | 1)))", to_c(a), to_c(b)),
        IExpr::Xor(a, b) => format!("({} ^ {})", to_c(a), to_c(b)),
        IExpr::Shl(a, s) => format!("({} << {s})", to_c(a)),
    }
}

fn host_imports() -> HashMap<String, HostFn> {
    let mut m: HashMap<String, HostFn> = HashMap::new();
    m.insert(
        "env.print_i32".into(),
        Box::new(|ctx: &mut HostCtx, args: &[wb_wasm_vm::Value]| {
            ctx.output.push(args[0].as_i32().to_string());
            Ok(None)
        }),
    );
    m
}

fn run_everywhere(src: &str, level: OptLevel) -> (Vec<String>, Vec<String>, Vec<String>) {
    let c = Compiler::cheerp().opt_level(level);
    let native = c
        .compile_native(src)
        .expect("native compiles")
        .run("bench_main", &[])
        .expect("native runs");
    let wasm = c.compile_wasm(src).expect("wasm compiles");
    wb_wasm::validate(&wasm.module).expect("valid module");
    let mut inst = Instance::from_module(wasm.module, WasmVmConfig::reference(), host_imports())
        .expect("instantiates");
    inst.invoke("bench_main", &[]).expect("wasm runs");
    let js = c.compile_js(src).expect("js compiles");
    let mut vm = JsVm::new(JsVmConfig::reference());
    vm.load(&js.source)
        .unwrap_or_else(|e| panic!("js load: {e}\n{}", js.source));
    vm.call("bench_main", &[])
        .unwrap_or_else(|e| panic!("js run: {e}\n{}", js.source));
    (native.output, inst.output.clone(), vm.output.clone())
}

#[test]
fn int_expression_programs_agree() {
    for seed in 0..48u64 {
        let mut rng = Lcg::new(seed);
        let nexprs = 1 + rng.index(4);
        let exprs: Vec<IExpr> = (0..nexprs).map(|_| gen_iexpr(&mut rng, 4)).collect();
        let seeds: Vec<i32> = (0..4).map(|_| rng.range_i32(-100, 100)).collect();
        let mut src = String::new();
        for (i, s) in seeds.iter().enumerate() {
            src.push_str(&format!("int v{i} = {s};\n"));
        }
        src.push_str("void bench_main() {\n");
        for (i, e) in exprs.iter().enumerate() {
            // Feed results back into the variables so expressions chain.
            src.push_str(&format!("  v{} = {};\n", i % 4, to_c(e)));
        }
        for i in 0..4 {
            src.push_str(&format!("  print_int(v{i});\n"));
        }
        src.push_str("}\n");

        let (n0, w0, j0) = run_everywhere(&src, OptLevel::O0);
        assert_eq!(&n0, &w0, "seed {seed}: native vs wasm at O0\n{src}");
        assert_eq!(&n0, &j0, "seed {seed}: native vs js at O0\n{src}");
        let (n2, w2, j2) = run_everywhere(&src, OptLevel::O2);
        assert_eq!(&n2, &w2, "seed {seed}: native vs wasm at O2\n{src}");
        assert_eq!(&n2, &j2, "seed {seed}: native vs js at O2\n{src}");
        // Optimization must not change observable results.
        assert_eq!(&n0, &n2, "seed {seed}: O0 vs O2\n{src}");
    }
}

#[test]
fn loops_with_random_bounds_agree() {
    for seed in 0..24u64 {
        let mut rng = Lcg::new(1000 + seed);
        let bound = rng.range_i32(1, 60);
        let step = rng.range_i32(1, 4);
        let scale = rng.range_i32(-8, 8);
        let src = format!(
            "int acc;\n\
             void bench_main() {{\n\
               acc = 0;\n\
               for (int i = 0; i < {bound}; i += {step}) {{\n\
                 acc = acc * 3 + i * {scale};\n\
                 if (acc > 100000) acc = acc - 200000;\n\
                 if (acc < -100000) acc = acc + 200000;\n\
               }}\n\
               print_int(acc);\n\
             }}"
        );
        let (n, w, j) = run_everywhere(&src, OptLevel::O2);
        assert_eq!(&n, &w, "seed {seed}");
        assert_eq!(&n, &j, "seed {seed}");
    }
}

#[test]
fn unsigned_arithmetic_agrees() {
    for seed in 0..24u64 {
        let mut rng = Lcg::new(2000 + seed);
        let a = rng.next_u32();
        let b = 1 + rng.below(u32::MAX as u64 - 1) as u32;
        let src = format!(
            "unsigned int ua; unsigned int ub;\n\
             void bench_main() {{\n\
               ua = {a}u; ub = {b}u;\n\
               print_int((int)(ua / ub));\n\
               print_int((int)(ua % ub));\n\
               print_int((int)(ua >> 3));\n\
               print_int((int)(ua * ub));\n\
               print_int(ua > ub ? 1 : 0);\n\
             }}"
        );
        let (n, w, j) = run_everywhere(&src, OptLevel::O2);
        assert_eq!(&n, &w, "seed {seed}");
        assert_eq!(&n, &j, "seed {seed}");
    }
}

#[test]
fn i64_arithmetic_agrees() {
    let mut done = 0u32;
    let mut seed = 3000u64;
    while done < 24 {
        seed += 1;
        let mut rng = Lcg::new(seed);
        let a = rng.next_i64();
        let b = rng.next_i64();
        if b == 0 || (a == i64::MIN && b == -1) {
            continue;
        }
        done += 1;
        let src = format!(
            "long la; long lb;\n\
             void bench_main() {{\n\
               la = {a}; lb = {b};\n\
               print_long(la + lb);\n\
               print_long(la - lb);\n\
               print_long(la * lb);\n\
               print_long(la / lb);\n\
               print_long(la % lb);\n\
               print_long(la >> 7);\n\
               print_long((long)((unsigned long)la >> 9));\n\
               print_long(la ^ lb);\n\
               print_int(la < lb ? 1 : 0);\n\
             }}"
        );
        let c = Compiler::cheerp();
        let native = c
            .compile_native(&src)
            .unwrap()
            .run("bench_main", &[])
            .unwrap();
        let js = c.compile_js(&src).unwrap();
        let mut vm = JsVm::new(JsVmConfig::reference());
        vm.load(&js.source).unwrap();
        vm.call("bench_main", &[]).unwrap();
        assert_eq!(
            &native.output, &vm.output,
            "seed {seed}: src:\n{src}\njs:\n{}",
            js.source
        );
    }
}

// `print_long` needs the i64 host import; extend the map lazily for the
// wasm path of the differential tests above.
#[test]
fn i64_wasm_path_agrees_on_samples() {
    for (a, b) in [
        (1234567890123456789i64, 37i64),
        (-987654321987654321, 12345),
        (i64::MAX, 2),
        (i64::MIN + 1, -3),
    ] {
        let src = format!(
            "long la; long lb;\n\
             void bench_main() {{\n\
               la = {a}; lb = {b};\n\
               print_long(la * lb + (la / lb) - (la % lb));\n\
               print_long((la << 5) ^ (lb >> 2));\n\
             }}"
        );
        let c = Compiler::cheerp();
        let native = c
            .compile_native(&src)
            .unwrap()
            .run("bench_main", &[])
            .unwrap();
        let wasm = c.compile_wasm(&src).unwrap();
        let mut m: HashMap<String, HostFn> = HashMap::new();
        m.insert(
            "env.print_i64".into(),
            Box::new(|ctx: &mut HostCtx, args: &[wb_wasm_vm::Value]| {
                ctx.output.push(args[0].as_i64().to_string());
                Ok(None)
            }),
        );
        let mut inst = Instance::from_module(wasm.module, WasmVmConfig::reference(), m).unwrap();
        inst.invoke("bench_main", &[]).unwrap();
        assert_eq!(native.output, inst.output, "{src}");
    }
}
