//! Frontend edge cases: preprocessor, parser and sema behaviours the
//! corpus relies on but unit tests don't pin down.

use wb_minic::{analyze, lex, parse, preprocess, CompileError, Compiler, OptLevel};

fn compiles(src: &str) -> bool {
    Compiler::cheerp().compile_wasm(src).is_ok()
}

fn sema_err(src: &str) -> CompileError {
    match Compiler::cheerp().compile_wasm(src) {
        Err(e) => e,
        Ok(_) => panic!("expected failure:\n{src}"),
    }
}

#[test]
fn operator_precedence_matches_c() {
    // Each pair must evaluate identically under C precedence.
    let src = "void bench_main() {\n\
                 print_int(2 + 3 * 4);          // 14\n\
                 print_int(1 << 2 + 1);         // shift binds looser: 8\n\
                 print_int(7 & 3 == 3);         // == binds tighter: 7 & 1 = 1\n\
                 print_int(1 | 2 ^ 2 & 6);      // 1 | (2 ^ (2 & 6)) = 1\n\
                 print_int(10 - 4 - 3);         // left assoc: 3\n\
                 print_int(-2 * -3);            // unary: 6\n\
                 print_int(~0 + 1);             // 0\n\
                 print_int(1 < 2 == 4 > 3);     // 1\n\
               }";
    let native = Compiler::cheerp()
        .compile_native(src)
        .expect("compiles")
        .run("bench_main", &[])
        .expect("runs");
    assert_eq!(native.output, vec!["14", "8", "1", "1", "3", "6", "0", "1"]);
}

#[test]
fn preprocessor_arithmetic_in_dims() {
    let out = preprocess("#define N 8\nint a[N * 2 + 1];", &Default::default()).expect("ok");
    assert!(out.contains("int a[8 * 2 + 1];"));
    // Constant expressions in dims are folded by sema.
    let hir = analyze(&parse(lex(&out).expect("lex")).expect("parse")).expect("sema");
    assert_eq!(hir.arrays[0].dims, vec![17]);
}

#[test]
fn comma_declarations_and_mixed_scopes() {
    assert!(compiles(
        "int g1, g2;\n\
         void bench_main() {\n\
           int a = 1, b = 2, c;\n\
           c = a + b;\n\
           { int a = 10; c += a; }\n\
           g1 = c;\n\
           print_int(g1);\n\
         }"
    ));
}

#[test]
fn shadowing_resolves_innermost() {
    let src = "void bench_main() {\n\
                 int x = 1;\n\
                 { int x = 2; print_int(x); }\n\
                 print_int(x);\n\
                 for (int x = 9; x < 10; x++) print_int(x);\n\
               }";
    let out = Compiler::cheerp()
        .compile_native(src)
        .expect("compiles")
        .run("bench_main", &[])
        .expect("runs");
    assert_eq!(out.output, vec!["2", "1", "9"]);
}

#[test]
fn useful_error_messages() {
    match sema_err("void bench_main() { frob(); }") {
        CompileError::Sema { message } => assert!(message.contains("frob"), "{message}"),
        other => panic!("{other}"),
    }
    match sema_err("int a[4]; void bench_main() { a[0][1] = 1; }") {
        CompileError::Sema { message } => {
            assert!(message.contains("indices"), "{message}")
        }
        other => panic!("{other}"),
    }
    match sema_err("void bench_main() { int x[3]; }") {
        CompileError::Unsupported { construct, .. } => {
            assert!(construct.contains("local array"), "{construct}")
        }
        other => panic!("{other}"),
    }
}

#[test]
fn sema_rejects_type_abuse() {
    assert!(matches!(
        sema_err("double d; void bench_main() { d = d % 2.0; }"),
        CompileError::Sema { .. }
    ));
    assert!(matches!(
        sema_err("double d; void bench_main() { d = d & 1.0; }"),
        CompileError::Sema { .. }
    ));
    assert!(matches!(
        sema_err("int f() { return; } void bench_main() { }"),
        CompileError::Sema { .. }
    ));
    assert!(matches!(
        sema_err("void f() { return 1; } void bench_main() { }"),
        CompileError::Sema { .. }
    ));
}

#[test]
fn duplicate_symbols_rejected() {
    assert!(matches!(
        sema_err("int x; int x; void bench_main() { }"),
        CompileError::Sema { .. }
    ));
    assert!(matches!(
        sema_err("void f() { } void f() { } void bench_main() { }"),
        CompileError::Sema { .. }
    ));
    // Shadowing a runtime intrinsic is the §3.2 pre-compiled-library
    // conflict, reported as such.
    assert!(matches!(
        sema_err("double sqrt(double x) { return x; } void bench_main() { }"),
        CompileError::Sema { .. }
    ));
}

#[test]
fn char_literals_and_hex() {
    let src = "void bench_main() {\n\
                 print_int('A');\n\
                 print_int('\\n');\n\
                 print_int(0xff + 0x10);\n\
               }";
    let out = Compiler::cheerp()
        .compile_native(src)
        .expect("compiles")
        .run("bench_main", &[])
        .expect("runs");
    assert_eq!(out.output, vec!["65", "10", "271"]);
}

#[test]
fn all_seven_levels_compile_the_whole_corpus_frontend() {
    // Frontend + pipeline succeed for every benchmark at every level
    // (emission checked elsewhere; this pins the pass pipelines).
    for b in wb_benchmarks_corpus() {
        for level in OptLevel::ALL {
            let mut c = Compiler::cheerp().opt_level(level).heap_limit(256 << 20);
            for (k, v) in &b.1 {
                c = c.define(k, v.clone());
            }
            c.compile_wasm(&b.0)
                .unwrap_or_else(|e| panic!("{level}: {e}"));
        }
    }
}

/// A local mini-corpus to keep this test self-contained (the full corpus
/// is exercised in wb-benchmarks' integration tests).
fn wb_benchmarks_corpus() -> Vec<(String, Vec<(String, String)>)> {
    vec![
        (
            "#define N 8\ndouble A[N]; void bench_main() { for (int i = 0; i < N; i++) A[i] = i; print_double(A[N-1]); }".into(),
            vec![],
        ),
        (
            "int t[4] = {1, 2, 3, 4}; void bench_main() { int s = 0; for (int i = 0; i < 4; i++) s += t[i]; print_int(s); }".into(),
            vec![],
        ),
        (
            "long x; void bench_main() { x = 1; for (int i = 0; i < 40; i++) x = x * 3 + 1; print_long(x); }".into(),
            vec![],
        ),
    ]
}
