//! Differential testing: every program must produce byte-identical output
//! on all three backends (native evaluator, Wasm VM, MiniJS engine) at
//! matching optimization levels — the strongest correctness check the
//! compiler has.

use std::collections::HashMap;
use wb_jsvm::{JsVm, JsVmConfig};
use wb_minic::{Compiler, OptLevel};
use wb_wasm_vm::{HostCtx, HostFn, Instance, Value, WasmVmConfig};

/// Standard host imports for compiled modules: print functions and Math.
fn host_imports(strings: Vec<String>) -> HashMap<String, HostFn> {
    let mut m: HashMap<String, HostFn> = HashMap::new();
    m.insert(
        "env.print_i32".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            ctx.output.push(args[0].as_i32().to_string());
            Ok(None)
        }),
    );
    m.insert(
        "env.print_i64".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            ctx.output.push(args[0].as_i64().to_string());
            Ok(None)
        }),
    );
    m.insert(
        "env.print_f64".into(),
        Box::new(|ctx: &mut HostCtx, args: &[Value]| {
            let v = args[0].as_f64();
            let s = if v.is_nan() {
                "NaN".into()
            } else if v.is_infinite() {
                if v > 0.0 {
                    "Infinity".to_string()
                } else {
                    "-Infinity".to_string()
                }
            } else if v == v.trunc() && v.abs() < 1e21 {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            };
            ctx.output.push(s);
            Ok(None)
        }),
    );
    m.insert(
        "env.print_str".into(),
        Box::new(move |ctx: &mut HostCtx, args: &[Value]| {
            let id = args[0].as_i32() as usize;
            ctx.output
                .push(strings.get(id).cloned().unwrap_or_default());
            Ok(None)
        }),
    );
    for (name, f) in [
        ("math.exp", f64::exp as fn(f64) -> f64),
        ("math.log", f64::ln),
        ("math.sin", f64::sin),
        ("math.cos", f64::cos),
        ("math.tan", f64::tan),
        ("math.atan", f64::atan),
    ] {
        m.insert(
            name.into(),
            Box::new(move |_ctx: &mut HostCtx, args: &[Value]| {
                Ok(Some(Value::F64(f(args[0].as_f64()))))
            }),
        );
    }
    m.insert(
        "math.pow".into(),
        Box::new(|_ctx: &mut HostCtx, args: &[Value]| {
            Ok(Some(Value::F64(args[0].as_f64().powf(args[1].as_f64()))))
        }),
    );
    m
}

/// Run a program on all three backends and return the three output logs.
fn run_all(src: &str, level: OptLevel, entry: &str) -> (Vec<String>, Vec<String>, Vec<String>) {
    let compiler = Compiler::cheerp().opt_level(level);

    // Native.
    let native = compiler.compile_native(src).expect("native compile");
    let nout = native.run(entry, &[]).expect("native run");

    // Wasm.
    let wasm = compiler.compile_wasm(src).expect("wasm compile");
    wb_wasm::validate(&wasm.module).expect("module validates");
    let mut inst = Instance::from_module(
        wasm.module,
        WasmVmConfig::reference(),
        host_imports(wasm.strings),
    )
    .expect("instantiate");
    inst.invoke(entry, &[]).expect("wasm run");

    // JS.
    let js = compiler.compile_js(src).expect("js compile");
    let mut vm = JsVm::new(JsVmConfig::reference());
    vm.load(&js.source)
        .unwrap_or_else(|e| panic!("js load failed: {e}\n{}", js.source));
    vm.call(entry, &[])
        .unwrap_or_else(|e| panic!("js run failed: {e}\n{}", js.source));

    (nout.output, inst.output.clone(), vm.output.clone())
}

fn assert_all_equal(src: &str, entry: &str) {
    for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::Oz] {
        let (native, wasm, js) = run_all(src, level, entry);
        assert_eq!(native, wasm, "native vs wasm at {level:?}");
        assert_eq!(native, js, "native vs js at {level:?}");
        assert!(!native.is_empty(), "program must print something");
    }
}

#[test]
fn matrix_kernel_agrees() {
    assert_all_equal(
        "#define N 12\n\
         double A[N][N]; double B[N][N]; double C[N][N];\n\
         void main_test() {\n\
           for (int i = 0; i < N; i++)\n\
             for (int j = 0; j < N; j++) {\n\
               A[i][j] = (double)((i * j + 3) % 7) / 7.0;\n\
               B[i][j] = (double)((i - j) % 5) / 5.0;\n\
             }\n\
           for (int i = 0; i < N; i++)\n\
             for (int j = 0; j < N; j++) {\n\
               double s = 0.0;\n\
               for (int k = 0; k < N; k++) s += A[i][k] * B[k][j];\n\
               C[i][j] = s;\n\
             }\n\
           double check = 0.0;\n\
           for (int i = 0; i < N; i++)\n\
             for (int j = 0; j < N; j++) check += C[i][j];\n\
           print_double(check);\n\
         }",
        "main_test",
    );
}

#[test]
fn integer_and_unsigned_arithmetic_agrees() {
    assert_all_equal(
        "unsigned int state;\n\
         void main_test() {\n\
           state = 12345u;\n\
           int acc = 0;\n\
           for (int i = 0; i < 200; i++) {\n\
             state = state * 1103515245u + 12345u;\n\
             acc = acc ^ (int)(state >> 16);\n\
             acc = acc + (int)(state % 97u);\n\
           }\n\
           print_int(acc);\n\
           print_int((int)(state / 3u));\n\
         }",
        "main_test",
    );
}

#[test]
fn i64_arithmetic_agrees() {
    // Exercises the JS pair lowering: add/sub/mul/div/rem/shifts/compares.
    assert_all_equal(
        "long acc;\n\
         void main_test() {\n\
           acc = 0x123456789abcdef;\n\
           long x = acc;\n\
           for (int i = 0; i < 40; i++) {\n\
             x = x * 6364136223846793005 + 1442695040888963407;\n\
             acc = acc + (x >> 33);\n\
             if (x < 0) acc = acc - 1;\n\
           }\n\
           print_long(acc);\n\
           print_long(acc / 1000);\n\
           print_long(acc % 999983);\n\
           unsigned long u = (unsigned long)acc;\n\
           print_long((long)(u >> 7));\n\
         }",
        "main_test",
    );
}

#[test]
fn control_flow_agrees() {
    assert_all_equal(
        "int fib(int n) { if (n < 3) return 1; return fib(n - 1) + fib(n - 2); }\n\
         int classify(int op) {\n\
           switch (op) {\n\
             case 0: return 10;\n\
             case 1: case 2: return 20;\n\
             case 7: return 70;\n\
             default: return -1;\n\
           }\n\
         }\n\
         void main_test() {\n\
           print_int(fib(15));\n\
           for (int i = 0; i < 9; i++) print_int(classify(i));\n\
           int i = 0; int s = 0;\n\
           do { s += i * i; i++; } while (i < 10);\n\
           print_int(s);\n\
           int brk = 0;\n\
           for (int j = 0; j < 100; j++) {\n\
             if (j % 3 == 0) continue;\n\
             if (j > 20) break;\n\
             brk += j;\n\
           }\n\
           print_int(brk);\n\
         }",
        "main_test",
    );
}

#[test]
fn union_transform_agrees() {
    assert_all_equal(
        "union U { double d; long long ll; };\n\
         union U u;\n\
         void main_test() {\n\
           u.d = 1.5;\n\
           print_long(u.ll);\n\
           u.ll = 4611686018427387904;\n\
           print_double(u.d);\n\
         }",
        "main_test",
    );
}

#[test]
fn exception_transform_agrees() {
    assert_all_equal(
        "int ok;\n\
         void check(int x) {\n\
           try {\n\
             if (x < 0) throw 1;\n\
             ok = 1;\n\
           } catch (...) {\n\
             ok = 0;\n\
           }\n\
         }\n\
         void main_test() {\n\
           check(5); print_int(ok);\n\
           check(-5); print_int(ok);\n\
         }",
        "main_test",
    );
}

#[test]
fn math_intrinsics_agree() {
    assert_all_equal(
        "void main_test() {\n\
           double x = 2.0;\n\
           print_double(sqrt(x * 8.0));\n\
           print_double(fabs(-3.25));\n\
           print_double(floor(2.75) + ceil(2.25));\n\
           print_double(pow(2.0, 10.0));\n\
         }",
        "main_test",
    );
}

#[test]
fn char_arrays_agree() {
    assert_all_equal(
        "char buf[16];\n\
         unsigned char ubuf[16];\n\
         void main_test() {\n\
           for (int i = 0; i < 16; i++) { buf[i] = i * 17 - 100; ubuf[i] = i * 19 + 200; }\n\
           int s = 0; int us = 0;\n\
           for (int i = 0; i < 16; i++) { s += buf[i]; us += ubuf[i]; }\n\
           print_int(s);\n\
           print_int(us);\n\
         }",
        "main_test",
    );
}

#[test]
fn vectorized_o2_matches_scalar_oz() {
    // The unrolled lowering must not change results.
    let src = "#define N 103\n\
               double A[N]; double B[N];\n\
               void main_test() {\n\
                 for (int i = 0; i < N; i++) { A[i] = (double)i * 0.5; B[i] = (double)(N - i); }\n\
                 for (int i = 0; i < N; i++) A[i] = A[i] * 2.0 + B[i];\n\
                 double s = 0.0;\n\
                 for (int i = 0; i < N; i++) s += A[i];\n\
                 print_double(s);\n\
               }";
    let (n_o2, w_o2, j_o2) = run_all(src, OptLevel::O2, "main_test");
    let (n_oz, w_oz, j_oz) = run_all(src, OptLevel::Oz, "main_test");
    assert_eq!(n_o2, n_oz);
    assert_eq!(w_o2, w_oz);
    assert_eq!(j_o2, j_oz);
    assert_eq!(n_o2, w_o2);
    assert_eq!(n_o2, j_o2);
}

#[test]
fn global_initializers_agree() {
    assert_all_equal(
        "const int tab[3][4] = { {1, 2, 3, 4}, {5, 6}, {9, 10, 11, 12} };\n\
         long big[4] = { 1311768467463790320, -2, 3, 0 };\n\
         double dt[3] = { 0.5, -1.25, 1e10 };\n\
         void main_test() {\n\
           int s = 0;\n\
           for (int i = 0; i < 3; i++)\n\
             for (int j = 0; j < 4; j++) s += tab[i][j];\n\
           print_int(s);\n\
           long ls = 0;\n\
           for (int i = 0; i < 4; i++) ls = ls + big[i] / 16;\n\
           print_long(ls);\n\
           double ds = 0.0;\n\
           for (int i = 0; i < 3; i++) ds += dt[i];\n\
           print_double(ds);\n\
         }",
        "main_test",
    );
}

#[test]
fn ofast_agrees_with_itself_across_backends() {
    // -Ofast relaxes IEEE semantics, so it is compared across backends at
    // the same level (all three apply the same reciprocal rewrite), not
    // against -O2.
    let src = "#define N 50\n\
               double A[N];\n\
               void main_test() {\n\
                 for (int i = 0; i < N; i++) A[i] = (double)(i + 1) / 8.0;\n\
                 double s = 0.0;\n\
                 for (int i = 0; i < N; i++) s += A[i];\n\
                 print_double(s);\n\
               }";
    let (native, wasm, js) = run_all(src, OptLevel::Ofast, "main_test");
    assert_eq!(native, wasm);
    assert_eq!(native, js);
}
