//! # wb-wasm-vm — a tiered WebAssembly interpreter with virtual-time accounting
//!
//! Executes modules from `wb-wasm` with full MVP semantics (traps, two's
//! complement arithmetic, IEEE floats, bounds-checked linear memory) while
//! charging every retired instruction to the shared cost model from
//! `wb-env`. The VM mirrors the two-tier structure of the browser engines
//! in the paper (§4.4):
//!
//! * at instantiation every function is compiled by the **baseline** tier
//!   (cheap compile, slower code — "Liftoff"/"Baseline");
//! * functions whose hotness (calls + loop back-edges) crosses the
//!   engine's threshold **tier up** to the optimizing compiler at runtime
//!   ("TurboFan"/"Ion"), paying a compile cost proportional to their size;
//! * [`TierPolicy`](wb_env::TierPolicy) selects the Table 11 flag
//!   configurations: default, basic-only (`--liftoff --no-wasm-tier-up`)
//!   and optimizing-only (`--no-liftoff --no-wasm-tier-up`).
//!
//! Host (JavaScript) functions are reachable through imports; every
//! crossing charges the engine's JS↔Wasm context-switch cost, which the
//! §4.5 microbenchmark measures directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod classify;
mod engine;
mod exec;
mod fuse;
mod interp;
mod prep;
mod trap;
mod value;

pub use classify::{arith_kind, classify, ArithKind};
pub use engine::{ExecutionReport, HostCtx, HostFn, Instance, MemoryStats, WasmVmConfig};
pub use prep::{PreparedModule, SideTable, NO_PC};
pub use trap::Trap;
pub use value::Value;
