//! Superinstruction lowering: flat function bodies → fused micro-ops.
//!
//! The reference interpreter in `interp.rs` dispatches one [`Instr`] per
//! step over a tagged [`Value`](crate::Value) stack. This module lowers a
//! body once (per prepared module, lazily, on first fused execution) into
//! a stream of [`Mop`] micro-ops in which
//!
//! * common short sequences are **fused** into a single op
//!   (`local.get local.get binop local.set`, `const binop`,
//!   `cmp br_if`, `local.get load`, …) with immediates inlined,
//! * operand types are baked in at lowering time so execution runs over
//!   an **untagged `u64` stack** (i32 zero-extended, floats as raw bits),
//! * structured-control targets are pre-translated to micro-op indices.
//!
//! ## Why fusion can never span a branch target
//!
//! Every branch target in structured Wasm control flow is one of
//! `end+1` (forward branch / if-false without else / else-arm skip),
//! `else+1` (if-false with else) or `loop_opener+1` (back-edge). Each of
//! those pcs is immediately preceded by a control instruction (`end`,
//! `else`, `loop`) — and control instructions are never fused into a
//! group. So every jump target is automatically a group boundary and no
//! explicit leader analysis is required.
//!
//! ## Cost equivalence
//!
//! A fused op charges the **exact same virtual-cost sequence** as its
//! unfused constituents: the same per-tier op-class bumps (in the same
//! order relative to any trap), the same Table 12 arithmetic counts, and
//! the same step-budget consumption. Tier-up can only happen at function
//! entry and taken loop back-edges, and no fused group spans either, so
//! every constituent is charged at the tier the reference interpreter
//! would have used. See `DESIGN.md` § "Execution engine".

use crate::classify::ArithKind;
use crate::prep::{SideTable, NO_PC};
use crate::trap::Trap;
use crate::value::Value;
use wb_env::OpClass;
use wb_wasm::{Instr, Module, ValType};

/// Convert a tagged value to its untagged bit pattern (i32 zero-extended,
/// floats as IEEE bits).
#[inline]
pub(crate) fn value_bits(v: Value) -> u64 {
    match v {
        Value::I32(x) => x as u32 as u64,
        Value::I64(x) => x as u64,
        Value::F32(f) => f.to_bits() as u64,
        Value::F64(f) => f.to_bits(),
    }
}

/// Convert an untagged bit pattern back to a tagged value of type `t`.
#[inline]
pub(crate) fn bits_to_value(t: ValType, b: u64) -> Value {
    match t {
        ValType::I32 => Value::I32(b as u32 as i32),
        ValType::I64 => Value::I64(b as i64),
        ValType::F32 => Value::F32(f32::from_bits(b as u32)),
        ValType::F64 => Value::F64(f64::from_bits(b)),
    }
}

#[inline]
fn u_i32(v: i32) -> u64 {
    v as u32 as u64
}

#[inline]
fn b_i32(x: u64) -> i32 {
    x as u32 as i32
}

#[inline]
fn b_f32(x: u64) -> f32 {
    f32::from_bits(x as u32)
}

#[inline]
fn u_f32(v: f32) -> u64 {
    v.to_bits() as u64
}

/// Binary operators with type knowledge baked in, operating on untagged
/// bits. Semantics are bit-for-bit those of the corresponding reference
/// interpreter arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum BinOp {
    // i32 arithmetic / bitwise.
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,
    // i32 comparisons.
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    // i64 arithmetic / bitwise.
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,
    // i64 comparisons.
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    // f32.
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    // f64.
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,
}

macro_rules! i32_bin {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(i32, i32) -> i32 = $f;
        u_i32(f(b_i32($a), b_i32($b)))
    }};
}
macro_rules! i32_cmp {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(i32, i32) -> bool = $f;
        f(b_i32($a), b_i32($b)) as u64
    }};
}
macro_rules! i64_bin {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(i64, i64) -> i64 = $f;
        f($a as i64, $b as i64) as u64
    }};
}
macro_rules! i64_cmp {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(i64, i64) -> bool = $f;
        f($a as i64, $b as i64) as u64
    }};
}
macro_rules! f32_bin {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(f32, f32) -> f32 = $f;
        u_f32(f(b_f32($a), b_f32($b)))
    }};
}
macro_rules! f32_cmp {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(f32, f32) -> bool = $f;
        f(b_f32($a), b_f32($b)) as u64
    }};
}
macro_rules! f64_bin {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(f64, f64) -> f64 = $f;
        f(f64::from_bits($a), f64::from_bits($b)).to_bits()
    }};
}
macro_rules! f64_cmp {
    ($a:expr, $b:expr, $f:expr) => {{
        let f: fn(f64, f64) -> bool = $f;
        f(f64::from_bits($a), f64::from_bits($b)) as u64
    }};
}

impl BinOp {
    /// Lift a binary instruction, if it is one.
    pub(crate) fn of(i: &Instr) -> Option<BinOp> {
        use BinOp as B;
        Some(match i {
            Instr::I32Add => B::I32Add,
            Instr::I32Sub => B::I32Sub,
            Instr::I32Mul => B::I32Mul,
            Instr::I32DivS => B::I32DivS,
            Instr::I32DivU => B::I32DivU,
            Instr::I32RemS => B::I32RemS,
            Instr::I32RemU => B::I32RemU,
            Instr::I32And => B::I32And,
            Instr::I32Or => B::I32Or,
            Instr::I32Xor => B::I32Xor,
            Instr::I32Shl => B::I32Shl,
            Instr::I32ShrS => B::I32ShrS,
            Instr::I32ShrU => B::I32ShrU,
            Instr::I32Rotl => B::I32Rotl,
            Instr::I32Rotr => B::I32Rotr,
            Instr::I32Eq => B::I32Eq,
            Instr::I32Ne => B::I32Ne,
            Instr::I32LtS => B::I32LtS,
            Instr::I32LtU => B::I32LtU,
            Instr::I32GtS => B::I32GtS,
            Instr::I32GtU => B::I32GtU,
            Instr::I32LeS => B::I32LeS,
            Instr::I32LeU => B::I32LeU,
            Instr::I32GeS => B::I32GeS,
            Instr::I32GeU => B::I32GeU,
            Instr::I64Add => B::I64Add,
            Instr::I64Sub => B::I64Sub,
            Instr::I64Mul => B::I64Mul,
            Instr::I64DivS => B::I64DivS,
            Instr::I64DivU => B::I64DivU,
            Instr::I64RemS => B::I64RemS,
            Instr::I64RemU => B::I64RemU,
            Instr::I64And => B::I64And,
            Instr::I64Or => B::I64Or,
            Instr::I64Xor => B::I64Xor,
            Instr::I64Shl => B::I64Shl,
            Instr::I64ShrS => B::I64ShrS,
            Instr::I64ShrU => B::I64ShrU,
            Instr::I64Rotl => B::I64Rotl,
            Instr::I64Rotr => B::I64Rotr,
            Instr::I64Eq => B::I64Eq,
            Instr::I64Ne => B::I64Ne,
            Instr::I64LtS => B::I64LtS,
            Instr::I64LtU => B::I64LtU,
            Instr::I64GtS => B::I64GtS,
            Instr::I64GtU => B::I64GtU,
            Instr::I64LeS => B::I64LeS,
            Instr::I64LeU => B::I64LeU,
            Instr::I64GeS => B::I64GeS,
            Instr::I64GeU => B::I64GeU,
            Instr::F32Add => B::F32Add,
            Instr::F32Sub => B::F32Sub,
            Instr::F32Mul => B::F32Mul,
            Instr::F32Div => B::F32Div,
            Instr::F32Min => B::F32Min,
            Instr::F32Max => B::F32Max,
            Instr::F32Copysign => B::F32Copysign,
            Instr::F32Eq => B::F32Eq,
            Instr::F32Ne => B::F32Ne,
            Instr::F32Lt => B::F32Lt,
            Instr::F32Gt => B::F32Gt,
            Instr::F32Le => B::F32Le,
            Instr::F32Ge => B::F32Ge,
            Instr::F64Add => B::F64Add,
            Instr::F64Sub => B::F64Sub,
            Instr::F64Mul => B::F64Mul,
            Instr::F64Div => B::F64Div,
            Instr::F64Min => B::F64Min,
            Instr::F64Max => B::F64Max,
            Instr::F64Copysign => B::F64Copysign,
            Instr::F64Eq => B::F64Eq,
            Instr::F64Ne => B::F64Ne,
            Instr::F64Lt => B::F64Lt,
            Instr::F64Gt => B::F64Gt,
            Instr::F64Le => B::F64Le,
            Instr::F64Ge => B::F64Ge,
            _ => return None,
        })
    }

    /// Cost-model class — identical to `classify` on the source instr.
    #[inline]
    pub(crate) fn class(self) -> OpClass {
        use BinOp::*;
        match self {
            I32Add | I32Sub | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl
            | I32Rotr | I64Add | I64Sub | I64And | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU
            | I64Rotl | I64Rotr => OpClass::IntAlu,
            I32Mul | I64Mul => OpClass::IntMul,
            I32DivS | I32DivU | I32RemS | I32RemU | I64DivS | I64DivU | I64RemS | I64RemU => {
                OpClass::IntDiv
            }
            F32Add | F32Sub | F32Min | F32Max | F32Copysign | F64Add | F64Sub | F64Min | F64Max
            | F64Copysign => OpClass::FloatAlu,
            F32Mul | F64Mul => OpClass::FloatMul,
            F32Div | F64Div => OpClass::FloatDiv,
            _ => OpClass::Compare,
        }
    }

    /// Table 12 arithmetic kind — identical to `arith_kind` on the
    /// source instr.
    #[inline]
    pub(crate) fn arith(self) -> Option<ArithKind> {
        use BinOp::*;
        Some(match self {
            I32Add | I32Sub | I64Add | I64Sub | F32Add | F32Sub | F64Add | F64Sub => ArithKind::Add,
            I32Mul | I64Mul | F32Mul | F64Mul => ArithKind::Mul,
            I32DivS | I32DivU | I64DivS | I64DivU | F32Div | F64Div => ArithKind::Div,
            I32RemS | I32RemU | I64RemS | I64RemU => ArithKind::Rem,
            I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr | I64Shl | I64ShrS | I64ShrU
            | I64Rotl | I64Rotr => ArithKind::Shift,
            I32And | I64And => ArithKind::And,
            I32Or | I32Xor | I64Or | I64Xor => ArithKind::Or,
            _ => return None,
        })
    }

    /// Whether the result is an i32 — a prerequisite for fusing with a
    /// following `br_if` (which consumes an i32 condition).
    #[inline]
    pub(crate) fn result_is_i32(self) -> bool {
        use BinOp::*;
        !matches!(
            self,
            I64Add
                | I64Sub
                | I64Mul
                | I64DivS
                | I64DivU
                | I64RemS
                | I64RemU
                | I64And
                | I64Or
                | I64Xor
                | I64Shl
                | I64ShrS
                | I64ShrU
                | I64Rotl
                | I64Rotr
                | F32Add
                | F32Sub
                | F32Mul
                | F32Div
                | F32Min
                | F32Max
                | F32Copysign
                | F64Add
                | F64Sub
                | F64Mul
                | F64Div
                | F64Min
                | F64Max
                | F64Copysign
        )
    }

    /// Execute on untagged bits; bit-identical to the reference arm.
    #[inline]
    pub(crate) fn apply(self, a: u64, b: u64) -> Result<u64, Trap> {
        use crate::interp::{wasm_max_f32, wasm_max_f64, wasm_min_f32, wasm_min_f64};
        use BinOp::*;
        Ok(match self {
            I32Add => i32_bin!(a, b, i32::wrapping_add),
            I32Sub => i32_bin!(a, b, i32::wrapping_sub),
            I32Mul => i32_bin!(a, b, i32::wrapping_mul),
            I32DivS => {
                let (a, b) = (b_i32(a), b_i32(b));
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                if a == i32::MIN && b == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                u_i32(a.wrapping_div(b))
            }
            I32DivU => {
                let (a, b) = (a as u32, b as u32);
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                u_i32((a / b) as i32)
            }
            I32RemS => {
                let (a, b) = (b_i32(a), b_i32(b));
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                u_i32(a.wrapping_rem(b))
            }
            I32RemU => {
                let (a, b) = (a as u32, b as u32);
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                u_i32((a % b) as i32)
            }
            I32And => i32_bin!(a, b, |a, b| a & b),
            I32Or => i32_bin!(a, b, |a, b| a | b),
            I32Xor => i32_bin!(a, b, |a, b| a ^ b),
            I32Shl => i32_bin!(a, b, |a, b| a.wrapping_shl(b as u32)),
            I32ShrS => i32_bin!(a, b, |a, b| a.wrapping_shr(b as u32)),
            I32ShrU => i32_bin!(a, b, |a, b| ((a as u32).wrapping_shr(b as u32)) as i32),
            I32Rotl => i32_bin!(a, b, |a, b| a.rotate_left(b as u32 & 31)),
            I32Rotr => i32_bin!(a, b, |a, b| a.rotate_right(b as u32 & 31)),
            I32Eq => i32_cmp!(a, b, |a, b| a == b),
            I32Ne => i32_cmp!(a, b, |a, b| a != b),
            I32LtS => i32_cmp!(a, b, |a, b| a < b),
            I32LtU => i32_cmp!(a, b, |a, b| (a as u32) < (b as u32)),
            I32GtS => i32_cmp!(a, b, |a, b| a > b),
            I32GtU => i32_cmp!(a, b, |a, b| (a as u32) > (b as u32)),
            I32LeS => i32_cmp!(a, b, |a, b| a <= b),
            I32LeU => i32_cmp!(a, b, |a, b| (a as u32) <= (b as u32)),
            I32GeS => i32_cmp!(a, b, |a, b| a >= b),
            I32GeU => i32_cmp!(a, b, |a, b| (a as u32) >= (b as u32)),
            I64Add => i64_bin!(a, b, i64::wrapping_add),
            I64Sub => i64_bin!(a, b, i64::wrapping_sub),
            I64Mul => i64_bin!(a, b, i64::wrapping_mul),
            I64DivS => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                if a == i64::MIN && b == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                a.wrapping_div(b) as u64
            }
            I64DivU => {
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                a / b
            }
            I64RemS => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                a.wrapping_rem(b) as u64
            }
            I64RemU => {
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                a % b
            }
            I64And => a & b,
            I64Or => a | b,
            I64Xor => a ^ b,
            I64Shl => i64_bin!(a, b, |a, b| a.wrapping_shl(b as u32)),
            I64ShrS => i64_bin!(a, b, |a, b| a.wrapping_shr(b as u32)),
            I64ShrU => i64_bin!(a, b, |a, b| ((a as u64).wrapping_shr(b as u32)) as i64),
            I64Rotl => i64_bin!(a, b, |a, b| a.rotate_left(b as u32 & 63)),
            I64Rotr => i64_bin!(a, b, |a, b| a.rotate_right(b as u32 & 63)),
            I64Eq => i64_cmp!(a, b, |a, b| a == b),
            I64Ne => i64_cmp!(a, b, |a, b| a != b),
            I64LtS => i64_cmp!(a, b, |a, b| a < b),
            I64LtU => i64_cmp!(a, b, |a, b| (a as u64) < (b as u64)),
            I64GtS => i64_cmp!(a, b, |a, b| a > b),
            I64GtU => i64_cmp!(a, b, |a, b| (a as u64) > (b as u64)),
            I64LeS => i64_cmp!(a, b, |a, b| a <= b),
            I64LeU => i64_cmp!(a, b, |a, b| (a as u64) <= (b as u64)),
            I64GeS => i64_cmp!(a, b, |a, b| a >= b),
            I64GeU => i64_cmp!(a, b, |a, b| (a as u64) >= (b as u64)),
            F32Add => f32_bin!(a, b, |a, b| a + b),
            F32Sub => f32_bin!(a, b, |a, b| a - b),
            F32Mul => f32_bin!(a, b, |a, b| a * b),
            F32Div => f32_bin!(a, b, |a, b| a / b),
            F32Min => f32_bin!(a, b, wasm_min_f32),
            F32Max => f32_bin!(a, b, wasm_max_f32),
            F32Copysign => f32_bin!(a, b, f32::copysign),
            F32Eq => f32_cmp!(a, b, |a, b| a == b),
            F32Ne => f32_cmp!(a, b, |a, b| a != b),
            F32Lt => f32_cmp!(a, b, |a, b| a < b),
            F32Gt => f32_cmp!(a, b, |a, b| a > b),
            F32Le => f32_cmp!(a, b, |a, b| a <= b),
            F32Ge => f32_cmp!(a, b, |a, b| a >= b),
            F64Add => f64_bin!(a, b, |a, b| a + b),
            F64Sub => f64_bin!(a, b, |a, b| a - b),
            F64Mul => f64_bin!(a, b, |a, b| a * b),
            F64Div => f64_bin!(a, b, |a, b| a / b),
            F64Min => f64_bin!(a, b, wasm_min_f64),
            F64Max => f64_bin!(a, b, wasm_max_f64),
            F64Copysign => f64_bin!(a, b, f64::copysign),
            F64Eq => f64_cmp!(a, b, |a, b| a == b),
            F64Ne => f64_cmp!(a, b, |a, b| a != b),
            F64Lt => f64_cmp!(a, b, |a, b| a < b),
            F64Gt => f64_cmp!(a, b, |a, b| a > b),
            F64Le => f64_cmp!(a, b, |a, b| a <= b),
            F64Ge => f64_cmp!(a, b, |a, b| a >= b),
        })
    }
}

/// Unary operators (tests, bit counts, float unaries, conversions) on
/// untagged bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum UnOp {
    I32Eqz,
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I64Eqz,
    I64Clz,
    I64Ctz,
    I64Popcnt,
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
}

impl UnOp {
    /// Lift a unary instruction, if it is one.
    pub(crate) fn of(i: &Instr) -> Option<UnOp> {
        use UnOp as U;
        Some(match i {
            Instr::I32Eqz => U::I32Eqz,
            Instr::I32Clz => U::I32Clz,
            Instr::I32Ctz => U::I32Ctz,
            Instr::I32Popcnt => U::I32Popcnt,
            Instr::I64Eqz => U::I64Eqz,
            Instr::I64Clz => U::I64Clz,
            Instr::I64Ctz => U::I64Ctz,
            Instr::I64Popcnt => U::I64Popcnt,
            Instr::F32Abs => U::F32Abs,
            Instr::F32Neg => U::F32Neg,
            Instr::F32Ceil => U::F32Ceil,
            Instr::F32Floor => U::F32Floor,
            Instr::F32Trunc => U::F32Trunc,
            Instr::F32Nearest => U::F32Nearest,
            Instr::F32Sqrt => U::F32Sqrt,
            Instr::F64Abs => U::F64Abs,
            Instr::F64Neg => U::F64Neg,
            Instr::F64Ceil => U::F64Ceil,
            Instr::F64Floor => U::F64Floor,
            Instr::F64Trunc => U::F64Trunc,
            Instr::F64Nearest => U::F64Nearest,
            Instr::F64Sqrt => U::F64Sqrt,
            Instr::I32WrapI64 => U::I32WrapI64,
            Instr::I32TruncF32S => U::I32TruncF32S,
            Instr::I32TruncF32U => U::I32TruncF32U,
            Instr::I32TruncF64S => U::I32TruncF64S,
            Instr::I32TruncF64U => U::I32TruncF64U,
            Instr::I64ExtendI32S => U::I64ExtendI32S,
            Instr::I64ExtendI32U => U::I64ExtendI32U,
            Instr::I64TruncF32S => U::I64TruncF32S,
            Instr::I64TruncF32U => U::I64TruncF32U,
            Instr::I64TruncF64S => U::I64TruncF64S,
            Instr::I64TruncF64U => U::I64TruncF64U,
            Instr::F32ConvertI32S => U::F32ConvertI32S,
            Instr::F32ConvertI32U => U::F32ConvertI32U,
            Instr::F32ConvertI64S => U::F32ConvertI64S,
            Instr::F32ConvertI64U => U::F32ConvertI64U,
            Instr::F32DemoteF64 => U::F32DemoteF64,
            Instr::F64ConvertI32S => U::F64ConvertI32S,
            Instr::F64ConvertI32U => U::F64ConvertI32U,
            Instr::F64ConvertI64S => U::F64ConvertI64S,
            Instr::F64ConvertI64U => U::F64ConvertI64U,
            Instr::F64PromoteF32 => U::F64PromoteF32,
            Instr::I32ReinterpretF32 => U::I32ReinterpretF32,
            Instr::I64ReinterpretF64 => U::I64ReinterpretF64,
            Instr::F32ReinterpretI32 => U::F32ReinterpretI32,
            Instr::F64ReinterpretI64 => U::F64ReinterpretI64,
            _ => return None,
        })
    }

    /// Cost-model class — identical to `classify` on the source instr.
    #[inline]
    pub(crate) fn class(self) -> OpClass {
        use UnOp::*;
        match self {
            I32Eqz | I64Eqz => OpClass::Compare,
            I32Clz | I32Ctz | I32Popcnt | I64Clz | I64Ctz | I64Popcnt => OpClass::IntAlu,
            F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F64Abs | F64Neg
            | F64Ceil | F64Floor | F64Trunc | F64Nearest => OpClass::FloatAlu,
            F32Sqrt | F64Sqrt => OpClass::FloatDiv,
            _ => OpClass::Convert,
        }
    }

    /// Whether the result is an i32 (can feed a fused `br_if`).
    #[inline]
    pub(crate) fn result_is_i32(self) -> bool {
        use UnOp::*;
        matches!(
            self,
            I32Eqz
                | I64Eqz
                | I32Clz
                | I32Ctz
                | I32Popcnt
                | I32WrapI64
                | I32TruncF32S
                | I32TruncF32U
                | I32TruncF64S
                | I32TruncF64U
                | I32ReinterpretF32
        )
    }

    /// Execute on untagged bits; bit-identical to the reference arm.
    #[inline]
    pub(crate) fn apply(self, a: u64) -> Result<u64, Trap> {
        use crate::interp::{trunc_to_i32, trunc_to_i64, trunc_to_u32, trunc_to_u64};
        use UnOp::*;
        Ok(match self {
            I32Eqz => (b_i32(a) == 0) as u64,
            I32Clz => u_i32(b_i32(a).leading_zeros() as i32),
            I32Ctz => u_i32(b_i32(a).trailing_zeros() as i32),
            I32Popcnt => u_i32(b_i32(a).count_ones() as i32),
            I64Eqz => ((a as i64) == 0) as u64,
            I64Clz => (a as i64).leading_zeros() as u64,
            I64Ctz => (a as i64).trailing_zeros() as u64,
            I64Popcnt => (a as i64).count_ones() as u64,
            F32Abs => u_f32(b_f32(a).abs()),
            F32Neg => u_f32(-b_f32(a)),
            F32Ceil => u_f32(b_f32(a).ceil()),
            F32Floor => u_f32(b_f32(a).floor()),
            F32Trunc => u_f32(b_f32(a).trunc()),
            F32Nearest => u_f32(b_f32(a).round_ties_even()),
            F32Sqrt => u_f32(b_f32(a).sqrt()),
            F64Abs => f64::from_bits(a).abs().to_bits(),
            F64Neg => (-f64::from_bits(a)).to_bits(),
            F64Ceil => f64::from_bits(a).ceil().to_bits(),
            F64Floor => f64::from_bits(a).floor().to_bits(),
            F64Trunc => f64::from_bits(a).trunc().to_bits(),
            F64Nearest => f64::from_bits(a).round_ties_even().to_bits(),
            F64Sqrt => f64::from_bits(a).sqrt().to_bits(),
            I32WrapI64 => u_i32(a as i64 as i32),
            I32TruncF32S => u_i32(trunc_to_i32(b_f32(a) as f64)?),
            I32TruncF32U => u_i32(trunc_to_u32(b_f32(a) as f64)? as i32),
            I32TruncF64S => u_i32(trunc_to_i32(f64::from_bits(a))?),
            I32TruncF64U => u_i32(trunc_to_u32(f64::from_bits(a))? as i32),
            I64ExtendI32S => (b_i32(a) as i64) as u64,
            I64ExtendI32U => (b_i32(a) as u32 as i64) as u64,
            I64TruncF32S => trunc_to_i64(b_f32(a) as f64)? as u64,
            I64TruncF32U => trunc_to_u64(b_f32(a) as f64)?,
            I64TruncF64S => trunc_to_i64(f64::from_bits(a))? as u64,
            I64TruncF64U => trunc_to_u64(f64::from_bits(a))?,
            F32ConvertI32S => u_f32(b_i32(a) as f32),
            F32ConvertI32U => u_f32((b_i32(a) as u32) as f32),
            F32ConvertI64S => u_f32((a as i64) as f32),
            F32ConvertI64U => u_f32(a as f32),
            F32DemoteF64 => u_f32(f64::from_bits(a) as f32),
            F64ConvertI32S => (b_i32(a) as f64).to_bits(),
            F64ConvertI32U => ((b_i32(a) as u32) as f64).to_bits(),
            F64ConvertI64S => ((a as i64) as f64).to_bits(),
            F64ConvertI64U => (a as f64).to_bits(),
            F64PromoteF32 => (b_f32(a) as f64).to_bits(),
            I32ReinterpretF32 => a & 0xFFFF_FFFF,
            I64ReinterpretF64 => a,
            F32ReinterpretI32 => a & 0xFFFF_FFFF,
            F64ReinterpretI64 => a,
        })
    }
}

/// Memory-load flavor with the extension behaviour baked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum LoadKind {
    I32,
    I64,
    F32,
    F64,
    I32S8,
    I32U8,
    I32S16,
    I32U16,
    I64S8,
    I64U8,
    I64S16,
    I64U16,
    I64S32,
    I64U32,
}

impl LoadKind {
    /// Access width in bytes (also the trap's reported width).
    #[inline]
    pub(crate) fn width(self) -> u32 {
        use LoadKind::*;
        match self {
            I32S8 | I32U8 | I64S8 | I64U8 => 1,
            I32S16 | I32U16 | I64S16 | I64U16 => 2,
            I32 | F32 | I64S32 | I64U32 => 4,
            I64 | F64 => 8,
        }
    }
}

/// Memory-store flavor with the truncation behaviour baked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum StoreKind {
    I32,
    I64,
    F32,
    F64,
    I32As8,
    I32As16,
    I64As8,
    I64As16,
    I64As32,
}

impl StoreKind {
    /// Access width in bytes (also the trap's reported width).
    #[inline]
    pub(crate) fn width(self) -> u32 {
        use StoreKind::*;
        match self {
            I32As8 | I64As8 => 1,
            I32As16 | I64As16 => 2,
            I32 | F32 | I64As32 => 4,
            I64 | F64 => 8,
        }
    }
}

fn load_of(i: &Instr) -> Option<(LoadKind, u64)> {
    use LoadKind as L;
    Some(match i {
        Instr::I32Load(m) => (L::I32, m.offset as u64),
        Instr::I64Load(m) => (L::I64, m.offset as u64),
        Instr::F32Load(m) => (L::F32, m.offset as u64),
        Instr::F64Load(m) => (L::F64, m.offset as u64),
        Instr::I32Load8S(m) => (L::I32S8, m.offset as u64),
        Instr::I32Load8U(m) => (L::I32U8, m.offset as u64),
        Instr::I32Load16S(m) => (L::I32S16, m.offset as u64),
        Instr::I32Load16U(m) => (L::I32U16, m.offset as u64),
        Instr::I64Load8S(m) => (L::I64S8, m.offset as u64),
        Instr::I64Load8U(m) => (L::I64U8, m.offset as u64),
        Instr::I64Load16S(m) => (L::I64S16, m.offset as u64),
        Instr::I64Load16U(m) => (L::I64U16, m.offset as u64),
        Instr::I64Load32S(m) => (L::I64S32, m.offset as u64),
        Instr::I64Load32U(m) => (L::I64U32, m.offset as u64),
        _ => return None,
    })
}

fn store_of(i: &Instr) -> Option<(StoreKind, u64)> {
    use StoreKind as S;
    Some(match i {
        Instr::I32Store(m) => (S::I32, m.offset as u64),
        Instr::I64Store(m) => (S::I64, m.offset as u64),
        Instr::F32Store(m) => (S::F32, m.offset as u64),
        Instr::F64Store(m) => (S::F64, m.offset as u64),
        Instr::I32Store8(m) => (S::I32As8, m.offset as u64),
        Instr::I32Store16(m) => (S::I32As16, m.offset as u64),
        Instr::I64Store8(m) => (S::I64As8, m.offset as u64),
        Instr::I64Store16(m) => (S::I64As16, m.offset as u64),
        Instr::I64Store32(m) => (S::I64As32, m.offset as u64),
        _ => return None,
    })
}

fn local_get_of(i: &Instr) -> Option<u32> {
    match i {
        Instr::LocalGet(x) => Some(*x),
        _ => None,
    }
}

fn local_set_of(i: &Instr) -> Option<u32> {
    match i {
        Instr::LocalSet(x) => Some(*x),
        _ => None,
    }
}

fn const_bits_of(i: &Instr) -> Option<u64> {
    Some(match i {
        Instr::I32Const(v) => u_i32(*v),
        Instr::I64Const(v) => *v as u64,
        Instr::F32Const(f) => u_f32(*f),
        Instr::F64Const(f) => f.to_bits(),
        _ => None?,
    })
}

fn br_if_of(i: &Instr) -> Option<u32> {
    match i {
        Instr::BrIf(d) => Some(*d),
        _ => None,
    }
}

/// One micro-op. Singleton variants mirror [`Instr`] one-to-one (with
/// branch targets pre-translated to micro-op indices); the variants after
/// the marker comment are fused superinstructions.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub(crate) enum Mop {
    Unreachable,
    Nop,
    /// `after_end` = micro-op index just past the matching `end`.
    Block {
        after_end: u32,
        arity: u8,
    },
    Loop {
        after_end: u32,
    },
    /// `else_skip` = target when the condition is false and an `else`
    /// exists ([`NO_PC`] otherwise, in which case control jumps to
    /// `after_end` with the frame popped).
    If {
        after_end: u32,
        else_skip: u32,
        arity: u8,
    },
    Else,
    End,
    Br(u32),
    BrIf(u32),
    BrTable(Box<[u32]>, u32),
    Return,
    Call(u32),
    CallIndirect(u32),
    Drop,
    Select,
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet {
        idx: u32,
        ty: ValType,
    },
    Load {
        kind: LoadKind,
        offset: u64,
    },
    Store {
        kind: StoreKind,
        offset: u64,
    },
    MemorySize,
    MemoryGrow,
    Const(u64),
    Un(UnOp),
    Bin(BinOp),
    // ---- fused superinstructions ------------------------------------
    /// `local.get a; local.get b; binop`
    LLBin {
        a: u32,
        b: u32,
        op: BinOp,
    },
    /// `local.get a; local.get b; binop; local.set dst`
    LLBinSet {
        a: u32,
        b: u32,
        dst: u32,
        op: BinOp,
    },
    /// `local.get a; const c; binop`
    LCBin {
        a: u32,
        c: u64,
        op: BinOp,
    },
    /// `local.get a; const c; binop; local.set dst`
    LCBinSet {
        a: u32,
        c: u64,
        dst: u32,
        op: BinOp,
    },
    /// `local.get b; binop` (lhs already on the stack)
    LBin {
        b: u32,
        op: BinOp,
    },
    /// `const c; binop` (lhs already on the stack)
    CBin {
        c: u64,
        op: BinOp,
    },
    /// `const c; binop; local.set dst`
    CBinSet {
        c: u64,
        dst: u32,
        op: BinOp,
    },
    /// `binop; local.set dst` (both operands on the stack)
    BinSet {
        dst: u32,
        op: BinOp,
    },
    /// `const c; local.set dst`
    LConst {
        c: u64,
        dst: u32,
    },
    /// `local.get src; local.set dst`
    LocalCopy {
        src: u32,
        dst: u32,
    },
    /// `local.get a; local.get b; binop; br_if depth`
    LLCmpBr {
        a: u32,
        b: u32,
        op: BinOp,
        depth: u32,
    },
    /// `local.get a; const c; binop; br_if depth`
    LCCmpBr {
        a: u32,
        c: u64,
        op: BinOp,
        depth: u32,
    },
    /// `binop; br_if depth` (both operands on the stack)
    CmpBr {
        op: BinOp,
        depth: u32,
    },
    /// `local.get a; unop; br_if depth` (e.g. `i32.eqz; br_if`)
    LUnBr {
        a: u32,
        un: UnOp,
        depth: u32,
    },
    /// `unop; br_if depth`
    UnBr {
        un: UnOp,
        depth: u32,
    },
    /// `local.get a; load`
    LLoad {
        a: u32,
        kind: LoadKind,
        offset: u64,
    },
    /// `local.get a; local.get b; store` (a = address, b = value)
    LLStore {
        a: u32,
        b: u32,
        kind: StoreKind,
        offset: u64,
    },
}

impl Mop {
    /// Number of source instructions this micro-op retires (its
    /// step-budget consumption and constituent count). The interpreter
    /// arms inline these widths; tests use this to check they agree with
    /// the source body.
    #[allow(dead_code)]
    pub(crate) fn width(&self) -> u64 {
        use Mop::*;
        match self {
            LLBinSet { .. } | LCBinSet { .. } | LLCmpBr { .. } | LCCmpBr { .. } => 4,
            LLBin { .. } | LCBin { .. } | CBinSet { .. } | LUnBr { .. } | LLStore { .. } => 3,
            LBin { .. }
            | CBin { .. }
            | BinSet { .. }
            | LConst { .. }
            | LocalCopy { .. }
            | CmpBr { .. }
            | UnBr { .. }
            | LLoad { .. } => 2,
            _ => 1,
        }
    }
}

/// A function body lowered to micro-ops.
#[derive(Debug)]
pub(crate) struct FusedFunc {
    /// The micro-op stream; control targets are indices into this vec.
    pub(crate) code: Vec<Mop>,
}

/// Try to recognize a fused pattern starting at `w[0]`; returns the fused
/// op and the number of source instructions consumed.
pub(crate) fn match_fused(w: &[Instr]) -> Option<(Mop, usize)> {
    // Longest patterns first. Every constituent past the first is a
    // data/branch instruction, never a control opener/closer, so no group
    // can swallow a branch target (see module docs).
    if w.len() >= 4 {
        if let (Some(a), Some(op)) = (local_get_of(&w[0]), BinOp::of(&w[2])) {
            if let Some(b) = local_get_of(&w[1]) {
                if let Some(dst) = local_set_of(&w[3]) {
                    return Some((Mop::LLBinSet { a, b, dst, op }, 4));
                }
                if let Some(depth) = br_if_of(&w[3]) {
                    if op.result_is_i32() {
                        return Some((Mop::LLCmpBr { a, b, op, depth }, 4));
                    }
                }
            }
            if let Some(c) = const_bits_of(&w[1]) {
                if let Some(dst) = local_set_of(&w[3]) {
                    return Some((Mop::LCBinSet { a, c, dst, op }, 4));
                }
                if let Some(depth) = br_if_of(&w[3]) {
                    if op.result_is_i32() {
                        return Some((Mop::LCCmpBr { a, c, op, depth }, 4));
                    }
                }
            }
        }
    }
    if w.len() >= 3 {
        if let Some(a) = local_get_of(&w[0]) {
            if let Some(b) = local_get_of(&w[1]) {
                if let Some(op) = BinOp::of(&w[2]) {
                    return Some((Mop::LLBin { a, b, op }, 3));
                }
                if let Some((kind, offset)) = store_of(&w[2]) {
                    return Some((Mop::LLStore { a, b, kind, offset }, 3));
                }
            }
            if let Some(c) = const_bits_of(&w[1]) {
                if let Some(op) = BinOp::of(&w[2]) {
                    return Some((Mop::LCBin { a, c, op }, 3));
                }
            }
            if let Some(un) = UnOp::of(&w[1]) {
                if let Some(depth) = br_if_of(&w[2]) {
                    if un.result_is_i32() {
                        return Some((Mop::LUnBr { a, un, depth }, 3));
                    }
                }
            }
        }
        if let Some(c) = const_bits_of(&w[0]) {
            if let Some(op) = BinOp::of(&w[1]) {
                if let Some(dst) = local_set_of(&w[2]) {
                    return Some((Mop::CBinSet { c, dst, op }, 3));
                }
            }
        }
    }
    if w.len() >= 2 {
        if let Some(a) = local_get_of(&w[0]) {
            if let Some((kind, offset)) = load_of(&w[1]) {
                return Some((Mop::LLoad { a, kind, offset }, 2));
            }
            if let Some(dst) = local_set_of(&w[1]) {
                return Some((Mop::LocalCopy { src: a, dst }, 2));
            }
            if let Some(op) = BinOp::of(&w[1]) {
                return Some((Mop::LBin { b: a, op }, 2));
            }
        }
        if let Some(c) = const_bits_of(&w[0]) {
            if let Some(op) = BinOp::of(&w[1]) {
                return Some((Mop::CBin { c, op }, 2));
            }
            if let Some(dst) = local_set_of(&w[1]) {
                return Some((Mop::LConst { c, dst }, 2));
            }
        }
        if let Some(op) = BinOp::of(&w[0]) {
            if let Some(dst) = local_set_of(&w[1]) {
                return Some((Mop::BinSet { dst, op }, 2));
            }
            if let Some(depth) = br_if_of(&w[1]) {
                if op.result_is_i32() {
                    return Some((Mop::CmpBr { op, depth }, 2));
                }
            }
        }
        if let Some(un) = UnOp::of(&w[0]) {
            if let Some(depth) = br_if_of(&w[1]) {
                if un.result_is_i32() {
                    return Some((Mop::UnBr { un, depth }, 2));
                }
            }
        }
    }
    None
}

/// Translate one instruction to its singleton micro-op. Control targets
/// are patched afterwards from the side table.
fn singleton(i: &Instr, module: &Module) -> Mop {
    if let Some(op) = BinOp::of(i) {
        return Mop::Bin(op);
    }
    if let Some(un) = UnOp::of(i) {
        return Mop::Un(un);
    }
    if let Some((kind, offset)) = load_of(i) {
        return Mop::Load { kind, offset };
    }
    if let Some((kind, offset)) = store_of(i) {
        return Mop::Store { kind, offset };
    }
    if let Some(c) = const_bits_of(i) {
        return Mop::Const(c);
    }
    match i {
        Instr::Unreachable => Mop::Unreachable,
        Instr::Nop => Mop::Nop,
        Instr::Block(bt) => Mop::Block {
            after_end: NO_PC,
            arity: bt.arity() as u8,
        },
        Instr::Loop(_) => Mop::Loop { after_end: NO_PC },
        Instr::If(bt) => Mop::If {
            after_end: NO_PC,
            else_skip: NO_PC,
            arity: bt.arity() as u8,
        },
        Instr::Else => Mop::Else,
        Instr::End => Mop::End,
        Instr::Br(d) => Mop::Br(*d),
        Instr::BrIf(d) => Mop::BrIf(*d),
        Instr::BrTable(targets, default) => {
            Mop::BrTable(targets.clone().into_boxed_slice(), *default)
        }
        Instr::Return => Mop::Return,
        Instr::Call(f) => Mop::Call(*f),
        Instr::CallIndirect(t) => Mop::CallIndirect(*t),
        Instr::Drop => Mop::Drop,
        Instr::Select => Mop::Select,
        Instr::LocalGet(x) => Mop::LocalGet(*x),
        Instr::LocalSet(x) => Mop::LocalSet(*x),
        Instr::LocalTee(x) => Mop::LocalTee(*x),
        Instr::GlobalGet(x) => Mop::GlobalGet(*x),
        Instr::GlobalSet(x) => Mop::GlobalSet {
            idx: *x,
            ty: module.globals[*x as usize].ty.ty,
        },
        Instr::MemorySize => Mop::MemorySize,
        Instr::MemoryGrow => Mop::MemoryGrow,
        _ => unreachable!("covered by BinOp/UnOp/load/store/const lifts"),
    }
}

/// Lower one flat body to fused micro-ops.
///
/// Pass 1 greedily matches fused patterns (falling back to singletons) and
/// records the micro-op index of every source pc. Pass 2 patches the
/// structured-control targets (`after_end`, `else_skip`) from the side
/// table, translating instruction pcs to micro-op indices.
pub(crate) fn lower(body: &[Instr], side: &SideTable, module: &Module) -> FusedFunc {
    let n = body.len();
    let mut code: Vec<Mop> = Vec::with_capacity(n);
    let mut mop_of: Vec<u32> = vec![NO_PC; n + 1];
    let mut pc = 0usize;
    while pc < n {
        mop_of[pc] = code.len() as u32;
        if let Some((mop, len)) = match_fused(&body[pc..]) {
            code.push(mop);
            pc += len;
        } else {
            code.push(singleton(&body[pc], module));
            pc += 1;
        }
    }
    mop_of[n] = code.len() as u32;
    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => {
                let end_pc = side.end_of[pc] as usize;
                let idx = mop_of[pc] as usize;
                // `end` is always a singleton, so the op after it is at
                // the next micro-op index.
                let after_end = mop_of[end_pc] + 1;
                match &mut code[idx] {
                    Mop::Block { after_end: t, .. } | Mop::Loop { after_end: t } => {
                        *t = after_end;
                    }
                    Mop::If {
                        after_end: t,
                        else_skip,
                        ..
                    } => {
                        *t = after_end;
                        if side.else_of[pc] != NO_PC {
                            // `else` is always a singleton too.
                            *else_skip = mop_of[side.else_of[pc] as usize] + 1;
                        }
                    }
                    other => unreachable!("opener lowered to {other:?}"),
                }
            }
            _ => {}
        }
    }
    FusedFunc { code }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::PreparedModule;
    use wb_wasm::{BlockType, Instr, MemArg};

    fn lower_body(body: Vec<Instr>) -> FusedFunc {
        let module = Module {
            functions: vec![wb_wasm::Function {
                type_index: 0,
                locals: vec![ValType::I32; 4],
                body,
                name: None,
            }],
            types: vec![wb_wasm::FuncType {
                params: vec![],
                results: vec![],
            }],
            ..Default::default()
        };
        let prepared = PreparedModule::new(module);
        lower(
            &prepared.module.functions[0].body,
            &prepared.side_tables[0],
            &prepared.module,
        )
    }

    #[test]
    fn fuses_local_local_bin_set() {
        let f = lower_body(vec![
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Add,
            Instr::LocalSet(2),
            Instr::End,
        ]);
        assert_eq!(
            f.code,
            vec![
                Mop::LLBinSet {
                    a: 0,
                    b: 1,
                    dst: 2,
                    op: BinOp::I32Add
                },
                Mop::End,
            ]
        );
    }

    #[test]
    fn fuses_counter_increment() {
        // The canonical loop-counter idiom from the MiniC backend.
        let f = lower_body(vec![
            Instr::LocalGet(3),
            Instr::I32Const(1),
            Instr::I32Add,
            Instr::LocalSet(3),
            Instr::End,
        ]);
        assert_eq!(
            f.code,
            vec![
                Mop::LCBinSet {
                    a: 3,
                    c: 1,
                    dst: 3,
                    op: BinOp::I32Add
                },
                Mop::End,
            ]
        );
    }

    #[test]
    fn fuses_cmp_br_if() {
        let f = lower_body(vec![
            Instr::Block(BlockType::Empty),
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32GeU,
            Instr::BrIf(0),
            Instr::End,
            Instr::End,
        ]);
        assert_eq!(
            f.code,
            vec![
                Mop::Block {
                    after_end: 3,
                    arity: 0
                },
                Mop::LLCmpBr {
                    a: 0,
                    b: 1,
                    op: BinOp::I32GeU,
                    depth: 0
                },
                Mop::End,
                Mop::End,
            ]
        );
    }

    #[test]
    fn fuses_local_load_and_local_local_store() {
        let m = MemArg {
            align: 0,
            offset: 8,
        };
        let f = lower_body(vec![
            Instr::LocalGet(0),
            Instr::I32Load8U(m),
            Instr::Drop,
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32Store(m),
            Instr::End,
        ]);
        assert_eq!(
            f.code,
            vec![
                Mop::LLoad {
                    a: 0,
                    kind: LoadKind::I32U8,
                    offset: 8
                },
                Mop::Drop,
                Mop::LLStore {
                    a: 0,
                    b: 1,
                    kind: StoreKind::I32,
                    offset: 8
                },
                Mop::End,
            ]
        );
    }

    #[test]
    fn fuses_eqz_br_if_and_stack_lhs_patterns() {
        let f = lower_body(vec![
            Instr::Block(BlockType::Empty),
            Instr::LocalGet(0),
            Instr::I32Eqz,
            Instr::BrIf(0),
            Instr::GlobalGet(0),
            Instr::I32Const(7),
            Instr::I32Mul,
            Instr::LocalSet(1),
            Instr::End,
            Instr::End,
        ]);
        assert_eq!(
            f.code,
            vec![
                Mop::Block {
                    after_end: 5,
                    arity: 0
                },
                Mop::LUnBr {
                    a: 0,
                    un: UnOp::I32Eqz,
                    depth: 0
                },
                Mop::GlobalGet(0),
                Mop::CBinSet {
                    c: 7,
                    dst: 1,
                    op: BinOp::I32Mul
                },
                Mop::End,
                Mop::End,
            ]
        );
    }

    #[test]
    fn loop_and_if_targets_are_micro_op_indices() {
        let f = lower_body(vec![
            Instr::Loop(BlockType::Empty), // 0 -> mop 0
            Instr::LocalGet(0),            // 1 ┐
            Instr::I32Eqz,                 // 2 ├ mop 1 (LUnBr)
            Instr::BrIf(1),                // 3 ┘  (wildly typed, but shape is what matters)
            Instr::If(BlockType::Empty),   // 4 -> mop 2 (consumes a cond in real code)
            Instr::Nop,                    // 5 -> mop 3
            Instr::Else,                   // 6 -> mop 4
            Instr::Nop,                    // 7 -> mop 5
            Instr::End,                    // 8 -> mop 6 (closes if)
            Instr::Br(0),                  // 9 -> mop 7
            Instr::End,                    // 10 -> mop 8 (closes loop)
            Instr::End,                    // 11 -> mop 9
        ]);
        assert_eq!(f.code.len(), 10);
        assert_eq!(f.code[0], Mop::Loop { after_end: 9 });
        assert_eq!(
            f.code[2],
            Mop::If {
                after_end: 7,
                else_skip: 5,
                arity: 0
            }
        );
    }

    #[test]
    fn never_fuses_across_control_instructions() {
        // `local.get` right before `end`: the would-be partner on the
        // other side of `end` must not be swallowed.
        let f = lower_body(vec![
            Instr::Block(BlockType::Value(ValType::I32)),
            Instr::LocalGet(0),
            Instr::End,
            Instr::LocalSet(1),
            Instr::End,
        ]);
        assert_eq!(
            f.code,
            vec![
                Mop::Block {
                    after_end: 3,
                    arity: 1
                },
                Mop::LocalGet(0),
                Mop::End,
                Mop::LocalSet(1),
                Mop::End,
            ]
        );
    }

    #[test]
    fn widths_sum_to_body_length() {
        let body = vec![
            Instr::Block(BlockType::Empty),
            Instr::LocalGet(0),
            Instr::LocalGet(1),
            Instr::I32GeU,
            Instr::BrIf(0),
            Instr::LocalGet(2),
            Instr::I32Const(1),
            Instr::I32Add,
            Instr::LocalSet(2),
            Instr::LocalGet(0),
            Instr::F64Const(1.5),
            Instr::F64Mul,
            Instr::End,
            Instr::End,
        ];
        let n = body.len() as u64;
        let f = lower_body(body);
        assert_eq!(f.code.iter().map(|m| m.width()).sum::<u64>(), n);
    }
}
