//! Runtime values.

use wb_wasm::ValType;

/// A WebAssembly runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit integer (sign-agnostic bits).
    I32(i32),
    /// 64-bit integer (sign-agnostic bits).
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// Zero value of a type (default for locals).
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    /// Unwrap as i32 (panics on type confusion — validation prevents it).
    pub fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => unreachable!("expected i32, got {other:?}"),
        }
    }

    /// Unwrap as i64.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => unreachable!("expected i64, got {other:?}"),
        }
    }

    /// Unwrap as f32.
    pub fn as_f32(self) -> f32 {
        match self {
            Value::F32(v) => v,
            other => unreachable!("expected f32, got {other:?}"),
        }
    }

    /// Unwrap as f64.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => unreachable!("expected f64, got {other:?}"),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matches_type() {
        for ty in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(Value::zero(ty).ty(), ty);
        }
    }

    #[test]
    fn accessors_unwrap() {
        assert_eq!(Value::I32(-5).as_i32(), -5);
        assert_eq!(Value::I64(1 << 40).as_i64(), 1 << 40);
        assert_eq!(Value::F64(2.5).as_f64(), 2.5);
        assert_eq!(Value::F32(0.5).as_f32(), 0.5);
    }

    #[test]
    #[should_panic(expected = "expected i32")]
    fn type_confusion_panics() {
        Value::F64(1.0).as_i32();
    }
}
