//! Mapping from WebAssembly instructions to the shared cost-model
//! operation classes.

use wb_env::OpClass;
use wb_wasm::Instr;

/// Fine-grained arithmetic kind for the Table 12 operation-count profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithKind {
    /// add/sub
    Add,
    /// mul
    Mul,
    /// div
    Div,
    /// rem
    Rem,
    /// shifts/rotates
    Shift,
    /// and
    And,
    /// or/xor
    Or,
}

/// Table 12 classification of an instruction, if it is arithmetic.
pub fn arith_kind(i: &Instr) -> Option<ArithKind> {
    use Instr::*;
    Some(match i {
        I32Add | I32Sub | I64Add | I64Sub | F32Add | F32Sub | F64Add | F64Sub => ArithKind::Add,
        I32Mul | I64Mul | F32Mul | F64Mul => ArithKind::Mul,
        I32DivS | I32DivU | I64DivS | I64DivU | F32Div | F64Div => ArithKind::Div,
        I32RemS | I32RemU | I64RemS | I64RemU => ArithKind::Rem,
        I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr | I64Shl | I64ShrS | I64ShrU | I64Rotl
        | I64Rotr => ArithKind::Shift,
        I32And | I64And => ArithKind::And,
        I32Or | I32Xor | I64Or | I64Xor => ArithKind::Or,
        _ => return None,
    })
}

/// Classify one instruction for cost accounting.
pub fn classify(i: &Instr) -> OpClass {
    use Instr::*;
    match i {
        // Control.
        Unreachable | Nop | Block(_) | Loop(_) | End | Else => OpClass::Other,
        If(_) | Br(_) | BrIf(_) | BrTable(..) | Return => OpClass::Branch,
        Call(_) | CallIndirect(_) => OpClass::Call,
        Drop | Select => OpClass::Other,
        // Variables.
        LocalGet(_) | LocalSet(_) | LocalTee(_) => OpClass::Local,
        GlobalGet(_) | GlobalSet(_) => OpClass::Global,
        // Memory.
        I32Load(_) | I64Load(_) | F32Load(_) | F64Load(_) | I32Load8S(_) | I32Load8U(_)
        | I32Load16S(_) | I32Load16U(_) | I64Load8S(_) | I64Load8U(_) | I64Load16S(_)
        | I64Load16U(_) | I64Load32S(_) | I64Load32U(_) => OpClass::Load,
        I32Store(_) | I64Store(_) | F32Store(_) | F64Store(_) | I32Store8(_) | I32Store16(_)
        | I64Store8(_) | I64Store16(_) | I64Store32(_) => OpClass::Store,
        MemorySize | MemoryGrow => OpClass::Other,
        // Constants.
        I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) => OpClass::Const,
        // Comparisons.
        I32Eqz | I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
        | I32GeU | I64Eqz | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU
        | I64GeS | I64GeU | F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F64Eq | F64Ne
        | F64Lt | F64Gt | F64Le | F64Ge => OpClass::Compare,
        // Integer ALU.
        I32Clz | I32Ctz | I32Popcnt | I32Add | I32Sub | I32And | I32Or | I32Xor | I32Shl
        | I32ShrS | I32ShrU | I32Rotl | I32Rotr | I64Clz | I64Ctz | I64Popcnt | I64Add | I64Sub
        | I64And | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => {
            OpClass::IntAlu
        }
        I32Mul | I64Mul => OpClass::IntMul,
        I32DivS | I32DivU | I32RemS | I32RemU | I64DivS | I64DivU | I64RemS | I64RemU => {
            OpClass::IntDiv
        }
        // Float ALU.
        F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Add | F32Sub | F32Min
        | F32Max | F32Copysign | F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest
        | F64Add | F64Sub | F64Min | F64Max | F64Copysign => OpClass::FloatAlu,
        F32Mul | F64Mul => OpClass::FloatMul,
        F32Div | F32Sqrt | F64Div | F64Sqrt => OpClass::FloatDiv,
        // Conversions.
        I32WrapI64 | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U | I64ExtendI32S
        | I64ExtendI32U | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U
        | F32ConvertI32S | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U | F32DemoteF64
        | F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U | F64PromoteF32
        | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64 => {
            OpClass::Convert
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_kinds() {
        assert_eq!(arith_kind(&Instr::I64Add), Some(ArithKind::Add));
        assert_eq!(arith_kind(&Instr::I64Mul), Some(ArithKind::Mul));
        assert_eq!(arith_kind(&Instr::I64RemS), Some(ArithKind::Rem));
        assert_eq!(arith_kind(&Instr::I32Shl), Some(ArithKind::Shift));
        assert_eq!(arith_kind(&Instr::I64Or), Some(ArithKind::Or));
        assert_eq!(arith_kind(&Instr::LocalGet(0)), None);
    }

    #[test]
    fn representative_classifications() {
        assert_eq!(classify(&Instr::I32Add), OpClass::IntAlu);
        assert_eq!(classify(&Instr::I64Mul), OpClass::IntMul);
        assert_eq!(classify(&Instr::I32DivU), OpClass::IntDiv);
        assert_eq!(classify(&Instr::F64Mul), OpClass::FloatMul);
        assert_eq!(classify(&Instr::F64Sqrt), OpClass::FloatDiv);
        assert_eq!(classify(&Instr::F64Load(Default::default())), OpClass::Load);
        assert_eq!(
            classify(&Instr::I32Store8(Default::default())),
            OpClass::Store
        );
        assert_eq!(classify(&Instr::BrIf(0)), OpClass::Branch);
        assert_eq!(classify(&Instr::Call(0)), OpClass::Call);
        assert_eq!(classify(&Instr::LocalGet(0)), OpClass::Local);
        assert_eq!(classify(&Instr::GlobalSet(0)), OpClass::Global);
        assert_eq!(classify(&Instr::I32Const(0)), OpClass::Const);
        assert_eq!(classify(&Instr::F64ConvertI32S), OpClass::Convert);
        assert_eq!(classify(&Instr::I32LtS), OpClass::Compare);
    }
}
