//! Module preparation: everything about a module the interpreter would
//! otherwise recompute per run or — worse — per step, done **once**:
//!
//! * flat side tables mapping each structured-control opener to its
//!   matching `else`/`end`, so branches resolve in O(1) array indexing;
//! * the cost-model [`OpClass`] and Table 12 arithmetic kind of every
//!   instruction, so the per-step accounting path never re-inspects the
//!   instruction;
//! * per-function call signatures (arg count, result arity), so `call`
//!   dispatch never clones a `FuncType`.
//!
//! A `PreparedModule` is immutable plain data (`Send + Sync`), so one
//! preparation can be shared across instances — and across threads via
//! `Arc`, which is how the artifact cache reuses decode/validate/prepare
//! work between grid cells.

use crate::classify::{arith_kind, classify, ArithKind};
use crate::fuse::{lower, FusedFunc};
use std::sync::OnceLock;
use wb_env::OpClass;
use wb_wasm::{Instr, Module};

/// Sentinel for "no matching pc" in the flat side tables.
pub const NO_PC: u32 = u32::MAX;

/// Per-function control side table and per-pc accounting metadata, all
/// indexed directly by pc.
#[derive(Debug, Clone, Default)]
pub struct SideTable {
    /// For each `block`/`loop`/`if` pc: pc of the matching `end`
    /// ([`NO_PC`] at every other pc).
    pub end_of: Vec<u32>,
    /// For each `if` pc that has an `else`: pc of that `else`
    /// ([`NO_PC`] otherwise).
    pub else_of: Vec<u32>,
    /// Cost-model class of the instruction at each pc.
    pub op_class: Vec<OpClass>,
    /// Table 12 arithmetic kind of the instruction at each pc, if any.
    pub arith: Vec<Option<ArithKind>>,
}

/// A module plus its precomputed side tables and dispatch metadata.
#[derive(Debug)]
pub struct PreparedModule {
    /// The underlying module.
    pub module: Module,
    /// One side table per defined function, same order as
    /// `module.functions`.
    pub side_tables: Vec<SideTable>,
    /// `(nargs, has_result)` per function index (imports first, then
    /// defined functions) — the only pieces of the callee signature the
    /// call sequence needs.
    pub call_sigs: Vec<(u16, bool)>,
    /// Fused micro-op streams, lowered lazily on first fused execution of
    /// each function and then shared across instances (and threads, via
    /// `Arc<PreparedModule>` in the artifact cache) for the lifetime of
    /// the preparation.
    fused: Vec<OnceLock<FusedFunc>>,
}

impl PreparedModule {
    /// Prepare a (validated) module.
    pub fn new(module: Module) -> Self {
        let side_tables = module
            .functions
            .iter()
            .map(|f| build_side_table(&f.body))
            .collect();
        let nfuncs = module.imports.len() + module.functions.len();
        let call_sigs = (0..nfuncs as u32)
            .map(|i| match module.func_type(i) {
                Some(ty) => (ty.params.len() as u16, !ty.results.is_empty()),
                None => (0, false),
            })
            .collect();
        let fused = (0..module.functions.len())
            .map(|_| OnceLock::new())
            .collect();
        PreparedModule {
            module,
            side_tables,
            call_sigs,
            fused,
        }
    }

    /// The fused micro-op stream for defined function `def_index`,
    /// lowering it on first use. Lowering is pure derived data (no
    /// virtual-time charge): the reference and fused engines charge the
    /// same compile costs, and fusion itself models no engine work.
    pub(crate) fn fused(&self, def_index: usize) -> &FusedFunc {
        self.fused[def_index].get_or_init(|| {
            lower(
                &self.module.functions[def_index].body,
                &self.side_tables[def_index],
                &self.module,
            )
        })
    }
}

fn build_side_table(body: &[Instr]) -> SideTable {
    let mut table = SideTable {
        end_of: vec![NO_PC; body.len()],
        else_of: vec![NO_PC; body.len()],
        op_class: Vec::with_capacity(body.len()),
        arith: Vec::with_capacity(body.len()),
    };
    let mut stack: Vec<usize> = Vec::new();
    for (pc, instr) in body.iter().enumerate() {
        table.op_class.push(classify(instr));
        table.arith.push(arith_kind(instr));
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => stack.push(pc),
            Instr::Else => {
                if let Some(&opener) = stack.last() {
                    table.else_of[opener] = pc as u32;
                }
            }
            Instr::End => {
                // The final `end` closes the implicit function frame, for
                // which the stack is empty.
                if let Some(opener) = stack.pop() {
                    table.end_of[opener] = pc as u32;
                }
            }
            _ => {}
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_wasm::BlockType;

    #[test]
    fn matches_nested_blocks() {
        // block (0) { loop (1) { if (2) {} else {} end(5) } end(6) } end(7) end-of-func(8)
        let body = vec![
            Instr::Block(BlockType::Empty), // 0
            Instr::Loop(BlockType::Empty),  // 1
            Instr::If(BlockType::Empty),    // 2  (consumes a condition in real code)
            Instr::Nop,                     // 3
            Instr::Else,                    // 4
            Instr::Nop,                     // 5
            Instr::End,                     // 6 closes if
            Instr::End,                     // 7 closes loop
            Instr::End,                     // 8 closes block
            Instr::End,                     // 9 closes function
        ];
        let t = build_side_table(&body);
        assert_eq!(t.end_of[2], 6);
        assert_eq!(t.end_of[1], 7);
        assert_eq!(t.end_of[0], 8);
        assert_eq!(t.else_of[2], 4);
        assert_eq!(t.end_of[9], NO_PC);
        assert_eq!(t.else_of[0], NO_PC);
    }

    #[test]
    fn else_binds_to_innermost_if() {
        let body = vec![
            Instr::If(BlockType::Empty), // 0
            Instr::If(BlockType::Empty), // 1
            Instr::Else,                 // 2 -> if@1
            Instr::End,                  // 3
            Instr::Else,                 // 4 -> if@0
            Instr::End,                  // 5
            Instr::End,                  // 6
        ];
        let t = build_side_table(&body);
        assert_eq!(t.else_of[1], 2);
        assert_eq!(t.else_of[0], 4);
        assert_eq!(t.end_of[1], 3);
        assert_eq!(t.end_of[0], 5);
    }

    #[test]
    fn precomputes_op_classes_and_arith_kinds() {
        let body = vec![
            Instr::I32Const(1), // 0: Const, no arith
            Instr::I32Const(2), // 1
            Instr::I32Add,      // 2: IntAlu, Add
            Instr::End,         // 3: Other
        ];
        let t = build_side_table(&body);
        assert_eq!(t.op_class[0], OpClass::Const);
        assert_eq!(t.op_class[2], OpClass::IntAlu);
        assert_eq!(t.arith[2], Some(ArithKind::Add));
        assert_eq!(t.arith[0], None);
        assert_eq!(t.op_class.len(), body.len());
        assert_eq!(t.arith.len(), body.len());
    }
}
