//! Module preparation: side tables mapping each structured-control opener
//! to its matching `else`/`end`, computed once at instantiation so the
//! interpreter branches in O(1).

use std::collections::HashMap;
use wb_wasm::{Instr, Module};

/// Per-function control side table.
#[derive(Debug, Clone, Default)]
pub struct SideTable {
    /// For each `block`/`loop`/`if` pc: pc of the matching `end`.
    pub end_of: HashMap<usize, usize>,
    /// For each `if` pc that has an `else`: pc of that `else`.
    pub else_of: HashMap<usize, usize>,
}

/// A module plus its precomputed side tables.
#[derive(Debug)]
pub struct PreparedModule {
    /// The underlying module.
    pub module: Module,
    /// One side table per defined function, same order as
    /// `module.functions`.
    pub side_tables: Vec<SideTable>,
}

impl PreparedModule {
    /// Prepare a (validated) module.
    pub fn new(module: Module) -> Self {
        let side_tables = module
            .functions
            .iter()
            .map(|f| build_side_table(&f.body))
            .collect();
        PreparedModule {
            module,
            side_tables,
        }
    }
}

fn build_side_table(body: &[Instr]) -> SideTable {
    let mut table = SideTable::default();
    let mut stack: Vec<usize> = Vec::new();
    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => stack.push(pc),
            Instr::Else => {
                if let Some(&opener) = stack.last() {
                    table.else_of.insert(opener, pc);
                }
            }
            Instr::End => {
                // The final `end` closes the implicit function frame, for
                // which the stack is empty.
                if let Some(opener) = stack.pop() {
                    table.end_of.insert(opener, pc);
                }
            }
            _ => {}
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use wb_wasm::BlockType;

    #[test]
    fn matches_nested_blocks() {
        // block (0) { loop (1) { if (2) {} else {} end(5) } end(6) } end(7) end-of-func(8)
        let body = vec![
            Instr::Block(BlockType::Empty), // 0
            Instr::Loop(BlockType::Empty),  // 1
            Instr::If(BlockType::Empty),    // 2  (consumes a condition in real code)
            Instr::Nop,                     // 3
            Instr::Else,                    // 4
            Instr::Nop,                     // 5
            Instr::End,                     // 6 closes if
            Instr::End,                     // 7 closes loop
            Instr::End,                     // 8 closes block
            Instr::End,                     // 9 closes function
        ];
        let t = build_side_table(&body);
        assert_eq!(t.end_of[&2], 6);
        assert_eq!(t.end_of[&1], 7);
        assert_eq!(t.end_of[&0], 8);
        assert_eq!(t.else_of[&2], 4);
        assert!(!t.end_of.contains_key(&9));
    }

    #[test]
    fn else_binds_to_innermost_if() {
        let body = vec![
            Instr::If(BlockType::Empty),  // 0
            Instr::If(BlockType::Empty),  // 1
            Instr::Else,                  // 2 -> if@1
            Instr::End,                   // 3
            Instr::Else,                  // 4 -> if@0
            Instr::End,                   // 5
            Instr::End,                   // 6
        ];
        let t = build_side_table(&body);
        assert_eq!(t.else_of[&1], 2);
        assert_eq!(t.else_of[&0], 4);
        assert_eq!(t.end_of[&1], 3);
        assert_eq!(t.end_of[&0], 5);
    }
}
