//! Instance lifecycle: instantiation (decode → validate → baseline
//! compile → memory/global/table init → start function), host-function
//! binding, tier state, and measurement reporting.

use crate::prep::PreparedModule;
use crate::trap::Trap;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;
use wb_env::{
    ArithCounts, CostTable, Nanos, OpCounts, ResourceLimits, TierPolicy, TimeBucket, VirtualClock,
    WasmEngineProfile,
};
use wb_wasm::{decode_module, validate, LinearMemory, Module, ValType};

/// Configuration of one VM run.
#[derive(Debug, Clone)]
pub struct WasmVmConfig {
    /// Engine parameters (tiers, thresholds, grow costs, context switch).
    pub profile: WasmEngineProfile,
    /// Which compilation tiers are enabled (Table 11 flags).
    pub tier_policy: TierPolicy,
    /// Base cost table shared with the JS engine.
    pub cost: CostTable,
    /// Nanoseconds per abstract cycle (platform speed).
    pub cycle_time_ns: f64,
    /// Toolchain codegen overhead multiplier applied to executed
    /// instruction cycles (Cheerp vs Emscripten, §4.2.2). 1.0 for
    /// hand-written modules.
    pub exec_overhead: f64,
    /// Resource ceilings: fuel (retired-instruction budget →
    /// [`Trap::StepBudgetExhausted`]), linear-memory ceiling
    /// ([`Trap::MemoryLimitExceeded`]) and call depth
    /// ([`Trap::StackOverflow`]). Limits are checked on existing
    /// virtual-cost events and never add charges, so default-limit runs
    /// are bit-identical to unlimited ones.
    pub limits: ResourceLimits,
    /// Execute on the reference (one instruction per dispatch, tagged
    /// stack) interpreter instead of the fused micro-op engine. Both
    /// produce bit-identical measurements; this is a debugging escape
    /// hatch for fusion regressions (`--reference-exec` in the harness).
    pub reference_exec: bool,
}

impl WasmVmConfig {
    /// A standalone default suitable for unit tests: reference engine
    /// profile, desktop cycle time, no toolchain overhead.
    pub fn reference() -> Self {
        WasmVmConfig {
            profile: WasmEngineProfile::reference(),
            tier_policy: TierPolicy::Default,
            cost: CostTable::reference(),
            cycle_time_ns: wb_env::calibration::DESKTOP_CYCLE_NS,
            exec_overhead: 1.0,
            limits: ResourceLimits::default(),
            reference_exec: false,
        }
    }

    /// Derive a config from an environment profile.
    pub fn for_env(env: &wb_env::EnvProfile) -> Self {
        WasmVmConfig {
            profile: env.wasm,
            tier_policy: TierPolicy::Default,
            cost: CostTable::reference(),
            cycle_time_ns: env.cycle_time_ns,
            exec_overhead: 1.0,
            limits: ResourceLimits::default(),
            reference_exec: false,
        }
    }
}

/// Execution tier of a compiled function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    Baseline = 0,
    Optimizing = 1,
}

/// Per-function tier state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FuncState {
    pub tier: Tier,
    pub hotness: u64,
}

/// Context handed to host functions.
pub struct HostCtx<'a> {
    /// The instance's linear memory, if declared.
    pub memory: Option<&'a mut LinearMemory>,
    /// Console-style output sink (what the page's JS would log).
    pub output: &'a mut Vec<String>,
}

/// A bound host (JavaScript) function.
pub type HostFn = Box<dyn FnMut(&mut HostCtx<'_>, &[Value]) -> Result<Option<Value>, Trap>>;

/// Memory accounting snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryStats {
    /// Current linear memory size in bytes (monotonic — never shrinks).
    pub linear_bytes: u64,
    /// Number of `memory.grow` operations executed.
    pub grow_count: u64,
    /// Total pages added by grows.
    pub grown_pages: u64,
}

/// Everything measured about an execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Total virtual time, including load/compile/exec/grow/switch.
    pub total: Nanos,
    /// Time attribution breakdown.
    pub clock: VirtualClock,
    /// Retired operations by class, across tiers.
    pub counts: OpCounts,
    /// Retired operations executed in the baseline tier only.
    pub baseline_counts: OpCounts,
    /// Linear memory statistics.
    pub memory: MemoryStats,
    /// Fine-grained arithmetic profile (Table 12).
    pub arith: ArithCounts,
    /// Functions that tiered up at runtime.
    pub tier_ups: u32,
    /// Host-boundary crossings charged.
    pub context_switches: u64,
}

/// An instantiated module ready to execute.
pub struct Instance {
    pub(crate) prepared: Arc<PreparedModule>,
    pub(crate) config: WasmVmConfig,
    pub(crate) memory: Option<LinearMemory>,
    pub(crate) globals: Vec<Value>,
    pub(crate) table: Vec<Option<u32>>,
    pub(crate) func_state: Vec<FuncState>,
    pub(crate) hostfns: HashMap<String, HostFn>,
    /// Retired ops per tier: `[baseline, optimizing]`.
    pub(crate) tier_counts: [OpCounts; 2],
    pub(crate) arith: ArithCounts,
    pub(crate) clock: VirtualClock,
    pub(crate) steps: u64,
    pub(crate) tier_ups: u32,
    pub(crate) context_switches: u64,
    /// Console output produced through host functions.
    pub output: Vec<String>,
}

impl Instance {
    /// Instantiate from a binary, charging decode + validate + baseline
    /// (or optimizing, per policy) compile costs — the Wasm "load" phase
    /// the paper contrasts with JS parsing (§2.2.2).
    pub fn instantiate(
        bytes: &[u8],
        config: WasmVmConfig,
        hostfns: HashMap<String, HostFn>,
    ) -> Result<Instance, Trap> {
        let module = decode_module(bytes).map_err(|e| Trap::Host {
            message: format!("decode failed: {e}"),
        })?;
        validate(&module).map_err(|e| Trap::Host {
            message: format!("validation failed: {e}"),
        })?;
        let prepared = Arc::new(PreparedModule::new(module));
        Self::instantiate_prepared(prepared, bytes.len(), config, hostfns)
    }

    /// Instantiate from an already-prepared module, charging the same
    /// virtual load/compile cost sequence as [`Instance::instantiate`]
    /// would for the `byte_len`-byte binary the preparation came from.
    ///
    /// This is the cached-artifact fast path: the *wall-clock* decode,
    /// validate and side-table work is skipped, but the *virtual* clock is
    /// charged identically, so measurements are bit-identical to the
    /// uncached path.
    pub fn instantiate_prepared(
        prepared: Arc<PreparedModule>,
        byte_len: usize,
        config: WasmVmConfig,
        hostfns: HashMap<String, HostFn>,
    ) -> Result<Instance, Trap> {
        let mut inst = Self::from_prepared(prepared, config, hostfns)?;
        let p = inst.config.profile;
        let nbytes = byte_len as f64;
        inst.charge_bucket(
            p.instantiate_base + nbytes * (p.decode_cost_per_byte + p.validate_cost_per_byte),
            TimeBucket::Load,
        );
        inst.charge_initial_compile();
        inst.run_start()?;
        Ok(inst)
    }

    /// Instantiate from an already-decoded module (skips the decode charge
    /// but still charges compilation). Used by tests and by callers who
    /// track encode size separately.
    pub fn from_module(
        module: Module,
        config: WasmVmConfig,
        hostfns: HashMap<String, HostFn>,
    ) -> Result<Instance, Trap> {
        Self::from_prepared(Arc::new(PreparedModule::new(module)), config, hostfns)
    }

    /// Build a fresh instance over a shared [`PreparedModule`] without
    /// charging any virtual time and without running the start function.
    /// Memory, globals, table and data segments are (re)initialized, so
    /// successive instances from one preparation are independent.
    pub fn from_prepared(
        prepared: Arc<PreparedModule>,
        config: WasmVmConfig,
        hostfns: HashMap<String, HostFn>,
    ) -> Result<Instance, Trap> {
        let module = &prepared.module;
        let mut memory = module
            .memory
            .as_ref()
            .map(|spec| LinearMemory::new(spec.limits));
        // The embedder memory ceiling applies to the *initial* allocation
        // too: a module whose declared minimum already exceeds the limit
        // fails instantiation, as a browser tab would under a memory cap.
        if let (Some(mem), Some(limit)) = (memory.as_ref(), config.limits.max_memory_bytes) {
            let requested_bytes = mem.size_bytes() as u64;
            if requested_bytes > limit {
                return Err(Trap::MemoryLimitExceeded {
                    requested_bytes,
                    limit,
                });
            }
        }
        let globals = module
            .globals
            .iter()
            .map(|g| match g.init {
                wb_wasm::Instr::I32Const(v) => Value::I32(v),
                wb_wasm::Instr::I64Const(v) => Value::I64(v),
                wb_wasm::Instr::F32Const(v) => Value::F32(v),
                wb_wasm::Instr::F64Const(v) => Value::F64(v),
                _ => Value::I32(0),
            })
            .collect();
        let mut table: Vec<Option<u32>> = match &module.table {
            Some(t) => vec![None; t.limits.min as usize],
            None => Vec::new(),
        };
        for el in &module.elements {
            let start = el.offset as usize;
            let end = start + el.funcs.len();
            if end > table.len() {
                return Err(Trap::ElementSegmentOutOfBounds);
            }
            for (i, f) in el.funcs.iter().enumerate() {
                table[start + i] = Some(*f);
            }
        }
        let initial_tier = match config.tier_policy {
            TierPolicy::OptimizingOnly => Tier::Optimizing,
            _ => Tier::Baseline,
        };
        let func_state = vec![
            FuncState {
                tier: initial_tier,
                hotness: 0,
            };
            module.functions.len()
        ];
        for d in &module.data {
            let mem = memory.as_mut().ok_or(Trap::DataSegmentOutOfBounds)?;
            mem.write(d.offset as u64, &d.bytes)
                .map_err(|_| Trap::DataSegmentOutOfBounds)?;
        }
        Ok(Instance {
            prepared,
            config,
            memory,
            globals,
            table,
            func_state,
            hostfns,
            tier_counts: [OpCounts::new(), OpCounts::new()],
            arith: ArithCounts::default(),
            clock: VirtualClock::new(),
            steps: 0,
            tier_ups: 0,
            context_switches: 0,
            output: Vec::new(),
        })
    }

    /// Check the embedder memory ceiling before a `memory.grow` of
    /// `delta` pages. Called identically (same program point, before the
    /// grow is attempted) by the reference and fused engines so limited
    /// runs stay bit-identical between them. With no ceiling configured
    /// this is a no-op.
    #[inline]
    pub(crate) fn check_grow_limit(&self, delta: u32) -> Result<(), Trap> {
        if let Some(limit) = self.config.limits.max_memory_bytes {
            let current = self.memory.as_ref().map_or(0, |m| m.size_bytes() as u64);
            let requested_bytes = current + u64::from(delta) * wb_wasm::PAGE_SIZE as u64;
            if requested_bytes > limit {
                return Err(Trap::MemoryLimitExceeded {
                    requested_bytes,
                    limit,
                });
            }
        }
        Ok(())
    }

    pub(crate) fn charge_bucket(&mut self, cycles: f64, bucket: TimeBucket) {
        let ns = Nanos(cycles * self.config.cycle_time_ns);
        self.clock.advance(ns, bucket);
    }

    fn charge_initial_compile(&mut self) {
        let per_unit = match self.config.tier_policy {
            TierPolicy::OptimizingOnly => self.config.profile.optimizing.compile_cost_per_unit,
            _ => self.config.profile.baseline.compile_cost_per_unit,
        };
        let units: usize = self.prepared.module.instr_count();
        self.charge_bucket(units as f64 * per_unit, TimeBucket::Compile);
    }

    fn run_start(&mut self) -> Result<(), Trap> {
        if let Some(start) = self.prepared.module.start {
            self.call_function(start, Vec::new(), 0)?;
        }
        Ok(())
    }

    /// Invoke an exported function from "JavaScript", charging the
    /// entry/exit context switches (§4.5).
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
        let func_index = self
            .prepared
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::NoSuchExport { name: name.into() })?;
        let ty = self
            .prepared
            .module
            .func_type(func_index)
            .ok_or_else(|| Trap::NoSuchExport { name: name.into() })?
            .clone();
        if ty.params.len() != args.len() {
            return Err(Trap::BadInvokeArgs {
                detail: format!("expected {} args, got {}", ty.params.len(), args.len()),
            });
        }
        for (i, (a, want)) in args.iter().zip(ty.params.iter()).enumerate() {
            if a.ty() != *want {
                return Err(Trap::BadInvokeArgs {
                    detail: format!("arg {i}: expected {:?}, got {:?}", want, a.ty()),
                });
            }
        }
        self.cross_boundary();
        let r = self.call_function(func_index, args.to_vec(), 0);
        self.cross_boundary();
        r
    }

    pub(crate) fn cross_boundary(&mut self) {
        self.context_switches += 1;
        self.charge_bucket(
            self.config.profile.context_switch,
            TimeBucket::ContextSwitch,
        );
    }

    /// Current measurement snapshot, with executed-op cycles converted to
    /// time using each tier's multiplier and the toolchain overhead.
    pub fn report(&self) -> ExecutionReport {
        let p = &self.config.profile;
        let base_cycles = self
            .config
            .cost
            .cycles(&self.tier_counts[0], p.baseline.exec_multiplier);
        let opt_cycles = self
            .config
            .cost
            .cycles(&self.tier_counts[1], p.optimizing.exec_multiplier);
        let exec_ns = Nanos(
            (base_cycles + opt_cycles) * self.config.exec_overhead * self.config.cycle_time_ns,
        );
        let mut clock = self.clock.clone();
        clock.advance(exec_ns, TimeBucket::Exec);
        let memory = match &self.memory {
            Some(m) => MemoryStats {
                linear_bytes: m.size_bytes() as u64,
                grow_count: m.grow_count,
                grown_pages: m.grown_pages,
            },
            None => MemoryStats::default(),
        };
        ExecutionReport {
            total: clock.now(),
            counts: self.tier_counts[0].merged(&self.tier_counts[1]),
            baseline_counts: self.tier_counts[0],
            arith: self.arith,
            clock,
            memory,
            tier_ups: self.tier_ups,
            context_switches: self.context_switches,
        }
    }

    /// Look up the numeric value of an exported global (test/IO helper).
    pub fn exported_global(&self, name: &str) -> Option<Value> {
        self.prepared
            .module
            .exports
            .iter()
            .find_map(|e| match e.kind {
                wb_wasm::ExportKind::Global(i) if e.name == name => {
                    self.globals.get(i as usize).copied()
                }
                _ => None,
            })
    }

    /// Read bytes from linear memory (embedder API, like a JS typed-array
    /// view over `WebAssembly.Memory`).
    pub fn read_memory(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        let mem = self.memory.as_ref().ok_or(Trap::MemoryOutOfBounds {
            addr,
            width: len as u32,
        })?;
        mem.read(addr, len as u32)
            .map(|s| s.to_vec())
            .map_err(|_| Trap::MemoryOutOfBounds {
                addr,
                width: len as u32,
            })
    }

    /// Write bytes into linear memory (embedder API).
    pub fn write_memory(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let mem = self.memory.as_mut().ok_or(Trap::MemoryOutOfBounds {
            addr,
            width: bytes.len() as u32,
        })?;
        mem.write(addr, bytes).map_err(|_| Trap::MemoryOutOfBounds {
            addr,
            width: bytes.len() as u32,
        })
    }

    /// The function signature of an export, if present.
    pub fn export_signature(&self, name: &str) -> Option<(Vec<ValType>, Vec<ValType>)> {
        let idx = self.prepared.module.exported_func(name)?;
        let ty = self.prepared.module.func_type(idx)?;
        Some((ty.params.clone(), ty.results.clone()))
    }
}
