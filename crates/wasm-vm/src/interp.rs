//! The execution core: a flat-body interpreter with precomputed branch
//! targets, full MVP semantics, per-instruction cost accounting and
//! hotness-driven tier-up.

use crate::classify::ArithKind;
use crate::engine::{HostCtx, Instance, Tier};
use crate::prep::NO_PC;
use crate::trap::Trap;
use crate::value::Value;
use std::sync::Arc;
use wb_env::{TierPolicy, TimeBucket};
use wb_wasm::{Instr, MemArg};

struct Ctrl {
    opener_pc: usize,
    end_pc: usize,
    height: usize,
    arity: usize,
    is_loop: bool,
}

impl Instance {
    /// Execute defined-or-imported function `func_index` with `args`,
    /// dispatching to the fused engine (default) or the reference
    /// interpreter (`--reference-exec` escape hatch). Both charge the
    /// same virtual-cost sequence; see `exec.rs`.
    pub(crate) fn call_function(
        &mut self,
        func_index: u32,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, Trap> {
        if depth >= self.config.limits.max_call_depth {
            return Err(Trap::StackOverflow);
        }
        let import_count = self.prepared.module.imports.len();
        if (func_index as usize) < import_count {
            return self.call_host(func_index, &args);
        }
        let def_index = func_index as usize - import_count;

        // Function-entry hotness and possible tier-up (like a call-count
        // interrupt in V8/SpiderMonkey).
        self.note_hotness(def_index, 1);

        if self.config.reference_exec {
            self.run_body_reference(def_index, args, depth)
        } else {
            self.run_body_fused(def_index, args, depth)
        }
    }

    /// Charge one Table 12 arithmetic operation of kind `kind`.
    #[inline]
    pub(crate) fn bump_arith(&mut self, kind: ArithKind) {
        match kind {
            ArithKind::Add => self.arith.add += 1,
            ArithKind::Mul => self.arith.mul += 1,
            ArithKind::Div => self.arith.div += 1,
            ArithKind::Rem => self.arith.rem += 1,
            ArithKind::Shift => self.arith.shift += 1,
            ArithKind::And => self.arith.and += 1,
            ArithKind::Or => self.arith.or += 1,
        }
    }

    /// The reference execution core: one [`Instr`] per step over a tagged
    /// [`Value`] stack. This is the semantic baseline the fused engine is
    /// differentially tested against.
    pub(crate) fn run_body_reference(
        &mut self,
        def_index: usize,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, Trap> {
        let prepared = Arc::clone(&self.prepared);
        let func = &prepared.module.functions[def_index];
        let side = &prepared.side_tables[def_index];
        let ty = &prepared.module.types[func.type_index as usize];
        let result_arity = ty.results.len();

        let mut locals = args;
        locals.extend(func.locals.iter().map(|t| Value::zero(*t)));

        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut ctrl: Vec<Ctrl> = Vec::with_capacity(8);
        let body = &func.body;
        let mut pc = 0usize;
        let mut tier = self.func_state[def_index].tier;

        macro_rules! pop {
            () => {
                stack.pop().expect("validated: operand present")
            };
        }
        macro_rules! bin_i32 {
            ($f:expr) => {{
                let b = pop!().as_i32();
                let a = pop!().as_i32();
                stack.push(Value::I32($f(a, b)));
            }};
        }
        macro_rules! bin_i64 {
            ($f:expr) => {{
                let b = pop!().as_i64();
                let a = pop!().as_i64();
                stack.push(Value::I64($f(a, b)));
            }};
        }
        macro_rules! cmp_i32 {
            ($f:expr) => {{
                let b = pop!().as_i32();
                let a = pop!().as_i32();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! cmp_i64 {
            ($f:expr) => {{
                let b = pop!().as_i64();
                let a = pop!().as_i64();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! bin_f32 {
            ($f:expr) => {{
                let b = pop!().as_f32();
                let a = pop!().as_f32();
                stack.push(Value::F32($f(a, b)));
            }};
        }
        macro_rules! bin_f64 {
            ($f:expr) => {{
                let b = pop!().as_f64();
                let a = pop!().as_f64();
                stack.push(Value::F64($f(a, b)));
            }};
        }
        macro_rules! cmp_f32 {
            ($f:expr) => {{
                let b = pop!().as_f32();
                let a = pop!().as_f32();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! cmp_f64 {
            ($f:expr) => {{
                let b = pop!().as_f64();
                let a = pop!().as_f64();
                stack.push(Value::I32($f(a, b) as i32));
            }};
        }
        macro_rules! un_f32 {
            ($f:expr) => {{
                let a = pop!().as_f32();
                stack.push(Value::F32($f(a)));
            }};
        }
        macro_rules! un_f64 {
            ($f:expr) => {{
                let a = pop!().as_f64();
                stack.push(Value::F64($f(a)));
            }};
        }

        loop {
            let instr = &body[pc];
            self.steps += 1;
            if self.steps > self.config.limits.fuel_budget() {
                return Err(Trap::StepBudgetExhausted);
            }
            // Per-pc accounting metadata is precomputed at preparation, so
            // the hot path is two array reads instead of two instruction
            // matches.
            self.tier_counts[tier as usize].bump(side.op_class[pc], 1);
            if let Some(kind) = side.arith[pc] {
                self.bump_arith(kind);
            }

            match instr {
                Instr::Unreachable => return Err(Trap::Unreachable),
                Instr::Nop => {}
                Instr::Block(bt) => {
                    ctrl.push(Ctrl {
                        opener_pc: pc,
                        end_pc: side.end_of[pc] as usize,
                        height: stack.len(),
                        arity: bt.arity(),
                        is_loop: false,
                    });
                }
                Instr::Loop(bt) => {
                    ctrl.push(Ctrl {
                        opener_pc: pc,
                        end_pc: side.end_of[pc] as usize,
                        height: stack.len(),
                        arity: bt.arity(),
                        is_loop: true,
                    });
                }
                Instr::If(bt) => {
                    let cond = pop!().as_i32();
                    let end_pc = side.end_of[pc] as usize;
                    ctrl.push(Ctrl {
                        opener_pc: pc,
                        end_pc,
                        height: stack.len(),
                        arity: bt.arity(),
                        is_loop: false,
                    });
                    if cond == 0 {
                        match side.else_of[pc] {
                            NO_PC => {
                                ctrl.pop();
                                pc = end_pc; // skip straight past `end`
                            }
                            else_pc => pc = else_pc as usize, // step past Else below
                        }
                    }
                }
                Instr::Else => {
                    // Reached at the end of a then-arm: jump to the frame's end.
                    let frame = ctrl.pop().expect("validated: else inside if");
                    pc = frame.end_pc;
                }
                Instr::End => {
                    match ctrl.pop() {
                        Some(_frame) => {}
                        None => {
                            // Implicit function frame: return results.
                            let result = if result_arity == 1 {
                                Some(pop!())
                            } else {
                                None
                            };
                            return Ok(result);
                        }
                    }
                }
                Instr::Br(d) => {
                    pc = self.do_branch(&mut ctrl, &mut stack, *d, def_index, &mut tier);
                    continue;
                }
                Instr::BrIf(d) => {
                    let cond = pop!().as_i32();
                    if cond != 0 {
                        pc = self.do_branch(&mut ctrl, &mut stack, *d, def_index, &mut tier);
                        continue;
                    }
                }
                Instr::BrTable(targets, default) => {
                    let idx = pop!().as_i32() as usize;
                    let d = *targets.get(idx).unwrap_or(default);
                    pc = self.do_branch(&mut ctrl, &mut stack, d, def_index, &mut tier);
                    continue;
                }
                Instr::Return => {
                    let result = if result_arity == 1 {
                        Some(pop!())
                    } else {
                        None
                    };
                    return Ok(result);
                }
                Instr::Call(f) => {
                    let (nargs, _) = prepared.call_sigs[*f as usize];
                    let call_args = stack.split_off(stack.len() - nargs as usize);
                    let r = self.call_function(*f, call_args, depth + 1)?;
                    if let Some(v) = r {
                        stack.push(v);
                    }
                    // Tier may have changed while we were away (recursion).
                    tier = self.func_state[def_index].tier;
                }
                Instr::CallIndirect(type_index) => {
                    let slot = pop!().as_i32() as u32;
                    let entry = self
                        .table
                        .get(slot as usize)
                        .copied()
                        .ok_or(Trap::TableOutOfBounds)?;
                    let target = entry.ok_or(Trap::UninitializedElement)?;
                    let actual_ty = self
                        .prepared
                        .module
                        .func_type(target)
                        .ok_or(Trap::UninitializedElement)?;
                    let expected = &self.prepared.module.types[*type_index as usize];
                    if actual_ty != expected {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    let nargs = expected.params.len();
                    let call_args = stack.split_off(stack.len() - nargs);
                    let r = self.call_function(target, call_args, depth + 1)?;
                    if let Some(v) = r {
                        stack.push(v);
                    }
                    tier = self.func_state[def_index].tier;
                }
                Instr::Drop => {
                    pop!();
                }
                Instr::Select => {
                    let cond = pop!().as_i32();
                    let b = pop!();
                    let a = pop!();
                    stack.push(if cond != 0 { a } else { b });
                }
                Instr::LocalGet(i) => stack.push(locals[*i as usize]),
                Instr::LocalSet(i) => locals[*i as usize] = pop!(),
                Instr::LocalTee(i) => {
                    let v = *stack.last().expect("validated");
                    locals[*i as usize] = v;
                }
                Instr::GlobalGet(i) => stack.push(self.globals[*i as usize]),
                Instr::GlobalSet(i) => self.globals[*i as usize] = pop!(),

                // --- loads ---------------------------------------------
                Instr::I32Load(m) => {
                    let v = self.load_bytes::<4>(&mut stack, m)?;
                    stack.push(Value::I32(i32::from_le_bytes(v)));
                }
                Instr::I64Load(m) => {
                    let v = self.load_bytes::<8>(&mut stack, m)?;
                    stack.push(Value::I64(i64::from_le_bytes(v)));
                }
                Instr::F32Load(m) => {
                    let v = self.load_bytes::<4>(&mut stack, m)?;
                    stack.push(Value::F32(f32::from_le_bytes(v)));
                }
                Instr::F64Load(m) => {
                    let v = self.load_bytes::<8>(&mut stack, m)?;
                    stack.push(Value::F64(f64::from_le_bytes(v)));
                }
                Instr::I32Load8S(m) => {
                    let v = self.load_bytes::<1>(&mut stack, m)?;
                    stack.push(Value::I32(v[0] as i8 as i32));
                }
                Instr::I32Load8U(m) => {
                    let v = self.load_bytes::<1>(&mut stack, m)?;
                    stack.push(Value::I32(v[0] as i32));
                }
                Instr::I32Load16S(m) => {
                    let v = self.load_bytes::<2>(&mut stack, m)?;
                    stack.push(Value::I32(i16::from_le_bytes(v) as i32));
                }
                Instr::I32Load16U(m) => {
                    let v = self.load_bytes::<2>(&mut stack, m)?;
                    stack.push(Value::I32(u16::from_le_bytes(v) as i32));
                }
                Instr::I64Load8S(m) => {
                    let v = self.load_bytes::<1>(&mut stack, m)?;
                    stack.push(Value::I64(v[0] as i8 as i64));
                }
                Instr::I64Load8U(m) => {
                    let v = self.load_bytes::<1>(&mut stack, m)?;
                    stack.push(Value::I64(v[0] as i64));
                }
                Instr::I64Load16S(m) => {
                    let v = self.load_bytes::<2>(&mut stack, m)?;
                    stack.push(Value::I64(i16::from_le_bytes(v) as i64));
                }
                Instr::I64Load16U(m) => {
                    let v = self.load_bytes::<2>(&mut stack, m)?;
                    stack.push(Value::I64(u16::from_le_bytes(v) as i64));
                }
                Instr::I64Load32S(m) => {
                    let v = self.load_bytes::<4>(&mut stack, m)?;
                    stack.push(Value::I64(i32::from_le_bytes(v) as i64));
                }
                Instr::I64Load32U(m) => {
                    let v = self.load_bytes::<4>(&mut stack, m)?;
                    stack.push(Value::I64(u32::from_le_bytes(v) as i64));
                }

                // --- stores --------------------------------------------
                Instr::I32Store(m) => {
                    let v = pop!().as_i32();
                    self.store_bytes(&mut stack, m, &v.to_le_bytes())?;
                }
                Instr::I64Store(m) => {
                    let v = pop!().as_i64();
                    self.store_bytes(&mut stack, m, &v.to_le_bytes())?;
                }
                Instr::F32Store(m) => {
                    let v = pop!().as_f32();
                    self.store_bytes(&mut stack, m, &v.to_le_bytes())?;
                }
                Instr::F64Store(m) => {
                    let v = pop!().as_f64();
                    self.store_bytes(&mut stack, m, &v.to_le_bytes())?;
                }
                Instr::I32Store8(m) => {
                    let v = pop!().as_i32();
                    self.store_bytes(&mut stack, m, &[(v & 0xff) as u8])?;
                }
                Instr::I32Store16(m) => {
                    let v = pop!().as_i32();
                    self.store_bytes(&mut stack, m, &(v as u16).to_le_bytes())?;
                }
                Instr::I64Store8(m) => {
                    let v = pop!().as_i64();
                    self.store_bytes(&mut stack, m, &[(v & 0xff) as u8])?;
                }
                Instr::I64Store16(m) => {
                    let v = pop!().as_i64();
                    self.store_bytes(&mut stack, m, &(v as u16).to_le_bytes())?;
                }
                Instr::I64Store32(m) => {
                    let v = pop!().as_i64();
                    self.store_bytes(&mut stack, m, &(v as u32).to_le_bytes())?;
                }
                Instr::MemorySize => {
                    let pages = self.memory.as_ref().map(|m| m.size_pages()).unwrap_or(0);
                    stack.push(Value::I32(pages as i32));
                }
                Instr::MemoryGrow => {
                    let delta = pop!().as_i32() as u32;
                    self.check_grow_limit(delta)?;
                    let (result, grew) = match self.memory.as_mut() {
                        Some(mem) => {
                            let r = mem.grow(delta);
                            (r, r >= 0)
                        }
                        None => (-1, false),
                    };
                    if grew {
                        let p = self.config.profile;
                        self.charge_bucket(
                            p.memory_grow_base + p.memory_grow_per_page * delta as f64,
                            TimeBucket::MemGrow,
                        );
                    }
                    stack.push(Value::I32(result));
                }

                // --- constants -----------------------------------------
                Instr::I32Const(v) => stack.push(Value::I32(*v)),
                Instr::I64Const(v) => stack.push(Value::I64(*v)),
                Instr::F32Const(v) => stack.push(Value::F32(*v)),
                Instr::F64Const(v) => stack.push(Value::F64(*v)),

                // --- i32 compare ---------------------------------------
                Instr::I32Eqz => {
                    let a = pop!().as_i32();
                    stack.push(Value::I32((a == 0) as i32));
                }
                Instr::I32Eq => cmp_i32!(|a, b| a == b),
                Instr::I32Ne => cmp_i32!(|a, b| a != b),
                Instr::I32LtS => cmp_i32!(|a, b| a < b),
                Instr::I32LtU => cmp_i32!(|a: i32, b: i32| (a as u32) < (b as u32)),
                Instr::I32GtS => cmp_i32!(|a, b| a > b),
                Instr::I32GtU => cmp_i32!(|a: i32, b: i32| (a as u32) > (b as u32)),
                Instr::I32LeS => cmp_i32!(|a, b| a <= b),
                Instr::I32LeU => cmp_i32!(|a: i32, b: i32| (a as u32) <= (b as u32)),
                Instr::I32GeS => cmp_i32!(|a, b| a >= b),
                Instr::I32GeU => cmp_i32!(|a: i32, b: i32| (a as u32) >= (b as u32)),
                // --- i64 compare ---------------------------------------
                Instr::I64Eqz => {
                    let a = pop!().as_i64();
                    stack.push(Value::I32((a == 0) as i32));
                }
                Instr::I64Eq => cmp_i64!(|a, b| a == b),
                Instr::I64Ne => cmp_i64!(|a, b| a != b),
                Instr::I64LtS => cmp_i64!(|a, b| a < b),
                Instr::I64LtU => cmp_i64!(|a: i64, b: i64| (a as u64) < (b as u64)),
                Instr::I64GtS => cmp_i64!(|a, b| a > b),
                Instr::I64GtU => cmp_i64!(|a: i64, b: i64| (a as u64) > (b as u64)),
                Instr::I64LeS => cmp_i64!(|a, b| a <= b),
                Instr::I64LeU => cmp_i64!(|a: i64, b: i64| (a as u64) <= (b as u64)),
                Instr::I64GeS => cmp_i64!(|a, b| a >= b),
                Instr::I64GeU => cmp_i64!(|a: i64, b: i64| (a as u64) >= (b as u64)),
                // --- float compare -------------------------------------
                Instr::F32Eq => cmp_f32!(|a, b| a == b),
                Instr::F32Ne => cmp_f32!(|a, b| a != b),
                Instr::F32Lt => cmp_f32!(|a, b| a < b),
                Instr::F32Gt => cmp_f32!(|a, b| a > b),
                Instr::F32Le => cmp_f32!(|a, b| a <= b),
                Instr::F32Ge => cmp_f32!(|a, b| a >= b),
                Instr::F64Eq => cmp_f64!(|a, b| a == b),
                Instr::F64Ne => cmp_f64!(|a, b| a != b),
                Instr::F64Lt => cmp_f64!(|a, b| a < b),
                Instr::F64Gt => cmp_f64!(|a, b| a > b),
                Instr::F64Le => cmp_f64!(|a, b| a <= b),
                Instr::F64Ge => cmp_f64!(|a, b| a >= b),

                // --- i32 arithmetic ------------------------------------
                Instr::I32Clz => {
                    let a = pop!().as_i32();
                    stack.push(Value::I32(a.leading_zeros() as i32));
                }
                Instr::I32Ctz => {
                    let a = pop!().as_i32();
                    stack.push(Value::I32(a.trailing_zeros() as i32));
                }
                Instr::I32Popcnt => {
                    let a = pop!().as_i32();
                    stack.push(Value::I32(a.count_ones() as i32));
                }
                Instr::I32Add => bin_i32!(i32::wrapping_add),
                Instr::I32Sub => bin_i32!(i32::wrapping_sub),
                Instr::I32Mul => bin_i32!(i32::wrapping_mul),
                Instr::I32DivS => {
                    let b = pop!().as_i32();
                    let a = pop!().as_i32();
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    if a == i32::MIN && b == -1 {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I32(a.wrapping_div(b)));
                }
                Instr::I32DivU => {
                    let b = pop!().as_i32() as u32;
                    let a = pop!().as_i32() as u32;
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    stack.push(Value::I32((a / b) as i32));
                }
                Instr::I32RemS => {
                    let b = pop!().as_i32();
                    let a = pop!().as_i32();
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    stack.push(Value::I32(a.wrapping_rem(b)));
                }
                Instr::I32RemU => {
                    let b = pop!().as_i32() as u32;
                    let a = pop!().as_i32() as u32;
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    stack.push(Value::I32((a % b) as i32));
                }
                Instr::I32And => bin_i32!(|a, b| a & b),
                Instr::I32Or => bin_i32!(|a, b| a | b),
                Instr::I32Xor => bin_i32!(|a, b| a ^ b),
                Instr::I32Shl => bin_i32!(|a: i32, b: i32| a.wrapping_shl(b as u32)),
                Instr::I32ShrS => bin_i32!(|a: i32, b: i32| a.wrapping_shr(b as u32)),
                Instr::I32ShrU => {
                    bin_i32!(|a: i32, b: i32| ((a as u32).wrapping_shr(b as u32)) as i32)
                }
                Instr::I32Rotl => bin_i32!(|a: i32, b: i32| a.rotate_left(b as u32 & 31)),
                Instr::I32Rotr => bin_i32!(|a: i32, b: i32| a.rotate_right(b as u32 & 31)),
                // --- i64 arithmetic ------------------------------------
                Instr::I64Clz => {
                    let a = pop!().as_i64();
                    stack.push(Value::I64(a.leading_zeros() as i64));
                }
                Instr::I64Ctz => {
                    let a = pop!().as_i64();
                    stack.push(Value::I64(a.trailing_zeros() as i64));
                }
                Instr::I64Popcnt => {
                    let a = pop!().as_i64();
                    stack.push(Value::I64(a.count_ones() as i64));
                }
                Instr::I64Add => bin_i64!(i64::wrapping_add),
                Instr::I64Sub => bin_i64!(i64::wrapping_sub),
                Instr::I64Mul => bin_i64!(i64::wrapping_mul),
                Instr::I64DivS => {
                    let b = pop!().as_i64();
                    let a = pop!().as_i64();
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    if a == i64::MIN && b == -1 {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I64(a.wrapping_div(b)));
                }
                Instr::I64DivU => {
                    let b = pop!().as_i64() as u64;
                    let a = pop!().as_i64() as u64;
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    stack.push(Value::I64((a / b) as i64));
                }
                Instr::I64RemS => {
                    let b = pop!().as_i64();
                    let a = pop!().as_i64();
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    stack.push(Value::I64(a.wrapping_rem(b)));
                }
                Instr::I64RemU => {
                    let b = pop!().as_i64() as u64;
                    let a = pop!().as_i64() as u64;
                    if b == 0 {
                        return Err(Trap::DivByZero);
                    }
                    stack.push(Value::I64((a % b) as i64));
                }
                Instr::I64And => bin_i64!(|a, b| a & b),
                Instr::I64Or => bin_i64!(|a, b| a | b),
                Instr::I64Xor => bin_i64!(|a, b| a ^ b),
                Instr::I64Shl => bin_i64!(|a: i64, b: i64| a.wrapping_shl(b as u32)),
                Instr::I64ShrS => bin_i64!(|a: i64, b: i64| a.wrapping_shr(b as u32)),
                Instr::I64ShrU => {
                    bin_i64!(|a: i64, b: i64| ((a as u64).wrapping_shr(b as u32)) as i64)
                }
                Instr::I64Rotl => bin_i64!(|a: i64, b: i64| a.rotate_left(b as u32 & 63)),
                Instr::I64Rotr => bin_i64!(|a: i64, b: i64| a.rotate_right(b as u32 & 63)),

                // --- f32 arithmetic ------------------------------------
                Instr::F32Abs => un_f32!(f32::abs),
                Instr::F32Neg => un_f32!(|a: f32| -a),
                Instr::F32Ceil => un_f32!(f32::ceil),
                Instr::F32Floor => un_f32!(f32::floor),
                Instr::F32Trunc => un_f32!(f32::trunc),
                Instr::F32Nearest => un_f32!(f32::round_ties_even),
                Instr::F32Sqrt => un_f32!(f32::sqrt),
                Instr::F32Add => bin_f32!(|a, b| a + b),
                Instr::F32Sub => bin_f32!(|a, b| a - b),
                Instr::F32Mul => bin_f32!(|a, b| a * b),
                Instr::F32Div => bin_f32!(|a, b| a / b),
                Instr::F32Min => bin_f32!(wasm_min_f32),
                Instr::F32Max => bin_f32!(wasm_max_f32),
                Instr::F32Copysign => bin_f32!(f32::copysign),
                // --- f64 arithmetic ------------------------------------
                Instr::F64Abs => un_f64!(f64::abs),
                Instr::F64Neg => un_f64!(|a: f64| -a),
                Instr::F64Ceil => un_f64!(f64::ceil),
                Instr::F64Floor => un_f64!(f64::floor),
                Instr::F64Trunc => un_f64!(f64::trunc),
                Instr::F64Nearest => un_f64!(f64::round_ties_even),
                Instr::F64Sqrt => un_f64!(f64::sqrt),
                Instr::F64Add => bin_f64!(|a, b| a + b),
                Instr::F64Sub => bin_f64!(|a, b| a - b),
                Instr::F64Mul => bin_f64!(|a, b| a * b),
                Instr::F64Div => bin_f64!(|a, b| a / b),
                Instr::F64Min => bin_f64!(wasm_min_f64),
                Instr::F64Max => bin_f64!(wasm_max_f64),
                Instr::F64Copysign => bin_f64!(f64::copysign),

                // --- conversions ---------------------------------------
                Instr::I32WrapI64 => {
                    let a = pop!().as_i64();
                    stack.push(Value::I32(a as i32));
                }
                Instr::I32TruncF32S => {
                    let a = pop!().as_f32() as f64;
                    stack.push(Value::I32(trunc_to_i32(a)?));
                }
                Instr::I32TruncF32U => {
                    let a = pop!().as_f32() as f64;
                    stack.push(Value::I32(trunc_to_u32(a)? as i32));
                }
                Instr::I32TruncF64S => {
                    let a = pop!().as_f64();
                    stack.push(Value::I32(trunc_to_i32(a)?));
                }
                Instr::I32TruncF64U => {
                    let a = pop!().as_f64();
                    stack.push(Value::I32(trunc_to_u32(a)? as i32));
                }
                Instr::I64ExtendI32S => {
                    let a = pop!().as_i32();
                    stack.push(Value::I64(a as i64));
                }
                Instr::I64ExtendI32U => {
                    let a = pop!().as_i32();
                    stack.push(Value::I64(a as u32 as i64));
                }
                Instr::I64TruncF32S => {
                    let a = pop!().as_f32() as f64;
                    stack.push(Value::I64(trunc_to_i64(a)?));
                }
                Instr::I64TruncF32U => {
                    let a = pop!().as_f32() as f64;
                    stack.push(Value::I64(trunc_to_u64(a)? as i64));
                }
                Instr::I64TruncF64S => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(trunc_to_i64(a)?));
                }
                Instr::I64TruncF64U => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(trunc_to_u64(a)? as i64));
                }
                Instr::F32ConvertI32S => {
                    let a = pop!().as_i32();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI32U => {
                    let a = pop!().as_i32() as u32;
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI64S => {
                    let a = pop!().as_i64();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI64U => {
                    let a = pop!().as_i64() as u64;
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32DemoteF64 => {
                    let a = pop!().as_f64();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F64ConvertI32S => {
                    let a = pop!().as_i32();
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64ConvertI32U => {
                    let a = pop!().as_i32() as u32;
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64ConvertI64S => {
                    let a = pop!().as_i64();
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64ConvertI64U => {
                    let a = pop!().as_i64() as u64;
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64PromoteF32 => {
                    let a = pop!().as_f32();
                    stack.push(Value::F64(a as f64));
                }
                Instr::I32ReinterpretF32 => {
                    let a = pop!().as_f32();
                    stack.push(Value::I32(a.to_bits() as i32));
                }
                Instr::I64ReinterpretF64 => {
                    let a = pop!().as_f64();
                    stack.push(Value::I64(a.to_bits() as i64));
                }
                Instr::F32ReinterpretI32 => {
                    let a = pop!().as_i32();
                    stack.push(Value::F32(f32::from_bits(a as u32)));
                }
                Instr::F64ReinterpretI64 => {
                    let a = pop!().as_i64();
                    stack.push(Value::F64(f64::from_bits(a as u64)));
                }
            }
            pc += 1;
        }
    }

    /// Perform a branch to relative depth `d`; returns the new pc.
    fn do_branch(
        &mut self,
        ctrl: &mut Vec<Ctrl>,
        stack: &mut Vec<Value>,
        d: u32,
        def_index: usize,
        tier: &mut Tier,
    ) -> usize {
        let target_idx = ctrl.len() - 1 - d as usize;
        let target = &ctrl[target_idx];
        if target.is_loop {
            // Back-edge: loop hotness drives tier-up (OSR-style).
            let opener = target.opener_pc;
            let height = target.height;
            ctrl.truncate(target_idx + 1);
            stack.truncate(height);
            self.note_hotness(def_index, 1);
            *tier = self.func_state[def_index].tier;
            opener + 1
        } else {
            let arity = target.arity;
            let height = target.height;
            let end_pc = target.end_pc;
            let keep = stack.split_off(stack.len() - arity);
            stack.truncate(height);
            stack.extend(keep);
            ctrl.truncate(target_idx);
            end_pc + 1
        }
    }

    /// Bump a function's hotness; tier up when the threshold is crossed
    /// (Default policy only). Charges the optimizing compile cost for the
    /// function at the moment of tier-up, as browsers do at runtime.
    pub(crate) fn note_hotness(&mut self, def_index: usize, amount: u64) {
        let state = &mut self.func_state[def_index];
        state.hotness += amount;
        if state.tier == Tier::Baseline
            && self.config.tier_policy == TierPolicy::Default
            && state.hotness >= self.config.profile.tier_up_threshold
        {
            state.tier = Tier::Optimizing;
            self.tier_ups += 1;
            let units = self.prepared.module.functions[def_index].body.len() as f64;
            let cost = units * self.config.profile.optimizing.compile_cost_per_unit;
            self.charge_bucket(cost, TimeBucket::Compile);
        }
    }

    fn effective_addr(stack: &mut Vec<Value>, m: &MemArg) -> u64 {
        let base = stack.pop().expect("validated").as_i32() as u32 as u64;
        base + m.offset as u64
    }

    fn load_bytes<const N: usize>(
        &mut self,
        stack: &mut Vec<Value>,
        m: &MemArg,
    ) -> Result<[u8; N], Trap> {
        let addr = Self::effective_addr(stack, m);
        let mem = self.memory.as_ref().ok_or(Trap::MemoryOutOfBounds {
            addr,
            width: N as u32,
        })?;
        let s = mem
            .read(addr, N as u32)
            .map_err(|_| Trap::MemoryOutOfBounds {
                addr,
                width: N as u32,
            })?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    fn store_bytes(
        &mut self,
        stack: &mut Vec<Value>,
        m: &MemArg,
        bytes: &[u8],
    ) -> Result<(), Trap> {
        let addr = Self::effective_addr(stack, m);
        let mem = self.memory.as_mut().ok_or(Trap::MemoryOutOfBounds {
            addr,
            width: bytes.len() as u32,
        })?;
        mem.write(addr, bytes).map_err(|_| Trap::MemoryOutOfBounds {
            addr,
            width: bytes.len() as u32,
        })
    }

    fn call_host(&mut self, import_index: u32, args: &[Value]) -> Result<Option<Value>, Trap> {
        let imp = &self.prepared.module.imports[import_index as usize];
        let key = format!("{}.{}", imp.module, imp.field);
        // Each host call crosses the boundary twice (out and back).
        self.cross_boundary();
        let mut f = self
            .hostfns
            .remove(&key)
            .ok_or(Trap::MissingImport { name: key.clone() })?;
        let result = {
            let mut ctx = HostCtx {
                memory: self.memory.as_mut(),
                output: &mut self.output,
            };
            f(&mut ctx, args)
        };
        self.hostfns.insert(key, f);
        self.cross_boundary();
        result
    }
}

pub(crate) fn wasm_min_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        // min(-0, 0) = -0.
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_max_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

pub(crate) fn trunc_to_i32(v: f64) -> Result<i32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if t >= -(2f64.powi(31)) && t < 2f64.powi(31) {
        Ok(t as i32)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_to_u32(v: f64) -> Result<u32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if t > -1.0 && t < 2f64.powi(32) {
        Ok(t as u32)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_to_i64(v: f64) -> Result<i64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if t >= -(2f64.powi(63)) && t < 2f64.powi(63) {
        Ok(t as i64)
    } else {
        Err(Trap::InvalidConversion)
    }
}

pub(crate) fn trunc_to_u64(v: f64) -> Result<u64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if t > -1.0 && t < 2f64.powi(64) {
        Ok(t as u64)
    } else {
        Err(Trap::InvalidConversion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_follow_wasm_nan_and_zero_rules() {
        assert!(wasm_min_f64(f64::NAN, 1.0).is_nan());
        assert!(wasm_max_f32(1.0, f32::NAN).is_nan());
        assert!(wasm_min_f64(-0.0, 0.0).is_sign_negative());
        assert!(wasm_max_f64(-0.0, 0.0).is_sign_positive());
        assert_eq!(wasm_min_f64(1.0, 2.0), 1.0);
        assert_eq!(wasm_max_f32(1.0, 2.0), 2.0);
    }

    #[test]
    fn trunc_boundaries() {
        assert_eq!(trunc_to_i32(2147483647.9).unwrap(), 2147483647);
        assert!(trunc_to_i32(2147483648.0).is_err());
        assert_eq!(trunc_to_i32(-2147483648.0).unwrap(), i32::MIN);
        assert!(trunc_to_i32(-2147483649.0).is_err());
        assert!(trunc_to_i32(f64::NAN).is_err());
        assert_eq!(trunc_to_u32(-0.5).unwrap(), 0);
        assert!(trunc_to_u32(-1.0).is_err());
        assert_eq!(trunc_to_u64(1.5).unwrap(), 1);
        assert!(trunc_to_i64(f64::INFINITY).is_err());
    }
}
