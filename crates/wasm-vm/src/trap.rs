//! Runtime traps (spec §4.5.3) and host errors.

use std::fmt;

/// A WebAssembly trap or embedding error.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// `unreachable` executed.
    Unreachable,
    /// Out-of-bounds linear-memory access.
    MemoryOutOfBounds {
        /// Effective address of the access.
        addr: u64,
        /// Access width in bytes.
        width: u32,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// `INT_MIN / -1` style overflow.
    IntegerOverflow,
    /// Float-to-int truncation of NaN or out-of-range value.
    InvalidConversion,
    /// Call stack exceeded the configured depth.
    StackOverflow,
    /// `call_indirect` hit a null table slot.
    UninitializedElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Table access out of bounds.
    TableOutOfBounds,
    /// Execution exceeded the configured step budget.
    StepBudgetExhausted,
    /// Linear memory would exceed the configured resource-limit ceiling
    /// ([`wb_env::ResourceLimits::max_memory_bytes`]). Unlike growth past
    /// the module's declared maximum (which politely returns `-1` from
    /// `memory.grow`), the embedder ceiling is a hard stop, like an OS
    /// OOM kill — but deterministic.
    MemoryLimitExceeded {
        /// Bytes the memory would have occupied.
        requested_bytes: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// The requested export does not exist or is not a function.
    NoSuchExport {
        /// The looked-up name.
        name: String,
    },
    /// Argument count/type mismatch when invoking an export.
    BadInvokeArgs {
        /// Description of the mismatch.
        detail: String,
    },
    /// A missing host import was called.
    MissingImport {
        /// `module.field` of the import.
        name: String,
    },
    /// A host function reported an error.
    Host {
        /// Host-provided message.
        message: String,
    },
    /// A data segment fell outside initial memory at instantiation.
    DataSegmentOutOfBounds,
    /// An element segment fell outside the table at instantiation.
    ElementSegmentOutOfBounds,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds { addr, width } => {
                write!(f, "out-of-bounds memory access ({width} bytes at {addr})")
            }
            Trap::DivByZero => write!(f, "integer divide by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversion => write!(f, "invalid conversion to integer"),
            Trap::StackOverflow => write!(f, "call stack exhausted"),
            Trap::UninitializedElement => write!(f, "uninitialized table element"),
            Trap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::TableOutOfBounds => write!(f, "undefined table element"),
            Trap::StepBudgetExhausted => write!(f, "step budget exhausted"),
            Trap::MemoryLimitExceeded {
                requested_bytes,
                limit,
            } => write!(
                f,
                "memory limit exceeded ({requested_bytes} bytes requested, limit {limit})"
            ),
            Trap::NoSuchExport { name } => write!(f, "no exported function '{name}'"),
            Trap::BadInvokeArgs { detail } => write!(f, "bad invoke arguments: {detail}"),
            Trap::MissingImport { name } => write!(f, "missing host import '{name}'"),
            Trap::Host { message } => write!(f, "host error: {message}"),
            Trap::DataSegmentOutOfBounds => write!(f, "data segment out of bounds"),
            Trap::ElementSegmentOutOfBounds => write!(f, "element segment out of bounds"),
        }
    }
}

impl std::error::Error for Trap {}
