//! The fused execution core: interprets the [`Mop`](crate::fuse::Mop)
//! stream produced by `fuse.rs` over an **untagged `u64` operand stack**
//! and untagged locals, charging the exact same virtual-cost sequence as
//! the reference interpreter in `interp.rs`.
//!
//! Cost-equivalence contract (checked by the fused-vs-reference
//! differential tests): for every retired constituent instruction this
//! engine bumps the same `(tier, OpClass)` counter and the same Table 12
//! arithmetic counter, in the same order relative to traps and tier-up
//! points, as the reference path. Values ↔ bits conversion happens only
//! at call, host and invoke boundaries, where tagged [`Value`]s are the
//! interface type. The only permitted divergence is *where inside a fused
//! group* a step-budget exhaustion is detected (the budget is consumed in
//! one batch); budget-trapped runs are never measured.

use crate::engine::{Instance, Tier};
use crate::fuse::{bits_to_value, value_bits, LoadKind, Mop, StoreKind};
use crate::prep::NO_PC;
use crate::trap::Trap;
use crate::value::Value;
use std::sync::Arc;
use wb_env::{OpClass, TimeBucket};

/// A control frame over the micro-op stream. `after_end` is the micro-op
/// index just past the frame's `end`; `restart` is the back-edge target
/// (loops only).
struct FCtrl {
    restart: u32,
    after_end: u32,
    height: usize,
    arity: usize,
    is_loop: bool,
}

impl Instance {
    /// Execute `def_index` over the fused micro-op stream. Mirrors
    /// `run_body_reference` exactly in every observable measurement.
    pub(crate) fn run_body_fused(
        &mut self,
        def_index: usize,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, Trap> {
        let prepared = Arc::clone(&self.prepared);
        let fused = prepared.fused(def_index);
        let func = &prepared.module.functions[def_index];
        let ty = &prepared.module.types[func.type_index as usize];
        let result_ty = ty.results.first().copied();

        let mut locals: Vec<u64> = Vec::with_capacity(args.len() + func.locals.len());
        locals.extend(args.iter().map(|v| value_bits(*v)));
        locals.extend(std::iter::repeat_n(0u64, func.locals.len()));

        let mut stack: Vec<u64> = Vec::with_capacity(16);
        let mut ctrl: Vec<FCtrl> = Vec::with_capacity(8);
        let code = &fused.code;
        let mut pc = 0usize;
        let mut tier = self.func_state[def_index].tier;

        macro_rules! pop {
            () => {
                stack.pop().expect("validated: operand present")
            };
        }
        // Batched step-budget consumption for a whole group.
        macro_rules! steps {
            ($n:expr) => {
                self.steps += $n;
                if self.steps > self.config.limits.fuel_budget() {
                    return Err(Trap::StepBudgetExhausted);
                }
            };
        }
        // Charge `$n` retired ops of class `$c` at the current tier.
        macro_rules! bump {
            ($c:expr, $n:expr) => {
                self.tier_counts[tier as usize].bump($c, $n)
            };
        }
        // Charge a binop constituent: its class plus its Table 12 kind.
        macro_rules! bump_bin {
            ($op:expr) => {
                bump!($op.class(), 1);
                if let Some(kind) = $op.arith() {
                    self.bump_arith(kind);
                }
            };
        }
        macro_rules! branch_to {
            ($d:expr) => {{
                pc = Self::do_branch_fused(self, &mut ctrl, &mut stack, $d, def_index, &mut tier);
                continue;
            }};
        }
        macro_rules! ret {
            () => {{
                let result = match result_ty {
                    Some(t) => Some(bits_to_value(t, pop!())),
                    None => None,
                };
                return Ok(result);
            }};
        }

        loop {
            match &code[pc] {
                // ---- singleton control ---------------------------------
                Mop::Unreachable => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    return Err(Trap::Unreachable);
                }
                Mop::Nop => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                }
                Mop::Block { after_end, arity } => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    ctrl.push(FCtrl {
                        restart: 0,
                        after_end: *after_end,
                        height: stack.len(),
                        arity: *arity as usize,
                        is_loop: false,
                    });
                }
                Mop::Loop { after_end } => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    ctrl.push(FCtrl {
                        restart: (pc + 1) as u32,
                        after_end: *after_end,
                        height: stack.len(),
                        arity: 0,
                        is_loop: true,
                    });
                }
                Mop::If {
                    after_end,
                    else_skip,
                    arity,
                } => {
                    steps!(1);
                    bump!(OpClass::Branch, 1);
                    let cond = pop!() as u32;
                    ctrl.push(FCtrl {
                        restart: 0,
                        after_end: *after_end,
                        height: stack.len(),
                        arity: *arity as usize,
                        is_loop: false,
                    });
                    if cond == 0 {
                        if *else_skip == NO_PC {
                            let frame = ctrl.pop().expect("just pushed");
                            pc = frame.after_end as usize;
                        } else {
                            pc = *else_skip as usize;
                        }
                        continue;
                    }
                }
                Mop::Else => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    // Reached at the end of a then-arm: jump past the end.
                    let frame = ctrl.pop().expect("validated: else inside if");
                    pc = frame.after_end as usize;
                    continue;
                }
                Mop::End => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    match ctrl.pop() {
                        Some(_frame) => {}
                        None => ret!(),
                    }
                }
                Mop::Br(d) => {
                    steps!(1);
                    bump!(OpClass::Branch, 1);
                    branch_to!(*d);
                }
                Mop::BrIf(d) => {
                    steps!(1);
                    bump!(OpClass::Branch, 1);
                    let cond = pop!() as u32;
                    if cond != 0 {
                        branch_to!(*d);
                    }
                }
                Mop::BrTable(targets, default) => {
                    steps!(1);
                    bump!(OpClass::Branch, 1);
                    let idx = (pop!() as u32 as i32) as usize;
                    let d = *targets.get(idx).unwrap_or(default);
                    branch_to!(d);
                }
                Mop::Return => {
                    steps!(1);
                    bump!(OpClass::Branch, 1);
                    ret!();
                }
                Mop::Call(f) => {
                    steps!(1);
                    bump!(OpClass::Call, 1);
                    let f = *f;
                    let nargs = prepared.call_sigs[f as usize].0 as usize;
                    let cty = prepared.module.func_type(f).expect("validated: callee");
                    let base = stack.len() - nargs;
                    let call_args: Vec<Value> = cty
                        .params
                        .iter()
                        .zip(&stack[base..])
                        .map(|(t, bits)| bits_to_value(*t, *bits))
                        .collect();
                    stack.truncate(base);
                    let r = self.call_function(f, call_args, depth + 1)?;
                    if let Some(v) = r {
                        stack.push(value_bits(v));
                    }
                    // Tier may have changed while we were away (recursion).
                    tier = self.func_state[def_index].tier;
                }
                Mop::CallIndirect(type_index) => {
                    steps!(1);
                    bump!(OpClass::Call, 1);
                    let slot = pop!() as u32;
                    let entry = self
                        .table
                        .get(slot as usize)
                        .copied()
                        .ok_or(Trap::TableOutOfBounds)?;
                    let target = entry.ok_or(Trap::UninitializedElement)?;
                    let actual_ty = self
                        .prepared
                        .module
                        .func_type(target)
                        .ok_or(Trap::UninitializedElement)?;
                    let expected = &prepared.module.types[*type_index as usize];
                    if actual_ty != expected {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    let nargs = expected.params.len();
                    let base = stack.len() - nargs;
                    let call_args: Vec<Value> = expected
                        .params
                        .iter()
                        .zip(&stack[base..])
                        .map(|(t, bits)| bits_to_value(*t, *bits))
                        .collect();
                    stack.truncate(base);
                    let r = self.call_function(target, call_args, depth + 1)?;
                    if let Some(v) = r {
                        stack.push(value_bits(v));
                    }
                    tier = self.func_state[def_index].tier;
                }

                // ---- singleton data ops --------------------------------
                Mop::Drop => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    pop!();
                }
                Mop::Select => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    let cond = pop!() as u32;
                    let b = pop!();
                    let a = pop!();
                    stack.push(if cond != 0 { a } else { b });
                }
                Mop::LocalGet(i) => {
                    steps!(1);
                    bump!(OpClass::Local, 1);
                    stack.push(locals[*i as usize]);
                }
                Mop::LocalSet(i) => {
                    steps!(1);
                    bump!(OpClass::Local, 1);
                    locals[*i as usize] = pop!();
                }
                Mop::LocalTee(i) => {
                    steps!(1);
                    bump!(OpClass::Local, 1);
                    locals[*i as usize] = *stack.last().expect("validated");
                }
                Mop::GlobalGet(i) => {
                    steps!(1);
                    bump!(OpClass::Global, 1);
                    stack.push(value_bits(self.globals[*i as usize]));
                }
                Mop::GlobalSet { idx, ty } => {
                    steps!(1);
                    bump!(OpClass::Global, 1);
                    self.globals[*idx as usize] = bits_to_value(*ty, pop!());
                }
                Mop::Load { kind, offset } => {
                    steps!(1);
                    bump!(OpClass::Load, 1);
                    let addr = (pop!() as u32 as u64) + offset;
                    let v = self.load_u64(*kind, addr)?;
                    stack.push(v);
                }
                Mop::Store { kind, offset } => {
                    steps!(1);
                    bump!(OpClass::Store, 1);
                    let v = pop!();
                    let addr = (pop!() as u32 as u64) + offset;
                    self.store_u64(*kind, addr, v)?;
                }
                Mop::MemorySize => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    let pages = self.memory.as_ref().map(|m| m.size_pages()).unwrap_or(0);
                    stack.push(u64::from(pages));
                }
                Mop::MemoryGrow => {
                    steps!(1);
                    bump!(OpClass::Other, 1);
                    let delta = pop!() as u32;
                    self.check_grow_limit(delta)?;
                    let (result, grew) = match self.memory.as_mut() {
                        Some(mem) => {
                            let r = mem.grow(delta);
                            (r, r >= 0)
                        }
                        None => (-1, false),
                    };
                    if grew {
                        let p = self.config.profile;
                        self.charge_bucket(
                            p.memory_grow_base + p.memory_grow_per_page * delta as f64,
                            TimeBucket::MemGrow,
                        );
                    }
                    stack.push(result as u32 as u64);
                }
                Mop::Const(c) => {
                    steps!(1);
                    bump!(OpClass::Const, 1);
                    stack.push(*c);
                }
                Mop::Un(un) => {
                    steps!(1);
                    bump!(un.class(), 1);
                    let a = pop!();
                    stack.push(un.apply(a)?);
                }
                Mop::Bin(op) => {
                    steps!(1);
                    bump_bin!(op);
                    let b = pop!();
                    let a = pop!();
                    stack.push(op.apply(a, b)?);
                }

                // ---- fused superinstructions ---------------------------
                // Constituent accounting happens in source order, and the
                // fusable op's own bump lands *before* its potential trap,
                // exactly as the reference interpreter would charge it.
                Mop::LLBin { a, b, op } => {
                    steps!(3);
                    bump!(OpClass::Local, 2);
                    bump_bin!(op);
                    let r = op.apply(locals[*a as usize], locals[*b as usize])?;
                    stack.push(r);
                }
                Mop::LLBinSet { a, b, dst, op } => {
                    steps!(4);
                    bump!(OpClass::Local, 2);
                    bump_bin!(op);
                    let r = op.apply(locals[*a as usize], locals[*b as usize])?;
                    bump!(OpClass::Local, 1);
                    locals[*dst as usize] = r;
                }
                Mop::LCBin { a, c, op } => {
                    steps!(3);
                    bump!(OpClass::Local, 1);
                    bump!(OpClass::Const, 1);
                    bump_bin!(op);
                    let r = op.apply(locals[*a as usize], *c)?;
                    stack.push(r);
                }
                Mop::LCBinSet { a, c, dst, op } => {
                    steps!(4);
                    bump!(OpClass::Local, 1);
                    bump!(OpClass::Const, 1);
                    bump_bin!(op);
                    let r = op.apply(locals[*a as usize], *c)?;
                    bump!(OpClass::Local, 1);
                    locals[*dst as usize] = r;
                }
                Mop::LBin { b, op } => {
                    steps!(2);
                    bump!(OpClass::Local, 1);
                    bump_bin!(op);
                    let a = pop!();
                    stack.push(op.apply(a, locals[*b as usize])?);
                }
                Mop::CBin { c, op } => {
                    steps!(2);
                    bump!(OpClass::Const, 1);
                    bump_bin!(op);
                    let a = pop!();
                    stack.push(op.apply(a, *c)?);
                }
                Mop::CBinSet { c, dst, op } => {
                    steps!(3);
                    bump!(OpClass::Const, 1);
                    bump_bin!(op);
                    let a = pop!();
                    let r = op.apply(a, *c)?;
                    bump!(OpClass::Local, 1);
                    locals[*dst as usize] = r;
                }
                Mop::BinSet { dst, op } => {
                    steps!(2);
                    bump_bin!(op);
                    let b = pop!();
                    let a = pop!();
                    let r = op.apply(a, b)?;
                    bump!(OpClass::Local, 1);
                    locals[*dst as usize] = r;
                }
                Mop::LConst { c, dst } => {
                    steps!(2);
                    bump!(OpClass::Const, 1);
                    bump!(OpClass::Local, 1);
                    locals[*dst as usize] = *c;
                }
                Mop::LocalCopy { src, dst } => {
                    steps!(2);
                    bump!(OpClass::Local, 2);
                    locals[*dst as usize] = locals[*src as usize];
                }
                Mop::LLCmpBr { a, b, op, depth } => {
                    steps!(4);
                    bump!(OpClass::Local, 2);
                    bump_bin!(op);
                    let cond = op.apply(locals[*a as usize], locals[*b as usize])? as u32;
                    bump!(OpClass::Branch, 1);
                    if cond != 0 {
                        branch_to!(*depth);
                    }
                }
                Mop::LCCmpBr { a, c, op, depth } => {
                    steps!(4);
                    bump!(OpClass::Local, 1);
                    bump!(OpClass::Const, 1);
                    bump_bin!(op);
                    let cond = op.apply(locals[*a as usize], *c)? as u32;
                    bump!(OpClass::Branch, 1);
                    if cond != 0 {
                        branch_to!(*depth);
                    }
                }
                Mop::CmpBr { op, depth } => {
                    steps!(2);
                    bump_bin!(op);
                    let b = pop!();
                    let a = pop!();
                    let cond = op.apply(a, b)? as u32;
                    bump!(OpClass::Branch, 1);
                    if cond != 0 {
                        branch_to!(*depth);
                    }
                }
                Mop::LUnBr { a, un, depth } => {
                    steps!(3);
                    bump!(OpClass::Local, 1);
                    bump!(un.class(), 1);
                    let cond = un.apply(locals[*a as usize])? as u32;
                    bump!(OpClass::Branch, 1);
                    if cond != 0 {
                        branch_to!(*depth);
                    }
                }
                Mop::UnBr { un, depth } => {
                    steps!(2);
                    bump!(un.class(), 1);
                    let a = pop!();
                    let cond = un.apply(a)? as u32;
                    bump!(OpClass::Branch, 1);
                    if cond != 0 {
                        branch_to!(*depth);
                    }
                }
                Mop::LLoad { a, kind, offset } => {
                    steps!(2);
                    bump!(OpClass::Local, 1);
                    bump!(OpClass::Load, 1);
                    let addr = (locals[*a as usize] as u32 as u64) + offset;
                    let v = self.load_u64(*kind, addr)?;
                    stack.push(v);
                }
                Mop::LLStore { a, b, kind, offset } => {
                    steps!(3);
                    bump!(OpClass::Local, 2);
                    bump!(OpClass::Store, 1);
                    let addr = (locals[*a as usize] as u32 as u64) + offset;
                    self.store_u64(*kind, addr, locals[*b as usize])?;
                }
            }
            pc += 1;
        }
    }

    /// Branch over the fused control stack; same semantics (including
    /// back-edge hotness) as the reference `do_branch`.
    fn do_branch_fused(
        &mut self,
        ctrl: &mut Vec<FCtrl>,
        stack: &mut Vec<u64>,
        d: u32,
        def_index: usize,
        tier: &mut Tier,
    ) -> usize {
        let target_idx = ctrl.len() - 1 - d as usize;
        let target = &ctrl[target_idx];
        if target.is_loop {
            // Back-edge: loop hotness drives tier-up (OSR-style).
            let restart = target.restart as usize;
            let height = target.height;
            ctrl.truncate(target_idx + 1);
            stack.truncate(height);
            self.note_hotness(def_index, 1);
            *tier = self.func_state[def_index].tier;
            restart
        } else {
            let arity = target.arity;
            let height = target.height;
            let after_end = target.after_end as usize;
            let keep = stack.split_off(stack.len() - arity);
            stack.truncate(height);
            stack.extend(keep);
            ctrl.truncate(target_idx);
            after_end
        }
    }

    /// Bounds-checked load returning untagged bits (extension baked into
    /// `kind`); trap payload matches the reference `load_bytes`.
    fn load_u64(&self, kind: LoadKind, addr: u64) -> Result<u64, Trap> {
        // `mem.read` returns exactly `width` bytes, so the zero-pad in
        // `arr` never fires; it exists to keep this path panic-free.
        fn arr<const N: usize>(s: &[u8]) -> [u8; N] {
            let mut b = [0u8; N];
            for (d, x) in b.iter_mut().zip(s) {
                *d = *x;
            }
            b
        }
        let width = kind.width();
        let oob = Trap::MemoryOutOfBounds { addr, width };
        let mem = self.memory.as_ref().ok_or(oob.clone())?;
        let s = mem.read(addr, width).map_err(|_| oob)?;
        Ok(match kind {
            LoadKind::I32 => u32::from_le_bytes(arr(s)) as u64,
            LoadKind::I64 => u64::from_le_bytes(arr(s)),
            LoadKind::F32 => u32::from_le_bytes(arr(s)) as u64,
            LoadKind::F64 => u64::from_le_bytes(arr(s)),
            LoadKind::I32S8 => (s[0] as i8 as i32) as u32 as u64,
            LoadKind::I32U8 => s[0] as u64,
            LoadKind::I32S16 => (i16::from_le_bytes(arr(s)) as i32) as u32 as u64,
            LoadKind::I32U16 => u16::from_le_bytes(arr(s)) as u64,
            LoadKind::I64S8 => (s[0] as i8 as i64) as u64,
            LoadKind::I64U8 => s[0] as u64,
            LoadKind::I64S16 => (i16::from_le_bytes(arr(s)) as i64) as u64,
            LoadKind::I64U16 => u16::from_le_bytes(arr(s)) as u64,
            LoadKind::I64S32 => (i32::from_le_bytes(arr(s)) as i64) as u64,
            LoadKind::I64U32 => u32::from_le_bytes(arr(s)) as u64,
        })
    }

    /// Bounds-checked store of untagged bits (truncation baked into
    /// `kind`); trap payload matches the reference `store_bytes`.
    fn store_u64(&mut self, kind: StoreKind, addr: u64, v: u64) -> Result<(), Trap> {
        let width = kind.width();
        let oob = Trap::MemoryOutOfBounds { addr, width };
        let mem = self.memory.as_mut().ok_or(oob.clone())?;
        let r = match kind {
            StoreKind::I32 | StoreKind::I64As32 | StoreKind::F32 => {
                mem.write(addr, &(v as u32).to_le_bytes())
            }
            StoreKind::I64 | StoreKind::F64 => mem.write(addr, &v.to_le_bytes()),
            StoreKind::I32As8 | StoreKind::I64As8 => mem.write(addr, &[v as u8]),
            StoreKind::I32As16 | StoreKind::I64As16 => mem.write(addr, &(v as u16).to_le_bytes()),
        };
        r.map_err(|_| oob)
    }
}
