//! Static cost-equivalence audit of the fusion table.
//!
//! PR 2's hard invariant — a fused micro-op charges the **exact same
//! virtual-cost sequence** as its unfused constituents — is enforced
//! dynamically by the fused-vs-reference differential tests. This module
//! turns it into a *statically exhaustive* check: every fused family in
//! [`fuse`](crate::fuse) is symbolically expanded, for **every** operator
//! instance it can carry (all 74 [`BinOp`]s, all 46 [`UnOp`]s, all load
//! and store kinds), and its charge plan is compared event-for-event
//! against the concatenation of the reference interpreter's plans for the
//! constituent instructions.
//!
//! A charge plan is the sequence of observable cost events:
//!
//! * one op-class bump per retired constituent (`tier_counts[tier]`),
//! * the Table 12 arithmetic bump for arithmetic constituents,
//! * the position of any trap point relative to those bumps.
//!
//! Step-budget consumption is compared as a total (the fused engine
//! batches a group's steps up front — the one documented divergence; see
//! `exec.rs`). The audit also proves each family's constituents carry no
//! `TimeBucket` charge and no hotness note (those exist only on
//! `memory.grow`, calls and loop back-edges, none of which fuse), and
//! round-trips each instance through [`match_fused`] to confirm the
//! lowering actually produces the audited family at the audited width.

use crate::classify::{arith_kind, classify, ArithKind};
use crate::fuse::{match_fused, BinOp, LoadKind, Mop, StoreKind, UnOp};
use wb_env::OpClass;
use wb_wasm::{Instr, MemArg};

/// One audited (family, operator) instance.
#[derive(Debug, Clone)]
pub struct FusionAuditEntry {
    /// Fused family name (e.g. `"LLBinSet"`).
    pub family: &'static str,
    /// Instance label (family plus the carried operator).
    pub instance: String,
    /// Source instructions the fused op retires.
    pub constituents: Vec<String>,
    /// The fused op's charge plan, one event per line.
    pub fused_charges: Vec<String>,
    /// The reference interpreter's concatenated charge plan.
    pub reference_charges: Vec<String>,
    /// Whether the plans agree (and the lowering round-trips).
    pub ok: bool,
    /// Human-readable reason when `ok` is false.
    pub detail: Option<String>,
}

/// A single observable cost event. `Step` totals are compared separately
/// because the fused engine batches a group's budget consumption.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// One `tier_counts[tier].bump(class, 1)`.
    Class(OpClass),
    /// One Table 12 arithmetic bump.
    Arith(ArithKind),
    /// A point at which execution may trap.
    Trap,
}

impl Ev {
    fn render(&self) -> String {
        match self {
            Ev::Class(c) => format!("class:{c:?}"),
            Ev::Arith(k) => format!("arith:{k:?}"),
            Ev::Trap => "trap-point".into(),
        }
    }
}

fn can_trap_bin(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        I32DivS | I32DivU | I32RemS | I32RemU | I64DivS | I64DivU | I64RemS | I64RemU
    )
}

fn can_trap_un(un: UnOp) -> bool {
    use UnOp::*;
    matches!(
        un,
        I32TruncF32S
            | I32TruncF32U
            | I32TruncF64S
            | I32TruncF64U
            | I64TruncF32S
            | I64TruncF32U
            | I64TruncF64S
            | I64TruncF64U
    )
}

/// The source instruction a [`BinOp`] was lifted from. Exhaustive — adding
/// a `BinOp` variant without extending the audit fails to compile.
fn instr_of_bin(op: BinOp) -> Instr {
    use BinOp::*;
    match op {
        I32Add => Instr::I32Add,
        I32Sub => Instr::I32Sub,
        I32Mul => Instr::I32Mul,
        I32DivS => Instr::I32DivS,
        I32DivU => Instr::I32DivU,
        I32RemS => Instr::I32RemS,
        I32RemU => Instr::I32RemU,
        I32And => Instr::I32And,
        I32Or => Instr::I32Or,
        I32Xor => Instr::I32Xor,
        I32Shl => Instr::I32Shl,
        I32ShrS => Instr::I32ShrS,
        I32ShrU => Instr::I32ShrU,
        I32Rotl => Instr::I32Rotl,
        I32Rotr => Instr::I32Rotr,
        I32Eq => Instr::I32Eq,
        I32Ne => Instr::I32Ne,
        I32LtS => Instr::I32LtS,
        I32LtU => Instr::I32LtU,
        I32GtS => Instr::I32GtS,
        I32GtU => Instr::I32GtU,
        I32LeS => Instr::I32LeS,
        I32LeU => Instr::I32LeU,
        I32GeS => Instr::I32GeS,
        I32GeU => Instr::I32GeU,
        I64Add => Instr::I64Add,
        I64Sub => Instr::I64Sub,
        I64Mul => Instr::I64Mul,
        I64DivS => Instr::I64DivS,
        I64DivU => Instr::I64DivU,
        I64RemS => Instr::I64RemS,
        I64RemU => Instr::I64RemU,
        I64And => Instr::I64And,
        I64Or => Instr::I64Or,
        I64Xor => Instr::I64Xor,
        I64Shl => Instr::I64Shl,
        I64ShrS => Instr::I64ShrS,
        I64ShrU => Instr::I64ShrU,
        I64Rotl => Instr::I64Rotl,
        I64Rotr => Instr::I64Rotr,
        I64Eq => Instr::I64Eq,
        I64Ne => Instr::I64Ne,
        I64LtS => Instr::I64LtS,
        I64LtU => Instr::I64LtU,
        I64GtS => Instr::I64GtS,
        I64GtU => Instr::I64GtU,
        I64LeS => Instr::I64LeS,
        I64LeU => Instr::I64LeU,
        I64GeS => Instr::I64GeS,
        I64GeU => Instr::I64GeU,
        F32Add => Instr::F32Add,
        F32Sub => Instr::F32Sub,
        F32Mul => Instr::F32Mul,
        F32Div => Instr::F32Div,
        F32Min => Instr::F32Min,
        F32Max => Instr::F32Max,
        F32Copysign => Instr::F32Copysign,
        F32Eq => Instr::F32Eq,
        F32Ne => Instr::F32Ne,
        F32Lt => Instr::F32Lt,
        F32Gt => Instr::F32Gt,
        F32Le => Instr::F32Le,
        F32Ge => Instr::F32Ge,
        F64Add => Instr::F64Add,
        F64Sub => Instr::F64Sub,
        F64Mul => Instr::F64Mul,
        F64Div => Instr::F64Div,
        F64Min => Instr::F64Min,
        F64Max => Instr::F64Max,
        F64Copysign => Instr::F64Copysign,
        F64Eq => Instr::F64Eq,
        F64Ne => Instr::F64Ne,
        F64Lt => Instr::F64Lt,
        F64Gt => Instr::F64Gt,
        F64Le => Instr::F64Le,
        F64Ge => Instr::F64Ge,
    }
}

/// Exhaustive `UnOp` → source instruction map.
fn instr_of_un(un: UnOp) -> Instr {
    use UnOp::*;
    match un {
        I32Eqz => Instr::I32Eqz,
        I32Clz => Instr::I32Clz,
        I32Ctz => Instr::I32Ctz,
        I32Popcnt => Instr::I32Popcnt,
        I64Eqz => Instr::I64Eqz,
        I64Clz => Instr::I64Clz,
        I64Ctz => Instr::I64Ctz,
        I64Popcnt => Instr::I64Popcnt,
        F32Abs => Instr::F32Abs,
        F32Neg => Instr::F32Neg,
        F32Ceil => Instr::F32Ceil,
        F32Floor => Instr::F32Floor,
        F32Trunc => Instr::F32Trunc,
        F32Nearest => Instr::F32Nearest,
        F32Sqrt => Instr::F32Sqrt,
        F64Abs => Instr::F64Abs,
        F64Neg => Instr::F64Neg,
        F64Ceil => Instr::F64Ceil,
        F64Floor => Instr::F64Floor,
        F64Trunc => Instr::F64Trunc,
        F64Nearest => Instr::F64Nearest,
        F64Sqrt => Instr::F64Sqrt,
        I32WrapI64 => Instr::I32WrapI64,
        I32TruncF32S => Instr::I32TruncF32S,
        I32TruncF32U => Instr::I32TruncF32U,
        I32TruncF64S => Instr::I32TruncF64S,
        I32TruncF64U => Instr::I32TruncF64U,
        I64ExtendI32S => Instr::I64ExtendI32S,
        I64ExtendI32U => Instr::I64ExtendI32U,
        I64TruncF32S => Instr::I64TruncF32S,
        I64TruncF32U => Instr::I64TruncF32U,
        I64TruncF64S => Instr::I64TruncF64S,
        I64TruncF64U => Instr::I64TruncF64U,
        F32ConvertI32S => Instr::F32ConvertI32S,
        F32ConvertI32U => Instr::F32ConvertI32U,
        F32ConvertI64S => Instr::F32ConvertI64S,
        F32ConvertI64U => Instr::F32ConvertI64U,
        F32DemoteF64 => Instr::F32DemoteF64,
        F64ConvertI32S => Instr::F64ConvertI32S,
        F64ConvertI32U => Instr::F64ConvertI32U,
        F64ConvertI64S => Instr::F64ConvertI64S,
        F64ConvertI64U => Instr::F64ConvertI64U,
        F64PromoteF32 => Instr::F64PromoteF32,
        I32ReinterpretF32 => Instr::I32ReinterpretF32,
        I64ReinterpretF64 => Instr::I64ReinterpretF64,
        F32ReinterpretI32 => Instr::F32ReinterpretI32,
        F64ReinterpretI64 => Instr::F64ReinterpretI64,
    }
}

/// Exhaustive `LoadKind` → source instruction map (zero memarg).
fn instr_of_load(kind: LoadKind) -> Instr {
    let m = MemArg {
        align: 0,
        offset: 0,
    };
    use LoadKind::*;
    match kind {
        I32 => Instr::I32Load(m),
        I64 => Instr::I64Load(m),
        F32 => Instr::F32Load(m),
        F64 => Instr::F64Load(m),
        I32S8 => Instr::I32Load8S(m),
        I32U8 => Instr::I32Load8U(m),
        I32S16 => Instr::I32Load16S(m),
        I32U16 => Instr::I32Load16U(m),
        I64S8 => Instr::I64Load8S(m),
        I64U8 => Instr::I64Load8U(m),
        I64S16 => Instr::I64Load16S(m),
        I64U16 => Instr::I64Load16U(m),
        I64S32 => Instr::I64Load32S(m),
        I64U32 => Instr::I64Load32U(m),
    }
}

/// Exhaustive `StoreKind` → source instruction map (zero memarg).
fn instr_of_store(kind: StoreKind) -> Instr {
    let m = MemArg {
        align: 0,
        offset: 0,
    };
    use StoreKind::*;
    match kind {
        I32 => Instr::I32Store(m),
        I64 => Instr::I64Store(m),
        F32 => Instr::F32Store(m),
        F64 => Instr::F64Store(m),
        I32As8 => Instr::I32Store8(m),
        I32As16 => Instr::I32Store16(m),
        I64As8 => Instr::I64Store8(m),
        I64As16 => Instr::I64Store16(m),
        I64As32 => Instr::I64Store32(m),
    }
}

const ALL_BINOPS: [BinOp; 76] = {
    use BinOp::*;
    [
        I32Add,
        I32Sub,
        I32Mul,
        I32DivS,
        I32DivU,
        I32RemS,
        I32RemU,
        I32And,
        I32Or,
        I32Xor,
        I32Shl,
        I32ShrS,
        I32ShrU,
        I32Rotl,
        I32Rotr,
        I32Eq,
        I32Ne,
        I32LtS,
        I32LtU,
        I32GtS,
        I32GtU,
        I32LeS,
        I32LeU,
        I32GeS,
        I32GeU,
        I64Add,
        I64Sub,
        I64Mul,
        I64DivS,
        I64DivU,
        I64RemS,
        I64RemU,
        I64And,
        I64Or,
        I64Xor,
        I64Shl,
        I64ShrS,
        I64ShrU,
        I64Rotl,
        I64Rotr,
        I64Eq,
        I64Ne,
        I64LtS,
        I64LtU,
        I64GtS,
        I64GtU,
        I64LeS,
        I64LeU,
        I64GeS,
        I64GeU,
        F32Add,
        F32Sub,
        F32Mul,
        F32Div,
        F32Min,
        F32Max,
        F32Copysign,
        F32Eq,
        F32Ne,
        F32Lt,
        F32Gt,
        F32Le,
        F32Ge,
        F64Add,
        F64Sub,
        F64Mul,
        F64Div,
        F64Min,
        F64Max,
        F64Copysign,
        F64Eq,
        F64Ne,
        F64Lt,
        F64Gt,
        F64Le,
        F64Ge,
    ]
};

const ALL_UNOPS: [UnOp; 47] = {
    use UnOp::*;
    [
        I32Eqz,
        I32Clz,
        I32Ctz,
        I32Popcnt,
        I64Eqz,
        I64Clz,
        I64Ctz,
        I64Popcnt,
        F32Abs,
        F32Neg,
        F32Ceil,
        F32Floor,
        F32Trunc,
        F32Nearest,
        F32Sqrt,
        F64Abs,
        F64Neg,
        F64Ceil,
        F64Floor,
        F64Trunc,
        F64Nearest,
        F64Sqrt,
        I32WrapI64,
        I32TruncF32S,
        I32TruncF32U,
        I32TruncF64S,
        I32TruncF64U,
        I64ExtendI32S,
        I64ExtendI32U,
        I64TruncF32S,
        I64TruncF32U,
        I64TruncF64S,
        I64TruncF64U,
        F32ConvertI32S,
        F32ConvertI32U,
        F32ConvertI64S,
        F32ConvertI64U,
        F32DemoteF64,
        F64ConvertI32S,
        F64ConvertI32U,
        F64ConvertI64S,
        F64ConvertI64U,
        F64PromoteF32,
        I32ReinterpretF32,
        I64ReinterpretF64,
        F32ReinterpretI32,
        F64ReinterpretI64,
    ]
};

const ALL_LOADS: [LoadKind; 14] = {
    use LoadKind::*;
    [
        I32, I64, F32, F64, I32S8, I32U8, I32S16, I32U16, I64S8, I64U8, I64S16, I64U16, I64S32,
        I64U32,
    ]
};

const ALL_STORES: [StoreKind; 9] = {
    use StoreKind::*;
    [
        I32, I64, F32, F64, I32As8, I32As16, I64As8, I64As16, I64As32,
    ]
};

/// Whether an instruction may trap on the reference path (at the execute
/// point, after its class/arith bumps).
fn instr_can_trap(i: &Instr) -> bool {
    if let Some(op) = BinOp::of(i) {
        return can_trap_bin(op);
    }
    if let Some(un) = UnOp::of(i) {
        return can_trap_un(un);
    }
    matches!(classify(i), OpClass::Load | OpClass::Store)
}

/// The reference interpreter's charge plan for a constituent sequence:
/// per instruction, one step, its op-class bump, its Table 12 bump, then
/// its (potential) trap point — the exact order of `interp.rs`.
fn reference_plan(instrs: &[Instr]) -> (u64, Vec<Ev>) {
    let mut evs = Vec::new();
    for i in instrs {
        evs.push(Ev::Class(classify(i)));
        if let Some(k) = arith_kind(i) {
            evs.push(Ev::Arith(k));
        }
        if instr_can_trap(i) {
            evs.push(Ev::Trap);
        }
    }
    (instrs.len() as u64, evs)
}

/// `bump_bin!` — the fused engine's binop charge: class, then Table 12.
fn bin_evs(op: BinOp, evs: &mut Vec<Ev>) {
    evs.push(Ev::Class(op.class()));
    if let Some(k) = op.arith() {
        evs.push(Ev::Arith(k));
    }
    if can_trap_bin(op) {
        evs.push(Ev::Trap);
    }
}

/// The fused engine's charge plan for one micro-op, transcribing the
/// `run_body_fused` arms in `exec.rs` event-for-event. Singleton micro-ops
/// return `None` (they are trivially 1:1 with the reference); the match is
/// deliberately wildcard-free so a new `Mop` variant fails to compile
/// until the audit covers it.
fn fused_plan(mop: &Mop) -> Option<(u64, Vec<Ev>)> {
    use Mop::*;
    let mut evs = Vec::new();
    let steps = match mop {
        // Singletons: one step, one bump, charged exactly like the
        // reference instruction — nothing to audit.
        Unreachable
        | Nop
        | Block { .. }
        | Loop { .. }
        | If { .. }
        | Else
        | End
        | Br(_)
        | BrIf(_)
        | BrTable(..)
        | Return
        | Call(_)
        | CallIndirect(_)
        | Drop
        | Select
        | LocalGet(_)
        | LocalSet(_)
        | LocalTee(_)
        | GlobalGet(_)
        | GlobalSet { .. }
        | Load { .. }
        | Store { .. }
        | MemorySize
        | MemoryGrow
        | Const(_)
        | Un(_)
        | Bin(_) => return None,
        LLBin { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            bin_evs(*op, &mut evs);
            3
        }
        LLBinSet { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            bin_evs(*op, &mut evs);
            evs.push(Ev::Class(OpClass::Local));
            4
        }
        LCBin { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Const));
            bin_evs(*op, &mut evs);
            3
        }
        LCBinSet { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Const));
            bin_evs(*op, &mut evs);
            evs.push(Ev::Class(OpClass::Local));
            4
        }
        LBin { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            bin_evs(*op, &mut evs);
            2
        }
        CBin { op, .. } => {
            evs.push(Ev::Class(OpClass::Const));
            bin_evs(*op, &mut evs);
            2
        }
        CBinSet { op, .. } => {
            evs.push(Ev::Class(OpClass::Const));
            bin_evs(*op, &mut evs);
            evs.push(Ev::Class(OpClass::Local));
            3
        }
        BinSet { op, .. } => {
            bin_evs(*op, &mut evs);
            evs.push(Ev::Class(OpClass::Local));
            2
        }
        LConst { .. } => {
            evs.push(Ev::Class(OpClass::Const));
            evs.push(Ev::Class(OpClass::Local));
            2
        }
        LocalCopy { .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            2
        }
        LLCmpBr { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            bin_evs(*op, &mut evs);
            evs.push(Ev::Class(OpClass::Branch));
            4
        }
        LCCmpBr { op, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Const));
            bin_evs(*op, &mut evs);
            evs.push(Ev::Class(OpClass::Branch));
            4
        }
        CmpBr { op, .. } => {
            bin_evs(*op, &mut evs);
            evs.push(Ev::Class(OpClass::Branch));
            2
        }
        LUnBr { un, .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(un.class()));
            if can_trap_un(*un) {
                evs.push(Ev::Trap);
            }
            evs.push(Ev::Class(OpClass::Branch));
            3
        }
        UnBr { un, .. } => {
            evs.push(Ev::Class(un.class()));
            if can_trap_un(*un) {
                evs.push(Ev::Trap);
            }
            evs.push(Ev::Class(OpClass::Branch));
            2
        }
        LLoad { .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Load));
            evs.push(Ev::Trap);
            2
        }
        LLStore { .. } => {
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Local));
            evs.push(Ev::Class(OpClass::Store));
            evs.push(Ev::Trap);
            3
        }
    };
    Some((steps, evs))
}

/// Family name of a fused micro-op (wildcard-free on purpose).
fn family_of(mop: &Mop) -> &'static str {
    use Mop::*;
    match mop {
        Unreachable
        | Nop
        | Block { .. }
        | Loop { .. }
        | If { .. }
        | Else
        | End
        | Br(_)
        | BrIf(_)
        | BrTable(..)
        | Return
        | Call(_)
        | CallIndirect(_)
        | Drop
        | Select
        | LocalGet(_)
        | LocalSet(_)
        | LocalTee(_)
        | GlobalGet(_)
        | GlobalSet { .. }
        | Load { .. }
        | Store { .. }
        | MemorySize
        | MemoryGrow
        | Const(_)
        | Un(_)
        | Bin(_) => "singleton",
        LLBin { .. } => "LLBin",
        LLBinSet { .. } => "LLBinSet",
        LCBin { .. } => "LCBin",
        LCBinSet { .. } => "LCBinSet",
        LBin { .. } => "LBin",
        CBin { .. } => "CBin",
        CBinSet { .. } => "CBinSet",
        BinSet { .. } => "BinSet",
        LConst { .. } => "LConst",
        LocalCopy { .. } => "LocalCopy",
        LLCmpBr { .. } => "LLCmpBr",
        LCCmpBr { .. } => "LCCmpBr",
        CmpBr { .. } => "CmpBr",
        LUnBr { .. } => "LUnBr",
        UnBr { .. } => "UnBr",
        LLoad { .. } => "LLoad",
        LLStore { .. } => "LLStore",
    }
}

/// Every (family, constituent-sequence) instance the fusion table can
/// produce. Branch targets/immediates are fixed placeholders — charge
/// plans do not depend on them.
fn enumerate_instances() -> Vec<(&'static str, String, Vec<Instr>)> {
    let mut out = Vec::new();
    let lg = |i| Instr::LocalGet(i);
    let ls = |i| Instr::LocalSet(i);
    for &op in &ALL_BINOPS {
        let b = instr_of_bin(op);
        let label = format!("{op:?}");
        out.push(("LLBin", label.clone(), vec![lg(0), lg(1), b.clone()]));
        out.push((
            "LLBinSet",
            label.clone(),
            vec![lg(0), lg(1), b.clone(), ls(2)],
        ));
        out.push((
            "LCBin",
            label.clone(),
            vec![lg(0), Instr::I32Const(1), b.clone()],
        ));
        out.push((
            "LCBinSet",
            label.clone(),
            vec![lg(0), Instr::I32Const(1), b.clone(), ls(2)],
        ));
        out.push(("LBin", label.clone(), vec![lg(0), b.clone()]));
        out.push(("CBin", label.clone(), vec![Instr::I32Const(1), b.clone()]));
        out.push((
            "CBinSet",
            label.clone(),
            vec![Instr::I32Const(1), b.clone(), ls(2)],
        ));
        out.push(("BinSet", label.clone(), vec![b.clone(), ls(2)]));
        if op.result_is_i32() {
            out.push((
                "LLCmpBr",
                label.clone(),
                vec![lg(0), lg(1), b.clone(), Instr::BrIf(0)],
            ));
            out.push((
                "LCCmpBr",
                label.clone(),
                vec![lg(0), Instr::I32Const(1), b.clone(), Instr::BrIf(0)],
            ));
            out.push(("CmpBr", label.clone(), vec![b.clone(), Instr::BrIf(0)]));
        }
    }
    for &un in &ALL_UNOPS {
        if un.result_is_i32() {
            let u = instr_of_un(un);
            let label = format!("{un:?}");
            out.push((
                "LUnBr",
                label.clone(),
                vec![lg(0), u.clone(), Instr::BrIf(0)],
            ));
            out.push(("UnBr", label, vec![u, Instr::BrIf(0)]));
        }
    }
    for &kind in &ALL_LOADS {
        out.push((
            "LLoad",
            format!("{kind:?}"),
            vec![lg(0), instr_of_load(kind)],
        ));
    }
    for &kind in &ALL_STORES {
        out.push((
            "LLStore",
            format!("{kind:?}"),
            vec![lg(0), lg(1), instr_of_store(kind)],
        ));
    }
    for (label, c) in [
        ("I32Const", Instr::I32Const(1)),
        ("I64Const", Instr::I64Const(1)),
        ("F32Const", Instr::F32Const(1.0)),
        ("F64Const", Instr::F64Const(1.0)),
    ] {
        out.push(("LConst", label.into(), vec![c, ls(2)]));
    }
    out.push(("LocalCopy", "LocalGet".into(), vec![lg(0), ls(2)]));
    out
}

/// Audit every instance of every fused family. An entry is `ok` when
///
/// 1. `match_fused` lowers the constituents to the expected family at the
///    full width (the step-budget total therefore matches too),
/// 2. the fused charge plan equals the reference concatenation
///    event-for-event, and
/// 3. no constituent carries a `TimeBucket` charge or hotness note.
pub fn audit_fusion_table() -> Vec<FusionAuditEntry> {
    let mut entries = Vec::new();
    for (family, label, constituents) in enumerate_instances() {
        let mut detail = None;
        let mut fused_rendered = Vec::new();
        let (ref_steps, ref_evs) = reference_plan(&constituents);

        // (3) is structural: constituents are locals/consts/ops/branches,
        // never memory.grow, calls, or loop openers/back-edges.
        for c in &constituents {
            if matches!(
                c,
                Instr::MemoryGrow | Instr::Call(_) | Instr::CallIndirect(_)
            ) || matches!(c, Instr::Loop(_) | Instr::Block(_) | Instr::If(_))
            {
                detail = Some(format!("constituent {c:?} carries non-class charges"));
            }
        }

        match match_fused(&constituents) {
            Some((mop, len)) if len == constituents.len() && family_of(&mop) == family => {
                match fused_plan(&mop) {
                    Some((steps, evs)) => {
                        fused_rendered = evs.iter().map(Ev::render).collect();
                        if steps != ref_steps {
                            detail = Some(format!("step total {steps} != reference {ref_steps}"));
                        } else if evs != ref_evs {
                            detail = Some("charge plans differ".into());
                        }
                    }
                    None => detail = Some("fused op lowered to a singleton".into()),
                }
            }
            Some((mop, len)) => {
                detail = Some(format!(
                    "lowering mismatch: got {} at width {len}, expected {family} at width {}",
                    family_of(&mop),
                    constituents.len()
                ));
            }
            None => detail = Some("constituents did not fuse".into()),
        }

        entries.push(FusionAuditEntry {
            family,
            instance: format!("{family}[{label}]"),
            constituents: constituents.iter().map(|c| format!("{c:?}")).collect(),
            fused_charges: fused_rendered,
            reference_charges: ref_evs.iter().map(Ev::render).collect(),
            ok: detail.is_none(),
            detail,
        });
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instance_is_cost_equivalent() {
        let entries = audit_fusion_table();
        let bad: Vec<_> = entries.iter().filter(|e| !e.ok).collect();
        assert!(
            bad.is_empty(),
            "{} non-equivalent instances, first: {:?}",
            bad.len(),
            bad.first()
        );
    }

    #[test]
    fn covers_every_family_and_operator() {
        let entries = audit_fusion_table();
        // Every binop × 8 plain families + i32-result binops × 3 cmp-br
        // families + i32-result unops × 2 br families + every load +
        // every store + 4 const types + 1 copy.
        let i32_bins = ALL_BINOPS.iter().filter(|b| b.result_is_i32()).count();
        let i32_uns = ALL_UNOPS.iter().filter(|u| u.result_is_i32()).count();
        let expected = ALL_BINOPS.len() * 8
            + i32_bins * 3
            + i32_uns * 2
            + ALL_LOADS.len()
            + ALL_STORES.len()
            + 4
            + 1;
        assert_eq!(entries.len(), expected);
        let families: std::collections::BTreeSet<_> = entries.iter().map(|e| e.family).collect();
        assert_eq!(
            families.into_iter().collect::<Vec<_>>(),
            vec![
                "BinSet",
                "CBin",
                "CBinSet",
                "CmpBr",
                "LBin",
                "LCBin",
                "LCBinSet",
                "LCCmpBr",
                "LConst",
                "LLBin",
                "LLBinSet",
                "LLCmpBr",
                "LLStore",
                "LLoad",
                "LUnBr",
                "LocalCopy",
                "UnBr"
            ]
        );
    }

    #[test]
    fn trap_points_sit_after_class_bumps() {
        let entries = audit_fusion_table();
        let div = entries
            .iter()
            .find(|e| e.instance == "LLBinSet[I32DivS]")
            .unwrap();
        assert_eq!(
            div.fused_charges,
            vec![
                "class:Local",
                "class:Local",
                "class:IntDiv",
                "arith:Div",
                "trap-point",
                "class:Local"
            ]
        );
        assert_eq!(div.fused_charges, div.reference_charges);
    }
}
