//! One `PreparedModule`, many instances: preparation (decode, validate,
//! side tables) is done once and shared via `Arc`, and every instance
//! built over it reports exactly the same virtual numbers as a fresh
//! `Instance::instantiate` over the same bytes.

use std::collections::HashMap;
use std::sync::Arc;
use wb_wasm::{BlockType, Instr, ModuleBuilder, ValType};
use wb_wasm_vm::{Instance, PreparedModule, Value, WasmVmConfig};

/// A module with a loop (so the branch side tables matter): sums 1..=n.
fn sum_module() -> wb_wasm::Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("sum", vec![ValType::I32], vec![ValType::I32]);
    let acc = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    f.ops([
        Instr::Block(BlockType::Empty),
        Instr::Loop(BlockType::Empty),
        Instr::LocalGet(i),
        Instr::LocalGet(0),
        Instr::I32GeS,
        Instr::BrIf(1),
        Instr::LocalGet(i),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalTee(i),
        Instr::LocalGet(acc),
        Instr::I32Add,
        Instr::LocalSet(acc),
        Instr::Br(0),
        Instr::End,
        Instr::End,
        Instr::LocalGet(acc),
    ])
    .done();
    mb.finish_func(f, true);
    let m = mb.build();
    wb_wasm::validate(&m).expect("test module must validate");
    m
}

#[test]
fn two_instances_share_one_preparation() {
    let prepared = Arc::new(PreparedModule::new(sum_module()));

    let mut a = Instance::from_prepared(
        Arc::clone(&prepared),
        WasmVmConfig::reference(),
        HashMap::new(),
    )
    .unwrap();
    let mut b = Instance::from_prepared(
        Arc::clone(&prepared),
        WasmVmConfig::reference(),
        HashMap::new(),
    )
    .unwrap();

    let ra = a.invoke("sum", &[Value::I32(100)]).unwrap();
    let rb = b.invoke("sum", &[Value::I32(100)]).unwrap();
    assert_eq!(ra, rb);
    assert_eq!(ra, Some(Value::I32(5050)));

    // Identical virtual accounting, to the bit.
    let (ra, rb) = (a.report(), b.report());
    assert_eq!(ra.total.0.to_bits(), rb.total.0.to_bits());
    assert_eq!(ra.counts.total(), rb.counts.total());
}

#[test]
fn prepared_instantiation_matches_bytes_instantiation() {
    let bytes = wb_wasm::encode_module(&sum_module());

    // The uncached path: decode + validate + prepare from bytes.
    let mut from_bytes =
        Instance::instantiate(&bytes, WasmVmConfig::reference(), HashMap::new()).unwrap();

    // The cached path: preparation shared, virtual charges replayed
    // from the byte length.
    let decoded = wb_wasm::decode_module(&bytes).unwrap();
    let prepared = Arc::new(PreparedModule::new(decoded));
    let mut from_prep = Instance::instantiate_prepared(
        prepared,
        bytes.len(),
        WasmVmConfig::reference(),
        HashMap::new(),
    )
    .unwrap();

    let r1 = from_bytes.invoke("sum", &[Value::I32(7)]).unwrap();
    let r2 = from_prep.invoke("sum", &[Value::I32(7)]).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1, Some(Value::I32(28)));

    let (a, b) = (from_bytes.report(), from_prep.report());
    assert_eq!(a.total.0.to_bits(), b.total.0.to_bits(), "virtual time");
    assert_eq!(a.counts.total(), b.counts.total());
}

#[test]
fn prepared_module_is_shared_across_threads() {
    let prepared = Arc::new(PreparedModule::new(sum_module()));
    let results: Vec<i32> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let prepared = Arc::clone(&prepared);
                scope.spawn(move || {
                    let mut inst = Instance::from_prepared(
                        prepared,
                        WasmVmConfig::reference(),
                        HashMap::new(),
                    )
                    .unwrap();
                    match inst.invoke("sum", &[Value::I32(10)]).unwrap() {
                        Some(Value::I32(v)) => v,
                        other => panic!("unexpected result {other:?}"),
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(results, vec![55; 4]);
}
