//! Randomized (deterministic, LCG-seeded) tests for the Wasm
//! interpreter: randomly generated straight-line i32 arithmetic agrees
//! with a Rust reference model, and accounting invariants hold on every
//! run. Each case prints its seed on failure.

use std::collections::HashMap;
use wb_env::rng::Lcg;
use wb_wasm::{Instr, ModuleBuilder, ValType};
use wb_wasm_vm::{Instance, Value, WasmVmConfig};

/// A random stack program over two i32 params that is valid by
/// construction: ops are emitted only when enough operands are on the
/// simulated stack, and it ends by collapsing to one value.
#[derive(Debug, Clone)]
enum StackOp {
    PushConst(i32),
    PushP0,
    PushP1,
    Add,
    Sub,
    Mul,
    Xor,
    And,
    Or,
    Shl,
    ShrU,
    Rotl,
    Eqz,
}

fn gen_stack_op(rng: &mut Lcg) -> StackOp {
    match rng.index(13) {
        0 => StackOp::PushConst(rng.next_i32()),
        1 => StackOp::PushP0,
        2 => StackOp::PushP1,
        3 => StackOp::Add,
        4 => StackOp::Sub,
        5 => StackOp::Mul,
        6 => StackOp::Xor,
        7 => StackOp::And,
        8 => StackOp::Or,
        9 => StackOp::Shl,
        10 => StackOp::ShrU,
        11 => StackOp::Rotl,
        _ => StackOp::Eqz,
    }
}

/// Build both the wasm body and the reference result simultaneously.
fn realize(ops: &[StackOp], p0: i32, p1: i32) -> (Vec<Instr>, i32) {
    let mut body = Vec::new();
    let mut stack: Vec<i32> = Vec::new();
    for op in ops {
        match op {
            StackOp::PushConst(v) => {
                body.push(Instr::I32Const(*v));
                stack.push(*v);
            }
            StackOp::PushP0 => {
                body.push(Instr::LocalGet(0));
                stack.push(p0);
            }
            StackOp::PushP1 => {
                body.push(Instr::LocalGet(1));
                stack.push(p1);
            }
            binop @ (StackOp::Add
            | StackOp::Sub
            | StackOp::Mul
            | StackOp::Xor
            | StackOp::And
            | StackOp::Or
            | StackOp::Shl
            | StackOp::ShrU
            | StackOp::Rotl) => {
                if stack.len() < 2 {
                    continue;
                }
                let b = stack.pop().expect("len checked");
                let a = stack.pop().expect("len checked");
                let (instr, v) = match binop {
                    StackOp::Add => (Instr::I32Add, a.wrapping_add(b)),
                    StackOp::Sub => (Instr::I32Sub, a.wrapping_sub(b)),
                    StackOp::Mul => (Instr::I32Mul, a.wrapping_mul(b)),
                    StackOp::Xor => (Instr::I32Xor, a ^ b),
                    StackOp::And => (Instr::I32And, a & b),
                    StackOp::Or => (Instr::I32Or, a | b),
                    StackOp::Shl => (Instr::I32Shl, a.wrapping_shl(b as u32)),
                    StackOp::ShrU => (Instr::I32ShrU, ((a as u32).wrapping_shr(b as u32)) as i32),
                    StackOp::Rotl => (Instr::I32Rotl, a.rotate_left(b as u32 & 31)),
                    _ => unreachable!(),
                };
                body.push(instr);
                stack.push(v);
            }
            StackOp::Eqz => {
                if stack.is_empty() {
                    continue;
                }
                let a = stack.pop().expect("non-empty");
                body.push(Instr::I32Eqz);
                stack.push((a == 0) as i32);
            }
        }
    }
    // Collapse everything to a single result with xors.
    while stack.len() > 1 {
        let b = stack.pop().expect("len > 1");
        let a = stack.pop().expect("len > 1");
        body.push(Instr::I32Xor);
        stack.push(a ^ b);
    }
    if stack.is_empty() {
        body.push(Instr::I32Const(7));
        stack.push(7);
    }
    (body, stack[0])
}

#[test]
fn random_arithmetic_matches_reference() {
    for seed in 0..256 {
        let mut rng = Lcg::new(seed);
        let nops = 1 + rng.index(39);
        let ops: Vec<StackOp> = (0..nops).map(|_| gen_stack_op(&mut rng)).collect();
        let p0 = rng.next_i32();
        let p1 = rng.next_i32();
        let (mut body, expected) = realize(&ops, p0, p1);
        body.push(Instr::End);
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("f", vec![ValType::I32, ValType::I32], vec![ValType::I32]);
        f.ops(body);
        mb.finish_func(f, true);
        let module = mb.build();
        wb_wasm::validate(&module).expect("constructed module validates");
        // Round-trip through the binary codec before running.
        let bytes = wb_wasm::encode_module(&module);
        let mut inst = Instance::instantiate(&bytes, WasmVmConfig::reference(), HashMap::new())
            .expect("instantiates");
        let r = inst
            .invoke("f", &[Value::I32(p0), Value::I32(p1)])
            .expect("runs");
        assert_eq!(r, Some(Value::I32(expected)), "seed {seed}");

        // Accounting invariants.
        let report = inst.report();
        assert!(report.total.0 > 0.0, "seed {seed}");
        assert!(report.counts.total() > 0, "seed {seed}");
        assert_eq!(report.context_switches, 2, "seed {seed}"); // one invoke
    }
}

#[test]
fn report_is_monotonic_across_invocations() {
    for seed in 0..32 {
        let mut rng = Lcg::new(500 + seed);
        let n = 1 + rng.index(7);
        let p = rng.next_i32();
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("id", vec![ValType::I32], vec![ValType::I32]);
        f.ops([Instr::LocalGet(0)]).done();
        mb.finish_func(f, true);
        let mut inst = Instance::from_module(mb.build(), WasmVmConfig::reference(), HashMap::new())
            .expect("instantiates");
        let mut last = 0.0;
        for _ in 0..n {
            inst.invoke("id", &[Value::I32(p)]).expect("runs");
            let t = inst.report().total.0;
            assert!(t > last, "seed {seed}");
            last = t;
        }
    }
}

#[test]
fn step_budget_always_terminates() {
    for seed in 0..32 {
        let mut rng = Lcg::new(900 + seed);
        let budget = 100 + rng.below(49_900);
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("spin", vec![], vec![]);
        f.ops([
            Instr::Loop(wb_wasm::BlockType::Empty),
            Instr::Br(0),
            Instr::End,
        ])
        .done();
        mb.finish_func(f, true);
        let mut cfg = WasmVmConfig::reference();
        cfg.limits.fuel = Some(budget);
        let mut inst =
            Instance::from_module(mb.build(), cfg, HashMap::new()).expect("instantiates");
        let r = inst.invoke("spin", &[]);
        assert_eq!(r, Err(wb_wasm_vm::Trap::StepBudgetExhausted), "seed {seed}");
    }
}
