//! Property tests for the Wasm interpreter: randomly generated
//! straight-line i32/i64 arithmetic agrees with a Rust reference model,
//! and accounting invariants hold on every run.

use proptest::prelude::*;
use std::collections::HashMap;
use wb_wasm::{Instr, ModuleBuilder, ValType};
use wb_wasm_vm::{Instance, Value, WasmVmConfig};

/// A random stack program over two i32 params that is valid by
/// construction: ops are emitted only when enough operands are on the
/// simulated stack, and it ends by collapsing to one value.
#[derive(Debug, Clone)]
enum StackOp {
    PushConst(i32),
    PushP0,
    PushP1,
    Add,
    Sub,
    Mul,
    Xor,
    And,
    Or,
    Shl,
    ShrU,
    Rotl,
    Eqz,
}

fn stack_op() -> impl Strategy<Value = StackOp> {
    prop_oneof![
        any::<i32>().prop_map(StackOp::PushConst),
        Just(StackOp::PushP0),
        Just(StackOp::PushP1),
        Just(StackOp::Add),
        Just(StackOp::Sub),
        Just(StackOp::Mul),
        Just(StackOp::Xor),
        Just(StackOp::And),
        Just(StackOp::Or),
        Just(StackOp::Shl),
        Just(StackOp::ShrU),
        Just(StackOp::Rotl),
        Just(StackOp::Eqz),
    ]
}

/// Build both the wasm body and the reference result simultaneously.
fn realize(ops: &[StackOp], p0: i32, p1: i32) -> (Vec<Instr>, i32) {
    let mut body = Vec::new();
    let mut stack: Vec<i32> = Vec::new();
    for op in ops {
        match op {
            StackOp::PushConst(v) => {
                body.push(Instr::I32Const(*v));
                stack.push(*v);
            }
            StackOp::PushP0 => {
                body.push(Instr::LocalGet(0));
                stack.push(p0);
            }
            StackOp::PushP1 => {
                body.push(Instr::LocalGet(1));
                stack.push(p1);
            }
            binop @ (StackOp::Add
            | StackOp::Sub
            | StackOp::Mul
            | StackOp::Xor
            | StackOp::And
            | StackOp::Or
            | StackOp::Shl
            | StackOp::ShrU
            | StackOp::Rotl) => {
                if stack.len() < 2 {
                    continue;
                }
                let b = stack.pop().expect("len checked");
                let a = stack.pop().expect("len checked");
                let (instr, v) = match binop {
                    StackOp::Add => (Instr::I32Add, a.wrapping_add(b)),
                    StackOp::Sub => (Instr::I32Sub, a.wrapping_sub(b)),
                    StackOp::Mul => (Instr::I32Mul, a.wrapping_mul(b)),
                    StackOp::Xor => (Instr::I32Xor, a ^ b),
                    StackOp::And => (Instr::I32And, a & b),
                    StackOp::Or => (Instr::I32Or, a | b),
                    StackOp::Shl => (Instr::I32Shl, a.wrapping_shl(b as u32)),
                    StackOp::ShrU => (Instr::I32ShrU, ((a as u32).wrapping_shr(b as u32)) as i32),
                    StackOp::Rotl => (Instr::I32Rotl, a.rotate_left(b as u32 & 31)),
                    _ => unreachable!(),
                };
                body.push(instr);
                stack.push(v);
            }
            StackOp::Eqz => {
                if stack.is_empty() {
                    continue;
                }
                let a = stack.pop().expect("non-empty");
                body.push(Instr::I32Eqz);
                stack.push((a == 0) as i32);
            }
        }
    }
    // Collapse everything to a single result with xors.
    while stack.len() > 1 {
        let b = stack.pop().expect("len > 1");
        let a = stack.pop().expect("len > 1");
        body.push(Instr::I32Xor);
        stack.push(a ^ b);
    }
    if stack.is_empty() {
        body.push(Instr::I32Const(7));
        stack.push(7);
    }
    (body, stack[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_arithmetic_matches_reference(
        ops in proptest::collection::vec(stack_op(), 1..40),
        p0 in any::<i32>(),
        p1 in any::<i32>(),
    ) {
        let (mut body, expected) = realize(&ops, p0, p1);
        body.push(Instr::End);
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("f", vec![ValType::I32, ValType::I32], vec![ValType::I32]);
        f.ops(body);
        mb.finish_func(f, true);
        let module = mb.build();
        wb_wasm::validate(&module).expect("constructed module validates");
        // Round-trip through the binary codec before running.
        let bytes = wb_wasm::encode_module(&module);
        let mut inst = Instance::instantiate(&bytes, WasmVmConfig::reference(), HashMap::new())
            .expect("instantiates");
        let r = inst
            .invoke("f", &[Value::I32(p0), Value::I32(p1)])
            .expect("runs");
        prop_assert_eq!(r, Some(Value::I32(expected)));

        // Accounting invariants.
        let report = inst.report();
        prop_assert!(report.total.0 > 0.0);
        prop_assert!(report.counts.total() > 0);
        prop_assert_eq!(report.context_switches, 2); // one invoke
    }

    #[test]
    fn report_is_monotonic_across_invocations(
        n in 1usize..8,
        p in any::<i32>(),
    ) {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("id", vec![ValType::I32], vec![ValType::I32]);
        f.ops([Instr::LocalGet(0)]).done();
        mb.finish_func(f, true);
        let mut inst = Instance::from_module(mb.build(), WasmVmConfig::reference(), HashMap::new())
            .expect("instantiates");
        let mut last = 0.0;
        for _ in 0..n {
            inst.invoke("id", &[Value::I32(p)]).expect("runs");
            let t = inst.report().total.0;
            prop_assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn step_budget_always_terminates(budget in 100u64..50_000) {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("spin", vec![], vec![]);
        f.ops([
            Instr::Loop(wb_wasm::BlockType::Empty),
            Instr::Br(0),
            Instr::End,
        ])
        .done();
        mb.finish_func(f, true);
        let mut cfg = WasmVmConfig::reference();
        cfg.max_steps = budget;
        let mut inst = Instance::from_module(mb.build(), cfg, HashMap::new()).expect("instantiates");
        let r = inst.invoke("spin", &[]);
        prop_assert_eq!(r, Err(wb_wasm_vm::Trap::StepBudgetExhausted));
    }
}
