//! Fused-vs-reference differential tests.
//!
//! The fused micro-op engine exists purely to make the host run faster;
//! it must be invisible in every measured quantity. These tests run the
//! same module through both engines (`reference_exec` toggled) and
//! assert the *entire* execution report matches to the bit — virtual
//! time, per-bucket clock attribution, per-class op counts, per-tier
//! counts, Table 12 arithmetic profile, memory statistics, tier-ups and
//! context switches — alongside the computed results themselves.
//!
//! Each test targets one family of fusion patterns (see
//! `src/fuse.rs`); the final tests sweep tier policies and trapping
//! executions, where accounting order at the fault matters.

use std::collections::HashMap;
use std::sync::Arc;
use wb_env::TierPolicy;
use wb_wasm::{BlockType, Instr, Module, ModuleBuilder, ValType};
use wb_wasm_vm::{ExecutionReport, Instance, PreparedModule, Trap, Value, WasmVmConfig};

fn config(reference_exec: bool, tier_policy: TierPolicy) -> WasmVmConfig {
    WasmVmConfig {
        tier_policy,
        reference_exec,
        ..WasmVmConfig::reference()
    }
}

/// Compare every field of two reports bit-exactly (floats via to_bits).
fn assert_reports_identical(a: &ExecutionReport, b: &ExecutionReport) {
    assert_eq!(a.total.0.to_bits(), b.total.0.to_bits(), "total time");
    assert_eq!(
        a.clock.load_time.0.to_bits(),
        b.clock.load_time.0.to_bits(),
        "load time"
    );
    assert_eq!(
        a.clock.compile_time.0.to_bits(),
        b.clock.compile_time.0.to_bits(),
        "compile time"
    );
    assert_eq!(
        a.clock.exec_time.0.to_bits(),
        b.clock.exec_time.0.to_bits(),
        "exec time"
    );
    assert_eq!(
        a.clock.gc_time.0.to_bits(),
        b.clock.gc_time.0.to_bits(),
        "gc time"
    );
    assert_eq!(
        a.clock.mem_grow_time.0.to_bits(),
        b.clock.mem_grow_time.0.to_bits(),
        "mem grow time"
    );
    assert_eq!(
        a.clock.context_switch_time.0.to_bits(),
        b.clock.context_switch_time.0.to_bits(),
        "context switch time"
    );
    assert_eq!(a.counts.0, b.counts.0, "op counts by class");
    assert_eq!(
        a.baseline_counts.0, b.baseline_counts.0,
        "baseline-tier op counts"
    );
    assert_eq!(a.arith, b.arith, "arith profile");
    assert_eq!(a.memory.linear_bytes, b.memory.linear_bytes, "linear bytes");
    assert_eq!(a.memory.grow_count, b.memory.grow_count, "grow count");
    assert_eq!(a.memory.grown_pages, b.memory.grown_pages, "grown pages");
    assert_eq!(a.tier_ups, b.tier_ups, "tier ups");
    assert_eq!(a.context_switches, b.context_switches, "context switches");
}

/// Run `entry(args)` on both engines over one shared preparation and
/// assert results and reports are identical. Returns the common result.
fn run_both(
    module: Module,
    tier_policy: TierPolicy,
    entry: &str,
    args: &[Value],
) -> Result<Option<Value>, Trap> {
    wb_wasm::validate(&module).expect("test module must validate");
    let prepared = Arc::new(PreparedModule::new(module));
    let mut outcome = None;
    for reference_exec in [true, false] {
        let mut inst = Instance::from_prepared(
            Arc::clone(&prepared),
            config(reference_exec, tier_policy),
            HashMap::new(),
        )
        .unwrap();
        let result = inst.invoke(entry, args);
        let report = inst.report();
        match &outcome {
            None => outcome = Some((result, report)),
            Some((ref_result, ref_report)) => {
                assert_eq!(*ref_result, result, "result must match reference");
                assert_reports_identical(ref_report, &report);
            }
        }
    }
    outcome.unwrap().0
}

/// Sum 1..=n: exercises `LLCmpBr` (cmp + br_if), `LCBinSet`
/// (counter increment), `LocalTee`, `LLBinSet` and loop back-edges,
/// which also drive tier-up hotness.
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("sum", vec![ValType::I32], vec![ValType::I32]);
    let acc = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    f.ops([
        Instr::Block(BlockType::Empty),
        Instr::Loop(BlockType::Empty),
        Instr::LocalGet(i),
        Instr::LocalGet(0),
        Instr::I32GeS,
        Instr::BrIf(1),
        Instr::LocalGet(i),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalTee(i),
        Instr::LocalGet(acc),
        Instr::I32Add,
        Instr::LocalSet(acc),
        Instr::Br(0),
        Instr::End,
        Instr::End,
        Instr::LocalGet(acc),
    ])
    .done();
    mb.finish_func(f, true);
    mb.build()
}

#[test]
fn loop_sum_matches_across_engines() {
    let r = run_both(sum_module(), TierPolicy::Default, "sum", &[Value::I32(500)]);
    assert_eq!(r.unwrap(), Some(Value::I32(125250)));
}

#[test]
fn tier_policies_all_match() {
    for policy in [
        TierPolicy::Default,
        TierPolicy::BasicOnly,
        TierPolicy::OptimizingOnly,
    ] {
        let r = run_both(sum_module(), policy, "sum", &[Value::I32(2000)]);
        assert_eq!(r.unwrap(), Some(Value::I32(2001000)));
    }
}

/// Memory traffic: `LLoad` (local.get + load), `LLStore`
/// (local.get + local.get + store), narrow loads/stores, `LCBin`.
#[test]
fn memory_loop_matches_across_engines() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(2));
    let mut f = mb.func("fill", vec![ValType::I32], vec![ValType::I32]);
    let i = f.local(ValType::I32);
    let acc = f.local(ValType::I32);
    f.ops([
        // for i in 0..n { mem[i*4] = i*3; }
        Instr::Block(BlockType::Empty),
        Instr::Loop(BlockType::Empty),
        Instr::LocalGet(i),
        Instr::LocalGet(0),
        Instr::I32GeU,
        Instr::BrIf(1),
        Instr::LocalGet(i),
        Instr::I32Const(4),
        Instr::I32Mul,
        Instr::LocalGet(i),
        Instr::I32Const(3),
        Instr::I32Mul,
        Instr::I32Store(wb_wasm::MemArg {
            align: 2,
            offset: 0,
        }),
        Instr::LocalGet(i),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalSet(i),
        Instr::Br(0),
        Instr::End,
        Instr::End,
        // acc = sum of mem[i*4] as u8 loads + a 16-bit and full load mix
        Instr::LocalGet(0),
        Instr::I32Const(1),
        Instr::I32Sub,
        Instr::LocalSet(i),
        Instr::Block(BlockType::Empty),
        Instr::Loop(BlockType::Empty),
        Instr::LocalGet(i),
        Instr::I32Const(0),
        Instr::I32LtS,
        Instr::BrIf(1),
        Instr::LocalGet(acc),
        Instr::LocalGet(i),
        Instr::I32Const(4),
        Instr::I32Mul,
        Instr::I32Load8U(wb_wasm::MemArg {
            align: 0,
            offset: 0,
        }),
        Instr::I32Add,
        Instr::LocalSet(acc),
        Instr::LocalGet(i),
        Instr::I32Const(1),
        Instr::I32Sub,
        Instr::LocalSet(i),
        Instr::Br(0),
        Instr::End,
        Instr::End,
        Instr::LocalGet(acc),
    ])
    .done();
    mb.finish_func(f, true);
    let r = run_both(mb.build(), TierPolicy::Default, "fill", &[Value::I32(60)]);
    // sum of (i*3) & 0xff for i in 0..60
    let expect: i32 = (0..60).map(|i| (i * 3) & 0xff).sum();
    assert_eq!(r.unwrap(), Some(Value::I32(expect)));
}

/// Floats and conversions: `CBin`/`BinSet` over f64, unary ops,
/// truncation, reinterpret — none of which may lose bits crossing the
/// untagged stack.
#[test]
fn float_kernel_matches_across_engines() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("poly", vec![ValType::F64], vec![ValType::F64]);
    let x = f.local(ValType::F64);
    f.ops([
        // x = arg * 1.5 + sqrt(|arg|)
        Instr::LocalGet(0),
        Instr::F64Const(1.5),
        Instr::F64Mul,
        Instr::LocalGet(0),
        Instr::F64Abs,
        Instr::F64Sqrt,
        Instr::F64Add,
        Instr::LocalSet(x),
        // result = x - floor(x) + f64(i32.trunc(x))
        Instr::LocalGet(x),
        Instr::LocalGet(x),
        Instr::F64Floor,
        Instr::F64Sub,
        Instr::LocalGet(x),
        Instr::I32TruncF64S,
        Instr::F64ConvertI32S,
        Instr::F64Add,
    ])
    .done();
    mb.finish_func(f, true);
    let module = mb.build();
    for arg in [0.0, 2.75, -3.5, 1e9] {
        let r = run_both(
            module.clone(),
            TierPolicy::Default,
            "poly",
            &[Value::F64(arg)],
        );
        let x = arg * 1.5 + arg.abs().sqrt();
        let expect = x - x.floor() + (x as i32) as f64;
        assert_eq!(r.unwrap(), Some(Value::F64(expect)), "arg {arg}");
    }
}

/// Calls, indirect calls, globals, select and br_table — control-heavy
/// code where fusion groups are short and frame bookkeeping dominates.
#[test]
fn control_heavy_module_matches_across_engines() {
    let mut mb = ModuleBuilder::new();
    mb.table(2);
    let g = mb.global(ValType::I64, true, Instr::I64Const(0));

    let mut sq = mb.func("sq", vec![ValType::I32], vec![ValType::I32]);
    sq.ops([Instr::LocalGet(0), Instr::LocalGet(0), Instr::I32Mul])
        .done();
    let sq_idx = mb.finish_func(sq, false);

    let mut dbl = mb.func("dbl", vec![ValType::I32], vec![ValType::I32]);
    dbl.ops([Instr::LocalGet(0), Instr::I32Const(1), Instr::I32Shl])
        .done();
    let dbl_idx = mb.finish_func(dbl, false);

    mb.elements(0, vec![sq_idx, dbl_idx]);

    let mut f = mb.func("go", vec![ValType::I32, ValType::I32], vec![ValType::I64]);
    f.ops([
        // direct call, indirect call via selector, br_table over arg1
        Instr::LocalGet(0),
        Instr::Call(sq_idx),
        Instr::LocalGet(0),
        Instr::LocalGet(1),
        Instr::CallIndirect(0),
        Instr::I32Add,
        // select between that and zero on (arg0 > 3)
        Instr::I32Const(0),
        Instr::LocalGet(0),
        Instr::I32Const(3),
        Instr::I32GtS,
        Instr::Select,
        Instr::I64ExtendI32U,
        Instr::GlobalSet(g),
        Instr::Block(BlockType::Empty),
        Instr::Block(BlockType::Empty),
        Instr::LocalGet(1),
        Instr::BrTable(vec![0, 1], 1),
        Instr::End,
        // arm 0: add 100
        Instr::GlobalGet(g),
        Instr::I64Const(100),
        Instr::I64Add,
        Instr::GlobalSet(g),
        Instr::End,
        Instr::GlobalGet(g),
    ])
    .done();
    mb.finish_func(f, true);
    let module = mb.build();
    for (a, b, expect) in [
        (5, 0, 5 * 5 + 5 * 5 + 100),
        (5, 1, 5 * 5 + 5 * 2),
        (2, 0, 100),
    ] {
        let r = run_both(
            module.clone(),
            TierPolicy::Default,
            "go",
            &[Value::I32(a), Value::I32(b)],
        );
        assert_eq!(r.unwrap(), Some(Value::I64(expect as i64)), "args {a} {b}");
    }
}

/// `memory.grow` charges the MemGrow bucket and updates stats; both
/// engines must agree on every grow outcome including the failure path.
#[test]
fn memory_grow_matches_across_engines() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(3));
    let mut f = mb.func("grow", vec![ValType::I32], vec![ValType::I32]);
    f.ops([
        Instr::LocalGet(0),
        Instr::MemoryGrow,
        Instr::Drop,
        Instr::LocalGet(0),
        Instr::MemoryGrow,
        Instr::Drop,
        Instr::MemorySize,
    ])
    .done();
    mb.finish_func(f, true);
    let module = mb.build();
    // arg 1: both grows succeed (1 -> 2 -> 3 pages).
    let r = run_both(
        module.clone(),
        TierPolicy::Default,
        "grow",
        &[Value::I32(1)],
    );
    assert_eq!(r.unwrap(), Some(Value::I32(3)));
    // arg 2: first grow succeeds (1 -> 3), second exceeds max and fails.
    let r = run_both(module, TierPolicy::Default, "grow", &[Value::I32(2)]);
    assert_eq!(r.unwrap(), Some(Value::I32(3)));
}

/// Trapping executions: the virtual-cost state at the fault must be
/// identical, i.e. the trapping constituent was charged and nothing
/// after it. `i32.div_s` by zero inside a fused `LLBin` group is the
/// sharpest probe: the two `local.get`s and the div itself must land,
/// the downstream `local.set` must not.
#[test]
fn division_trap_accounting_matches_across_engines() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("div", vec![ValType::I32, ValType::I32], vec![ValType::I32]);
    let out = f.local(ValType::I32);
    f.ops([
        Instr::LocalGet(0),
        Instr::LocalGet(1),
        Instr::I32DivS,
        Instr::LocalSet(out),
        Instr::LocalGet(out),
    ])
    .done();
    mb.finish_func(f, true);
    let module = mb.build();

    let ok = run_both(
        module.clone(),
        TierPolicy::Default,
        "div",
        &[Value::I32(42), Value::I32(6)],
    );
    assert_eq!(ok.unwrap(), Some(Value::I32(7)));

    let err = run_both(
        module.clone(),
        TierPolicy::Default,
        "div",
        &[Value::I32(42), Value::I32(0)],
    );
    assert_eq!(err.unwrap_err(), Trap::DivByZero);

    let err = run_both(
        module,
        TierPolicy::Default,
        "div",
        &[Value::I32(i32::MIN), Value::I32(-1)],
    );
    assert_eq!(err.unwrap_err(), Trap::IntegerOverflow);
}

/// Out-of-bounds access inside a fused `LLoad` group.
#[test]
fn oob_trap_accounting_matches_across_engines() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let mut f = mb.func("peek", vec![ValType::I32], vec![ValType::I32]);
    f.ops([
        Instr::LocalGet(0),
        Instr::I32Load(wb_wasm::MemArg {
            align: 2,
            offset: 0,
        }),
    ])
    .done();
    mb.finish_func(f, true);
    let module = mb.build();
    let ok = run_both(
        module.clone(),
        TierPolicy::Default,
        "peek",
        &[Value::I32(0)],
    );
    assert_eq!(ok.unwrap(), Some(Value::I32(0)));
    let err = run_both(module, TierPolicy::Default, "peek", &[Value::I32(65536)]);
    assert!(matches!(err.unwrap_err(), Trap::MemoryOutOfBounds { .. }));
}
