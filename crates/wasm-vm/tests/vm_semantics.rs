//! End-to-end semantics tests: build modules with `wb-wasm`, execute them,
//! and check results, traps, tiering and accounting.

use std::collections::HashMap;
use wb_env::{TierPolicy, TimeBucket};
use wb_wasm::{BlockType, Instr, MemArg, ModuleBuilder, ValType};
use wb_wasm_vm::{Instance, Trap, Value, WasmVmConfig};

fn instance(module: wb_wasm::Module) -> Instance {
    wb_wasm::validate(&module).expect("test module must validate");
    Instance::from_module(module, WasmVmConfig::reference(), HashMap::new()).unwrap()
}

fn fib_module() -> wb_wasm::Module {
    // Recursive fib like the paper's Fig 4(a).
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("fib", vec![ValType::I32], vec![ValType::I32]);
    f.ops([
        Instr::LocalGet(0),
        Instr::I32Const(3),
        Instr::I32LtS,
        Instr::If(BlockType::Empty),
        Instr::I32Const(1),
        Instr::Return,
        Instr::End,
        Instr::LocalGet(0),
        Instr::I32Const(1),
        Instr::I32Sub,
        Instr::Call(0),
        Instr::LocalGet(0),
        Instr::I32Const(2),
        Instr::I32Sub,
        Instr::Call(0),
        Instr::I32Add,
    ])
    .done();
    mb.finish_func(f, true);
    mb.build()
}

#[test]
fn fibonacci_matches_reference() {
    let mut inst = instance(fib_module());
    let r = inst.invoke("fib", &[Value::I32(10)]).unwrap();
    assert_eq!(r, Some(Value::I32(55)));
    let r = inst.invoke("fib", &[Value::I32(1)]).unwrap();
    assert_eq!(r, Some(Value::I32(1)));
}

#[test]
fn loop_sum_and_back_edges() {
    // sum 1..=n via a loop.
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("sum", vec![ValType::I32], vec![ValType::I32]);
    let acc = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    f.ops([
        Instr::Block(BlockType::Empty),
        Instr::Loop(BlockType::Empty),
        Instr::LocalGet(i),
        Instr::LocalGet(0),
        Instr::I32GeS,
        Instr::BrIf(1),
        Instr::LocalGet(i),
        Instr::I32Const(1),
        Instr::I32Add,
        Instr::LocalTee(i),
        Instr::LocalGet(acc),
        Instr::I32Add,
        Instr::LocalSet(acc),
        Instr::Br(0),
        Instr::End,
        Instr::End,
        Instr::LocalGet(acc),
    ])
    .done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    let r = inst.invoke("sum", &[Value::I32(100)]).unwrap();
    assert_eq!(r, Some(Value::I32(5050)));
    let report = inst.report();
    assert!(report.counts.total() > 500, "loop ops retired");
}

#[test]
fn division_traps() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("div", vec![ValType::I32, ValType::I32], vec![ValType::I32]);
    f.ops([Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32DivS])
        .done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    assert_eq!(
        inst.invoke("div", &[Value::I32(7), Value::I32(0)]),
        Err(Trap::DivByZero)
    );
    assert_eq!(
        inst.invoke("div", &[Value::I32(i32::MIN), Value::I32(-1)]),
        Err(Trap::IntegerOverflow)
    );
    assert_eq!(
        inst.invoke("div", &[Value::I32(-7), Value::I32(2)]),
        Ok(Some(Value::I32(-3)))
    );
}

#[test]
fn memory_store_load_round_trip() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, None);
    let mut f = mb.func(
        "poke_peek",
        vec![ValType::I32, ValType::F64],
        vec![ValType::F64],
    );
    f.ops([
        Instr::LocalGet(0),
        Instr::LocalGet(1),
        Instr::F64Store(MemArg::natural(8)),
        Instr::LocalGet(0),
        Instr::F64Load(MemArg::natural(8)),
    ])
    .done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    let r = inst
        .invoke("poke_peek", &[Value::I32(128), Value::F64(3.25)])
        .unwrap();
    assert_eq!(r, Some(Value::F64(3.25)));
}

#[test]
fn out_of_bounds_traps() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, None);
    let mut f = mb.func("peek", vec![ValType::I32], vec![ValType::I32]);
    f.ops([Instr::LocalGet(0), Instr::I32Load(MemArg::natural(4))])
        .done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    assert!(matches!(
        inst.invoke("peek", &[Value::I32(65536)]),
        Err(Trap::MemoryOutOfBounds { .. })
    ));
    // Last valid word.
    assert!(inst.invoke("peek", &[Value::I32(65532)]).is_ok());
}

#[test]
fn memory_grow_updates_stats_and_charges_time() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(10));
    let mut f = mb.func("grow", vec![ValType::I32], vec![ValType::I32]);
    f.ops([Instr::LocalGet(0), Instr::MemoryGrow]).done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    let before = inst.report();
    assert_eq!(before.clock.mem_grow_time.0, 0.0);
    assert_eq!(
        inst.invoke("grow", &[Value::I32(4)]),
        Ok(Some(Value::I32(1)))
    );
    let after = inst.report();
    assert_eq!(after.memory.linear_bytes, 5 * 64 * 1024);
    assert_eq!(after.memory.grow_count, 1);
    assert_eq!(after.memory.grown_pages, 4);
    assert!(after.clock.mem_grow_time.0 > 0.0);
    // Refused grow returns -1 and charges nothing extra.
    assert_eq!(
        inst.invoke("grow", &[Value::I32(100)]),
        Ok(Some(Value::I32(-1)))
    );
    assert_eq!(inst.report().memory.grow_count, 1);
}

#[test]
fn host_functions_and_context_switches() {
    let mut mb = ModuleBuilder::new();
    let imp = mb.import_func("env", "add_ten", vec![ValType::I32], vec![ValType::I32]);
    let mut f = mb.func("run", vec![ValType::I32], vec![ValType::I32]);
    f.ops([Instr::LocalGet(0), Instr::Call(imp)]).done();
    mb.finish_func(f, true);
    let module = mb.build();
    wb_wasm::validate(&module).unwrap();
    let mut hostfns: HashMap<String, wb_wasm_vm::HostFn> = HashMap::new();
    hostfns.insert(
        "env.add_ten".into(),
        Box::new(|_ctx, args| Ok(Some(Value::I32(args[0].as_i32() + 10)))),
    );
    let mut inst = Instance::from_module(module, WasmVmConfig::reference(), hostfns).unwrap();
    let r = inst.invoke("run", &[Value::I32(32)]).unwrap();
    assert_eq!(r, Some(Value::I32(42)));
    // invoke: 2 crossings; host call: 2 more.
    assert_eq!(inst.report().context_switches, 4);
    assert!(inst.report().clock.context_switch_time.0 > 0.0);
}

#[test]
fn missing_import_traps() {
    let mut mb = ModuleBuilder::new();
    let imp = mb.import_func("env", "absent", vec![], vec![]);
    let mut f = mb.func("run", vec![], vec![]);
    f.ops([Instr::Call(imp)]).done();
    mb.finish_func(f, true);
    let mut inst =
        Instance::from_module(mb.build(), WasmVmConfig::reference(), HashMap::new()).unwrap();
    assert!(matches!(
        inst.invoke("run", &[]),
        Err(Trap::MissingImport { .. })
    ));
}

#[test]
fn call_indirect_dispatches_and_checks_types() {
    let mut mb = ModuleBuilder::new();
    mb.table(2);
    let mut f0 = mb.func("three", vec![], vec![ValType::I32]);
    f0.op(Instr::I32Const(3)).done();
    mb.finish_func(f0, false);
    let mut f1 = mb.func("four", vec![], vec![ValType::I32]);
    f1.op(Instr::I32Const(4)).done();
    mb.finish_func(f1, false);
    mb.elements(0, vec![0, 1]);
    let mut f = mb.func("pick", vec![ValType::I32], vec![ValType::I32]);
    // type index of () -> i32 is 0 (first interned).
    f.ops([Instr::LocalGet(0), Instr::CallIndirect(0)]).done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    assert_eq!(
        inst.invoke("pick", &[Value::I32(0)]),
        Ok(Some(Value::I32(3)))
    );
    assert_eq!(
        inst.invoke("pick", &[Value::I32(1)]),
        Ok(Some(Value::I32(4)))
    );
    assert_eq!(
        inst.invoke("pick", &[Value::I32(5)]),
        Err(Trap::TableOutOfBounds)
    );
}

#[test]
fn br_table_selects_arms() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("classify", vec![ValType::I32], vec![ValType::I32]);
    f.ops([
        Instr::Block(BlockType::Empty), // depth 2 at br_table
        Instr::Block(BlockType::Empty), // depth 1
        Instr::Block(BlockType::Empty), // depth 0
        Instr::LocalGet(0),
        Instr::BrTable(vec![0, 1], 2),
        Instr::End,
        Instr::I32Const(100), // case 0
        Instr::Return,
        Instr::End,
        Instr::I32Const(200), // case 1
        Instr::Return,
        Instr::End,
        Instr::I32Const(300), // default
    ])
    .done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    assert_eq!(
        inst.invoke("classify", &[Value::I32(0)]),
        Ok(Some(Value::I32(100)))
    );
    assert_eq!(
        inst.invoke("classify", &[Value::I32(1)]),
        Ok(Some(Value::I32(200)))
    );
    assert_eq!(
        inst.invoke("classify", &[Value::I32(9)]),
        Ok(Some(Value::I32(300)))
    );
}

#[test]
fn stack_overflow_trap() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("spin", vec![], vec![]);
    f.ops([Instr::Call(0)]).done();
    mb.finish_func(f, true);
    let mut cfg = WasmVmConfig::reference();
    cfg.limits.max_call_depth = 64;
    let mut inst = Instance::from_module(mb.build(), cfg, HashMap::new()).unwrap();
    assert_eq!(inst.invoke("spin", &[]), Err(Trap::StackOverflow));
}

#[test]
fn step_budget_trap() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("forever", vec![], vec![]);
    f.ops([Instr::Loop(BlockType::Empty), Instr::Br(0), Instr::End])
        .done();
    mb.finish_func(f, true);
    let mut cfg = WasmVmConfig::reference();
    cfg.limits.fuel = Some(10_000);
    let mut inst = Instance::from_module(mb.build(), cfg, HashMap::new()).unwrap();
    assert_eq!(inst.invoke("forever", &[]), Err(Trap::StepBudgetExhausted));
}

#[test]
fn tier_up_happens_under_default_policy_only() {
    // A function hot enough to cross the reference threshold.
    let run = |policy: TierPolicy| {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("hot", vec![ValType::I32], vec![ValType::I32]);
        let i = f.local(ValType::I32);
        f.ops([
            Instr::Block(BlockType::Empty),
            Instr::Loop(BlockType::Empty),
            Instr::LocalGet(i),
            Instr::LocalGet(0),
            Instr::I32GeS,
            Instr::BrIf(1),
            Instr::LocalGet(i),
            Instr::I32Const(1),
            Instr::I32Add,
            Instr::LocalSet(i),
            Instr::Br(0),
            Instr::End,
            Instr::End,
            Instr::LocalGet(i),
        ])
        .done();
        mb.finish_func(f, true);
        let mut cfg = WasmVmConfig::reference();
        cfg.tier_policy = policy;
        let mut inst = Instance::from_module(mb.build(), cfg, HashMap::new()).unwrap();
        inst.invoke("hot", &[Value::I32(50_000)]).unwrap();
        inst.report()
    };

    let default = run(TierPolicy::Default);
    assert_eq!(default.tier_ups, 1);
    assert!(default.baseline_counts.total() > 0, "warm-up in baseline");
    assert!(default.counts.total() > default.baseline_counts.total());
    assert!(default.clock.compile_time.0 > 0.0);

    let basic = run(TierPolicy::BasicOnly);
    assert_eq!(basic.tier_ups, 0);
    assert_eq!(basic.baseline_counts.total(), basic.counts.total());

    let optimizing = run(TierPolicy::OptimizingOnly);
    assert_eq!(optimizing.tier_ups, 0);
    assert_eq!(optimizing.baseline_counts.total(), 0);

    // Table 7 shape: default beats basic-only; optimizing-only beats
    // default (compile up front, no baseline warm-up) for hot code.
    assert!(default.total.0 < basic.total.0, "default < basic-only");
    assert!(
        optimizing.total.0 < default.total.0,
        "optimizing-only < default"
    );
}

#[test]
fn instantiate_from_binary_charges_load_time() {
    let bytes = wb_wasm::encode_module(&fib_module());
    let mut inst =
        Instance::instantiate(&bytes, WasmVmConfig::reference(), HashMap::new()).unwrap();
    let report = inst.report();
    assert!(report.clock.load_time.0 > 0.0);
    assert!(report.clock.compile_time.0 > 0.0);
    assert_eq!(
        inst.invoke("fib", &[Value::I32(7)]).unwrap(),
        Some(Value::I32(13))
    );
}

#[test]
fn select_and_globals() {
    let mut mb = ModuleBuilder::new();
    let g = mb.global(ValType::I32, true, Instr::I32Const(17));
    let mut f = mb.func("pick", vec![ValType::I32], vec![ValType::I32]);
    f.ops([
        Instr::GlobalGet(g),
        Instr::I32Const(99),
        Instr::LocalGet(0),
        Instr::Select,
    ])
    .done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    assert_eq!(
        inst.invoke("pick", &[Value::I32(1)]),
        Ok(Some(Value::I32(17)))
    );
    assert_eq!(
        inst.invoke("pick", &[Value::I32(0)]),
        Ok(Some(Value::I32(99)))
    );
}

#[test]
fn i64_and_f64_arithmetic() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("mix", vec![ValType::I64, ValType::F64], vec![ValType::F64]);
    f.ops([
        Instr::LocalGet(0),
        Instr::F64ConvertI64S,
        Instr::LocalGet(1),
        Instr::F64Mul,
        Instr::F64Sqrt,
    ])
    .done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    let r = inst
        .invoke("mix", &[Value::I64(4), Value::F64(4.0)])
        .unwrap();
    assert_eq!(r, Some(Value::F64(4.0)));
}

#[test]
fn unreachable_traps() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("boom", vec![], vec![]);
    f.op(Instr::Unreachable).done();
    mb.finish_func(f, true);
    let mut inst = instance(mb.build());
    assert_eq!(inst.invoke("boom", &[]), Err(Trap::Unreachable));
}

#[test]
fn invoke_argument_checking() {
    let mut inst = instance(fib_module());
    assert!(matches!(
        inst.invoke("fib", &[]),
        Err(Trap::BadInvokeArgs { .. })
    ));
    assert!(matches!(
        inst.invoke("fib", &[Value::F64(1.0)]),
        Err(Trap::BadInvokeArgs { .. })
    ));
    assert!(matches!(
        inst.invoke("nope", &[]),
        Err(Trap::NoSuchExport { .. })
    ));
}

#[test]
fn clock_buckets_are_disjoint_and_sum() {
    let mut inst = instance(fib_module());
    inst.invoke("fib", &[Value::I32(15)]).unwrap();
    let r = inst.report();
    let parts = r.clock.load_time
        + r.clock.compile_time
        + r.clock.exec_time
        + r.clock.gc_time
        + r.clock.mem_grow_time
        + r.clock.context_switch_time;
    assert!((parts.0 - r.total.0).abs() < 1e-6);
    let _ = TimeBucket::Exec; // bucket type is part of the public API
}
