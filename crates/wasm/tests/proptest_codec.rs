//! Randomized (deterministic, LCG-seeded) codec tests: the binary codec
//! round-trips arbitrary modules, and the decoder never panics on
//! arbitrary or mutated inputs. Every case prints its seed on failure.

use wb_env::rng::Lcg;
use wb_wasm::{
    decode_module, encode_module, leb128, BlockType, Data, Element, Export, ExportKind, FuncImport,
    FuncType, Function, Global, GlobalType, Instr, Limits, MemArg, MemorySpec, Module, TableSpec,
    ValType,
};

fn gen_val_type(rng: &mut Lcg) -> ValType {
    match rng.index(4) {
        0 => ValType::I32,
        1 => ValType::I64,
        2 => ValType::F32,
        _ => ValType::F64,
    }
}

fn gen_block_type(rng: &mut Lcg) -> BlockType {
    if rng.chance(1, 2) {
        BlockType::Empty
    } else {
        BlockType::Value(gen_val_type(rng))
    }
}

fn gen_memarg(rng: &mut Lcg) -> MemArg {
    MemArg {
        align: rng.below(4) as u32,
        offset: rng.below(4096) as u32,
    }
}

fn gen_name(rng: &mut Lcg, min: usize, max: usize) -> String {
    let len = min + rng.index(max - min + 1);
    (0..len)
        .map(|_| (b'a' + rng.index(26) as u8) as char)
        .collect()
}

/// A generous sample of the instruction space, including every immediate
/// shape (indices, memargs, consts, br_table vectors, block types).
fn gen_instr(rng: &mut Lcg) -> Instr {
    match rng.index(36) {
        0 => Instr::Nop,
        1 => Instr::Unreachable,
        2 => Instr::Drop,
        3 => Instr::Select,
        4 => Instr::Return,
        5 => Instr::I32Add,
        6 => Instr::I64Mul,
        7 => Instr::F32Sqrt,
        8 => Instr::F64Div,
        9 => Instr::I32Eqz,
        10 => Instr::I64GeU,
        11 => Instr::F64ConvertI32S,
        12 => Instr::I32WrapI64,
        13 => Instr::MemorySize,
        14 => Instr::MemoryGrow,
        15 => Instr::Block(gen_block_type(rng)),
        16 => Instr::Loop(gen_block_type(rng)),
        17 => Instr::If(gen_block_type(rng)),
        18 => Instr::Else,
        19 => Instr::End,
        20 => Instr::Br(rng.below(8) as u32),
        21 => Instr::BrIf(rng.below(8) as u32),
        22 => {
            let n = rng.index(5);
            let targets = (0..n).map(|_| rng.below(8) as u32).collect();
            Instr::BrTable(targets, rng.below(8) as u32)
        }
        23 => Instr::Call(rng.below(16) as u32),
        24 => Instr::CallIndirect(rng.below(4) as u32),
        25 => Instr::LocalGet(rng.below(32) as u32),
        26 => Instr::LocalSet(rng.below(32) as u32),
        27 => Instr::LocalTee(rng.below(32) as u32),
        28 => Instr::GlobalGet(rng.below(8) as u32),
        29 => Instr::GlobalSet(rng.below(8) as u32),
        30 => Instr::I32Load(gen_memarg(rng)),
        31 => Instr::F64Store(gen_memarg(rng)),
        32 => Instr::I32Const(rng.next_i32()),
        33 => Instr::I64Const(rng.next_i64()),
        // Finite floats only: NaN payloads survive the codec but break
        // `PartialEq` comparison in the round-trip assertion.
        34 => Instr::F32Const(rng.range_f64(-1.0e30, 1.0e30) as f32),
        _ => Instr::F64Const(rng.range_f64(-1.0e300, 1.0e300)),
    }
}

fn gen_func_type(rng: &mut Lcg) -> FuncType {
    let params = (0..rng.index(4)).map(|_| gen_val_type(rng)).collect();
    let results = (0..rng.index(2)).map(|_| gen_val_type(rng)).collect();
    FuncType { params, results }
}

fn gen_module(rng: &mut Lcg) -> Module {
    let types: Vec<FuncType> = (0..1 + rng.index(3)).map(|_| gen_func_type(rng)).collect();
    let ntypes = types.len() as u64;
    let imports: Vec<FuncImport> = (0..rng.index(3))
        .map(|_| FuncImport {
            module: gen_name(rng, 1, 6),
            field: gen_name(rng, 1, 6),
            type_index: rng.below(ntypes) as u32,
        })
        .collect();
    let functions: Vec<Function> = (0..rng.index(4))
        .map(|_| {
            let mut body: Vec<Instr> = (0..rng.index(12)).map(|_| gen_instr(rng)).collect();
            body.push(Instr::End);
            Function {
                type_index: rng.below(ntypes) as u32,
                locals: (0..rng.index(4)).map(|_| gen_val_type(rng)).collect(),
                body,
                name: if rng.chance(1, 2) {
                    Some(gen_name(rng, 1, 9))
                } else {
                    None
                },
            }
        })
        .collect();
    let globals: Vec<Global> = (0..rng.index(3))
        .map(|_| {
            let ty = gen_val_type(rng);
            let v = rng.next_i32();
            Global {
                ty: GlobalType {
                    ty,
                    mutable: rng.chance(1, 2),
                },
                init: match ty {
                    ValType::I32 => Instr::I32Const(v),
                    ValType::I64 => Instr::I64Const(v as i64),
                    ValType::F32 => Instr::F32Const(v as f32),
                    ValType::F64 => Instr::F64Const(v as f64),
                },
            }
        })
        .collect();
    let memory = if rng.chance(1, 2) {
        Some(MemorySpec {
            limits: Limits {
                min: rng.below(8) as u32,
                max: if rng.chance(1, 2) {
                    Some(8 + rng.below(56) as u32)
                } else {
                    None
                },
            },
        })
    } else {
        None
    };
    let table = if rng.chance(1, 2) {
        Some(TableSpec {
            limits: Limits::at_least(rng.below(8) as u32),
        })
    } else {
        None
    };
    let data: Vec<Data> = (0..rng.index(3))
        .map(|_| Data {
            offset: rng.below(4096) as i32,
            bytes: (0..rng.index(32)).map(|_| rng.next_u32() as u8).collect(),
        })
        .collect();
    let nfuncs = (imports.len() + functions.len()) as u32;
    let exports = functions
        .iter()
        .enumerate()
        .filter_map(|(i, f)| {
            f.name.as_ref().map(|n| Export {
                name: format!("e_{n}"),
                kind: ExportKind::Func(imports.len() as u32 + i as u32),
            })
        })
        .collect();
    let elements = if table.is_some() && nfuncs > 0 {
        vec![Element {
            offset: 0,
            funcs: (0..nfuncs.min(3)).collect(),
        }]
    } else {
        vec![]
    };
    Module {
        types,
        imports,
        functions,
        table,
        memory,
        globals,
        exports,
        start: None,
        elements,
        data,
    }
}

#[test]
fn codec_round_trips() {
    for seed in 0..256 {
        let mut rng = Lcg::new(seed);
        let m = gen_module(&mut rng);
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).expect("own encoding must decode");
        assert_eq!(decoded, m, "seed {seed}");
    }
}

#[test]
fn decoder_never_panics_on_random_bytes() {
    for seed in 0..256 {
        let mut rng = Lcg::new(10_000 + seed);
        let bytes: Vec<u8> = (0..rng.index(512)).map(|_| rng.next_u32() as u8).collect();
        let _ = decode_module(&bytes);
    }
}

#[test]
fn decoder_never_panics_on_mutated_modules() {
    for seed in 0..256 {
        let mut rng = Lcg::new(20_000 + seed);
        let m = gen_module(&mut rng);
        let mut bytes = encode_module(&m);
        if !bytes.is_empty() {
            let i = rng.index(bytes.len());
            let bit = rng.index(8);
            bytes[i] ^= 1 << bit;
        }
        let _ = decode_module(&bytes);
    }
}

#[test]
fn leb128_u64_round_trips() {
    let mut rng = Lcg::new(77);
    // Mix full-range values with small and boundary ones.
    let mut values: Vec<u64> = (0..500).map(|_| rng.next_u64()).collect();
    values.extend([0, 1, 127, 128, 16383, 16384, u64::MAX]);
    for v in values {
        let mut buf = Vec::new();
        leb128::write_u64(&mut buf, v);
        let mut r = leb128::Reader::new(&buf);
        assert_eq!(r.u64().unwrap(), v);
        assert!(r.is_empty());
    }
}

#[test]
fn leb128_i64_round_trips() {
    let mut rng = Lcg::new(78);
    let mut values: Vec<i64> = (0..500).map(|_| rng.next_i64()).collect();
    values.extend([0, -1, 63, 64, -64, -65, i64::MIN, i64::MAX]);
    for v in values {
        let mut buf = Vec::new();
        leb128::write_i64(&mut buf, v);
        let mut r = leb128::Reader::new(&buf);
        assert_eq!(r.i64().unwrap(), v);
        assert!(r.is_empty());
    }
}
