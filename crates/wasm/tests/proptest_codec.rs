//! Property tests: the binary codec round-trips arbitrary modules, and the
//! decoder never panics on arbitrary or mutated inputs.

use proptest::prelude::*;
use wb_wasm::{
    decode_module, encode_module, leb128, BlockType, Data, Element, Export, ExportKind,
    FuncImport, FuncType, Function, Global, GlobalType, Instr, Limits, MemArg, MemorySpec, Module,
    TableSpec, ValType,
};

fn val_type() -> impl Strategy<Value = ValType> {
    prop_oneof![
        Just(ValType::I32),
        Just(ValType::I64),
        Just(ValType::F32),
        Just(ValType::F64),
    ]
}

fn block_type() -> impl Strategy<Value = BlockType> {
    prop_oneof![Just(BlockType::Empty), val_type().prop_map(BlockType::Value)]
}

fn memarg() -> impl Strategy<Value = MemArg> {
    (0u32..4, 0u32..4096).prop_map(|(align, offset)| MemArg { align, offset })
}

/// A generous sample of the instruction space, including every immediate
/// shape (indices, memargs, consts, br_table vectors, block types).
fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Unreachable),
        Just(Instr::Drop),
        Just(Instr::Select),
        Just(Instr::Return),
        Just(Instr::I32Add),
        Just(Instr::I64Mul),
        Just(Instr::F32Sqrt),
        Just(Instr::F64Div),
        Just(Instr::I32Eqz),
        Just(Instr::I64GeU),
        Just(Instr::F64ConvertI32S),
        Just(Instr::I32WrapI64),
        Just(Instr::MemorySize),
        Just(Instr::MemoryGrow),
        block_type().prop_map(Instr::Block),
        block_type().prop_map(Instr::Loop),
        block_type().prop_map(Instr::If),
        Just(Instr::Else),
        Just(Instr::End),
        (0u32..8).prop_map(Instr::Br),
        (0u32..8).prop_map(Instr::BrIf),
        (proptest::collection::vec(0u32..8, 0..5), 0u32..8)
            .prop_map(|(t, d)| Instr::BrTable(t, d)),
        (0u32..16).prop_map(Instr::Call),
        (0u32..4).prop_map(Instr::CallIndirect),
        (0u32..32).prop_map(Instr::LocalGet),
        (0u32..32).prop_map(Instr::LocalSet),
        (0u32..32).prop_map(Instr::LocalTee),
        (0u32..8).prop_map(Instr::GlobalGet),
        (0u32..8).prop_map(Instr::GlobalSet),
        memarg().prop_map(Instr::I32Load),
        memarg().prop_map(Instr::F64Store),
        memarg().prop_map(Instr::I32Load8U),
        memarg().prop_map(Instr::I64Load32S),
        memarg().prop_map(Instr::I32Store16),
        any::<i32>().prop_map(Instr::I32Const),
        any::<i64>().prop_map(Instr::I64Const),
        // Finite floats only: NaN payloads survive the codec but break
        // `PartialEq` comparison in the round-trip assertion.
        (-1.0e30f32..1.0e30).prop_map(Instr::F32Const),
        (-1.0e300f64..1.0e300).prop_map(Instr::F64Const),
    ]
}

fn func_type() -> impl Strategy<Value = FuncType> {
    (
        proptest::collection::vec(val_type(), 0..4),
        proptest::collection::vec(val_type(), 0..2),
    )
        .prop_map(|(params, results)| FuncType { params, results })
}

fn module() -> impl Strategy<Value = Module> {
    let types = proptest::collection::vec(func_type(), 1..4);
    types.prop_flat_map(|types| {
        let ntypes = types.len() as u32;
        let imports = proptest::collection::vec(
            ("[a-z]{1,6}", "[a-z]{1,6}", 0..ntypes).prop_map(|(m, f, t)| FuncImport {
                module: m,
                field: f,
                type_index: t,
            }),
            0..3,
        );
        let functions = proptest::collection::vec(
            (
                0..ntypes,
                proptest::collection::vec(val_type(), 0..4),
                proptest::collection::vec(instr(), 0..12),
                proptest::option::of("[a-z][a-z0-9_]{0,8}"),
            )
                .prop_map(|(type_index, locals, mut body, name)| {
                    body.push(Instr::End);
                    Function {
                        type_index,
                        locals,
                        body,
                        name,
                    }
                }),
            0..4,
        );
        let globals = proptest::collection::vec(
            (val_type(), any::<bool>(), any::<i32>()).prop_map(|(ty, mutable, v)| Global {
                ty: GlobalType { ty, mutable },
                init: match ty {
                    ValType::I32 => Instr::I32Const(v),
                    ValType::I64 => Instr::I64Const(v as i64),
                    ValType::F32 => Instr::F32Const(v as f32),
                    ValType::F64 => Instr::F64Const(v as f64),
                },
            }),
            0..3,
        );
        let memory = proptest::option::of(
            (0u32..8, proptest::option::of(8u32..64))
                .prop_map(|(min, max)| MemorySpec {
                    limits: Limits { min, max },
                }),
        );
        let table = proptest::option::of((0u32..8).prop_map(|min| TableSpec {
            limits: Limits::at_least(min),
        }));
        let data = proptest::collection::vec(
            (0i32..4096, proptest::collection::vec(any::<u8>(), 0..32))
                .prop_map(|(offset, bytes)| Data { offset, bytes }),
            0..3,
        );
        (types_just(types), imports, functions, globals, memory, table, data).prop_map(
            |(types, imports, functions, globals, memory, table, data)| {
                let nfuncs = (imports.len() + functions.len()) as u32;
                let exports = functions
                    .iter()
                    .enumerate()
                    .filter_map(|(i, f)| {
                        f.name.as_ref().map(|n| Export {
                            name: format!("e_{n}"),
                            kind: ExportKind::Func(imports.len() as u32 + i as u32),
                        })
                    })
                    .collect();
                let elements = if table.is_some() && nfuncs > 0 {
                    vec![Element {
                        offset: 0,
                        funcs: (0..nfuncs.min(3)).collect(),
                    }]
                } else {
                    vec![]
                };
                Module {
                    types,
                    imports,
                    functions,
                    table,
                    memory,
                    globals,
                    exports,
                    start: None,
                    elements,
                    data,
                }
            },
        )
    })
}

fn types_just(t: Vec<FuncType>) -> impl Strategy<Value = Vec<FuncType>> {
    Just(t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_round_trips(m in module()) {
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded, m);
    }

    #[test]
    fn decoder_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_module(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_modules(
        m in module(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = encode_module(&m);
        if !bytes.is_empty() {
            let i = flip_at.index(bytes.len());
            bytes[i] ^= 1 << flip_bit;
        }
        let _ = decode_module(&bytes);
    }

    #[test]
    fn leb128_u64_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        leb128::write_u64(&mut buf, v);
        let mut r = leb128::Reader::new(&buf);
        prop_assert_eq!(r.u64().unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn leb128_i64_round_trips(v in any::<i64>()) {
        let mut buf = Vec::new();
        leb128::write_i64(&mut buf, v);
        let mut r = leb128::Reader::new(&buf);
        prop_assert_eq!(r.i64().unwrap(), v);
        prop_assert!(r.is_empty());
    }
}
