//! Seeded random-corruption suite (ISSUE 5, satellite a): 10,000
//! mutated modules through [`decode_module`], asserting the decoder
//! returns [`DecodeError`] — never panics, never over-allocates — on
//! truncated or over-long LEB128s and malformed sections. Every case
//! prints its round number on failure so it replays deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use wb_env::rng::Lcg;
use wb_wasm::{
    decode_module, encode_module, Data, Element, Export, ExportKind, FuncImport, FuncType,
    Function, Global, GlobalType, Instr, Limits, MemArg, MemorySpec, Module, TableSpec, ValType,
};

/// A fixed, well-formed module exercising every section the decoder
/// knows: types, imports, functions, table, memory, globals, exports,
/// elements, data and the `name` custom section (via `Function::name`).
fn base_module() -> Module {
    let ft0 = FuncType {
        params: vec![ValType::I32, ValType::I32],
        results: vec![ValType::I32],
    };
    let ft1 = FuncType {
        params: vec![],
        results: vec![],
    };
    let body = vec![
        Instr::LocalGet(0),
        Instr::LocalGet(1),
        Instr::I32Add,
        Instr::LocalTee(2),
        Instr::I32Const(7),
        Instr::I32Store(MemArg {
            align: 2,
            offset: 16,
        }),
        Instr::LocalGet(2),
        Instr::End,
    ];
    let f0 = Function {
        type_index: 0,
        locals: vec![ValType::I32],
        body,
        name: Some("adder".into()),
    };
    let f1 = Function {
        type_index: 1,
        locals: vec![],
        body: vec![
            Instr::Block(wb_wasm::BlockType::Empty),
            Instr::I32Const(1),
            Instr::BrTable(vec![0, 0], 0),
            Instr::End,
            Instr::End,
        ],
        name: Some("brancher".into()),
    };
    Module {
        types: vec![ft0, ft1],
        imports: vec![FuncImport {
            module: "env".into(),
            field: "print_int".into(),
            type_index: 1,
        }],
        functions: vec![f0, f1],
        table: Some(TableSpec {
            limits: Limits::at_least(4),
        }),
        memory: Some(MemorySpec {
            limits: Limits {
                min: 1,
                max: Some(4),
            },
        }),
        globals: vec![Global {
            ty: GlobalType {
                ty: ValType::I32,
                mutable: true,
            },
            init: Instr::I32Const(42),
        }],
        exports: vec![Export {
            name: "adder".into(),
            kind: ExportKind::Func(1),
        }],
        start: None,
        elements: vec![Element {
            offset: 0,
            funcs: vec![1, 2],
        }],
        data: vec![Data {
            offset: 64,
            bytes: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }],
    }
}

/// Apply one random mutation. The families are chosen to hit the
/// decoder's hard paths: bit flips corrupt opcodes and section ids,
/// truncation forces EOF mid-integer, splices desynchronize section
/// sizes, and 0xFF runs manufacture over-long / over-wide LEB128s.
fn mutate(bytes: &mut Vec<u8>, rng: &mut Lcg) {
    match rng.index(5) {
        // Flip 1..=8 random bits.
        0 => {
            for _ in 0..1 + rng.index(8) {
                if bytes.is_empty() {
                    return;
                }
                let i = rng.index(bytes.len());
                bytes[i] ^= 1 << rng.index(8);
            }
        }
        // Truncate at a random point (possibly mid-LEB128).
        1 => {
            let keep = rng.index(bytes.len() + 1);
            bytes.truncate(keep);
        }
        // Splice random garbage into a random offset.
        2 => {
            let at = rng.index(bytes.len() + 1);
            let insert: Vec<u8> = (0..1 + rng.index(16))
                .map(|_| rng.next_u32() as u8)
                .collect();
            bytes.splice(at..at, insert);
        }
        // Remove a random slice (section-size desync).
        3 => {
            if bytes.is_empty() {
                return;
            }
            let start = rng.index(bytes.len());
            let len = 1 + rng.index((bytes.len() - start).min(16));
            bytes.drain(start..start + len);
        }
        // Overwrite a run with 0xFF: continuation bits all set, which
        // yields over-long LEB128s and absurd counts/capacities.
        _ => {
            if bytes.is_empty() {
                return;
            }
            let start = rng.index(bytes.len());
            let len = 1 + rng.index((bytes.len() - start).min(10));
            for b in &mut bytes[start..start + len] {
                *b = 0xff;
            }
        }
    }
}

#[test]
fn ten_thousand_corrupted_modules_never_panic() {
    let pristine = encode_module(&base_module());
    decode_module(&pristine).expect("base module must decode");
    let mut rng = Lcg::new(0x7761_736d); // "wasm"
    let mut panics = 0usize;
    let mut first: Option<usize> = None;
    for round in 0..10_000 {
        let mut bytes = pristine.clone();
        // 1..=3 stacked mutations per round.
        for _ in 0..1 + rng.index(3) {
            mutate(&mut bytes, &mut rng);
        }
        let input = bytes.clone();
        if catch_unwind(AssertUnwindSafe(|| {
            let _ = decode_module(&input);
        }))
        .is_err()
        {
            panics += 1;
            first.get_or_insert(round);
        }
    }
    assert_eq!(
        panics, 0,
        "decoder panicked on {panics}/10000 corrupted modules (first at round {:?})",
        first
    );
}

#[test]
fn huge_claimed_counts_fail_without_allocating() {
    // An element segment claiming u32::MAX function indices with only a
    // few payload bytes behind it must fail with a decode error instead
    // of reserving gigabytes up front. Completing at all (quickly, and
    // without aborting on OOM) is the property under test.
    let pristine = encode_module(&base_module());
    let mut rng = Lcg::new(0xbad_c0de);
    for _ in 0..200 {
        let mut bytes = pristine.clone();
        // Plant a maximal LEB128 u32 (0xFF 0xFF 0xFF 0xFF 0x0F) at a
        // random offset, then truncate shortly after it, so whatever
        // count field it lands on claims ~4G entries with no payload.
        let at = rng.index(bytes.len());
        let huge = [0xffu8, 0xff, 0xff, 0xff, 0x0f];
        let end = (at + 5).min(bytes.len());
        bytes.splice(at..end, huge);
        let keep = (at + 5 + rng.index(8)).min(bytes.len());
        bytes.truncate(keep);
        assert!(
            decode_module(&bytes).is_err(),
            "a module truncated right after a 4G count cannot be valid"
        );
    }
}
