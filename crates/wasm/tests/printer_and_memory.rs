//! Integration tests of the WAT printer and linear-memory semantics on
//! realistic (compiler-shaped) modules.

use wb_wasm::{
    print_wat, BlockType, Instr, Limits, LinearMemory, MemArg, ModuleBuilder, ValType, PAGE_SIZE,
};

fn fig4_style_module() -> wb_wasm::Module {
    // A fib module like the paper's Fig 4(c) disassembly.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, None);
    let mut f = mb.func("fib", vec![ValType::I32], vec![ValType::I32]);
    f.ops([
        Instr::LocalGet(0),
        Instr::I32Const(3),
        Instr::I32LtS,
        Instr::If(BlockType::Empty),
        Instr::I32Const(1),
        Instr::Return,
        Instr::End,
        Instr::LocalGet(0),
        Instr::I32Const(1),
        Instr::I32Sub,
        Instr::Call(0),
        Instr::LocalGet(0),
        Instr::I32Const(2),
        Instr::I32Sub,
        Instr::Call(0),
        Instr::I32Add,
    ])
    .done();
    mb.finish_func(f, true);
    mb.build()
}

#[test]
fn wat_rendering_shows_fig4_features() {
    let m = fig4_style_module();
    let wat = print_wat(&m);
    // The structural features the paper's Fig 4(c) shows.
    for needle in [
        "(module",
        "(type $t0 (func (param i32) (result i32)))",
        "(func $fib",
        "local.get 0",
        "i32.lt_s",
        "call 0",
        "(memory 1)",
        "(export \"fib\" (func 0))",
    ] {
        assert!(wat.contains(needle), "missing {needle} in:\n{wat}");
    }
}

#[test]
fn wat_rendering_round_trips_through_codec() {
    let m = fig4_style_module();
    let decoded = wb_wasm::decode_module(&wb_wasm::encode_module(&m)).expect("round trip");
    assert_eq!(print_wat(&m), print_wat(&decoded));
}

#[test]
fn memory_never_shrinks_and_tracks_growth() {
    // The §2.2.2 semantics underpinning the paper's memory findings.
    let mut mem = LinearMemory::new(Limits::at_least(1));
    let mut sizes = vec![mem.size_bytes()];
    for delta in [1, 4, 2, 8] {
        assert!(mem.grow(delta) >= 0);
        sizes.push(mem.size_bytes());
    }
    for w in sizes.windows(2) {
        assert!(w[1] > w[0], "monotonic growth: {sizes:?}");
    }
    assert_eq!(mem.size_pages(), 16);
    assert_eq!(mem.grow_count, 4);
    assert_eq!(mem.grown_pages, 15);
}

#[test]
fn data_past_initial_memory_is_reachable_after_growth() {
    let mut mem = LinearMemory::new(Limits::at_least(1));
    let last = (PAGE_SIZE - 8) as u64;
    mem.write_u64(last, 0xfeed_face_dead_beef)
        .expect("in page one");
    assert!(mem.write_u64(last + PAGE_SIZE as u64, 1).is_err());
    mem.grow(1);
    mem.write_u64(last + PAGE_SIZE as u64, 0xabad_cafe)
        .expect("reachable after grow");
    assert_eq!(
        mem.read_u64(last).expect("still intact"),
        0xfeed_face_dead_beef
    );
}

#[test]
fn offset_addressing_matches_effective_address_rules() {
    // A store with a memarg offset at the very end of memory must trap,
    // even when the dynamic address alone is in bounds.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, None);
    let mut f = mb.func("poke", vec![ValType::I32], vec![]);
    f.ops([
        Instr::LocalGet(0),
        Instr::I32Const(7),
        Instr::I32Store(MemArg::natural(4).with_offset((PAGE_SIZE - 2) as u32)),
    ])
    .done();
    mb.finish_func(f, true);
    let m = mb.build();
    wb_wasm::validate(&m).expect("validates");
    let mut inst = wb_wasm_vm::Instance::from_module(
        m,
        wb_wasm_vm::WasmVmConfig::reference(),
        Default::default(),
    )
    .expect("instantiates");
    assert!(matches!(
        inst.invoke("poke", &[wb_wasm_vm::Value::I32(0)]),
        Err(wb_wasm_vm::Trap::MemoryOutOfBounds { .. })
    ));
    inst.invoke("poke", &[wb_wasm_vm::Value::I32(-(PAGE_SIZE as i32))])
        .expect_err("negative wraps to huge unsigned address and traps");
}
