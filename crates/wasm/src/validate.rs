//! Module validation (spec §3): stack-discipline type checking of every
//! function body plus module-level index consistency.
//!
//! The algorithm is the spec appendix's control-frame validator: an operand
//! stack of possibly-unknown value types and a stack of control frames,
//! with polymorphic stack behaviour after `unreachable`/`br`.

use crate::error::ValidationError;
use crate::instr::{BlockType, Instr};
use crate::module::{ExportKind, Module};
use crate::types::{FuncType, ValType};

/// Validate a module. Returns `Ok(())` when every function body is
/// well-typed and all cross-references resolve.
pub fn validate(module: &Module) -> Result<(), ValidationError> {
    // --- module-level checks -------------------------------------------
    for imp in &module.imports {
        if imp.type_index as usize >= module.types.len() {
            return Err(ValidationError::BadTypeIndex {
                index: imp.type_index,
            });
        }
    }
    for f in &module.functions {
        if f.type_index as usize >= module.types.len() {
            return Err(ValidationError::BadTypeIndex {
                index: f.type_index,
            });
        }
    }
    for ty in &module.types {
        if ty.results.len() > 1 {
            return Err(ValidationError::BadModuleField {
                detail: "multi-value results are not part of the MVP".into(),
            });
        }
    }
    for (i, g) in module.globals.iter().enumerate() {
        let init_ty = match g.init {
            Instr::I32Const(_) => ValType::I32,
            Instr::I64Const(_) => ValType::I64,
            Instr::F32Const(_) => ValType::F32,
            Instr::F64Const(_) => ValType::F64,
            _ => {
                return Err(ValidationError::BadModuleField {
                    detail: format!("global {i} initializer is not a constant"),
                })
            }
        };
        if init_ty != g.ty.ty {
            return Err(ValidationError::BadModuleField {
                detail: format!("global {i} initializer type mismatch"),
            });
        }
    }
    for e in &module.exports {
        let ok = match e.kind {
            ExportKind::Func(i) => (i as usize) < module.func_count(),
            ExportKind::Memory(i) => i == 0 && module.memory.is_some(),
            ExportKind::Global(i) => (i as usize) < module.globals.len(),
            ExportKind::Table(i) => i == 0 && module.table.is_some(),
        };
        if !ok {
            return Err(ValidationError::BadExport {
                name: e.name.clone(),
            });
        }
    }
    if let Some(start) = module.start {
        let ty = module
            .func_type(start)
            .ok_or(ValidationError::BadFuncIndex { index: start })?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidationError::BadModuleField {
                detail: "start function must have type [] -> []".into(),
            });
        }
    }
    for el in &module.elements {
        if module.table.is_none() {
            return Err(ValidationError::NoTable);
        }
        for &f in &el.funcs {
            if f as usize >= module.func_count() {
                return Err(ValidationError::BadFuncIndex { index: f });
            }
        }
    }
    if !module.data.is_empty() && module.memory.is_none() {
        return Err(ValidationError::NoMemory);
    }

    // --- function bodies -------------------------------------------------
    for (fi, f) in module.functions.iter().enumerate() {
        let ty = &module.types[f.type_index as usize];
        FuncValidator::new(module, fi, ty, &f.locals).run(&f.body)?;
    }
    Ok(())
}

/// `None` represents the unknown (bottom) type on a polymorphic stack.
type Operand = Option<ValType>;

struct Frame {
    /// Result types the frame yields at its `end`.
    end_types: Vec<ValType>,
    /// Types a branch *to this frame* expects (loop: entry types = none in
    /// MVP since blocks have no params; block/if: result types).
    label_types: Vec<ValType>,
    /// Operand-stack height at frame entry.
    height: usize,
    /// Set once the frame's remainder is unreachable.
    unreachable: bool,
    /// True for `if` frames that may still take an `else`.
    is_if: bool,
}

struct FuncValidator<'m> {
    module: &'m Module,
    func_index: usize,
    locals: Vec<ValType>,
    results: Vec<ValType>,
    operands: Vec<Operand>,
    frames: Vec<Frame>,
}

impl<'m> FuncValidator<'m> {
    fn new(module: &'m Module, func_index: usize, ty: &FuncType, locals: &[ValType]) -> Self {
        let mut all_locals = ty.params.clone();
        all_locals.extend_from_slice(locals);
        FuncValidator {
            module,
            func_index,
            locals: all_locals,
            results: ty.results.clone(),
            operands: Vec::new(),
            frames: Vec::new(),
        }
    }

    fn error(&self, detail: impl Into<String>) -> ValidationError {
        ValidationError::TypeMismatch {
            detail: detail.into(),
        }
    }

    fn push(&mut self, t: ValType) {
        self.operands.push(Some(t));
    }

    fn push_unknown(&mut self) {
        self.operands.push(None);
    }

    fn pop_any(&mut self) -> Result<Operand, ValidationError> {
        let frame = self
            .frames
            .last()
            .ok_or(ValidationError::MalformedControl {
                detail: "operand popped outside any frame".into(),
            })?;
        if self.operands.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(self.error("operand stack underflow"));
        }
        Ok(self.operands.pop().expect("checked non-empty"))
    }

    fn pop_expect(&mut self, want: ValType) -> Result<(), ValidationError> {
        match self.pop_any()? {
            None => Ok(()),
            Some(got) if got == want => Ok(()),
            Some(got) => Err(self.error(format!("expected {}, got {}", want.wat(), got.wat()))),
        }
    }

    fn push_frame(&mut self, bt: BlockType, is_if: bool, is_loop: bool) {
        let results: Vec<ValType> = match bt {
            BlockType::Empty => vec![],
            BlockType::Value(t) => vec![t],
        };
        self.frames.push(Frame {
            label_types: if is_loop { vec![] } else { results.clone() },
            end_types: results,
            height: self.operands.len(),
            unreachable: false,
            is_if,
        });
    }

    fn set_unreachable(&mut self) {
        let frame = self.frames.last_mut().expect("frame always present");
        self.operands.truncate(frame.height);
        frame.unreachable = true;
    }

    fn label_types(&self, depth: u32) -> Result<Vec<ValType>, ValidationError> {
        let depth = depth as usize;
        if depth >= self.frames.len() {
            return Err(ValidationError::BadLabel {
                depth: depth as u32,
            });
        }
        Ok(self.frames[self.frames.len() - 1 - depth]
            .label_types
            .clone())
    }

    fn check_memory(&self) -> Result<(), ValidationError> {
        if self.module.memory.is_none() {
            return Err(ValidationError::NoMemory);
        }
        Ok(())
    }

    fn check_align(&self, align: u32, natural: u32) -> Result<(), ValidationError> {
        if align > natural {
            return Err(ValidationError::BadAlignment);
        }
        Ok(())
    }

    fn local_type(&self, index: u32) -> Result<ValType, ValidationError> {
        self.locals
            .get(index as usize)
            .copied()
            .ok_or(ValidationError::BadLocalIndex { index })
    }

    fn binary(&mut self, operand: ValType, result: ValType) -> Result<(), ValidationError> {
        self.pop_expect(operand)?;
        self.pop_expect(operand)?;
        self.push(result);
        Ok(())
    }

    fn unary(&mut self, operand: ValType, result: ValType) -> Result<(), ValidationError> {
        self.pop_expect(operand)?;
        self.push(result);
        Ok(())
    }

    fn load(
        &mut self,
        m: &crate::instr::MemArg,
        natural: u32,
        result: ValType,
    ) -> Result<(), ValidationError> {
        self.check_memory()?;
        self.check_align(m.align, natural)?;
        self.pop_expect(ValType::I32)?;
        self.push(result);
        Ok(())
    }

    fn store(
        &mut self,
        m: &crate::instr::MemArg,
        natural: u32,
        operand: ValType,
    ) -> Result<(), ValidationError> {
        self.check_memory()?;
        self.check_align(m.align, natural)?;
        self.pop_expect(operand)?;
        self.pop_expect(ValType::I32)?;
        Ok(())
    }

    fn run(mut self, body: &[Instr]) -> Result<(), ValidationError> {
        // Implicit function frame.
        self.frames.push(Frame {
            end_types: self.results.clone(),
            label_types: self.results.clone(),
            height: 0,
            unreachable: false,
            is_if: false,
        });

        for (pc, instr) in body.iter().enumerate() {
            self.step(instr)
                .map_err(|e| e.in_function(self.func_index, pc))?;
        }

        if !self.frames.is_empty() {
            return Err(ValidationError::MalformedControl {
                detail: format!("{} unclosed frame(s) at end of body", self.frames.len()),
            }
            .in_function(self.func_index, body.len()));
        }
        Ok(())
    }

    fn step(&mut self, instr: &Instr) -> Result<(), ValidationError> {
        use Instr::*;
        use ValType::*;
        // The final `End` pops the implicit function frame; nothing may
        // follow it.
        if self.frames.is_empty() {
            return Err(ValidationError::MalformedControl {
                detail: "instruction after end of function body".into(),
            });
        }
        match instr {
            Unreachable => self.set_unreachable(),
            Nop => {}
            Block(bt) => self.push_frame(*bt, false, false),
            Loop(bt) => self.push_frame(*bt, false, true),
            If(bt) => {
                self.pop_expect(I32)?;
                self.push_frame(*bt, true, false);
            }
            Else => {
                let frame = self
                    .frames
                    .last()
                    .ok_or(ValidationError::MalformedControl {
                        detail: "else outside any frame".into(),
                    })?;
                if !frame.is_if {
                    return Err(ValidationError::MalformedControl {
                        detail: "else without if".into(),
                    });
                }
                // End of then-arm: results must be on the stack.
                let end_types = frame.end_types.clone();
                let height = frame.height;
                let was_unreachable = frame.unreachable;
                for t in end_types.iter().rev() {
                    self.pop_expect(*t)?;
                }
                if self.operands.len() != height && !was_unreachable {
                    return Err(self.error("leftover operands before else"));
                }
                self.operands.truncate(height);
                if let Some(frame) = self.frames.last_mut() {
                    frame.unreachable = false;
                    frame.is_if = false;
                }
            }
            End => {
                let frame = self.frames.pop().ok_or(ValidationError::MalformedControl {
                    detail: "end outside any frame".into(),
                })?;
                // An `if` without `else` must have empty results (the
                // skipped else-arm yields nothing).
                if frame.is_if && !frame.end_types.is_empty() {
                    return Err(ValidationError::MalformedControl {
                        detail: "if with result type requires an else arm".into(),
                    });
                }
                if !frame.unreachable {
                    let mut popped = Vec::new();
                    for t in frame.end_types.iter().rev() {
                        match self.operands.pop() {
                            Some(Some(got)) if got == *t => popped.push(got),
                            Some(None) => popped.push(*t),
                            other => {
                                return Err(self
                                    .error(format!("block end expected {:?}, got {:?}", t, other)))
                            }
                        }
                    }
                    if self.operands.len() != frame.height {
                        return Err(self.error("leftover operands at block end"));
                    }
                } else {
                    self.operands.truncate(frame.height);
                }
                for t in &frame.end_types {
                    self.push(*t);
                }
            }
            Br(depth) => {
                let types = self.label_types(*depth)?;
                for t in types.iter().rev() {
                    self.pop_expect(*t)?;
                }
                self.set_unreachable();
            }
            BrIf(depth) => {
                self.pop_expect(I32)?;
                let types = self.label_types(*depth)?;
                for t in types.iter().rev() {
                    self.pop_expect(*t)?;
                }
                for t in &types {
                    self.push(*t);
                }
            }
            BrTable(targets, default) => {
                self.pop_expect(I32)?;
                let default_types = self.label_types(*default)?;
                for t in targets {
                    let tt = self.label_types(*t)?;
                    if tt != default_types {
                        return Err(self.error("br_table arms disagree on label types"));
                    }
                }
                for t in default_types.iter().rev() {
                    self.pop_expect(*t)?;
                }
                self.set_unreachable();
            }
            Return => {
                let results = self.results.clone();
                for t in results.iter().rev() {
                    self.pop_expect(*t)?;
                }
                self.set_unreachable();
            }
            Call(f) => {
                let ty = self
                    .module
                    .func_type(*f)
                    .ok_or(ValidationError::BadFuncIndex { index: *f })?
                    .clone();
                for t in ty.params.iter().rev() {
                    self.pop_expect(*t)?;
                }
                for t in &ty.results {
                    self.push(*t);
                }
            }
            CallIndirect(ti) => {
                if self.module.table.is_none() {
                    return Err(ValidationError::NoTable);
                }
                let ty = self
                    .module
                    .types
                    .get(*ti as usize)
                    .ok_or(ValidationError::BadTypeIndex { index: *ti })?
                    .clone();
                self.pop_expect(I32)?; // table index operand
                for t in ty.params.iter().rev() {
                    self.pop_expect(*t)?;
                }
                for t in &ty.results {
                    self.push(*t);
                }
            }
            Drop => {
                self.pop_any()?;
            }
            Select => {
                self.pop_expect(I32)?;
                let a = self.pop_any()?;
                let b = self.pop_any()?;
                match (a, b) {
                    (Some(x), Some(y)) if x != y => {
                        return Err(self.error("select operands disagree"))
                    }
                    (Some(x), _) => self.push(x),
                    (None, Some(y)) => self.push(y),
                    (None, None) => self.push_unknown(),
                }
            }
            LocalGet(i) => {
                let t = self.local_type(*i)?;
                self.push(t);
            }
            LocalSet(i) => {
                let t = self.local_type(*i)?;
                self.pop_expect(t)?;
            }
            LocalTee(i) => {
                let t = self.local_type(*i)?;
                self.pop_expect(t)?;
                self.push(t);
            }
            GlobalGet(i) => {
                let g = self
                    .module
                    .globals
                    .get(*i as usize)
                    .ok_or(ValidationError::BadGlobalIndex { index: *i })?;
                self.push(g.ty.ty);
            }
            GlobalSet(i) => {
                let g = self
                    .module
                    .globals
                    .get(*i as usize)
                    .ok_or(ValidationError::BadGlobalIndex { index: *i })?;
                if !g.ty.mutable {
                    return Err(ValidationError::ImmutableGlobal { index: *i });
                }
                let t = g.ty.ty;
                self.pop_expect(t)?;
            }
            I32Load(m) => self.load(m, 2, I32)?,
            I64Load(m) => self.load(m, 3, I64)?,
            F32Load(m) => self.load(m, 2, F32)?,
            F64Load(m) => self.load(m, 3, F64)?,
            I32Load8S(m) | I32Load8U(m) => self.load(m, 0, I32)?,
            I32Load16S(m) | I32Load16U(m) => self.load(m, 1, I32)?,
            I64Load8S(m) | I64Load8U(m) => self.load(m, 0, I64)?,
            I64Load16S(m) | I64Load16U(m) => self.load(m, 1, I64)?,
            I64Load32S(m) | I64Load32U(m) => self.load(m, 2, I64)?,
            I32Store(m) => self.store(m, 2, I32)?,
            I64Store(m) => self.store(m, 3, I64)?,
            F32Store(m) => self.store(m, 2, F32)?,
            F64Store(m) => self.store(m, 3, F64)?,
            I32Store8(m) => self.store(m, 0, I32)?,
            I32Store16(m) => self.store(m, 1, I32)?,
            I64Store8(m) => self.store(m, 0, I64)?,
            I64Store16(m) => self.store(m, 1, I64)?,
            I64Store32(m) => self.store(m, 2, I64)?,
            MemorySize => {
                self.check_memory()?;
                self.push(I32);
            }
            MemoryGrow => {
                self.check_memory()?;
                self.pop_expect(I32)?;
                self.push(I32);
            }
            I32Const(_) => self.push(I32),
            I64Const(_) => self.push(I64),
            F32Const(_) => self.push(F32),
            F64Const(_) => self.push(F64),
            I32Eqz => self.unary(I32, I32)?,
            I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
            | I32GeU => self.binary(I32, I32)?,
            I64Eqz => self.unary(I64, I32)?,
            I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
            | I64GeU => self.binary(I64, I32)?,
            F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => self.binary(F32, I32)?,
            F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => self.binary(F64, I32)?,
            I32Clz | I32Ctz | I32Popcnt => self.unary(I32, I32)?,
            I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
            | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => self.binary(I32, I32)?,
            I64Clz | I64Ctz | I64Popcnt => self.unary(I64, I64)?,
            I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
            | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => self.binary(I64, I64)?,
            F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
                self.unary(F32, F32)?
            }
            F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
                self.binary(F32, F32)?
            }
            F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
                self.unary(F64, F64)?
            }
            F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
                self.binary(F64, F64)?
            }
            I32WrapI64 => self.unary(I64, I32)?,
            I32TruncF32S | I32TruncF32U => self.unary(F32, I32)?,
            I32TruncF64S | I32TruncF64U => self.unary(F64, I32)?,
            I64ExtendI32S | I64ExtendI32U => self.unary(I32, I64)?,
            I64TruncF32S | I64TruncF32U => self.unary(F32, I64)?,
            I64TruncF64S | I64TruncF64U => self.unary(F64, I64)?,
            F32ConvertI32S | F32ConvertI32U => self.unary(I32, F32)?,
            F32ConvertI64S | F32ConvertI64U => self.unary(I64, F32)?,
            F32DemoteF64 => self.unary(F64, F32)?,
            F64ConvertI32S | F64ConvertI32U => self.unary(I32, F64)?,
            F64ConvertI64S | F64ConvertI64U => self.unary(I64, F64)?,
            F64PromoteF32 => self.unary(F32, F64)?,
            I32ReinterpretF32 => self.unary(F32, I32)?,
            I64ReinterpretF64 => self.unary(F64, I64)?,
            F32ReinterpretI32 => self.unary(I32, F32)?,
            F64ReinterpretI64 => self.unary(I64, F64)?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;
    use crate::types::Limits;
    use crate::MemorySpec;

    fn module_with_body(params: Vec<ValType>, results: Vec<ValType>, body: Vec<Instr>) -> Module {
        let mut m = Module::new();
        let t = m.intern_type(FuncType::new(params, results));
        m.functions.push(Function {
            type_index: t,
            locals: vec![],
            body,
            name: None,
        });
        m
    }

    #[test]
    fn accepts_identity() {
        let m = module_with_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![Instr::LocalGet(0), Instr::End],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_missing_result() {
        let m = module_with_body(vec![], vec![ValType::I32], vec![Instr::End]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_type_confusion() {
        let m = module_with_body(
            vec![ValType::F64],
            vec![ValType::I32],
            vec![Instr::LocalGet(0), Instr::End],
        );
        let e = validate(&m).unwrap_err();
        assert!(matches!(
            e.root_cause(),
            ValidationError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_stack_underflow() {
        let m = module_with_body(vec![], vec![], vec![Instr::I32Add, Instr::Drop, Instr::End]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn accepts_loop_with_branch() {
        // loop { local.get 0; i32.const 1; i32.sub; local.tee 0; br_if 0 }
        let m = module_with_body(
            vec![ValType::I32],
            vec![],
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::I32Const(1),
                Instr::I32Sub,
                Instr::LocalTee(0),
                Instr::BrIf(0),
                Instr::End,
                Instr::End,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_branch_depth_out_of_range() {
        let m = module_with_body(vec![], vec![], vec![Instr::Br(3), Instr::End]);
        let e = validate(&m).unwrap_err();
        assert!(matches!(
            e.root_cause(),
            ValidationError::BadLabel { depth: 3 }
        ));
    }

    #[test]
    fn code_after_unreachable_is_polymorphic() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![Instr::Unreachable, Instr::I32Add, Instr::End],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_memory_ops_without_memory() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![
                Instr::I32Const(0),
                Instr::I32Load(crate::instr::MemArg::natural(4)),
                Instr::Drop,
                Instr::End,
            ],
        );
        let e = validate(&m).unwrap_err();
        assert_eq!(e.root_cause(), &ValidationError::NoMemory);
    }

    #[test]
    fn accepts_memory_ops_with_memory() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![
                Instr::I32Const(0),
                Instr::I32Const(7),
                Instr::I32Store(crate::instr::MemArg::natural(4)),
                Instr::End,
            ],
        );
        m.memory = Some(MemorySpec {
            limits: Limits::at_least(1),
        });
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_overaligned_access() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![
                Instr::I32Const(0),
                Instr::I32Load(crate::instr::MemArg {
                    align: 3,
                    offset: 0,
                }),
                Instr::Drop,
                Instr::End,
            ],
        );
        m.memory = Some(MemorySpec {
            limits: Limits::at_least(1),
        });
        let e = validate(&m).unwrap_err();
        assert!(matches!(e.root_cause(), ValidationError::BadAlignment));
    }

    #[test]
    fn if_with_result_requires_else() {
        let m = module_with_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                Instr::LocalGet(0),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(1),
                Instr::End,
                Instr::End,
            ],
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn if_else_with_result_accepted() {
        let m = module_with_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                Instr::LocalGet(0),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(1),
                Instr::Else,
                Instr::I32Const(2),
                Instr::End,
                Instr::End,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_set_of_immutable_global() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![Instr::I32Const(1), Instr::GlobalSet(0), Instr::End],
        );
        m.globals.push(crate::module::Global {
            ty: crate::types::GlobalType {
                ty: ValType::I32,
                mutable: false,
            },
            init: Instr::I32Const(0),
        });
        let e = validate(&m).unwrap_err();
        assert_eq!(
            e.root_cause(),
            &ValidationError::ImmutableGlobal { index: 0 }
        );
    }

    #[test]
    fn rejects_dangling_export() {
        let mut m = Module::new();
        m.exports.push(crate::module::Export {
            name: "f".into(),
            kind: ExportKind::Func(0),
        });
        assert!(matches!(
            validate(&m),
            Err(ValidationError::BadExport { .. })
        ));
    }

    #[test]
    fn rejects_call_of_missing_function() {
        let m = module_with_body(vec![], vec![], vec![Instr::Call(9), Instr::End]);
        let e = validate(&m).unwrap_err();
        assert!(matches!(
            e.root_cause(),
            ValidationError::BadFuncIndex { index: 9 }
        ));
    }

    #[test]
    fn call_indirect_requires_table() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![Instr::I32Const(0), Instr::CallIndirect(0), Instr::End],
        );
        let e = validate(&m).unwrap_err();
        assert_eq!(e.root_cause(), &ValidationError::NoTable);
    }

    #[test]
    fn errors_carry_function_and_instruction_context() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![
                Instr::Nop,
                Instr::I32Const(1),
                Instr::LocalSet(7),
                Instr::End,
            ],
        );
        match validate(&m).unwrap_err() {
            ValidationError::InFunction { func, at, source } => {
                assert_eq!(func, 0);
                assert_eq!(at, 2);
                assert_eq!(*source, ValidationError::BadLocalIndex { index: 7 });
            }
            other => panic!("expected InFunction, got {other:?}"),
        }
    }

    #[test]
    fn rejects_instruction_after_final_end() {
        let m = module_with_body(vec![], vec![], vec![Instr::End, Instr::Nop]);
        let e = validate(&m).unwrap_err();
        assert!(
            matches!(e.root_cause(), ValidationError::MalformedControl { detail }
                if detail.contains("after end")),
            "{e:?}"
        );
    }

    #[test]
    fn rejects_pop_after_final_end() {
        // A pop with no frames must error, not panic.
        let m = module_with_body(vec![], vec![], vec![Instr::End, Instr::Drop]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn br_table_checked() {
        let m = module_with_body(
            vec![ValType::I32],
            vec![],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Block(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::BrTable(vec![0, 1], 0),
                Instr::End,
                Instr::End,
                Instr::End,
            ],
        );
        validate(&m).unwrap();
    }
}
