//! The WebAssembly MVP instruction set.
//!
//! Bodies are stored *flat*, exactly as in the binary format: structured
//! control (`block`/`loop`/`if`) is delimited by explicit [`Instr::Else`]
//! and [`Instr::End`] tokens. The interpreter in `wb-wasm-vm` precomputes
//! branch targets over this flat form.

use crate::types::ValType;

/// The result type of a block, loop or if (MVP: empty or one value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockType {
    /// No result.
    Empty,
    /// One result of the given type.
    Value(ValType),
}

impl BlockType {
    /// Number of values the block yields.
    pub fn arity(self) -> usize {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }
}

/// Memory-access immediate: alignment exponent and byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemArg {
    /// log2 of the access alignment.
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// A memarg with natural alignment for `width` bytes and offset 0.
    pub fn natural(width: u32) -> Self {
        MemArg {
            align: width.trailing_zeros(),
            offset: 0,
        }
    }

    /// Same alignment, different offset.
    pub fn with_offset(self, offset: u32) -> Self {
        MemArg { offset, ..self }
    }
}

/// One WebAssembly instruction.
///
/// Naming follows the spec text form with Rust casing:
/// `i32.add` → `I32Add`, `local.get` → `LocalGet`, etc.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // Names map 1:1 to spec instructions.
pub enum Instr {
    // Control.
    Unreachable,
    Nop,
    Block(BlockType),
    Loop(BlockType),
    If(BlockType),
    Else,
    End,
    Br(u32),
    BrIf(u32),
    /// Targets plus default label.
    BrTable(Vec<u32>, u32),
    Return,
    Call(u32),
    /// Type index; table index is implicitly 0 in the MVP.
    CallIndirect(u32),

    // Parametric.
    Drop,
    Select,

    // Variables.
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    // Memory.
    I32Load(MemArg),
    I64Load(MemArg),
    F32Load(MemArg),
    F64Load(MemArg),
    I32Load8S(MemArg),
    I32Load8U(MemArg),
    I32Load16S(MemArg),
    I32Load16U(MemArg),
    I64Load8S(MemArg),
    I64Load8U(MemArg),
    I64Load16S(MemArg),
    I64Load16U(MemArg),
    I64Load32S(MemArg),
    I64Load32U(MemArg),
    I32Store(MemArg),
    I64Store(MemArg),
    F32Store(MemArg),
    F64Store(MemArg),
    I32Store8(MemArg),
    I32Store16(MemArg),
    I64Store8(MemArg),
    I64Store16(MemArg),
    I64Store32(MemArg),
    MemorySize,
    MemoryGrow,

    // Constants.
    I32Const(i32),
    I64Const(i64),
    F32Const(f32),
    F64Const(f64),

    // i32 comparisons.
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    // i64 comparisons.
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    // f32 comparisons.
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    // f64 comparisons.
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    // i32 arithmetic.
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,
    // i64 arithmetic.
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,
    // f32 arithmetic.
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    // f64 arithmetic.
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    // Conversions.
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
}

impl Instr {
    /// True for instructions that open a structured control frame.
    pub fn opens_block(&self) -> bool {
        matches!(self, Instr::Block(_) | Instr::Loop(_) | Instr::If(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memarg_natural_alignment() {
        assert_eq!(MemArg::natural(1).align, 0);
        assert_eq!(MemArg::natural(2).align, 1);
        assert_eq!(MemArg::natural(4).align, 2);
        assert_eq!(MemArg::natural(8).align, 3);
        assert_eq!(MemArg::natural(4).with_offset(16).offset, 16);
    }

    #[test]
    fn blocktype_arity() {
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::F64).arity(), 1);
    }

    #[test]
    fn opens_block_detects_structured_starts() {
        assert!(Instr::Block(BlockType::Empty).opens_block());
        assert!(Instr::Loop(BlockType::Empty).opens_block());
        assert!(Instr::If(BlockType::Empty).opens_block());
        assert!(!Instr::End.opens_block());
        assert!(!Instr::I32Add.opens_block());
    }
}
