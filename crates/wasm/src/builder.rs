//! Ergonomic module construction, used by the MiniC backend and by the
//! hand-written modules in `wb-benchmarks` (e.g. the Long.js analogue).

use crate::instr::Instr;
use crate::module::{
    Data, Element, Export, ExportKind, FuncImport, Function, Global, MemorySpec, Module, TableSpec,
};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// Builder for a [`Module`].
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a linear memory with `min` pages and optional `max`.
    pub fn memory(&mut self, min: u32, max: Option<u32>) -> &mut Self {
        self.module.memory = Some(MemorySpec {
            limits: Limits { min, max },
        });
        self
    }

    /// Declare a funcref table with `min` elements.
    pub fn table(&mut self, min: u32) -> &mut Self {
        self.module.table = Some(TableSpec {
            limits: Limits::at_least(min),
        });
        self
    }

    /// Import a host function; returns its function index.
    ///
    /// All imports must be added before any defined function, mirroring the
    /// wasm index space.
    pub fn import_func(
        &mut self,
        module: &str,
        field: &str,
        params: Vec<ValType>,
        results: Vec<ValType>,
    ) -> u32 {
        assert!(
            self.module.functions.is_empty(),
            "imports must precede defined functions"
        );
        let type_index = self.module.intern_type(FuncType::new(params, results));
        self.module.imports.push(FuncImport {
            module: module.into(),
            field: field.into(),
            type_index,
        });
        (self.module.imports.len() - 1) as u32
    }

    /// Add a mutable global; returns its index.
    pub fn global(&mut self, ty: ValType, mutable: bool, init: Instr) -> u32 {
        self.module.globals.push(Global {
            ty: GlobalType { ty, mutable },
            init,
        });
        (self.module.globals.len() - 1) as u32
    }

    /// Add an active data segment.
    pub fn data(&mut self, offset: i32, bytes: Vec<u8>) -> &mut Self {
        self.module.data.push(Data { offset, bytes });
        self
    }

    /// Add an active element segment.
    pub fn elements(&mut self, offset: i32, funcs: Vec<u32>) -> &mut Self {
        self.module.elements.push(Element { offset, funcs });
        self
    }

    /// Begin a function; returns a [`FuncBuilder`]. The function index it
    /// will occupy is `imports.len() + functions.len()` at `finish` time.
    pub fn func(&mut self, name: &str, params: Vec<ValType>, results: Vec<ValType>) -> FuncBuilder {
        let type_index = self
            .module
            .intern_type(FuncType::new(params.clone(), results));
        FuncBuilder {
            type_index,
            param_count: params.len() as u32,
            locals: Vec::new(),
            body: Vec::new(),
            name: name.to_string(),
        }
    }

    /// The function index the *next* finished function will receive.
    pub fn next_func_index(&self) -> u32 {
        self.module.func_count() as u32
    }

    /// Attach a finished function; returns its function index.
    pub fn finish_func(&mut self, f: FuncBuilder, export: bool) -> u32 {
        let index = self.module.func_count() as u32;
        if export {
            self.module.exports.push(Export {
                name: f.name.clone(),
                kind: ExportKind::Func(index),
            });
        }
        self.module.functions.push(Function {
            type_index: f.type_index,
            locals: f.locals,
            body: f.body,
            name: Some(f.name),
        });
        index
    }

    /// Export the memory under `name`.
    pub fn export_memory(&mut self, name: &str) -> &mut Self {
        self.module.exports.push(Export {
            name: name.into(),
            kind: ExportKind::Memory(0),
        });
        self
    }

    /// Set the start function.
    pub fn start(&mut self, func_index: u32) -> &mut Self {
        self.module.start = Some(func_index);
        self
    }

    /// Consume the builder, yielding the module.
    pub fn build(self) -> Module {
        self.module
    }
}

/// Builder for a single function body.
#[derive(Debug)]
pub struct FuncBuilder {
    type_index: u32,
    param_count: u32,
    locals: Vec<ValType>,
    body: Vec<Instr>,
    name: String,
}

impl FuncBuilder {
    /// Declare a local; returns its index (after parameters).
    pub fn local(&mut self, ty: ValType) -> u32 {
        self.locals.push(ty);
        self.param_count + (self.locals.len() - 1) as u32
    }

    /// Append one instruction.
    pub fn op(&mut self, i: Instr) -> &mut Self {
        self.body.push(i);
        self
    }

    /// Append many instructions.
    pub fn ops<I: IntoIterator<Item = Instr>>(&mut self, instrs: I) -> &mut Self {
        self.body.extend(instrs);
        self
    }

    /// Close the body with `end` (idempotent if already closed).
    pub fn done(&mut self) -> &mut Self {
        if self.body.last() != Some(&Instr::End) || self.open_frames() > 0 {
            self.body.push(Instr::End);
        }
        self
    }

    fn open_frames(&self) -> i32 {
        let mut depth = 0;
        for i in &self.body {
            if i.opens_block() {
                depth += 1;
            } else if matches!(i, Instr::End) {
                depth -= 1;
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_module, encode_module, validate};

    #[test]
    fn builds_a_valid_counting_module() {
        let mut mb = ModuleBuilder::new();
        mb.memory(1, Some(4));
        let mut f = mb.func("count", vec![ValType::I32], vec![ValType::I32]);
        let acc = f.local(ValType::I32);
        f.ops([
            Instr::Block(crate::instr::BlockType::Empty),
            Instr::Loop(crate::instr::BlockType::Empty),
            Instr::LocalGet(0),
            Instr::I32Eqz,
            Instr::BrIf(1),
            Instr::LocalGet(acc),
            Instr::I32Const(1),
            Instr::I32Add,
            Instr::LocalSet(acc),
            Instr::LocalGet(0),
            Instr::I32Const(1),
            Instr::I32Sub,
            Instr::LocalSet(0),
            Instr::Br(0),
            Instr::End,
            Instr::End,
            Instr::LocalGet(acc),
        ]);
        f.done();
        let idx = mb.finish_func(f, true);
        assert_eq!(idx, 0);
        let m = mb.build();
        validate(&m).unwrap();
        let round = decode_module(&encode_module(&m)).unwrap();
        assert_eq!(round, m);
    }

    #[test]
    fn imports_get_lower_indices() {
        let mut mb = ModuleBuilder::new();
        let imp = mb.import_func("env", "now", vec![], vec![ValType::F64]);
        let f = {
            let mut f = mb.func("main", vec![], vec![]);
            f.ops([Instr::Call(imp), Instr::Drop]).done();
            f
        };
        let idx = mb.finish_func(f, true);
        assert_eq!(imp, 0);
        assert_eq!(idx, 1);
        validate(&mb.build()).unwrap();
    }

    #[test]
    fn done_is_idempotent_for_closed_bodies() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("nop", vec![], vec![]);
        f.op(Instr::Nop).done().done();
        let m = {
            mb.finish_func(f, false);
            mb.build()
        };
        assert_eq!(m.functions[0].body, vec![Instr::Nop, Instr::End]);
    }
}
