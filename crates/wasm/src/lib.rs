//! # wb-wasm — WebAssembly module model, binary codec, validator and memory
//!
//! This crate implements the WebAssembly MVP surface the study needs,
//! faithfully to the spec's binary format:
//!
//! * [`Module`] — the in-memory module model: types, imports, functions,
//!   tables, memories, globals, exports, elements, data segments;
//! * [`Instr`] — the instruction set (full MVP numeric/memory/control
//!   subset; no SIMD — the paper's §4.2.1 vectorization finding depends on
//!   precisely this absence);
//! * [`encode_module`] / [`decode_module`] — binary encoder and decoder
//!   (LEB128, section framing, spec opcode assignments);
//! * [`validate`] — stack-discipline type checking of function bodies;
//! * [`print_wat`] — a WAT-style text rendering (like Fig 4(c));
//! * [`LinearMemory`] — 64 KiB-paged linear memory with `memory.grow`
//!   semantics and high-water-mark accounting;
//! * [`ModuleBuilder`] / [`FuncBuilder`] — ergonomic construction API used
//!   by the MiniC backend and by hand-written modules (e.g. the Long.js
//!   analogue).
//!
//! The binary encoder and decoder round-trip: property tests in this crate
//! generate arbitrary modules and assert `decode(encode(m)) == m`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod decode;
mod encode;
mod error;
mod instr;
pub mod leb128;
mod memory;
mod module;
mod text;
mod types;
mod validate;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use decode::decode_module;
pub use encode::encode_module;
pub use error::{DecodeError, ValidationError};
pub use instr::{BlockType, Instr, MemArg};
pub use memory::{LinearMemory, MemoryError, PAGE_SIZE};
pub use module::{
    Data, Element, Export, ExportKind, FuncImport, Function, Global, MemorySpec, Module, TableSpec,
};
pub use text::print_wat;
pub use types::{FuncType, GlobalType, Limits, ValType};
pub use validate::validate;
