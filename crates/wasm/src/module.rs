//! The in-memory module model (spec §2.5).

use crate::instr::Instr;
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// An imported function: module/field names plus its type index.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncImport {
    /// Import module name (e.g. `"env"`).
    pub module: String,
    /// Import field name (e.g. `"now"`).
    pub field: String,
    /// Index into [`Module::types`].
    pub type_index: u32,
}

/// A function defined in the module.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Index into [`Module::types`].
    pub type_index: u32,
    /// Declared locals (beyond parameters), in order.
    pub locals: Vec<ValType>,
    /// Flat body; must end with [`Instr::End`].
    pub body: Vec<Instr>,
    /// Optional debug name (carried in a custom "name"-style field; not
    /// part of equality-relevant semantics but round-tripped by the codec).
    pub name: Option<String>,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Type and mutability.
    pub ty: GlobalType,
    /// Constant initializer (MVP: a single `*.const` instruction).
    pub init: Instr,
}

/// A linear memory declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySpec {
    /// Page limits (64 KiB pages).
    pub limits: Limits,
}

/// A funcref table declaration (MVP: one table, funcref only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableSpec {
    /// Element-count limits.
    pub limits: Limits,
}

/// What an export refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// Function at the given function index (imports first).
    Func(u32),
    /// Memory index (always 0 in the MVP).
    Memory(u32),
    /// Global index.
    Global(u32),
    /// Table index (always 0 in the MVP).
    Table(u32),
}

/// A named export.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// Target entity.
    pub kind: ExportKind,
}

/// An active element segment populating the table with function indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Constant i32 offset into the table.
    pub offset: i32,
    /// Function indices to place.
    pub funcs: Vec<u32>,
}

/// An active data segment initializing linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Data {
    /// Constant i32 byte offset into memory.
    pub offset: i32,
    /// Bytes to copy at instantiation.
    pub bytes: Vec<u8>,
}

/// A complete WebAssembly module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Function signatures referenced by functions and `call_indirect`.
    pub types: Vec<FuncType>,
    /// Imported functions (these occupy function indices `0..imports.len()`).
    pub imports: Vec<FuncImport>,
    /// Defined functions (function index = `imports.len() + position`).
    pub functions: Vec<Function>,
    /// Optional table (for `call_indirect`).
    pub table: Option<TableSpec>,
    /// Optional linear memory.
    pub memory: Option<MemorySpec>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Optional start function index.
    pub start: Option<u32>,
    /// Element segments.
    pub elements: Vec<Element>,
    /// Data segments.
    pub data: Vec<Data>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Total function index space size (imports + definitions).
    pub fn func_count(&self) -> usize {
        self.imports.len() + self.functions.len()
    }

    /// Signature of the function at `func_index` (import-aware).
    pub fn func_type(&self, func_index: u32) -> Option<&FuncType> {
        let i = func_index as usize;
        let type_index = if i < self.imports.len() {
            self.imports[i].type_index
        } else {
            self.functions.get(i - self.imports.len())?.type_index
        };
        self.types.get(type_index as usize)
    }

    /// Look up an exported function index by name.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        self.exports.iter().find_map(|e| match e.kind {
            ExportKind::Func(i) if e.name == name => Some(i),
            _ => None,
        })
    }

    /// Intern a function type, returning its index (deduplicating).
    pub fn intern_type(&mut self, ty: FuncType) -> u32 {
        if let Some(pos) = self.types.iter().position(|t| *t == ty) {
            return pos as u32;
        }
        self.types.push(ty);
        (self.types.len() - 1) as u32
    }

    /// Total static code size: the encoded byte length of the module.
    ///
    /// This is the "code size" metric of Fig 5/6 and Table 2.
    pub fn code_size(&self) -> usize {
        crate::encode::encode_module(self).len()
    }

    /// Sum of body instruction counts across defined functions — a
    /// compile-effort proxy used for baseline/optimizing compile costs.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.body.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn tiny_module() -> Module {
        let mut m = Module::new();
        let t = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.functions.push(Function {
            type_index: t,
            locals: vec![],
            body: vec![Instr::LocalGet(0), Instr::End],
            name: Some("id".into()),
        });
        m.exports.push(Export {
            name: "id".into(),
            kind: ExportKind::Func(0),
        });
        m
    }

    #[test]
    fn intern_type_deduplicates() {
        let mut m = Module::new();
        let a = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let b = m.intern_type(FuncType::new(vec![ValType::I32], vec![]));
        let c = m.intern_type(FuncType::new(vec![], vec![]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.types.len(), 2);
    }

    #[test]
    fn func_type_resolves_across_imports() {
        let mut m = tiny_module();
        let ti = m.intern_type(FuncType::new(vec![], vec![ValType::F64]));
        m.imports.push(FuncImport {
            module: "env".into(),
            field: "now".into(),
            type_index: ti,
        });
        // After pushing an import, index 0 is the import, index 1 the function.
        assert_eq!(m.func_type(0).unwrap().results, vec![ValType::F64]);
        assert_eq!(m.func_type(1).unwrap().params, vec![ValType::I32]);
        assert_eq!(m.func_type(2), None);
    }

    #[test]
    fn exported_func_lookup() {
        let m = tiny_module();
        assert_eq!(m.exported_func("id"), Some(0));
        assert_eq!(m.exported_func("missing"), None);
    }

    #[test]
    fn instr_count_sums_bodies() {
        let m = tiny_module();
        assert_eq!(m.instr_count(), 2);
    }
}
