//! Linear memory (spec §4.2.8): a contiguous, 64 KiB-paged byte buffer that
//! only ever grows — the mechanism behind the paper's Wasm memory findings
//! (§2.2.2, Tables 4/6): *"instead of reclaiming memory that is no longer in
//! use, the linear memory is further extended to a bigger size."*

use crate::types::Limits;
use std::fmt;

/// Bytes per WebAssembly page.
pub const PAGE_SIZE: usize = 64 * 1024;

/// Errors raised by memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// An access fell outside the current memory size.
    OutOfBounds {
        /// Byte address of the access.
        addr: u64,
        /// Access width in bytes.
        width: u32,
        /// Current memory size in bytes.
        size: usize,
    },
    /// A grow request exceeded the declared maximum or engine limit.
    GrowFailed {
        /// Pages requested.
        delta: u32,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfBounds { addr, width, size } => write!(
                f,
                "out-of-bounds access: {width} bytes at {addr} (memory is {size} bytes)"
            ),
            MemoryError::GrowFailed { delta } => write!(f, "memory.grow by {delta} pages failed"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// A linear memory instance.
#[derive(Debug, Clone)]
pub struct LinearMemory {
    bytes: Vec<u8>,
    limits: Limits,
    /// Number of successful `memory.grow` operations (cost accounting).
    pub grow_count: u64,
    /// Total pages added by grows (cost accounting).
    pub grown_pages: u64,
}

impl LinearMemory {
    /// Hard engine cap: 4 GiB (65 536 pages), the MVP maximum.
    pub const MAX_PAGES: u32 = 65_536;

    /// Instantiate a memory at its declared minimum size.
    pub fn new(limits: Limits) -> Self {
        LinearMemory {
            bytes: vec![0; limits.min as usize * PAGE_SIZE],
            limits,
            grow_count: 0,
            grown_pages: 0,
        }
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE) as u32
    }

    /// Current size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Grow by `delta` pages. Returns the previous size in pages, or -1
    /// (as wasm does) when the grow is refused.
    pub fn grow(&mut self, delta: u32) -> i32 {
        let old_pages = self.size_pages();
        let Some(new_pages) = old_pages.checked_add(delta) else {
            return -1;
        };
        let cap = self
            .limits
            .max
            .unwrap_or(Self::MAX_PAGES)
            .min(Self::MAX_PAGES);
        if new_pages > cap {
            return -1;
        }
        self.bytes.resize(new_pages as usize * PAGE_SIZE, 0);
        self.grow_count += 1;
        self.grown_pages += delta as u64;
        old_pages as i32
    }

    /// Read `width` bytes at `addr` (bounds-checked).
    pub fn read(&self, addr: u64, width: u32) -> Result<&[u8], MemoryError> {
        let end = addr
            .checked_add(width as u64)
            .filter(|&e| e <= self.bytes.len() as u64);
        match end {
            Some(end) => Ok(&self.bytes[addr as usize..end as usize]),
            None => Err(MemoryError::OutOfBounds {
                addr,
                width,
                size: self.bytes.len(),
            }),
        }
    }

    /// Write bytes at `addr` (bounds-checked).
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemoryError> {
        let end = addr
            .checked_add(data.len() as u64)
            .filter(|&e| e <= self.bytes.len() as u64);
        match end {
            Some(end) => {
                self.bytes[addr as usize..end as usize].copy_from_slice(data);
                Ok(())
            }
            None => Err(MemoryError::OutOfBounds {
                addr,
                width: data.len() as u32,
                size: self.bytes.len(),
            }),
        }
    }

    /// Typed read helpers ------------------------------------------------
    /// Read a little-endian u32.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemoryError> {
        let b = self.read(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemoryError> {
        let b = self.read(addr, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an f64.
    pub fn read_f64(&self, addr: u64) -> Result<f64, MemoryError> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Write a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemoryError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemoryError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Write an f64.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), MemoryError> {
        self.write_u64(addr, v.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_min_pages() {
        let m = LinearMemory::new(Limits::at_least(2));
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.size_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn grow_returns_old_size_and_zero_fills() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        assert_eq!(m.grow(3), 1);
        assert_eq!(m.size_pages(), 4);
        assert_eq!(m.read_u32((4 * PAGE_SIZE - 4) as u64).unwrap(), 0);
        assert_eq!(m.grow_count, 1);
        assert_eq!(m.grown_pages, 3);
    }

    #[test]
    fn grow_respects_max() {
        let mut m = LinearMemory::new(Limits::bounded(1, 2));
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.size_pages(), 2);
    }

    #[test]
    fn grow_overflow_is_refused() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        assert_eq!(m.grow(u32::MAX), -1);
    }

    #[test]
    fn bounds_checked_reads_and_writes() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        m.write_u32(0, 0xdeadbeef).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0xdeadbeef);
        // Access straddling the end fails.
        let end = PAGE_SIZE as u64 - 2;
        assert!(m.read_u32(end).is_err());
        assert!(m.write_u32(end, 1).is_err());
        // Address overflow does not panic.
        assert!(m.read(u64::MAX, 8).is_err());
    }

    #[test]
    fn f64_round_trips_bits() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        for v in [0.0, -1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            m.write_f64(8, v).unwrap();
            assert_eq!(m.read_f64(8).unwrap().to_bits(), v.to_bits());
        }
    }
}
