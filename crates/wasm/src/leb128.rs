//! LEB128 variable-length integer encoding, as used throughout the
//! WebAssembly binary format (spec §5.2.2).

use crate::error::DecodeError;

/// Append an unsigned LEB128 encoding of `value` to `out`.
pub fn write_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append an unsigned LEB128 encoding of a 64-bit `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a signed LEB128 encoding of `value` to `out`.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, value as i64);
}

/// Append a signed LEB128 encoding of a 64-bit `value` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over a byte slice for decoding.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current offset into the input.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when all input is consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(DecodeError::UnexpectedEof { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Read exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof { at: self.pos });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read an unsigned LEB128 u32 (max 5 bytes).
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.uleb(32)?;
        Ok(v as u32)
    }

    /// Read an unsigned LEB128 u64 (max 10 bytes).
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        self.uleb(64)
    }

    /// Read a signed LEB128 i32.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let v = self.sleb(32)?;
        Ok(v as i32)
    }

    /// Read a signed LEB128 i64.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        self.sleb(64)
    }

    /// Read a little-endian f32.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a length-prefixed UTF-8 name.
    pub fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8 { at: self.pos })
    }

    fn uleb(&mut self, bits: u32) -> Result<u64, DecodeError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= bits {
                return Err(DecodeError::IntegerTooLong { at: self.pos });
            }
            // Reject set payload bits that fall outside the target width.
            let payload = (byte & 0x7f) as u64;
            if shift + 7 > bits && (payload >> (bits - shift)) != 0 {
                return Err(DecodeError::IntegerTooLong { at: self.pos });
            }
            result |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    fn sleb(&mut self, bits: u32) -> Result<i64, DecodeError> {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= bits {
                return Err(DecodeError::IntegerTooLong { at: self.pos });
            }
            result |= ((byte & 0x7f) as i64) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                if shift < 64 && byte & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                // Range check for narrower targets.
                if bits < 64 {
                    let min = -(1i64 << (bits - 1));
                    let max = (1i64 << (bits - 1)) - 1;
                    if result < min || result > max {
                        return Err(DecodeError::IntegerTooLong { at: self.pos });
                    }
                }
                return Ok(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_u32(v: u32) {
        let mut buf = Vec::new();
        write_u32(&mut buf, v);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32().unwrap(), v);
        assert!(r.is_empty());
    }

    fn round_i64(v: i64) {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        let mut r = Reader::new(&buf);
        assert_eq!(r.i64().unwrap(), v);
        assert!(r.is_empty());
    }

    #[test]
    fn u32_round_trips_edge_values() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX] {
            round_u32(v);
        }
    }

    #[test]
    fn i64_round_trips_edge_values() {
        for v in [
            0,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            i64::MAX,
            i64::MIN,
            624485,
            -123456,
        ] {
            round_i64(v);
        }
    }

    #[test]
    fn i32_round_trips() {
        for v in [0i32, -1, i32::MIN, i32::MAX, 42, -300] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.i32().unwrap(), v);
        }
    }

    #[test]
    fn known_spec_encoding() {
        // Example from the DWARF/LEB128 literature: 624485 = 0xE5 0x8E 0x26.
        let mut buf = Vec::new();
        write_u32(&mut buf, 624485);
        assert_eq!(buf, vec![0xe5, 0x8e, 0x26]);
    }

    #[test]
    fn overlong_u32_rejected() {
        // Six continuation bytes exceed the 5-byte maximum for u32.
        let bytes = [0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut r = Reader::new(&bytes);
        assert!(r.u32().is_err());
    }

    #[test]
    fn u32_with_excess_payload_bits_rejected() {
        // 5th byte may only carry 4 payload bits for u32.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut r = Reader::new(&bytes);
        assert!(r.u32().is_err());
    }

    #[test]
    fn eof_mid_integer_rejected() {
        let bytes = [0x80];
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.u32(), Err(DecodeError::UnexpectedEof { .. })));
    }

    #[test]
    fn name_reads_utf8() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 5);
        buf.extend_from_slice(b"hello");
        let mut r = Reader::new(&buf);
        assert_eq!(r.name().unwrap(), "hello");
    }

    #[test]
    fn name_rejects_bad_utf8() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(r.name().is_err());
    }
}
