//! Binary encoder (spec §5): emits the standard `\0asm` container with
//! LEB128-framed sections.

use crate::instr::{BlockType, Instr, MemArg};
use crate::leb128;
use crate::module::{ExportKind, Module};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// Encode a module to its binary representation.
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(b"\0asm");
    out.extend_from_slice(&1u32.to_le_bytes());

    // Section 1: types.
    if !module.types.is_empty() {
        section(&mut out, 1, |buf| {
            leb128::write_u32(buf, module.types.len() as u32);
            for ty in &module.types {
                func_type(buf, ty);
            }
        });
    }
    // Section 2: imports (functions only).
    if !module.imports.is_empty() {
        section(&mut out, 2, |buf| {
            leb128::write_u32(buf, module.imports.len() as u32);
            for imp in &module.imports {
                name(buf, &imp.module);
                name(buf, &imp.field);
                buf.push(0x00); // func import
                leb128::write_u32(buf, imp.type_index);
            }
        });
    }
    // Section 3: function type indices.
    if !module.functions.is_empty() {
        section(&mut out, 3, |buf| {
            leb128::write_u32(buf, module.functions.len() as u32);
            for f in &module.functions {
                leb128::write_u32(buf, f.type_index);
            }
        });
    }
    // Section 4: table.
    if let Some(table) = &module.table {
        section(&mut out, 4, |buf| {
            leb128::write_u32(buf, 1);
            buf.push(0x70); // funcref
            limits(buf, &table.limits);
        });
    }
    // Section 5: memory.
    if let Some(mem) = &module.memory {
        section(&mut out, 5, |buf| {
            leb128::write_u32(buf, 1);
            limits(buf, &mem.limits);
        });
    }
    // Section 6: globals.
    if !module.globals.is_empty() {
        section(&mut out, 6, |buf| {
            leb128::write_u32(buf, module.globals.len() as u32);
            for g in &module.globals {
                global_type(buf, &g.ty);
                instr(buf, &g.init);
                buf.push(0x0b); // end of init expr
            }
        });
    }
    // Section 7: exports.
    if !module.exports.is_empty() {
        section(&mut out, 7, |buf| {
            leb128::write_u32(buf, module.exports.len() as u32);
            for e in &module.exports {
                name(buf, &e.name);
                let (kind, index) = match e.kind {
                    ExportKind::Func(i) => (0x00, i),
                    ExportKind::Table(i) => (0x01, i),
                    ExportKind::Memory(i) => (0x02, i),
                    ExportKind::Global(i) => (0x03, i),
                };
                buf.push(kind);
                leb128::write_u32(buf, index);
            }
        });
    }
    // Section 8: start.
    if let Some(start) = module.start {
        section(&mut out, 8, |buf| {
            leb128::write_u32(buf, start);
        });
    }
    // Section 9: elements.
    if !module.elements.is_empty() {
        section(&mut out, 9, |buf| {
            leb128::write_u32(buf, module.elements.len() as u32);
            for el in &module.elements {
                leb128::write_u32(buf, 0); // active, table 0
                instr(buf, &Instr::I32Const(el.offset));
                buf.push(0x0b);
                leb128::write_u32(buf, el.funcs.len() as u32);
                for f in &el.funcs {
                    leb128::write_u32(buf, *f);
                }
            }
        });
    }
    // Section 10: code.
    if !module.functions.is_empty() {
        section(&mut out, 10, |buf| {
            leb128::write_u32(buf, module.functions.len() as u32);
            for f in &module.functions {
                let mut body = Vec::new();
                // Locals: run-length compress consecutive equal types.
                let mut runs: Vec<(u32, ValType)> = Vec::new();
                for &l in &f.locals {
                    match runs.last_mut() {
                        Some((n, t)) if *t == l => *n += 1,
                        _ => runs.push((1, l)),
                    }
                }
                leb128::write_u32(&mut body, runs.len() as u32);
                for (n, t) in runs {
                    leb128::write_u32(&mut body, n);
                    body.push(t.byte());
                }
                for i in &f.body {
                    instr(&mut body, i);
                }
                leb128::write_u32(buf, body.len() as u32);
                buf.extend_from_slice(&body);
            }
        });
    }
    // Section 11: data.
    if !module.data.is_empty() {
        section(&mut out, 11, |buf| {
            leb128::write_u32(buf, module.data.len() as u32);
            for d in &module.data {
                leb128::write_u32(buf, 0); // active, memory 0
                instr(buf, &Instr::I32Const(d.offset));
                buf.push(0x0b);
                leb128::write_u32(buf, d.bytes.len() as u32);
                buf.extend_from_slice(&d.bytes);
            }
        });
    }
    // Custom "name" section: function-name subsection only.
    let named: Vec<(u32, &str)> = module
        .functions
        .iter()
        .enumerate()
        .filter_map(|(i, f)| {
            f.name
                .as_deref()
                .map(|n| ((module.imports.len() + i) as u32, n))
        })
        .collect();
    if !named.is_empty() {
        section(&mut out, 0, |buf| {
            name(buf, "name");
            let mut sub = Vec::new();
            leb128::write_u32(&mut sub, named.len() as u32);
            for (idx, n) in &named {
                leb128::write_u32(&mut sub, *idx);
                name(&mut sub, n);
            }
            buf.push(1); // function names subsection
            leb128::write_u32(buf, sub.len() as u32);
            buf.extend_from_slice(&sub);
        });
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    let mut buf = Vec::new();
    fill(&mut buf);
    out.push(id);
    leb128::write_u32(out, buf.len() as u32);
    out.extend_from_slice(&buf);
}

fn name(out: &mut Vec<u8>, s: &str) {
    leb128::write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn func_type(out: &mut Vec<u8>, ty: &FuncType) {
    out.push(0x60);
    leb128::write_u32(out, ty.params.len() as u32);
    for p in &ty.params {
        out.push(p.byte());
    }
    leb128::write_u32(out, ty.results.len() as u32);
    for r in &ty.results {
        out.push(r.byte());
    }
}

fn limits(out: &mut Vec<u8>, l: &Limits) {
    match l.max {
        None => {
            out.push(0x00);
            leb128::write_u32(out, l.min);
        }
        Some(max) => {
            out.push(0x01);
            leb128::write_u32(out, l.min);
            leb128::write_u32(out, max);
        }
    }
}

fn global_type(out: &mut Vec<u8>, ty: &GlobalType) {
    out.push(ty.ty.byte());
    out.push(if ty.mutable { 0x01 } else { 0x00 });
}

fn block_type(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.byte()),
    }
}

fn memarg(out: &mut Vec<u8>, m: &MemArg) {
    leb128::write_u32(out, m.align);
    leb128::write_u32(out, m.offset);
}

/// Encode one instruction (public within the crate for init exprs).
pub(crate) fn instr(out: &mut Vec<u8>, i: &Instr) {
    use Instr::*;
    match i {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt) => {
            out.push(0x02);
            block_type(out, *bt);
        }
        Loop(bt) => {
            out.push(0x03);
            block_type(out, *bt);
        }
        If(bt) => {
            out.push(0x04);
            block_type(out, *bt);
        }
        Else => out.push(0x05),
        End => out.push(0x0b),
        Br(d) => {
            out.push(0x0c);
            leb128::write_u32(out, *d);
        }
        BrIf(d) => {
            out.push(0x0d);
            leb128::write_u32(out, *d);
        }
        BrTable(targets, default) => {
            out.push(0x0e);
            leb128::write_u32(out, targets.len() as u32);
            for t in targets {
                leb128::write_u32(out, *t);
            }
            leb128::write_u32(out, *default);
        }
        Return => out.push(0x0f),
        Call(f) => {
            out.push(0x10);
            leb128::write_u32(out, *f);
        }
        CallIndirect(t) => {
            out.push(0x11);
            leb128::write_u32(out, *t);
            out.push(0x00); // table index
        }
        Drop => out.push(0x1a),
        Select => out.push(0x1b),
        LocalGet(i) => {
            out.push(0x20);
            leb128::write_u32(out, *i);
        }
        LocalSet(i) => {
            out.push(0x21);
            leb128::write_u32(out, *i);
        }
        LocalTee(i) => {
            out.push(0x22);
            leb128::write_u32(out, *i);
        }
        GlobalGet(i) => {
            out.push(0x23);
            leb128::write_u32(out, *i);
        }
        GlobalSet(i) => {
            out.push(0x24);
            leb128::write_u32(out, *i);
        }
        I32Load(m) => {
            out.push(0x28);
            memarg(out, m);
        }
        I64Load(m) => {
            out.push(0x29);
            memarg(out, m);
        }
        F32Load(m) => {
            out.push(0x2a);
            memarg(out, m);
        }
        F64Load(m) => {
            out.push(0x2b);
            memarg(out, m);
        }
        I32Load8S(m) => {
            out.push(0x2c);
            memarg(out, m);
        }
        I32Load8U(m) => {
            out.push(0x2d);
            memarg(out, m);
        }
        I32Load16S(m) => {
            out.push(0x2e);
            memarg(out, m);
        }
        I32Load16U(m) => {
            out.push(0x2f);
            memarg(out, m);
        }
        I64Load8S(m) => {
            out.push(0x30);
            memarg(out, m);
        }
        I64Load8U(m) => {
            out.push(0x31);
            memarg(out, m);
        }
        I64Load16S(m) => {
            out.push(0x32);
            memarg(out, m);
        }
        I64Load16U(m) => {
            out.push(0x33);
            memarg(out, m);
        }
        I64Load32S(m) => {
            out.push(0x34);
            memarg(out, m);
        }
        I64Load32U(m) => {
            out.push(0x35);
            memarg(out, m);
        }
        I32Store(m) => {
            out.push(0x36);
            memarg(out, m);
        }
        I64Store(m) => {
            out.push(0x37);
            memarg(out, m);
        }
        F32Store(m) => {
            out.push(0x38);
            memarg(out, m);
        }
        F64Store(m) => {
            out.push(0x39);
            memarg(out, m);
        }
        I32Store8(m) => {
            out.push(0x3a);
            memarg(out, m);
        }
        I32Store16(m) => {
            out.push(0x3b);
            memarg(out, m);
        }
        I64Store8(m) => {
            out.push(0x3c);
            memarg(out, m);
        }
        I64Store16(m) => {
            out.push(0x3d);
            memarg(out, m);
        }
        I64Store32(m) => {
            out.push(0x3e);
            memarg(out, m);
        }
        MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            leb128::write_i32(out, *v);
        }
        I64Const(v) => {
            out.push(0x42);
            leb128::write_i64(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        I32Eqz => out.push(0x45),
        I32Eq => out.push(0x46),
        I32Ne => out.push(0x47),
        I32LtS => out.push(0x48),
        I32LtU => out.push(0x49),
        I32GtS => out.push(0x4a),
        I32GtU => out.push(0x4b),
        I32LeS => out.push(0x4c),
        I32LeU => out.push(0x4d),
        I32GeS => out.push(0x4e),
        I32GeU => out.push(0x4f),
        I64Eqz => out.push(0x50),
        I64Eq => out.push(0x51),
        I64Ne => out.push(0x52),
        I64LtS => out.push(0x53),
        I64LtU => out.push(0x54),
        I64GtS => out.push(0x55),
        I64GtU => out.push(0x56),
        I64LeS => out.push(0x57),
        I64LeU => out.push(0x58),
        I64GeS => out.push(0x59),
        I64GeU => out.push(0x5a),
        F32Eq => out.push(0x5b),
        F32Ne => out.push(0x5c),
        F32Lt => out.push(0x5d),
        F32Gt => out.push(0x5e),
        F32Le => out.push(0x5f),
        F32Ge => out.push(0x60),
        F64Eq => out.push(0x61),
        F64Ne => out.push(0x62),
        F64Lt => out.push(0x63),
        F64Gt => out.push(0x64),
        F64Le => out.push(0x65),
        F64Ge => out.push(0x66),
        I32Clz => out.push(0x67),
        I32Ctz => out.push(0x68),
        I32Popcnt => out.push(0x69),
        I32Add => out.push(0x6a),
        I32Sub => out.push(0x6b),
        I32Mul => out.push(0x6c),
        I32DivS => out.push(0x6d),
        I32DivU => out.push(0x6e),
        I32RemS => out.push(0x6f),
        I32RemU => out.push(0x70),
        I32And => out.push(0x71),
        I32Or => out.push(0x72),
        I32Xor => out.push(0x73),
        I32Shl => out.push(0x74),
        I32ShrS => out.push(0x75),
        I32ShrU => out.push(0x76),
        I32Rotl => out.push(0x77),
        I32Rotr => out.push(0x78),
        I64Clz => out.push(0x79),
        I64Ctz => out.push(0x7a),
        I64Popcnt => out.push(0x7b),
        I64Add => out.push(0x7c),
        I64Sub => out.push(0x7d),
        I64Mul => out.push(0x7e),
        I64DivS => out.push(0x7f),
        I64DivU => out.push(0x80),
        I64RemS => out.push(0x81),
        I64RemU => out.push(0x82),
        I64And => out.push(0x83),
        I64Or => out.push(0x84),
        I64Xor => out.push(0x85),
        I64Shl => out.push(0x86),
        I64ShrS => out.push(0x87),
        I64ShrU => out.push(0x88),
        I64Rotl => out.push(0x89),
        I64Rotr => out.push(0x8a),
        F32Abs => out.push(0x8b),
        F32Neg => out.push(0x8c),
        F32Ceil => out.push(0x8d),
        F32Floor => out.push(0x8e),
        F32Trunc => out.push(0x8f),
        F32Nearest => out.push(0x90),
        F32Sqrt => out.push(0x91),
        F32Add => out.push(0x92),
        F32Sub => out.push(0x93),
        F32Mul => out.push(0x94),
        F32Div => out.push(0x95),
        F32Min => out.push(0x96),
        F32Max => out.push(0x97),
        F32Copysign => out.push(0x98),
        F64Abs => out.push(0x99),
        F64Neg => out.push(0x9a),
        F64Ceil => out.push(0x9b),
        F64Floor => out.push(0x9c),
        F64Trunc => out.push(0x9d),
        F64Nearest => out.push(0x9e),
        F64Sqrt => out.push(0x9f),
        F64Add => out.push(0xa0),
        F64Sub => out.push(0xa1),
        F64Mul => out.push(0xa2),
        F64Div => out.push(0xa3),
        F64Min => out.push(0xa4),
        F64Max => out.push(0xa5),
        F64Copysign => out.push(0xa6),
        I32WrapI64 => out.push(0xa7),
        I32TruncF32S => out.push(0xa8),
        I32TruncF32U => out.push(0xa9),
        I32TruncF64S => out.push(0xaa),
        I32TruncF64U => out.push(0xab),
        I64ExtendI32S => out.push(0xac),
        I64ExtendI32U => out.push(0xad),
        I64TruncF32S => out.push(0xae),
        I64TruncF32U => out.push(0xaf),
        I64TruncF64S => out.push(0xb0),
        I64TruncF64U => out.push(0xb1),
        F32ConvertI32S => out.push(0xb2),
        F32ConvertI32U => out.push(0xb3),
        F32ConvertI64S => out.push(0xb4),
        F32ConvertI64U => out.push(0xb5),
        F32DemoteF64 => out.push(0xb6),
        F64ConvertI32S => out.push(0xb7),
        F64ConvertI32U => out.push(0xb8),
        F64ConvertI64S => out.push(0xb9),
        F64ConvertI64U => out.push(0xba),
        F64PromoteF32 => out.push(0xbb),
        I32ReinterpretF32 => out.push(0xbc),
        I64ReinterpretF64 => out.push(0xbd),
        F32ReinterpretI32 => out.push(0xbe),
        F64ReinterpretI64 => out.push(0xbf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Export, Function};

    #[test]
    fn header_is_spec_magic() {
        let m = Module::new();
        let bytes = encode_module(&m);
        assert_eq!(&bytes[..8], b"\0asm\x01\0\0\0");
    }

    #[test]
    fn fib_module_encodes_expected_sections() {
        let mut m = Module::new();
        let t = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.functions.push(Function {
            type_index: t,
            locals: vec![],
            body: vec![Instr::LocalGet(0), Instr::End],
            name: None,
        });
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func(0),
        });
        let bytes = encode_module(&m);
        // Expect section ids 1, 3, 7, 10 present, in order.
        let mut ids = Vec::new();
        let mut pos = 8;
        while pos < bytes.len() {
            ids.push(bytes[pos]);
            let mut r = crate::leb128::Reader::new(&bytes[pos + 1..]);
            let len = r.u32().unwrap() as usize;
            pos += 1 + r.pos() + len;
        }
        assert_eq!(ids, vec![1, 3, 7, 10]);
    }

    #[test]
    fn locals_are_run_length_compressed() {
        let mut m = Module::new();
        let t = m.intern_type(FuncType::new(vec![], vec![]));
        m.functions.push(Function {
            type_index: t,
            locals: vec![ValType::I32, ValType::I32, ValType::F64],
            body: vec![Instr::End],
            name: None,
        });
        let with_runs = encode_module(&m).len();
        m.functions[0].locals = vec![ValType::I32, ValType::F64, ValType::I32];
        let without_runs = encode_module(&m).len();
        assert!(with_runs < without_runs);
    }
}
