//! WebAssembly type grammar (spec §2.3): value types, function types,
//! limits and global types.

/// A WebAssembly value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl ValType {
    /// Spec binary encoding of this value type.
    pub fn byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Decode a value-type byte.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }

    /// WAT keyword for this type.
    pub fn wat(self) -> &'static str {
        match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        }
    }

    /// Natural (maximum legal) alignment exponent for loads/stores of this
    /// full-width type: log2 of the byte width.
    pub fn natural_align(self) -> u32 {
        match self {
            ValType::I32 | ValType::F32 => 2,
            ValType::I64 | ValType::F64 => 3,
        }
    }
}

/// A function signature: parameter and result types.
///
/// MVP wasm allows at most one result, which this crate enforces at
/// validation time rather than in the type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types (0 or 1 in the MVP).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Construct a signature.
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> Self {
        FuncType { params, results }
    }
}

/// Size limits for memories and tables (spec §2.3.4), in units of pages or
/// elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Limits with just a minimum.
    pub fn at_least(min: u32) -> Self {
        Limits { min, max: None }
    }

    /// Limits with a minimum and maximum.
    pub fn bounded(min: u32, max: u32) -> Self {
        Limits {
            min,
            max: Some(max),
        }
    }
}

/// Type of a global variable: value type and mutability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalType {
    /// Value type stored in the global.
    pub ty: ValType,
    /// Whether `global.set` is permitted.
    pub mutable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_bytes_round_trip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x70), None);
    }

    #[test]
    fn natural_alignment() {
        assert_eq!(ValType::I32.natural_align(), 2);
        assert_eq!(ValType::F64.natural_align(), 3);
    }

    #[test]
    fn limits_constructors() {
        assert_eq!(Limits::at_least(3), Limits { min: 3, max: None });
        assert_eq!(
            Limits::bounded(1, 9),
            Limits {
                min: 1,
                max: Some(9)
            }
        );
    }
}
