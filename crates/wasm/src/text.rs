//! WAT-style text rendering, like the disassembly shown in the paper's
//! Fig 4(c), 7 and 8. Intended for debugging and reports, not re-parsing.

use crate::instr::{BlockType, Instr};
use crate::module::Module;
use std::fmt::Write as _;

/// Render a module in a WAT-like S-expression form.
pub fn print_wat(module: &Module) -> String {
    let mut out = String::from("(module\n");
    for (i, ty) in module.types.iter().enumerate() {
        let mut line = format!("  (type $t{i} (func");
        if !ty.params.is_empty() {
            line.push_str(" (param");
            for p in &ty.params {
                let _ = write!(line, " {}", p.wat());
            }
            line.push(')');
        }
        if !ty.results.is_empty() {
            line.push_str(" (result");
            for r in &ty.results {
                let _ = write!(line, " {}", r.wat());
            }
            line.push(')');
        }
        line.push_str("))\n");
        out.push_str(&line);
    }
    for imp in &module.imports {
        let _ = writeln!(
            out,
            "  (import \"{}\" \"{}\" (func (type $t{})))",
            imp.module, imp.field, imp.type_index
        );
    }
    if let Some(t) = &module.table {
        let _ = writeln!(out, "  (table {} funcref)", t.limits.min);
    }
    if let Some(m) = &module.memory {
        match m.limits.max {
            Some(max) => {
                let _ = writeln!(out, "  (memory {} {})", m.limits.min, max);
            }
            None => {
                let _ = writeln!(out, "  (memory {})", m.limits.min);
            }
        }
    }
    for (i, g) in module.globals.iter().enumerate() {
        let ty = if g.ty.mutable {
            format!("(mut {})", g.ty.ty.wat())
        } else {
            g.ty.ty.wat().to_string()
        };
        let _ = writeln!(out, "  (global $g{i} {ty} ({}))", instr_text(&g.init));
    }
    for (fi, f) in module.functions.iter().enumerate() {
        let idx = module.imports.len() + fi;
        let label = f
            .name
            .as_deref()
            .map(|n| format!("${n}"))
            .unwrap_or_else(|| format!("$f{idx}"));
        let ty = &module.types[f.type_index as usize];
        let mut header = format!("  (func {label} (type $t{})", f.type_index);
        for (pi, p) in ty.params.iter().enumerate() {
            let _ = write!(header, " (param $p{pi} {})", p.wat());
        }
        for r in &ty.results {
            let _ = write!(header, " (result {})", r.wat());
        }
        out.push_str(&header);
        out.push('\n');
        if !f.locals.is_empty() {
            out.push_str("   ");
            for (li, l) in f.locals.iter().enumerate() {
                let _ = write!(out, " (local $l{} {})", ty.params.len() + li, l.wat());
            }
            out.push('\n');
        }
        let mut depth = 2usize;
        for i in &f.body[..f.body.len().saturating_sub(1)] {
            if matches!(i, Instr::End | Instr::Else) {
                depth = depth.saturating_sub(1);
            }
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), instr_text(i));
            if i.opens_block() || matches!(i, Instr::Else) {
                depth += 1;
            }
        }
        out.push_str("  )\n");
    }
    for e in &module.exports {
        let target = match e.kind {
            crate::module::ExportKind::Func(i) => format!("(func {i})"),
            crate::module::ExportKind::Memory(i) => format!("(memory {i})"),
            crate::module::ExportKind::Global(i) => format!("(global {i})"),
            crate::module::ExportKind::Table(i) => format!("(table {i})"),
        };
        let _ = writeln!(out, "  (export \"{}\" {})", e.name, target);
    }
    for d in &module.data {
        let _ = writeln!(
            out,
            "  (data (i32.const {}) ;; {} bytes\n  )",
            d.offset,
            d.bytes.len()
        );
    }
    out.push_str(")\n");
    out
}

fn block_suffix(bt: &BlockType) -> String {
    match bt {
        BlockType::Empty => String::new(),
        BlockType::Value(t) => format!(" (result {})", t.wat()),
    }
}

/// Text form of a single instruction.
pub(crate) fn instr_text(i: &Instr) -> String {
    use Instr::*;
    match i {
        Unreachable => "unreachable".into(),
        Nop => "nop".into(),
        Block(bt) => format!("block{}", block_suffix(bt)),
        Loop(bt) => format!("loop{}", block_suffix(bt)),
        If(bt) => format!("if{}", block_suffix(bt)),
        Else => "else".into(),
        End => "end".into(),
        Br(d) => format!("br {d}"),
        BrIf(d) => format!("br_if {d}"),
        BrTable(ts, def) => {
            let list: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
            format!("br_table {} {def}", list.join(" "))
        }
        Return => "return".into(),
        Call(f) => format!("call {f}"),
        CallIndirect(t) => format!("call_indirect (type $t{t})"),
        Drop => "drop".into(),
        Select => "select".into(),
        LocalGet(i) => format!("local.get {i}"),
        LocalSet(i) => format!("local.set {i}"),
        LocalTee(i) => format!("local.tee {i}"),
        GlobalGet(i) => format!("global.get {i}"),
        GlobalSet(i) => format!("global.set {i}"),
        I32Const(v) => format!("i32.const {v}"),
        I64Const(v) => format!("i64.const {v}"),
        F32Const(v) => format!("f32.const {v}"),
        F64Const(v) => format!("f64.const {v}"),
        MemorySize => "memory.size".into(),
        MemoryGrow => "memory.grow".into(),
        other => {
            // Mechanical name derivation covers the numeric/memory space:
            // I32Load8S -> "i32.load8_s", F64ConvertI32U -> "f64.convert_i32_u".
            let debug = format!("{other:?}");
            let name = debug.split('(').next().unwrap_or(&debug);
            let mut text = String::new();
            let chars: Vec<char> = name.chars().collect();
            let mut idx = 0;
            // Leading type prefix (I32/I64/F32/F64).
            if chars.len() >= 3 && (chars[0] == 'I' || chars[0] == 'F') {
                text.push(chars[0].to_ascii_lowercase());
                text.push(chars[1]);
                text.push(chars[2]);
                text.push('.');
                idx = 3;
            }
            let mut first_word = true;
            while idx < chars.len() {
                let c = chars[idx];
                if c.is_ascii_uppercase() {
                    if !first_word {
                        text.push('_');
                    }
                    text.push(c.to_ascii_lowercase());
                    first_word = false;
                } else {
                    text.push(c);
                }
                idx += 1;
            }
            text
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Export, ExportKind, Function};
    use crate::types::{FuncType, ValType};

    #[test]
    fn instruction_names_follow_spec_spelling() {
        assert_eq!(instr_text(&Instr::I32Add), "i32.add");
        assert_eq!(instr_text(&Instr::F64ConvertI32S), "f64.convert_i32_s");
        assert_eq!(instr_text(&Instr::I64ExtendI32U), "i64.extend_i32_u");
        assert_eq!(instr_text(&Instr::I32Const(7)), "i32.const 7");
        assert_eq!(instr_text(&Instr::LocalGet(2)), "local.get 2");
    }

    #[test]
    fn module_rendering_contains_expected_forms() {
        let mut m = Module::new();
        let t = m.intern_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        m.functions.push(Function {
            type_index: t,
            locals: vec![ValType::I32],
            body: vec![
                Instr::LocalGet(0),
                Instr::I32Const(3),
                Instr::I32LtS,
                Instr::If(BlockType::Empty),
                Instr::I32Const(1),
                Instr::Return,
                Instr::End,
                Instr::LocalGet(0),
                Instr::End,
            ],
            name: Some("fib".into()),
        });
        m.exports.push(Export {
            name: "fib".into(),
            kind: ExportKind::Func(0),
        });
        let wat = print_wat(&m);
        assert!(wat.contains("(module"), "{wat}");
        assert!(wat.contains("(func $fib"), "{wat}");
        assert!(wat.contains("i32.lt_s"), "{wat}");
        assert!(wat.contains("(export \"fib\" (func 0))"), "{wat}");
    }
}
