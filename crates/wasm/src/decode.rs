//! Binary decoder (spec §5): parses the standard container back into a
//! [`Module`]. Inverse of [`crate::encode_module`]; the pair round-trips.

use crate::error::DecodeError;
use crate::instr::{BlockType, Instr, MemArg};
use crate::leb128::Reader;
use crate::module::{
    Data, Element, Export, ExportKind, FuncImport, Function, Global, MemorySpec, Module, TableSpec,
};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// Pre-allocation guard: a corrupted LEB128 count can claim up to
/// `u32::MAX` entries, but every entry consumes at least one input byte,
/// so capacity is clamped to the bytes actually remaining. The
/// per-element reads then hit `UnexpectedEof` long before a malformed
/// module can force a multi-GB allocation.
fn clamped_capacity(count: u32, s: &Reader<'_>) -> usize {
    (count as usize).min(s.remaining())
}

/// Decode a binary module.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != b"\0asm" {
        return Err(DecodeError::BadHeader);
    }
    let version = r.take(4)?;
    if version != [1, 0, 0, 0] {
        return Err(DecodeError::BadHeader);
    }

    let mut module = Module::new();
    let mut func_type_indices: Vec<u32> = Vec::new();
    let mut last_section = 0u8;

    while !r.is_empty() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let payload = r.take(size)?;
        let mut s = Reader::new(payload);

        if id != 0 {
            if id > 11 {
                return Err(DecodeError::UnknownSection { id });
            }
            if id <= last_section {
                return Err(DecodeError::SectionOutOfOrder { id });
            }
            last_section = id;
        }

        match id {
            0 => decode_custom(&mut s, &mut module)?,
            1 => {
                let n = s.u32()?;
                for _ in 0..n {
                    module.types.push(decode_func_type(&mut s)?);
                }
            }
            2 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let mod_name = s.name()?;
                    let field = s.name()?;
                    let kind = s.byte()?;
                    if kind != 0x00 {
                        return Err(DecodeError::Malformed {
                            what: "only function imports are supported",
                        });
                    }
                    let type_index = s.u32()?;
                    module.imports.push(FuncImport {
                        module: mod_name,
                        field,
                        type_index,
                    });
                }
            }
            3 => {
                let n = s.u32()?;
                for _ in 0..n {
                    func_type_indices.push(s.u32()?);
                }
            }
            4 => {
                let n = s.u32()?;
                if n != 1 {
                    return Err(DecodeError::Malformed {
                        what: "expected exactly one table",
                    });
                }
                let elem_ty = s.byte()?;
                if elem_ty != 0x70 {
                    return Err(DecodeError::Malformed {
                        what: "table element type must be funcref",
                    });
                }
                module.table = Some(TableSpec {
                    limits: decode_limits(&mut s)?,
                });
            }
            5 => {
                let n = s.u32()?;
                if n != 1 {
                    return Err(DecodeError::Malformed {
                        what: "expected exactly one memory",
                    });
                }
                module.memory = Some(MemorySpec {
                    limits: decode_limits(&mut s)?,
                });
            }
            6 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let ty = decode_global_type(&mut s)?;
                    let init = decode_const_expr(&mut s)?;
                    module.globals.push(Global { ty, init });
                }
            }
            7 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let name = s.name()?;
                    let kind_byte = s.byte()?;
                    let index = s.u32()?;
                    let kind = match kind_byte {
                        0x00 => ExportKind::Func(index),
                        0x01 => ExportKind::Table(index),
                        0x02 => ExportKind::Memory(index),
                        0x03 => ExportKind::Global(index),
                        _ => {
                            return Err(DecodeError::Malformed {
                                what: "bad export kind",
                            })
                        }
                    };
                    module.exports.push(Export { name, kind });
                }
            }
            8 => {
                module.start = Some(s.u32()?);
            }
            9 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let flags = s.u32()?;
                    if flags != 0 {
                        return Err(DecodeError::Malformed {
                            what: "only active table-0 elements supported",
                        });
                    }
                    let offset = const_i32(&mut s)?;
                    let count = s.u32()?;
                    let mut funcs = Vec::with_capacity(clamped_capacity(count, &s));
                    for _ in 0..count {
                        funcs.push(s.u32()?);
                    }
                    module.elements.push(Element { offset, funcs });
                }
            }
            10 => {
                let n = s.u32()? as usize;
                if n != func_type_indices.len() {
                    return Err(DecodeError::FuncCodeMismatch {
                        funcs: func_type_indices.len(),
                        bodies: n,
                    });
                }
                for type_index in func_type_indices.iter().copied() {
                    let body_size = s.u32()? as usize;
                    let body_bytes = s.take(body_size)?;
                    let mut b = Reader::new(body_bytes);
                    let mut locals = Vec::new();
                    let runs = b.u32()?;
                    for _ in 0..runs {
                        let count = b.u32()?;
                        if count > 1_000_000 {
                            return Err(DecodeError::Malformed {
                                what: "unreasonable local count",
                            });
                        }
                        let ty = decode_val_type(&mut b)?;
                        locals.extend(std::iter::repeat_n(ty, count as usize));
                    }
                    let mut body = Vec::new();
                    while !b.is_empty() {
                        body.push(decode_instr(&mut b)?);
                    }
                    if body.last() != Some(&Instr::End) {
                        return Err(DecodeError::Malformed {
                            what: "function body must end with `end`",
                        });
                    }
                    module.functions.push(Function {
                        type_index,
                        locals,
                        body,
                        name: None,
                    });
                }
            }
            11 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let flags = s.u32()?;
                    if flags != 0 {
                        return Err(DecodeError::Malformed {
                            what: "only active memory-0 data supported",
                        });
                    }
                    let offset = const_i32(&mut s)?;
                    let len = s.u32()? as usize;
                    let bytes = s.take(len)?.to_vec();
                    module.data.push(Data { offset, bytes });
                }
            }
            _ => unreachable!("section id checked above"),
        }
        if !s.is_empty() {
            return Err(DecodeError::SectionSizeMismatch { id });
        }
    }

    if module.functions.is_empty() && !func_type_indices.is_empty() {
        return Err(DecodeError::FuncCodeMismatch {
            funcs: func_type_indices.len(),
            bodies: 0,
        });
    }

    Ok(module)
}

fn decode_custom(s: &mut Reader<'_>, module: &mut Module) -> Result<(), DecodeError> {
    let name = s.name()?;
    if name != "name" {
        // Unknown custom sections are skipped (remaining payload ignored).
        let _ = s.take(s.remaining())?;
        return Ok(());
    }
    while !s.is_empty() {
        let sub_id = s.byte()?;
        let sub_len = s.u32()? as usize;
        let sub = s.take(sub_len)?;
        if sub_id == 1 {
            let mut ns = Reader::new(sub);
            let count = ns.u32()?;
            for _ in 0..count {
                let idx = ns.u32()? as usize;
                let fname = ns.name()?;
                let import_count = module.imports.len();
                if idx >= import_count {
                    if let Some(f) = module.functions.get_mut(idx - import_count) {
                        f.name = Some(fname);
                    }
                }
            }
        }
    }
    Ok(())
}

fn decode_val_type(s: &mut Reader<'_>) -> Result<ValType, DecodeError> {
    let b = s.byte()?;
    ValType::from_byte(b).ok_or(DecodeError::BadValType { byte: b })
}

fn decode_func_type(s: &mut Reader<'_>) -> Result<FuncType, DecodeError> {
    let tag = s.byte()?;
    if tag != 0x60 {
        return Err(DecodeError::Malformed {
            what: "function type must start with 0x60",
        });
    }
    let np = s.u32()?;
    let mut params = Vec::with_capacity(clamped_capacity(np, s));
    for _ in 0..np {
        params.push(decode_val_type(s)?);
    }
    let nr = s.u32()?;
    let mut results = Vec::with_capacity(clamped_capacity(nr, s));
    for _ in 0..nr {
        results.push(decode_val_type(s)?);
    }
    Ok(FuncType { params, results })
}

fn decode_limits(s: &mut Reader<'_>) -> Result<Limits, DecodeError> {
    match s.byte()? {
        0x00 => Ok(Limits {
            min: s.u32()?,
            max: None,
        }),
        0x01 => Ok(Limits {
            min: s.u32()?,
            max: Some(s.u32()?),
        }),
        _ => Err(DecodeError::Malformed {
            what: "bad limits flag",
        }),
    }
}

fn decode_global_type(s: &mut Reader<'_>) -> Result<GlobalType, DecodeError> {
    let ty = decode_val_type(s)?;
    let mutable = match s.byte()? {
        0x00 => false,
        0x01 => true,
        _ => {
            return Err(DecodeError::Malformed {
                what: "bad global mutability flag",
            })
        }
    };
    Ok(GlobalType { ty, mutable })
}

/// Decode a constant initializer expression: one const instr + `end`.
fn decode_const_expr(s: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    let i = decode_instr(s)?;
    match i {
        Instr::I32Const(_) | Instr::I64Const(_) | Instr::F32Const(_) | Instr::F64Const(_) => {}
        _ => {
            return Err(DecodeError::Malformed {
                what: "init expr must be a single const",
            })
        }
    }
    if decode_instr(s)? != Instr::End {
        return Err(DecodeError::Malformed {
            what: "init expr must end with `end`",
        });
    }
    Ok(i)
}

fn const_i32(s: &mut Reader<'_>) -> Result<i32, DecodeError> {
    match decode_const_expr(s)? {
        Instr::I32Const(v) => Ok(v),
        _ => Err(DecodeError::Malformed {
            what: "offset expr must be i32.const",
        }),
    }
}

fn decode_block_type(s: &mut Reader<'_>) -> Result<BlockType, DecodeError> {
    let b = s.byte()?;
    if b == 0x40 {
        return Ok(BlockType::Empty);
    }
    ValType::from_byte(b)
        .map(BlockType::Value)
        .ok_or(DecodeError::BadValType { byte: b })
}

fn decode_memarg(s: &mut Reader<'_>) -> Result<MemArg, DecodeError> {
    Ok(MemArg {
        align: s.u32()?,
        offset: s.u32()?,
    })
}

fn decode_instr(s: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    use Instr::*;
    let at = s.pos();
    let op = s.byte()?;
    Ok(match op {
        0x00 => Unreachable,
        0x01 => Nop,
        0x02 => Block(decode_block_type(s)?),
        0x03 => Loop(decode_block_type(s)?),
        0x04 => If(decode_block_type(s)?),
        0x05 => Else,
        0x0b => End,
        0x0c => Br(s.u32()?),
        0x0d => BrIf(s.u32()?),
        0x0e => {
            let n = s.u32()?;
            let mut targets = Vec::with_capacity(clamped_capacity(n, s));
            for _ in 0..n {
                targets.push(s.u32()?);
            }
            BrTable(targets, s.u32()?)
        }
        0x0f => Return,
        0x10 => Call(s.u32()?),
        0x11 => {
            let t = s.u32()?;
            let table = s.byte()?;
            if table != 0 {
                return Err(DecodeError::Malformed {
                    what: "call_indirect table index must be 0",
                });
            }
            CallIndirect(t)
        }
        0x1a => Drop,
        0x1b => Select,
        0x20 => LocalGet(s.u32()?),
        0x21 => LocalSet(s.u32()?),
        0x22 => LocalTee(s.u32()?),
        0x23 => GlobalGet(s.u32()?),
        0x24 => GlobalSet(s.u32()?),
        0x28 => I32Load(decode_memarg(s)?),
        0x29 => I64Load(decode_memarg(s)?),
        0x2a => F32Load(decode_memarg(s)?),
        0x2b => F64Load(decode_memarg(s)?),
        0x2c => I32Load8S(decode_memarg(s)?),
        0x2d => I32Load8U(decode_memarg(s)?),
        0x2e => I32Load16S(decode_memarg(s)?),
        0x2f => I32Load16U(decode_memarg(s)?),
        0x30 => I64Load8S(decode_memarg(s)?),
        0x31 => I64Load8U(decode_memarg(s)?),
        0x32 => I64Load16S(decode_memarg(s)?),
        0x33 => I64Load16U(decode_memarg(s)?),
        0x34 => I64Load32S(decode_memarg(s)?),
        0x35 => I64Load32U(decode_memarg(s)?),
        0x36 => I32Store(decode_memarg(s)?),
        0x37 => I64Store(decode_memarg(s)?),
        0x38 => F32Store(decode_memarg(s)?),
        0x39 => F64Store(decode_memarg(s)?),
        0x3a => I32Store8(decode_memarg(s)?),
        0x3b => I32Store16(decode_memarg(s)?),
        0x3c => I64Store8(decode_memarg(s)?),
        0x3d => I64Store16(decode_memarg(s)?),
        0x3e => I64Store32(decode_memarg(s)?),
        0x3f => {
            s.byte()?;
            MemorySize
        }
        0x40 => {
            s.byte()?;
            MemoryGrow
        }
        0x41 => I32Const(s.i32()?),
        0x42 => I64Const(s.i64()?),
        0x43 => F32Const(s.f32()?),
        0x44 => F64Const(s.f64()?),
        0x45 => I32Eqz,
        0x46 => I32Eq,
        0x47 => I32Ne,
        0x48 => I32LtS,
        0x49 => I32LtU,
        0x4a => I32GtS,
        0x4b => I32GtU,
        0x4c => I32LeS,
        0x4d => I32LeU,
        0x4e => I32GeS,
        0x4f => I32GeU,
        0x50 => I64Eqz,
        0x51 => I64Eq,
        0x52 => I64Ne,
        0x53 => I64LtS,
        0x54 => I64LtU,
        0x55 => I64GtS,
        0x56 => I64GtU,
        0x57 => I64LeS,
        0x58 => I64LeU,
        0x59 => I64GeS,
        0x5a => I64GeU,
        0x5b => F32Eq,
        0x5c => F32Ne,
        0x5d => F32Lt,
        0x5e => F32Gt,
        0x5f => F32Le,
        0x60 => F32Ge,
        0x61 => F64Eq,
        0x62 => F64Ne,
        0x63 => F64Lt,
        0x64 => F64Gt,
        0x65 => F64Le,
        0x66 => F64Ge,
        0x67 => I32Clz,
        0x68 => I32Ctz,
        0x69 => I32Popcnt,
        0x6a => I32Add,
        0x6b => I32Sub,
        0x6c => I32Mul,
        0x6d => I32DivS,
        0x6e => I32DivU,
        0x6f => I32RemS,
        0x70 => I32RemU,
        0x71 => I32And,
        0x72 => I32Or,
        0x73 => I32Xor,
        0x74 => I32Shl,
        0x75 => I32ShrS,
        0x76 => I32ShrU,
        0x77 => I32Rotl,
        0x78 => I32Rotr,
        0x79 => I64Clz,
        0x7a => I64Ctz,
        0x7b => I64Popcnt,
        0x7c => I64Add,
        0x7d => I64Sub,
        0x7e => I64Mul,
        0x7f => I64DivS,
        0x80 => I64DivU,
        0x81 => I64RemS,
        0x82 => I64RemU,
        0x83 => I64And,
        0x84 => I64Or,
        0x85 => I64Xor,
        0x86 => I64Shl,
        0x87 => I64ShrS,
        0x88 => I64ShrU,
        0x89 => I64Rotl,
        0x8a => I64Rotr,
        0x8b => F32Abs,
        0x8c => F32Neg,
        0x8d => F32Ceil,
        0x8e => F32Floor,
        0x8f => F32Trunc,
        0x90 => F32Nearest,
        0x91 => F32Sqrt,
        0x92 => F32Add,
        0x93 => F32Sub,
        0x94 => F32Mul,
        0x95 => F32Div,
        0x96 => F32Min,
        0x97 => F32Max,
        0x98 => F32Copysign,
        0x99 => F64Abs,
        0x9a => F64Neg,
        0x9b => F64Ceil,
        0x9c => F64Floor,
        0x9d => F64Trunc,
        0x9e => F64Nearest,
        0x9f => F64Sqrt,
        0xa0 => F64Add,
        0xa1 => F64Sub,
        0xa2 => F64Mul,
        0xa3 => F64Div,
        0xa4 => F64Min,
        0xa5 => F64Max,
        0xa6 => F64Copysign,
        0xa7 => I32WrapI64,
        0xa8 => I32TruncF32S,
        0xa9 => I32TruncF32U,
        0xaa => I32TruncF64S,
        0xab => I32TruncF64U,
        0xac => I64ExtendI32S,
        0xad => I64ExtendI32U,
        0xae => I64TruncF32S,
        0xaf => I64TruncF32U,
        0xb0 => I64TruncF64S,
        0xb1 => I64TruncF64U,
        0xb2 => F32ConvertI32S,
        0xb3 => F32ConvertI32U,
        0xb4 => F32ConvertI64S,
        0xb5 => F32ConvertI64U,
        0xb6 => F32DemoteF64,
        0xb7 => F64ConvertI32S,
        0xb8 => F64ConvertI32U,
        0xb9 => F64ConvertI64S,
        0xba => F64ConvertI64U,
        0xbb => F64PromoteF32,
        0xbc => I32ReinterpretF32,
        0xbd => I64ReinterpretF64,
        0xbe => F32ReinterpretI32,
        0xbf => F64ReinterpretI64,
        opcode => return Err(DecodeError::UnknownOpcode { opcode, at }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_module;

    #[test]
    fn rejects_bad_header() {
        assert_eq!(
            decode_module(b"\0asx\x01\0\0\0"),
            Err(DecodeError::BadHeader)
        );
        assert!(matches!(
            decode_module(b"\0as"),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn empty_module_round_trips() {
        let m = Module::new();
        assert_eq!(decode_module(&encode_module(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_out_of_order_sections() {
        // type section (id 1) after function section (id 3).
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.extend_from_slice(&[3, 1, 0]); // empty function section
        bytes.extend_from_slice(&[1, 1, 0]); // empty type section
        assert_eq!(
            decode_module(&bytes),
            Err(DecodeError::SectionOutOfOrder { id: 1 })
        );
    }

    #[test]
    fn rejects_section_size_mismatch() {
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        // Type section claims 3 bytes but vector count 0 consumes only 1.
        bytes.extend_from_slice(&[1, 3, 0, 0, 0]);
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn decoder_never_panics_on_truncations() {
        // A representative module, truncated at every length.
        let mut m = Module::new();
        let t = m.intern_type(FuncType {
            params: vec![ValType::I32],
            results: vec![ValType::I32],
        });
        m.functions.push(Function {
            type_index: t,
            locals: vec![ValType::F64],
            body: vec![
                Instr::LocalGet(0),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::End,
            ],
            name: Some("inc".into()),
        });
        m.exports.push(Export {
            name: "inc".into(),
            kind: ExportKind::Func(0),
        });
        let bytes = encode_module(&m);
        for cut in 0..bytes.len() {
            let _ = decode_module(&bytes[..cut]); // must not panic
        }
        assert_eq!(decode_module(&bytes).unwrap(), m);
    }
}
