//! Error types for decoding and validation.

use std::fmt;

/// Error produced while decoding a binary module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// Byte offset at which input ran out.
        at: usize,
    },
    /// The 8-byte magic/version header was wrong.
    BadHeader,
    /// A LEB128 integer exceeded its maximum encoded length or range.
    IntegerTooLong {
        /// Byte offset of the offending integer.
        at: usize,
    },
    /// An unknown or unsupported opcode byte.
    UnknownOpcode {
        /// The opcode byte.
        opcode: u8,
        /// Byte offset of the opcode.
        at: usize,
    },
    /// An unknown section id.
    UnknownSection {
        /// The section id byte.
        id: u8,
    },
    /// Sections appeared out of the spec-mandated order.
    SectionOutOfOrder {
        /// The offending section id.
        id: u8,
    },
    /// A section's declared size did not match its content.
    SectionSizeMismatch {
        /// The section id.
        id: u8,
    },
    /// An invalid value-type byte.
    BadValType {
        /// The type byte.
        byte: u8,
    },
    /// A name was not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset past the name.
        at: usize,
    },
    /// Function and code section lengths disagree.
    FuncCodeMismatch {
        /// Entries in the function section.
        funcs: usize,
        /// Entries in the code section.
        bodies: usize,
    },
    /// Anything else, with a description.
    Malformed {
        /// Description of the problem.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { at } => write!(f, "unexpected end of input at byte {at}"),
            DecodeError::BadHeader => write!(f, "bad wasm magic/version header"),
            DecodeError::IntegerTooLong { at } => write!(f, "LEB128 integer too long at byte {at}"),
            DecodeError::UnknownOpcode { opcode, at } => {
                write!(f, "unknown opcode 0x{opcode:02x} at byte {at}")
            }
            DecodeError::UnknownSection { id } => write!(f, "unknown section id {id}"),
            DecodeError::SectionOutOfOrder { id } => write!(f, "section id {id} out of order"),
            DecodeError::SectionSizeMismatch { id } => {
                write!(f, "section id {id} size mismatch")
            }
            DecodeError::BadValType { byte } => write!(f, "invalid value type 0x{byte:02x}"),
            DecodeError::InvalidUtf8 { at } => write!(f, "invalid UTF-8 name before byte {at}"),
            DecodeError::FuncCodeMismatch { funcs, bodies } => write!(
                f,
                "function section has {funcs} entries but code section has {bodies}"
            ),
            DecodeError::Malformed { what } => write!(f, "malformed module: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error produced while validating a module.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A type index referred past the type section.
    BadTypeIndex {
        /// The offending index.
        index: u32,
    },
    /// A function index referred past imports + functions.
    BadFuncIndex {
        /// The offending index.
        index: u32,
    },
    /// A local index referred past params + locals.
    BadLocalIndex {
        /// The offending index.
        index: u32,
    },
    /// A global index referred past the global section.
    BadGlobalIndex {
        /// The offending index.
        index: u32,
    },
    /// Assignment to an immutable global.
    ImmutableGlobal {
        /// The offending index.
        index: u32,
    },
    /// A branch label was deeper than the current control stack.
    BadLabel {
        /// The offending relative depth.
        depth: u32,
    },
    /// Operand stack underflow or type mismatch.
    TypeMismatch {
        /// Description of the expected/actual situation.
        detail: String,
    },
    /// Memory instruction used without a declared/imported memory.
    NoMemory,
    /// `call_indirect` used without a table.
    NoTable,
    /// Misaligned memarg (alignment exceeds natural alignment).
    BadAlignment,
    /// Control-frame nesting was broken (e.g. `else` without `if`).
    MalformedControl {
        /// Description of the problem.
        detail: String,
    },
    /// An export referenced a missing entity.
    BadExport {
        /// Export name.
        name: String,
    },
    /// A start/data/element item was inconsistent.
    BadModuleField {
        /// Description of the problem.
        detail: String,
    },
    /// An error inside a function body, with the function index and the
    /// offending instruction's position in the body.
    InFunction {
        /// Function index (import space).
        func: usize,
        /// Instruction offset within the body.
        at: usize,
        /// The underlying error.
        source: Box<ValidationError>,
    },
}

impl ValidationError {
    /// Wrap this error with function/instruction context. Already-wrapped
    /// errors are left untouched so the innermost location wins.
    pub fn in_function(self, func: usize, at: usize) -> Self {
        match self {
            e @ ValidationError::InFunction { .. } => e,
            source => ValidationError::InFunction {
                func,
                at,
                source: Box::new(source),
            },
        }
    }

    /// The underlying error, stripped of any function/instruction context.
    pub fn root_cause(&self) -> &ValidationError {
        match self {
            ValidationError::InFunction { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadTypeIndex { index } => write!(f, "type index {index} out of range"),
            ValidationError::BadFuncIndex { index } => {
                write!(f, "function index {index} out of range")
            }
            ValidationError::BadLocalIndex { index } => {
                write!(f, "local index {index} out of range")
            }
            ValidationError::BadGlobalIndex { index } => {
                write!(f, "global index {index} out of range")
            }
            ValidationError::ImmutableGlobal { index } => {
                write!(f, "global {index} is immutable")
            }
            ValidationError::BadLabel { depth } => {
                write!(f, "branch depth {depth} out of range")
            }
            ValidationError::TypeMismatch { detail } => {
                write!(f, "type mismatch: {detail}")
            }
            ValidationError::NoMemory => write!(f, "memory instruction without memory"),
            ValidationError::NoTable => write!(f, "call_indirect without table"),
            ValidationError::BadAlignment => {
                write!(f, "alignment exceeds natural alignment")
            }
            ValidationError::MalformedControl { detail } => {
                write!(f, "malformed control flow: {detail}")
            }
            ValidationError::BadExport { name } => write!(f, "export '{name}' is dangling"),
            ValidationError::BadModuleField { detail } => write!(f, "bad module field: {detail}"),
            ValidationError::InFunction { func, at, source } => {
                write!(f, "func {func}, instr {at}: {source}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}
