//! Wall-clock benchmarks of the simulation substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use wb_benchmarks::InputSize;
use wb_jsvm::{JsVm, JsVmConfig};
use wb_minic::{Compiler, OptLevel};
use wb_wasm_vm::{Instance, WasmVmConfig};

fn gemm_wasm_bytes() -> (Vec<u8>, Vec<String>) {
    let b = wb_benchmarks::suite::find("gemm").expect("gemm exists");
    let mut c = Compiler::cheerp();
    for (k, v) in b.defines(InputSize::S) {
        c = c.define(&k, v);
    }
    let out = c.compile_wasm(b.source).expect("compiles");
    (wb_wasm::encode_module(&out.module), out.strings)
}

fn bench_wasm_pipeline(c: &mut Criterion) {
    let (bytes, _) = gemm_wasm_bytes();
    let module = wb_wasm::decode_module(&bytes).expect("decodes");

    let mut g = c.benchmark_group("wasm");
    g.bench_function("decode", |b| {
        b.iter(|| wb_wasm::decode_module(black_box(&bytes)).expect("decodes"))
    });
    g.bench_function("validate", |b| {
        b.iter(|| wb_wasm::validate(black_box(&module)).expect("validates"))
    });
    g.bench_function("encode", |b| {
        b.iter(|| wb_wasm::encode_module(black_box(&module)))
    });
    g.bench_function("interpret_gemm_s", |b| {
        b.iter(|| {
            let (bytes, strings) = gemm_wasm_bytes();
            let mut inst = Instance::instantiate(
                &bytes,
                WasmVmConfig::reference(),
                wb_core::host::standard_imports(strings),
            )
            .expect("instantiates");
            inst.invoke("bench_main", &[]).expect("runs");
            black_box(inst.output.len())
        })
    });
    g.finish();
}

fn bench_js_pipeline(c: &mut Criterion) {
    let b = wb_benchmarks::suite::find("gemm").expect("gemm exists");
    let mut compiler = Compiler::cheerp();
    for (k, v) in b.defines(InputSize::S) {
        compiler = compiler.define(&k, v);
    }
    let js = compiler.compile_js(b.source).expect("compiles").source;

    let mut g = c.benchmark_group("jsvm");
    g.bench_function("parse_compile", |b| {
        b.iter(|| wb_jsvm::compile_script(black_box(&js)).expect("compiles"))
    });
    g.bench_function("run_gemm_s", |b| {
        b.iter(|| {
            let mut vm = JsVm::new(JsVmConfig::reference());
            vm.load(black_box(&js)).expect("loads");
            vm.call("bench_main", &[]).expect("runs");
            black_box(vm.output.len())
        })
    });
    g.bench_function("gc_churn", |b| {
        let src = "function churn(n) {\n\
                     var keep = [];\n\
                     for (var i = 0; i < n; i++) { var t = [i, i, i]; if (i % 64 === 0) keep.push(t); }\n\
                     return keep.length;\n\
                   }";
        b.iter(|| {
            let mut cfg = JsVmConfig::reference();
            cfg.profile.gc.trigger_bytes = 64 * 1024;
            let mut vm = JsVm::new(cfg);
            vm.load(src).expect("loads");
            vm.call("churn", &[wb_jsvm::JsValue::Num(20_000.0)]).expect("runs")
        })
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let b = wb_benchmarks::suite::find("gemm").expect("gemm exists");
    let mut g = c.benchmark_group("minic");
    for level in [OptLevel::O0, OptLevel::O2, OptLevel::Ofast] {
        g.bench_function(format!("compile_wasm_{}", level.name()), |bench| {
            bench.iter(|| {
                let mut compiler = Compiler::cheerp().opt_level(level);
                for (k, v) in b.defines(InputSize::S) {
                    compiler = compiler.define(&k, v.clone());
                }
                black_box(compiler.compile_wasm(black_box(b.source)).expect("compiles"))
            })
        });
    }
    g.bench_function("compile_js_O2", |bench| {
        bench.iter(|| {
            let mut compiler = Compiler::cheerp();
            for (k, v) in b.defines(InputSize::S) {
                compiler = compiler.define(&k, v.clone());
            }
            black_box(compiler.compile_js(black_box(b.source)).expect("compiles"))
        })
    });
    g.finish();
}

fn bench_host_bridge(c: &mut Criterion) {
    // The §4.5 ping-pong, as a wall-clock bench of the VM's host bridge.
    let mut mb = wb_wasm::ModuleBuilder::new();
    let mut f = mb.func("nop", vec![], vec![]);
    f.op(wb_wasm::Instr::Nop).done();
    mb.finish_func(f, true);
    let bytes = wb_wasm::encode_module(&mb.build());
    c.bench_function("wasm/host_roundtrip", |b| {
        let mut inst =
            Instance::instantiate(&bytes, WasmVmConfig::reference(), HashMap::new())
                .expect("instantiates");
        b.iter(|| inst.invoke("nop", &[]).expect("runs"))
    });
}

criterion_group!(
    benches,
    bench_wasm_pipeline,
    bench_js_pipeline,
    bench_compiler,
    bench_host_bridge
);
criterion_main!(benches);
