//! Wall-clock benchmarks of the simulation substrates (std-only timing
//! harness; run with `cargo bench -p wb-bench --bench simulator`).

use std::collections::HashMap;
use std::hint::black_box;
use wb_bench::timing::Bench;
use wb_benchmarks::InputSize;
use wb_jsvm::{JsVm, JsVmConfig};
use wb_minic::{Compiler, OptLevel};
use wb_wasm_vm::{Instance, WasmVmConfig};

fn gemm_wasm_bytes() -> (Vec<u8>, Vec<String>) {
    let b = wb_benchmarks::suite::find("gemm").expect("gemm exists");
    let mut c = Compiler::cheerp();
    for (k, v) in b.defines(InputSize::S) {
        c = c.define(&k, v);
    }
    let out = c.compile_wasm(b.source).expect("compiles");
    (wb_wasm::encode_module(&out.module), out.strings)
}

fn bench_wasm_pipeline() {
    let (bytes, _) = gemm_wasm_bytes();
    let module = wb_wasm::decode_module(&bytes).expect("decodes");

    let g = Bench::group("wasm");
    g.run("decode", || {
        wb_wasm::decode_module(black_box(&bytes)).expect("decodes")
    });
    g.run("validate", || {
        wb_wasm::validate(black_box(&module)).expect("validates")
    });
    g.run("encode", || wb_wasm::encode_module(black_box(&module)));
    g.run("interpret_gemm_s", || {
        let (bytes, strings) = gemm_wasm_bytes();
        let mut inst = Instance::instantiate(
            &bytes,
            WasmVmConfig::reference(),
            wb_core::host::standard_imports(strings),
        )
        .expect("instantiates");
        inst.invoke("bench_main", &[]).expect("runs");
        inst.output.len()
    });
}

fn bench_js_pipeline() {
    let b = wb_benchmarks::suite::find("gemm").expect("gemm exists");
    let mut compiler = Compiler::cheerp();
    for (k, v) in b.defines(InputSize::S) {
        compiler = compiler.define(&k, v);
    }
    let js = compiler.compile_js(b.source).expect("compiles").source;

    let g = Bench::group("jsvm");
    g.run("parse_compile", || {
        wb_jsvm::compile_script(black_box(&js)).expect("compiles")
    });
    g.run("run_gemm_s", || {
        let mut vm = JsVm::new(JsVmConfig::reference());
        vm.load(black_box(&js)).expect("loads");
        vm.call("bench_main", &[]).expect("runs");
        vm.output.len()
    });
    let churn_src = "function churn(n) {\n\
                       var keep = [];\n\
                       for (var i = 0; i < n; i++) { var t = [i, i, i]; if (i % 64 === 0) keep.push(t); }\n\
                       return keep.length;\n\
                     }";
    g.run("gc_churn", || {
        let mut cfg = JsVmConfig::reference();
        cfg.profile.gc.trigger_bytes = 64 * 1024;
        let mut vm = JsVm::new(cfg);
        vm.load(churn_src).expect("loads");
        vm.call("churn", &[wb_jsvm::JsValue::Num(20_000.0)])
            .expect("runs")
    });
}

fn bench_compiler() {
    let b = wb_benchmarks::suite::find("gemm").expect("gemm exists");
    let g = Bench::group("minic");
    for level in [OptLevel::O0, OptLevel::O2, OptLevel::Ofast] {
        g.run(&format!("compile_wasm_{}", level.name()), || {
            let mut compiler = Compiler::cheerp().opt_level(level);
            for (k, v) in b.defines(InputSize::S) {
                compiler = compiler.define(&k, v.clone());
            }
            compiler
                .compile_wasm(black_box(b.source))
                .expect("compiles")
        });
    }
    g.run("compile_js_O2", || {
        let mut compiler = Compiler::cheerp();
        for (k, v) in b.defines(InputSize::S) {
            compiler = compiler.define(&k, v.clone());
        }
        compiler.compile_js(black_box(b.source)).expect("compiles")
    });
}

fn bench_host_bridge() {
    // The §4.5 ping-pong, as a wall-clock bench of the VM's host bridge.
    let mut mb = wb_wasm::ModuleBuilder::new();
    let mut f = mb.func("nop", vec![], vec![]);
    f.op(wb_wasm::Instr::Nop).done();
    mb.finish_func(f, true);
    let bytes = wb_wasm::encode_module(&mb.build());
    let mut inst = Instance::instantiate(&bytes, WasmVmConfig::reference(), HashMap::new())
        .expect("instantiates");
    Bench::group("wasm").run("host_roundtrip", || inst.invoke("nop", &[]).expect("runs"));
}

fn main() {
    bench_wasm_pipeline();
    bench_js_pipeline();
    bench_compiler();
    bench_host_bridge();
}
